//! Offline stand-in for the `rayon` crate: a persistent worker pool with
//! scoped task spawning, exposing only the subset of the rayon API this
//! workspace uses (`scope`, `Scope::spawn`, `current_num_threads`).
//!
//! Jobs are injected into a global FIFO served by `available_parallelism`
//! worker threads, spawned lazily on first use. [`scope`] blocks until every
//! task spawned inside it has finished; while waiting, the calling thread
//! helps drain the queue instead of sleeping, so concurrent scopes (e.g. one
//! per simulated device) cannot starve each other. A panic inside a spawned
//! task is caught on the worker and re-thrown from `scope` on the caller's
//! thread, matching rayon's propagation semantics.

use std::collections::VecDeque;
use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, Once, OnceLock};
use std::time::Duration;

type Job = Box<dyn FnOnce() + Send + 'static>;

struct Pool {
    queue: Mutex<VecDeque<Job>>,
    available: Condvar,
}

impl Pool {
    fn inject(&self, job: Job) {
        self.queue
            .lock()
            .expect("pool queue poisoned")
            .push_back(job);
        self.available.notify_one();
    }

    fn try_pop(&self) -> Option<Job> {
        self.queue.lock().expect("pool queue poisoned").pop_front()
    }
}

static POOL: OnceLock<Pool> = OnceLock::new();
static WORKERS: Once = Once::new();

fn pool() -> &'static Pool {
    let p = POOL.get_or_init(|| Pool {
        queue: Mutex::new(VecDeque::new()),
        available: Condvar::new(),
    });
    WORKERS.call_once(|| {
        for i in 0..current_num_threads() {
            let spawned = std::thread::Builder::new()
                .name(format!("rayon-worker-{i}"))
                .spawn(move || worker_loop(p));
            // A failed spawn just leaves fewer workers; the helping caller
            // in `scope` guarantees forward progress regardless.
            drop(spawned);
        }
    });
    p
}

fn worker_loop(pool: &'static Pool) {
    loop {
        let job = {
            let mut q = pool.queue.lock().expect("pool queue poisoned");
            loop {
                if let Some(j) = q.pop_front() {
                    break j;
                }
                q = pool.available.wait(q).expect("pool queue poisoned");
            }
        };
        // Jobs are panic-wrapped at spawn time, so this cannot unwind.
        job();
    }
}

/// Number of worker threads the global pool targets: the machine's
/// available parallelism.
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

struct ScopeStatus {
    pending: usize,
    panic: Option<Box<dyn std::any::Any + Send>>,
}

struct ScopeState {
    status: Mutex<ScopeStatus>,
    done: Condvar,
}

/// A scope in which tasks borrowing the caller's stack can be spawned onto
/// the global pool. All tasks are joined before [`scope`] returns.
pub struct Scope<'scope> {
    state: Arc<ScopeState>,
    // Invariant over 'scope, as in rayon.
    _marker: PhantomData<fn(&'scope ()) -> &'scope ()>,
}

/// Runs `op`, allowing it to spawn tasks that borrow data outside the
/// closure; blocks until every spawned task completes.
///
/// # Panics
///
/// Re-throws the first panic raised by a spawned task (after all tasks have
/// settled), as rayon does.
pub fn scope<'scope, OP, R>(op: OP) -> R
where
    OP: FnOnce(&Scope<'scope>) -> R,
{
    let s = Scope {
        state: Arc::new(ScopeState {
            status: Mutex::new(ScopeStatus {
                pending: 0,
                panic: None,
            }),
            done: Condvar::new(),
        }),
        _marker: PhantomData,
    };
    let result = op(&s);
    // Join: help run queued jobs while any task of this scope is pending.
    loop {
        {
            let st = s.state.status.lock().expect("scope status poisoned");
            if st.pending == 0 {
                break;
            }
        }
        if let Some(job) = pool().try_pop() {
            job();
            continue;
        }
        // Queue empty but tasks still running on workers: wait briefly for
        // the completion signal (timeout guards against racing a job that
        // was popped between our two checks).
        let st = s.state.status.lock().expect("scope status poisoned");
        if st.pending > 0 {
            let _ = s
                .state
                .done
                .wait_timeout(st, Duration::from_millis(1))
                .expect("scope status poisoned");
        }
    }
    let panic = {
        let mut st = s.state.status.lock().expect("scope status poisoned");
        st.panic.take()
    };
    if let Some(p) = panic {
        resume_unwind(p);
    }
    result
}

impl<'scope> Scope<'scope> {
    /// Spawns `body` onto the global pool. The task may borrow anything that
    /// outlives `'scope`; the owning [`scope`] call joins it before
    /// returning.
    pub fn spawn<BODY>(&self, body: BODY)
    where
        BODY: FnOnce(&Scope<'scope>) + Send + 'scope,
    {
        self.state
            .status
            .lock()
            .expect("scope status poisoned")
            .pending += 1;
        let state = Arc::clone(&self.state);
        let task: Box<dyn FnOnce() + Send + 'scope> = Box::new(move || {
            let sub = Scope {
                state: Arc::clone(&state),
                _marker: PhantomData,
            };
            let res = catch_unwind(AssertUnwindSafe(|| body(&sub)));
            let mut st = state.status.lock().expect("scope status poisoned");
            if let Err(p) = res {
                if st.panic.is_none() {
                    st.panic = Some(p);
                }
            }
            st.pending -= 1;
            if st.pending == 0 {
                drop(st);
                state.done.notify_all();
            }
        });
        // SAFETY: `scope` does not return until `pending` reaches zero,
        // i.e. until this task has run to completion and dropped its
        // captures, so no `'scope` borrow inside the box outlives its
        // referent. The transmute only erases that lifetime.
        let task: Job = unsafe {
            std::mem::transmute::<Box<dyn FnOnce() + Send + 'scope>, Box<dyn FnOnce() + Send>>(task)
        };
        pool().inject(task);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scope_joins_all_tasks() {
        let counter = AtomicUsize::new(0);
        scope(|s| {
            for _ in 0..64 {
                s.spawn(|_| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn scope_tasks_can_borrow_mutably_disjoint_slots() {
        let mut slots = vec![0usize; 32];
        scope(|s| {
            for (i, slot) in slots.iter_mut().enumerate() {
                s.spawn(move |_| *slot = i * 2);
            }
        });
        for (i, &v) in slots.iter().enumerate() {
            assert_eq!(v, i * 2);
        }
    }

    #[test]
    fn concurrent_scopes_do_not_interfere() {
        let totals: Vec<AtomicUsize> = (0..4).map(|_| AtomicUsize::new(0)).collect();
        std::thread::scope(|outer| {
            for t in &totals {
                outer.spawn(|| {
                    scope(|s| {
                        for _ in 0..16 {
                            s.spawn(|_| {
                                t.fetch_add(1, Ordering::Relaxed);
                            });
                        }
                    });
                });
            }
        });
        for t in &totals {
            assert_eq!(t.load(Ordering::Relaxed), 16);
        }
    }

    #[test]
    fn panics_propagate_to_the_scope_caller() {
        let res = catch_unwind(AssertUnwindSafe(|| {
            scope(|s| {
                s.spawn(|_| panic!("boom"));
            });
        }));
        assert!(res.is_err());
        // The pool survives a panicking task.
        let counter = AtomicUsize::new(0);
        scope(|s| {
            s.spawn(|_| {
                counter.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(counter.load(Ordering::Relaxed), 1);
    }
}
