//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so this crate
//! vendors the *subset* of the rand 0.8 API the workspace actually uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], [`Rng::gen`] for floats
//! and [`Rng::gen_range`] over integer ranges.
//!
//! The generator is xoshiro256** seeded through splitmix64 — deterministic
//! and well distributed, but its streams do **not** match upstream rand's
//! `StdRng`. Everything in this repository that consumes randomness treats
//! it as an opaque deterministic source (generated graphs are compared
//! structurally, never against externally produced topologies), so stream
//! compatibility is not required.

/// A generator that can be constructed from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Creates a generator seeded from `state` (splitmix64-expanded).
    fn seed_from_u64(state: u64) -> Self;
}

/// The low-level source of random bits.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value from the "standard" distribution of `T`
    /// (uniform `[0, 1)` for floats, uniform over all values for integers).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Samples uniformly from `range` (half-open or inclusive integer or
    /// float ranges).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample_uniform(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore> Rng for R {}

/// Types sampleable by [`Rng::gen`].
pub trait Standard {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> f64 {
        // 53 high bits -> [0, 1) with full double precision.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange {
    type Output;
    fn sample_uniform<R: RngCore>(self, rng: &mut R) -> Self::Output;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample_uniform<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }

        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_uniform<R: RngCore>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (start as i128 + off as i128) as $t
            }
        }
    )*};
}

int_sample_range!(usize, u8, u16, u32, u64, i8, i16, i32, i64);

impl SampleRange for core::ops::Range<f64> {
    type Output = f64;
    fn sample_uniform<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256**.
    ///
    /// Not stream-compatible with upstream rand's `StdRng` (which is
    /// ChaCha-based); see the crate docs for why that is acceptable here.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.gen::<u64>()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen::<u64>()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.gen::<u64>()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn floats_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let r: f64 = rng.gen();
            assert!((0.0..1.0).contains(&r));
        }
    }

    #[test]
    fn ranges_stay_in_bounds_and_cover() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 10];
        for _ in 0..500 {
            let v = rng.gen_range(0..10usize);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "uniform sampling covers the range");
        for _ in 0..100 {
            let v = rng.gen_range(5..=6u32);
            assert!(v == 5 || v == 6);
        }
    }
}
