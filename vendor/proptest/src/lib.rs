//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access to crates.io, so this crate
//! vendors the *subset* of the proptest API the workspace uses: the
//! [`proptest!`] macro (with `#![proptest_config(...)]`), [`strategy::Strategy`] with
//! `prop_map`, integer/float range strategies, tuple strategies,
//! [`collection::vec`], [`option::weighted`], [`bool::ANY`], and the
//! `prop_assert*` macros.
//!
//! Differences from upstream, by design:
//!
//! * **No shrinking.** A failing case reports the case number and seed; the
//!   run is fully deterministic, so the failure replays identically.
//! * **Deterministic generation.** Cases are derived from a hash of the test
//!   name and the case index rather than OS entropy, so CI and local runs
//!   see the same inputs (no `proptest-regressions` files are consulted).

pub mod strategy;
pub mod test_runner;

/// Strategies over collections.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// The accepted size specifications for [`vec()`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        start: usize,
        end: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                start: n,
                end: n + 1,
            }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                start: r.start,
                end: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                start: *r.start(),
                end: *r.end() + 1,
            }
        }
    }

    /// Strategy for `Vec`s whose length lies in `size` and whose elements
    /// come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Strategies producing `Option`s.
pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Produces `Some` of the inner strategy with probability `prob_some`,
    /// else `None`.
    pub fn weighted<S: Strategy>(prob_some: f64, inner: S) -> Weighted<S> {
        Weighted { prob_some, inner }
    }

    /// See [`weighted`].
    #[derive(Debug, Clone)]
    pub struct Weighted<S> {
        prob_some: f64,
        inner: S,
    }

    impl<S: Strategy> Strategy for Weighted<S> {
        type Value = Option<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_f64() < self.prob_some {
                Some(self.inner.sample(rng))
            } else {
                None
            }
        }
    }
}

/// Strategies producing `bool`s.
pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for an unbiased boolean.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Samples `true` or `false` with equal probability.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = ::core::primitive::bool;

        fn sample(&self, rng: &mut TestRng) -> ::core::primitive::bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// The standard imports for writing property tests.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Defines property tests: each `#[test] fn name(arg in strategy, ...)`
/// becomes a `#[test]` that runs the body over generated inputs.
///
/// An optional leading `#![proptest_config(expr)]` sets the
/// [`ProptestConfig`](crate::test_runner::ProptestConfig) (e.g. case count)
/// for every test in the block.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            let __strategies = ($(($strat),)+);
            $crate::test_runner::run(stringify!($name), &__config, |__rng| {
                let ($($arg,)+) = $crate::strategy::Strategy::sample(&__strategies, __rng);
                { $body }
                ::core::result::Result::Ok(())
            });
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Like `assert!`, but fails the current property-test case with a
/// [`TestCaseError`](crate::test_runner::TestCaseError) instead of
/// panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Like `assert_eq!`, but fails the case instead of panicking.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        if !(lhs == rhs) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {:?} == {:?}",
                lhs, rhs
            )));
        }
    }};
}

/// Like `assert_ne!`, but fails the case instead of panicking.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        if lhs == rhs {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {:?} != {:?}",
                lhs, rhs
            )));
        }
    }};
}

/// Skips the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    #[test]
    fn strategies_compose() {
        let mut rng = TestRng::new(1);
        let s = (1usize..4, crate::collection::vec(0u32..10, 2..5)).prop_map(|(n, v)| n + v.len());
        for _ in 0..100 {
            let x = s.sample(&mut rng);
            assert!((3..=7).contains(&x));
        }
        let o = crate::option::weighted(0.5, 0u32..3);
        let some = (0..200).filter(|_| o.sample(&mut rng).is_some()).count();
        assert!(some > 40 && some < 160, "weighted(0.5) is roughly balanced");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_runs_and_asserts(x in 0u64..100, flip in crate::bool::ANY) {
            prop_assert!(x < 100);
            if flip {
                return Ok(());
            }
            prop_assert_eq!(x, x);
            prop_assert_ne!(x + 1, x);
        }
    }

    proptest! {
        #[test]
        fn default_config_works(v in crate::collection::vec(1u32..5, 0..8)) {
            prop_assert!(v.len() < 8);
            prop_assert!(v.iter().all(|&x| (1..5).contains(&x)));
        }
    }
}
