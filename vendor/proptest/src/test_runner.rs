//! Configuration, RNG and the case-execution loop.

/// Per-block configuration (only the case count is supported).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Why a single case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case failed an assertion.
    Fail(String),
    /// The case's inputs did not satisfy a `prop_assume!` precondition;
    /// it is skipped, not failed.
    Reject(String),
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// A rejection (skipped case) with the given message.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
        }
    }
}

impl std::error::Error for TestCaseError {}

/// The deterministic per-case RNG handed to strategies (splitmix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform value in `[0, n)`; `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }
}

fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Runs `body` over `config.cases` deterministically generated cases.
///
/// # Panics
///
/// Panics (failing the enclosing `#[test]`) on the first case whose body
/// returns [`TestCaseError::Fail`] or itself panics; the message names the
/// case index and seed, which is all that is needed to replay it.
pub fn run<F>(name: &str, config: &ProptestConfig, mut body: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    for case in 0..config.cases {
        let seed = fnv1a(name) ^ 0x9e37_79b9_7f4a_7c15u64.wrapping_mul(u64::from(case) + 1);
        let mut rng = TestRng::new(seed);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(&mut rng)));
        match outcome {
            Ok(Ok(())) | Ok(Err(TestCaseError::Reject(_))) => {}
            Ok(Err(TestCaseError::Fail(msg))) => {
                panic!("property '{name}' failed at case {case} (seed {seed:#x}): {msg}")
            }
            Err(payload) => {
                eprintln!("property '{name}' panicked at case {case} (seed {seed:#x})");
                std::panic::resume_unwind(payload);
            }
        }
    }
}
