//! The [`Strategy`] trait and the combinators the workspace uses.

use crate::test_runner::TestRng;

/// A recipe for generating values of `Self::Value`.
///
/// Unlike upstream proptest there is no value tree / shrinking: a strategy
/// is just a deterministic function of the test RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { source: self, f }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.sample(rng))
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }

        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i128 - start as i128) as u128 + 1;
                (start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(usize, u8, u16, u32, u64, i8, i16, i32, i64);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
    (A 0, B 1, C 2, D 3, E 4, F 5)
}
