//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access to crates.io, so this crate
//! vendors the subset of the criterion 0.5 API the workspace's benches use:
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`] (with
//! `sample_size`, `bench_function`, `bench_with_input`, `finish`),
//! [`BenchmarkId::from_parameter`], [`black_box`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Statistics are intentionally minimal: each benchmark runs one warm-up
//! iteration plus `sample_size` timed iterations and prints the mean —
//! enough to compare runs by eye without upstream's analysis machinery.

use std::time::{Duration, Instant};

/// An opaque identity function preventing the optimiser from deleting the
/// benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id rendering as `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id rendering as just the parameter.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Times the closure handed to it by a benchmark definition.
#[derive(Debug, Default)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `f` repeatedly, accumulating wall-clock time.
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut f: F) {
        black_box(f()); // warm-up, untimed
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// The benchmark harness entry point.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

fn run_one(name: &str, iters: u64, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let mean = b.elapsed.as_secs_f64() * 1e3 / iters.max(1) as f64;
    println!("{name:<40} {mean:>10.3} ms/iter ({iters} iters)");
}

impl Criterion {
    /// Defines a stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, self.sample_size as u64, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            _c: self,
        }
    }
}

/// A named collection of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _c: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Defines a benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl std::fmt::Display,
        mut f: F,
    ) -> &mut Self {
        run_one(
            &format!("{}/{}", self.name, id),
            self.sample_size as u64,
            &mut f,
        );
        self
    }

    /// Defines a parameterised benchmark within the group.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(
            &format!("{}/{}", self.name, id),
            self.sample_size as u64,
            &mut |b| f(b, input),
        );
        self
    }

    /// Ends the group (upstream flushes reports here; a no-op for us).
    pub fn finish(self) {}
}

/// Bundles benchmark functions into a group callable from
/// [`criterion_main!`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` for a bench target (`harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_api_surface_runs() {
        let mut c = Criterion::default();
        let mut hits = 0u32;
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        let mut group = c.benchmark_group("grp");
        group.sample_size(3);
        group.bench_function("inner", |b| {
            b.iter(|| black_box(2 * 2));
        });
        group.bench_with_input(BenchmarkId::from_parameter(7), &7, |b, &n| {
            hits += 1;
            b.iter(|| black_box(n * n));
        });
        group.finish();
        assert_eq!(hits, 1);
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
    }
}
