//! Quickstart: define a sampling application in a few lines and run it
//! transit-parallel on the simulated GPU.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use nextdoor::core::api::{NextCtx, SamplingApp, Steps};
use nextdoor::core::{initial_samples_random, run_cpu, run_nextdoor};
use nextdoor::gpu::{Gpu, GpuSpec};
use nextdoor::graph::{Dataset, VertexId};

/// A uniform random walk of fixed length — the "hello world" of graph
/// sampling. Implementing [`SamplingApp`] takes four small methods, just
/// like the paper's Figure 4 use cases.
struct UniformWalk {
    length: usize,
}

impl SamplingApp for UniformWalk {
    fn name(&self) -> &'static str {
        "uniform-walk"
    }

    fn steps(&self) -> Steps {
        Steps::Fixed(self.length)
    }

    fn sample_size(&self, _step: usize) -> usize {
        1
    }

    fn next(&self, ctx: &mut NextCtx<'_>) -> Option<VertexId> {
        let degree = ctx.num_edges();
        if degree == 0 {
            return None; // Dead end: the walk terminates.
        }
        let pick = ctx.rand_range(degree);
        Some(ctx.src_edge(pick))
    }
}

fn main() {
    // A scaled stand-in for the paper's PPI dataset (Table 3).
    let graph = Dataset::Ppi.generate(0.05, 7);
    println!(
        "graph: {} vertices, {} edges (avg degree {:.1})",
        graph.num_vertices(),
        graph.num_edges(),
        graph.avg_degree()
    );

    // 1000 samples, each starting from one random vertex.
    let init = initial_samples_random(&graph, 1000, 1, 42).expect("non-empty graph");
    let app = UniformWalk { length: 16 };

    // Run transit-parallel on a simulated V100.
    let mut gpu = Gpu::new(GpuSpec::v100());
    let result =
        run_nextdoor(&mut gpu, &graph, &app, &init, 123).expect("valid inputs, graph fits");
    let samples = result.store.final_samples();
    println!(
        "sampled {} walks; first walk: {:?}",
        samples.len(),
        &samples[0]
    );
    println!(
        "simulated GPU time: {:.3} ms ({:.3} ms building the scheduling index)",
        result.stats.total_ms, result.stats.scheduling_ms
    );
    println!(
        "global loads: {} transactions, store efficiency {:.1}%, SM activity {:.1}%",
        result.stats.counters.gld_transactions,
        result.stats.counters.gst_efficiency(),
        result.stats.counters.multiprocessor_activity()
    );

    // Engines are interchangeable and produce identical samples.
    let reference = run_cpu(&graph, &app, &init, 123).expect("valid inputs");
    assert_eq!(samples, reference.store.final_samples());
    println!("CPU reference produced identical samples ✓");
}
