//! Scripting device faults against a run and watching the runtime recover
//! (or fail with a typed error). The counter-keyed RNG makes every recovery
//! path — out-of-core degradation, step retry, multi-GPU shard failover —
//! reproduce the fault-free samples exactly.
//!
//! ```sh
//! cargo run --release --example fault_injection
//! ```

use nextdoor::apps::KHop;
use nextdoor::core::multi_gpu::run_nextdoor_multi_gpu_with_faults;
use nextdoor::core::{initial_samples_random, run_nextdoor};
use nextdoor::gpu::{FaultPlan, Gpu, GpuSpec};
use nextdoor::graph::Dataset;

fn main() {
    let graph = Dataset::Ppi.generate(0.05, 7);
    let init = initial_samples_random(&graph, 1000, 1, 42).expect("non-empty graph");
    let app = KHop::graphsage();

    // Reference: a fault-free run.
    let mut clean_gpu = Gpu::new(GpuSpec::v100());
    let clean = run_nextdoor(&mut clean_gpu, &graph, &app, &init, 123).expect("clean run");

    // Script: the graph upload OOMs, and kernel launch #5 faults transiently.
    let mut gpu = Gpu::new(GpuSpec::v100());
    gpu.inject_faults(FaultPlan::new().fail_alloc(0).transient_at_launch(5));
    let faulty = run_nextdoor(&mut gpu, &graph, &app, &init, 123).expect("recoverable");
    assert!(faulty.report.degraded_to_out_of_core);
    assert!(faulty.report.step_retries >= 1);
    assert_eq!(
        clean.store.final_samples(),
        faulty.store.final_samples(),
        "recovered run must be byte-identical"
    );
    println!("single GPU survived: {}", faulty.report);

    // Multi-GPU: device 1 dies mid-run; its shard fails over to a survivor.
    let plans = [
        FaultPlan::new(),
        FaultPlan::new().lose_device_at_launch(2),
        FaultPlan::new(),
    ];
    let multi =
        run_nextdoor_multi_gpu_with_faults(&GpuSpec::v100(), 3, &graph, &app, &init, 123, &plans)
            .expect("failover succeeds");
    println!("multi GPU survived: {}", multi.report);

    // Unrecoverable: the only device is lost — a typed error, not a panic.
    let mut doomed = Gpu::new(GpuSpec::v100());
    doomed.inject_faults(FaultPlan::new().lose_device_at_launch(1));
    match run_nextdoor(&mut doomed, &graph, &app, &init, 123) {
        Err(e) => println!("single device lost: error as expected: {e}"),
        Ok(_) => unreachable!("a lost lone device cannot succeed"),
    }
}
