//! Sampling a graph larger than device memory (paper §8.4): the graph is
//! partitioned into sub-graphs, and each step transfers the partitions
//! holding live transit vertices before running the usual transit-parallel
//! kernels. Transfer time is charged, so the breakdown shows when an
//! application is compute-bound (k-hop) versus transfer-bound (walks).
//!
//! ```sh
//! cargo run --release --example out_of_core
//! ```

use nextdoor::apps::{DeepWalk, KHop};
use nextdoor::core::initial_samples_random;
use nextdoor::core::large_graph::{partition_graph, run_nextdoor_out_of_core};
use nextdoor::core::SamplingApp;
use nextdoor::gpu::{Gpu, GpuSpec};
use nextdoor::graph::Dataset;

fn main() {
    // A Friendster-like stand-in, with a device budget of 1/4 of the graph.
    let graph = Dataset::Friendster.generate(0.001, 3);
    let budget = graph.size_bytes() / 4;
    let parts = partition_graph(&graph, budget).expect("budget fits the largest vertex");
    println!(
        "graph: {} vertices / {} edges ({} MiB); device budget {} MiB -> {} partitions",
        graph.num_vertices(),
        graph.num_edges(),
        graph.size_bytes() >> 20,
        budget >> 20,
        parts.len()
    );

    let init = initial_samples_random(&graph, 4096, 1, 11).expect("non-empty graph");
    let apps: Vec<Box<dyn SamplingApp>> =
        vec![Box::new(KHop::graphsage()), Box::new(DeepWalk::new(50))];
    for app in apps {
        let mut gpu = Gpu::new(GpuSpec::v100());
        let (res, ooc) = run_nextdoor_out_of_core(&mut gpu, &graph, app.as_ref(), &init, 5, budget)
            .expect("valid inputs");
        println!(
            "{:>10}: {:.2} ms total ({:.2} ms transfers over {} sub-graph loads), \
             {:.0} samples/s, {} samples",
            app.name(),
            res.stats.total_ms,
            ooc.transfer_ms,
            ooc.transfers,
            ooc.samples_per_sec,
            res.store.num_samples()
        );
    }
}
