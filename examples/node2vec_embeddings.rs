//! node2vec walks feeding a small skip-gram embedding — the DeepWalk /
//! node2vec representation-learning pipeline of the paper's §2.1, end to
//! end: sample walks transit-parallel, then learn vertex embeddings from
//! walk co-occurrence and verify that community structure emerges.
//!
//! ```sh
//! cargo run --release --example node2vec_embeddings
//! ```

use nextdoor::apps::Node2Vec;
use nextdoor::core::{initial_samples_random, run_nextdoor};
use nextdoor::gpu::rng;
use nextdoor::gpu::{Gpu, GpuSpec};
use nextdoor::graph::{GraphBuilder, VertexId};

const DIM: usize = 16;
const WINDOW: usize = 2;

fn main() {
    // Two dense communities of 20 vertices joined by a single bridge edge:
    // embeddings should separate them.
    let n = 40usize;
    let mut b = GraphBuilder::new(n).undirected(true);
    for c in 0..2 {
        let base = (c * 20) as VertexId;
        for i in 0..20u32 {
            for j in (i + 1)..20u32 {
                if rng::rand_f32(9, (c as u64) << 32 | (i as u64) << 16 | j as u64, 0) < 0.4 {
                    b.push_edge(base + i, base + j);
                }
            }
        }
    }
    b.push_edge(0, 20);
    let graph = b.build().expect("valid community graph");

    // Sample node2vec walks (p=2, q=0.5 biases walks to explore outward).
    let init = initial_samples_random(&graph, 400, 1, 3).expect("non-empty graph");
    let mut gpu = Gpu::new(GpuSpec::small());
    let result = run_nextdoor(&mut gpu, &graph, &Node2Vec::new(12, 2.0, 0.5), &init, 17)
        .expect("valid inputs, graph fits");
    let walks = result.store.final_samples();
    println!(
        "sampled {} node2vec walks in {:.3} simulated ms",
        walks.len(),
        result.stats.total_ms
    );

    // Skip-gram with negative sampling over walk windows.
    let mut emb: Vec<[f32; DIM]> = (0..n)
        .map(|v| std::array::from_fn(|d| rng::rand_f32(1, v as u64, d as u64) - 0.5))
        .collect();
    let lr = 0.05f32;
    let mut ctr = 0u64;
    for _epoch in 0..30 {
        for walk in &walks {
            for i in 0..walk.len() {
                for off in 1..=WINDOW {
                    if i + off >= walk.len() {
                        break;
                    }
                    let (a, b) = (walk[i] as usize, walk[i + off] as usize);
                    sgd_pair(&mut emb, a, b, 1.0, lr);
                    // One negative sample per positive.
                    ctr += 1;
                    let neg = rng::rand_range(5, ctr, 0, n as u32) as usize;
                    sgd_pair(&mut emb, a, neg, 0.0, lr);
                }
            }
        }
    }

    // Evaluate: are intra-community similarities higher than inter?
    let (mut intra, mut inter) = (0.0f64, 0.0f64);
    let (mut n_intra, mut n_inter) = (0u32, 0u32);
    for a in 0..n {
        for b in (a + 1)..n {
            let s = dot(&emb[a], &emb[b]) as f64;
            if (a < 20) == (b < 20) {
                intra += s;
                n_intra += 1;
            } else {
                inter += s;
                n_inter += 1;
            }
        }
    }
    let intra = intra / n_intra as f64;
    let inter = inter / n_inter as f64;
    println!("mean intra-community similarity: {intra:.3}");
    println!("mean inter-community similarity: {inter:.3}");
    assert!(
        intra > inter,
        "embeddings should separate the two communities"
    );
    println!("communities separated in embedding space ✓");
}

fn dot(a: &[f32; DIM], b: &[f32; DIM]) -> f32 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// One positive/negative skip-gram SGD update on a vertex pair.
// The loop below indexes two rows of `emb` at once; indexed form is clearer
// than a split_at_mut dance.
#[allow(clippy::needless_range_loop)]
fn sgd_pair(emb: &mut [[f32; DIM]], a: usize, b: usize, label: f32, lr: f32) {
    if a == b {
        return;
    }
    let score = dot(&emb[a], &emb[b]);
    let pred = 1.0 / (1.0 + (-score).exp());
    let g = (pred - label) * lr;
    for d in 0..DIM {
        let (ea, eb) = (emb[a][d], emb[b][d]);
        emb[a][d] -= g * eb;
        emb[b][d] -= g * ea;
    }
}
