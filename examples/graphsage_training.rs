//! End-to-end GraphSAGE-style training with NextDoor as the sampler — the
//! integration the paper's Table 5 measures. Each epoch samples 2-hop
//! neighbourhoods transit-parallel on the simulated GPU, then trains the
//! mean-aggregation model; the epoch breakdown shows where time goes.
//!
//! ```sh
//! cargo run --release --example graphsage_training
//! ```

use nextdoor::apps::KHop;
use nextdoor::baselines::cpu_samplers::khop_sampler;
use nextdoor::core::run_nextdoor;
use nextdoor::gnn::{GraphSageModel, Trainer};
use nextdoor::gpu::{Gpu, GpuSpec};
use nextdoor::graph::{Dataset, VertexId};

fn main() {
    let graph = Dataset::Ppi.generate(0.05, 1);
    println!(
        "training on {} vertices / {} edges",
        graph.num_vertices(),
        graph.num_edges()
    );
    let train_vertices: Vec<VertexId> = (0..1024.min(graph.num_vertices() as u32)).collect();

    // Epochs with the reference CPU sampler (the paper's baseline setup).
    let model = GraphSageModel::new(32, 64, 8, 5);
    let mut trainer = Trainer::new(model, 64, 0.2);
    let mut cpu_sampler = |batch: &[VertexId]| {
        let r = khop_sampler(&graph, batch, &[25, 10], 7, 4);
        (r.samples, r.wall_ms)
    };
    let cpu_epoch = trainer.run_epoch(&train_vertices, &mut cpu_sampler);
    println!(
        "CPU-sampled epoch: {:.2} ms total, {:.0}% sampling, loss {:.3}",
        cpu_epoch.total_ms(),
        100.0 * cpu_epoch.sampling_fraction(),
        cpu_epoch.mean_loss
    );

    // Epochs with NextDoor on the simulated GPU.
    let model = GraphSageModel::new(32, 64, 8, 5);
    let mut trainer = Trainer::new(model, 64, 0.2);
    let app = KHop::graphsage();
    let mut nd_sampler = |batch: &[VertexId]| {
        let init: Vec<Vec<VertexId>> = batch.iter().map(|&v| vec![v]).collect();
        let mut gpu = Gpu::new(GpuSpec::v100());
        let res = run_nextdoor(&mut gpu, &graph, &app, &init, 7).expect("valid inputs");
        (res.store.final_samples(), res.stats.total_ms)
    };
    let mut last = None;
    for epoch in 0..5 {
        let b = trainer.run_epoch(&train_vertices, &mut nd_sampler);
        println!(
            "NextDoor epoch {epoch}: {:.2} ms total, {:.0}% sampling, loss {:.3}",
            b.total_ms(),
            100.0 * b.sampling_fraction(),
            b.mean_loss
        );
        last = Some(b);
    }
    let nd_epoch = last.expect("ran at least one epoch");
    println!(
        "end-to-end speedup from NextDoor sampling: {:.2}x",
        cpu_epoch.total_ms() / nd_epoch.total_ms()
    );
}
