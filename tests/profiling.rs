//! The profiler's correctness contract, end to end:
//!
//! * **conservation** — the per-kernel/per-transfer records of a run merge
//!   back to exactly the device's global `Counters` (bit-identical f64s:
//!   the profile replays the same additions in the same order);
//! * **determinism** — repeated runs produce bit-identical profiles;
//! * **validation** — every `run_*` entry point rejects ragged initial
//!   samples with a typed error (the step planner derives transits-per-
//!   sample from sample 0 alone, so uniformity must hold at the door);
//! * **fault tolerance** — profiling stays consistent under injected
//!   allocation faults at every allocation index.

use nextdoor::apps::{KHop, Layer};
use nextdoor::core::large_graph::run_nextdoor_out_of_core;
use nextdoor::core::multi_gpu::run_nextdoor_multi_gpu;
use nextdoor::core::{
    initial_samples_random, run_cpu, run_nextdoor, run_sample_parallel, run_vanilla_tp,
    KernelPhase, NextDoorError,
};
use nextdoor::gpu::{FaultPlan, Gpu, GpuSpec};
use nextdoor::graph::Dataset;

fn small_graph() -> nextdoor::graph::Csr {
    Dataset::Ppi.generate(0.02, 5)
}

/// Every engine's profile must account for every counter the device
/// accumulated: merging the recorded events in order reproduces the global
/// `Counters` exactly, with nothing evicted.
#[test]
fn kernel_profiles_conserve_global_counters() {
    let graph = small_graph();
    let init = initial_samples_random(&graph, 64, 1, 3).unwrap();
    type Engine = fn(
        &mut Gpu,
        &nextdoor::graph::Csr,
        &dyn nextdoor::core::SamplingApp,
        &[Vec<u32>],
        u64,
    ) -> Result<nextdoor::core::RunResult, NextDoorError>;
    let engines: [(&str, Engine); 3] = [
        ("nextdoor", run_nextdoor),
        ("sp", run_sample_parallel),
        ("tp", run_vanilla_tp),
    ];
    for (name, engine) in engines {
        let mut gpu = Gpu::new(GpuSpec::small());
        let res = engine(&mut gpu, &graph, &KHop::new(vec![4, 2]), &init, 7).unwrap();
        assert_eq!(
            gpu.profile().total_counters(),
            *gpu.counters(),
            "engine {name}: profile events must merge back to the global counters"
        );
        assert_eq!(gpu.profile().evicted_events(), 0, "engine {name}");
        assert_eq!(res.stats.profile.in_run_evicted, 0, "engine {name}");
        assert!(
            res.stats.profile.total_launches() > 0,
            "engine {name}: the run must have profiled kernels"
        );
    }
}

/// Collective transit sampling takes different kernel paths (combined
/// neighbourhoods, collective next); conservation must hold there too.
#[test]
fn collective_app_profile_conserves_global_counters() {
    let graph = small_graph();
    let init = initial_samples_random(&graph, 32, 1, 9).unwrap();
    let mut gpu = Gpu::new(GpuSpec::small());
    let res = run_nextdoor(&mut gpu, &graph, &Layer::new(8, 16), &init, 11).unwrap();
    assert_eq!(gpu.profile().total_counters(), *gpu.counters());
    assert!(res
        .stats
        .profile
        .kernels
        .iter()
        .any(|k| k.phase == KernelPhase::Collective));
}

/// The out-of-core engine adds per-step partition transfers; they are
/// profiled as transfer events and must conserve as well.
#[test]
fn out_of_core_profile_conserves_global_counters() {
    let graph = small_graph();
    let init = initial_samples_random(&graph, 48, 1, 4).unwrap();
    let mut gpu = Gpu::new(GpuSpec::small());
    let budget = 1 << 16; // far smaller than the graph: forces partitioning
    let (res, _) =
        run_nextdoor_out_of_core(&mut gpu, &graph, &KHop::new(vec![2, 2]), &init, 7, budget)
            .unwrap();
    assert_eq!(gpu.profile().total_counters(), *gpu.counters());
    assert!(
        gpu.profile().transfers().count() > 0,
        "out-of-core runs must profile the partition transfers"
    );
    assert!(res.stats.profile.total_launches() > 0);
}

/// The per-step breakdown partitions the run: summing per-step kernel
/// launches reproduces the whole-run totals, and per-kernel launch counts
/// cover every profiled kernel record.
#[test]
fn per_step_breakdown_partitions_the_run() {
    let graph = small_graph();
    let init = initial_samples_random(&graph, 64, 1, 3).unwrap();
    let mut gpu = Gpu::new(GpuSpec::small());
    let res = run_nextdoor(&mut gpu, &graph, &KHop::new(vec![4, 2]), &init, 7).unwrap();
    let p = &res.stats.profile;
    let per_step: u64 = p
        .steps
        .iter()
        .flat_map(|s| s.kernels.iter().map(|k| k.launches))
        .sum();
    assert_eq!(per_step, p.total_launches());
    assert_eq!(
        p.total_launches(),
        gpu.profile().kernels().count() as u64,
        "every profiled kernel record is attributed"
    );
    assert!(p.phase_ms(KernelPhase::Scheduling) > 0.0);
    assert_eq!(res.stats.steps_run, p.steps.len());
    for k in &p.kernels {
        assert!((0.0..=1.0).contains(&k.avg_occupancy), "{}", k.name);
    }
}

/// Profiles are part of the deterministic contract: the same inputs on a
/// fresh device must produce bit-identical records, summaries and
/// breakdowns.
#[test]
fn profiles_are_bit_identical_across_runs() {
    let graph = small_graph();
    let init = initial_samples_random(&graph, 64, 1, 3).unwrap();
    let mut g1 = Gpu::new(GpuSpec::small());
    let a = run_nextdoor(&mut g1, &graph, &KHop::new(vec![4, 2]), &init, 7).unwrap();
    let mut g2 = Gpu::new(GpuSpec::small());
    let b = run_nextdoor(&mut g2, &graph, &KHop::new(vec![4, 2]), &init, 7).unwrap();
    assert_eq!(g1.profile(), g2.profile());
    assert_eq!(a.stats.profile, b.stats.profile);
    assert_eq!(
        nextdoor::gpu::summarize_kernels(g1.profile()),
        nextdoor::gpu::summarize_kernels(g2.profile())
    );
}

/// Multi-GPU runs expose each device's raw profile for trace export; each
/// participating device must have profiled work.
#[test]
fn multi_gpu_exposes_per_device_profiles() {
    let graph = small_graph();
    let init = initial_samples_random(&graph, 60, 1, 8).unwrap();
    let res = run_nextdoor_multi_gpu(&GpuSpec::small(), 3, &graph, &KHop::new(vec![2]), &init, 5)
        .unwrap();
    assert_eq!(res.device_profiles.len(), 3);
    for (d, p) in res.device_profiles.iter().enumerate() {
        assert!(p.kernels().count() > 0, "device {d} profiled no kernels");
    }
}

/// `plan_step` derives transits-per-sample from sample 0 alone, so ragged
/// initial samples must be rejected with a typed error at *every* entry
/// point — none may reach the planner.
#[test]
fn ragged_init_rejected_at_every_entry_point() {
    let graph = small_graph();
    let ragged: Vec<Vec<u32>> = vec![vec![0], vec![1, 2], vec![3]];
    let app = KHop::new(vec![2]);
    let ragged_err = |res: Result<_, NextDoorError>, entry: &str| {
        assert!(
            matches!(
                res.err(),
                Some(NextDoorError::UnequalInitSizes { sample: 1, .. })
            ),
            "{entry} must reject ragged initial samples"
        );
    };
    ragged_err(
        run_nextdoor(&mut Gpu::new(GpuSpec::small()), &graph, &app, &ragged, 1).map(|_| ()),
        "run_nextdoor",
    );
    ragged_err(
        run_sample_parallel(&mut Gpu::new(GpuSpec::small()), &graph, &app, &ragged, 1).map(|_| ()),
        "run_sample_parallel",
    );
    ragged_err(
        run_vanilla_tp(&mut Gpu::new(GpuSpec::small()), &graph, &app, &ragged, 1).map(|_| ()),
        "run_vanilla_tp",
    );
    ragged_err(run_cpu(&graph, &app, &ragged, 1).map(|_| ()), "run_cpu");
    ragged_err(
        run_nextdoor_out_of_core(
            &mut Gpu::new(GpuSpec::small()),
            &graph,
            &app,
            &ragged,
            1,
            1 << 20,
        )
        .map(|_| ()),
        "run_nextdoor_out_of_core",
    );
    ragged_err(
        run_nextdoor_multi_gpu(&GpuSpec::small(), 2, &graph, &app, &ragged, 1).map(|_| ()),
        "run_nextdoor_multi_gpu",
    );
}

/// Sampling an empty graph is a typed error, not a panic.
#[test]
fn empty_graph_is_a_typed_error() {
    let empty = nextdoor::graph::Csr::empty(0);
    let res = initial_samples_random(&empty, 8, 1, 1);
    assert!(matches!(res, Err(NextDoorError::EmptyGraph)));
}

/// Sweep an injected allocation fault across the first 40 allocation
/// indices: the run must never panic, always produce the fault-free
/// samples (recovery is exact), and keep the profile conservation
/// invariant even across retried steps.
#[test]
fn alloc_fault_sweep_preserves_samples_and_conservation() {
    let graph = small_graph();
    let init = initial_samples_random(&graph, 32, 1, 6).unwrap();
    let app = KHop::new(vec![2, 2]);
    let mut clean_gpu = Gpu::new(GpuSpec::small());
    let clean = run_nextdoor(&mut clean_gpu, &graph, &app, &init, 7).unwrap();
    for idx in 0..40 {
        let mut gpu = Gpu::new(GpuSpec::small());
        gpu.inject_faults(FaultPlan::new().fail_alloc(idx));
        let res = run_nextdoor(&mut gpu, &graph, &app, &init, 7)
            .unwrap_or_else(|e| panic!("alloc fault at index {idx} must be recovered: {e}"));
        assert_eq!(
            clean.store.final_samples(),
            res.store.final_samples(),
            "alloc fault at index {idx} changed the samples"
        );
        assert_eq!(
            gpu.profile().total_counters(),
            *gpu.counters(),
            "alloc fault at index {idx} broke profile conservation"
        );
    }
}

/// The exporters produce valid, kernel-bearing artifacts.
#[test]
fn exporters_write_report_and_trace() {
    let graph = small_graph();
    let init = initial_samples_random(&graph, 32, 1, 3).unwrap();
    let mut gpu = Gpu::new(GpuSpec::small());
    run_nextdoor(&mut gpu, &graph, &KHop::new(vec![2]), &init, 7).unwrap();
    let dir = std::env::temp_dir().join(format!("nextdoor_profile_test_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let report = dir.join("report.json");
    let trace = dir.join("trace.json");
    nextdoor::gpu::write_kernel_report(&report, gpu.spec(), gpu.profile()).unwrap();
    nextdoor::gpu::write_chrome_trace(&trace, gpu.spec(), &[("t", gpu.profile())]).unwrap();
    let report_s = std::fs::read_to_string(&report).unwrap();
    let trace_s = std::fs::read_to_string(&trace).unwrap();
    assert!(report_s.contains("\"kernels\""));
    assert!(report_s.contains("nextdoor_subwarp") || report_s.contains("step_transits"));
    assert!(trace_s.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
    assert!(trace_s.contains("\"ph\":\"X\""));
    std::fs::remove_dir_all(&dir).ok();
}
