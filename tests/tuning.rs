//! Tuning invariants: an autotuned, cached session must be a pure
//! cost-side optimisation. Whatever plan is pinned — sensible or
//! adversarial — and whatever faults the device throws, the samples must
//! stay bit-identical to an untuned session's, because every knob moves
//! only launch geometry, kernel-class thresholds and cache residency,
//! never the counter-keyed RNG draws.

use proptest::prelude::*;

use nextdoor::apps::{DeepWalk, KHop};
use nextdoor::core::session::SamplerSession;
use nextdoor::core::tuning::{CacheConfig, TunerConfig, TuningPlan};
use nextdoor::core::{initial_samples_random, SamplingApp};
use nextdoor::gpu::{FaultPlan, GpuSpec};
use nextdoor::graph::{Csr, GraphBuilder};

/// An arbitrary small graph from an edge list (64 vertices, some possibly
/// isolated — degree-0 transits exercise the cache's promotion filter).
fn arb_graph() -> impl Strategy<Value = Csr> {
    proptest::collection::vec((0u32..64, 0u32..64), 1..256).prop_map(|edges| {
        let mut b = GraphBuilder::new(64).undirected(true);
        for (s, d) in edges {
            b.push_edge(s, d);
        }
        b.build().expect("endpoints in range")
    })
}

/// An arbitrary *valid* tuning plan: every combination `normalized()` can
/// produce, including degenerate 1-thread sub-warps and zero preload.
fn arb_plan() -> impl Strategy<Value = TuningPlan> {
    (
        1usize..=32,
        (0usize..5).prop_map(|i| [32usize, 128, 256, 512, 1024][i]),
        0usize..=1024,
        0usize..=16,
        proptest::bool::ANY,
    )
        .prop_map(|(sub_warp, block_dim, max_block, preload, tight)| {
            TuningPlan {
                sub_warp_threshold: sub_warp,
                max_block_threads: max_block,
                block_dim,
                preload_factor: preload,
                tight_key_range: tight,
            }
            .normalized()
        })
}

/// An arbitrary fault script, as in `tests/properties.rs`.
fn arb_fault_plan() -> impl Strategy<Value = FaultPlan> {
    (
        proptest::option::weighted(0.5, 0u64..5),
        proptest::option::weighted(0.5, 0u64..12),
    )
        .prop_map(|(alloc, transient)| {
            let mut plan = FaultPlan::new();
            if let Some(i) = alloc {
                plan = plan.fail_alloc(i);
            }
            if let Some(i) = transient {
                plan = plan.transient_at_launch(i);
            }
            plan
        })
}

fn app(khop: bool) -> Box<dyn SamplingApp + Send> {
    if khop {
        Box::new(KHop::new(vec![2, 2]))
    } else {
        Box::new(DeepWalk::new(4))
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn arbitrary_plans_keep_samples_bit_identical(
        g in arb_graph(),
        plan in arb_plan(),
        seed in 0u64..1000,
        khop in proptest::bool::ANY,
    ) {
        let init = initial_samples_random(&g, 16, 1, seed ^ 1).unwrap();
        let mut plain = SamplerSession::new(GpuSpec::small(), g.clone(), app(khop)).unwrap();
        let mut tuned = SamplerSession::new(GpuSpec::small(), g.clone(), app(khop)).unwrap();
        tuned.set_tuning_plan(plan);
        tuned.enable_hot_cache(CacheConfig {
            min_hits: 1,
            ..CacheConfig::default()
        });
        for q in 0..3u64 {
            let a = plain.query(&init, seed + q).unwrap();
            let b = tuned.query(&init, seed + q).unwrap();
            prop_assert_eq!(a.store.final_samples(), b.store.final_samples());
        }
    }

    #[test]
    fn faults_under_tuning_never_corrupt_samples(
        g in arb_graph(),
        faults in arb_fault_plan(),
        seed in 0u64..1000,
        khop in proptest::bool::ANY,
    ) {
        // Reference: untuned, unfaulted.
        let init = initial_samples_random(&g, 16, 1, seed ^ 1).unwrap();
        let mut plain = SamplerSession::new(GpuSpec::small(), g.clone(), app(khop)).unwrap();
        let mut tuned = SamplerSession::new(GpuSpec::small(), g.clone(), app(khop)).unwrap();
        tuned.enable_autotune(TunerConfig {
            warmup_queries: 1,
            ..TunerConfig::default()
        });
        tuned.enable_hot_cache(CacheConfig {
            min_hits: 1,
            ..CacheConfig::default()
        });
        tuned.schedule_faults(faults);
        for q in 0..3u64 {
            let want = plain.query(&init, seed + q).unwrap();
            // The tuned session either recovers to identical samples or
            // fails with a typed error — never silently wrong output.
            match tuned.query(&init, seed + q) {
                Ok(got) => {
                    prop_assert_eq!(want.store.final_samples(), got.store.final_samples());
                }
                Err(e) => {
                    let msg = format!("{e}");
                    prop_assert!(!msg.is_empty(), "errors are typed and printable");
                    break;
                }
            }
        }
    }
}

/// The autotuner's replanning is visible, bounded and converges: once the
/// workload is steady, the plan stops moving.
#[test]
fn replanning_settles_on_a_steady_workload() {
    let g = nextdoor::graph::gen::rmat(7, 1200, nextdoor::graph::gen::RmatParams::SKEWED, 9);
    let init = initial_samples_random(&g, 32, 1, 5).unwrap();
    let mut s = SamplerSession::new(GpuSpec::small(), g, app(true)).unwrap();
    s.enable_autotune(TunerConfig {
        warmup_queries: 2,
        ..TunerConfig::default()
    });
    for q in 0..8 {
        s.query(&init, 40 + q).unwrap();
    }
    let settled = s.tuning_plan();
    let updates = s.plan_updates();
    assert!(
        updates <= 2,
        "plan moved {updates} times on a steady workload"
    );
    for q in 8..12 {
        s.query(&init, 40 + q).unwrap();
    }
    assert_eq!(s.tuning_plan(), settled, "plan kept moving after settling");
}
