//! The deterministic chaos harness: a scripted three-replica serving run
//! that kills one replica mid-stream and storms another with transient
//! kernel faults, while requests keep flowing.
//!
//! The contract under test is the serving tier's end-to-end robustness
//! story:
//!
//! * every request the fleet completes carries samples **bit-identical**
//!   to a fault-free run of the same `(init, seed)` — recovery may cost
//!   time, never correctness;
//! * the stormed replica's circuit breaker trips, cools down on the
//!   simulated fleet clock, and **recovers** through a half-open probe;
//! * the killed replica is permanently removed and the fleet degrades
//!   gracefully: batch caps shrink and excess load is shed with a typed
//!   [`ServeError::Overloaded`], never dropped silently;
//! * the whole run — samples, shed set, retry/trip/probe counters, the
//!   `FleetReport` digest down to its simulated-clock timestamps — is
//!   identical at host worker counts {1, 2, 4, 8} and matches a
//!   checked-in golden digest.
//!
//! Regenerate the goldens with `NEXTDOOR_BLESS=1 cargo test --test chaos`
//! after an intentional change to the cost model, engines or recovery
//! policy.

use nextdoor::apps::KHop;
use nextdoor::core::session::{SamplerSession, SessionQuery};
use nextdoor::core::{initial_samples_random, SamplingApp};
use nextdoor::gpu::{FaultPlan, Gpu, GpuSpec};
use nextdoor::graph::{Csr, Dataset, VertexId};
use nextdoor::serve::{
    FleetBatcher, PoolConfig, ReplicaPool, Request, ServeConfig, ServeError, ShardPoolConfig,
    ShardedPool,
};
use std::path::Path;

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn workload() -> (Csr, Vec<Vec<VertexId>>) {
    let graph = Dataset::Ppi.generate(0.02, 5);
    let init = initial_samples_random(&graph, 16, 1, 11).unwrap();
    (graph, init)
}

fn app() -> Box<dyn SamplingApp + Send> {
    Box::new(KHop::new(vec![3, 2]))
}

fn spec_with_threads(threads: usize) -> GpuSpec {
    let mut spec = GpuSpec::small();
    spec.host_threads = threads;
    spec
}

/// Compares `got` against the golden digest at `tests/golden/<name>.txt`,
/// or rewrites it when `NEXTDOOR_BLESS=1`.
fn check_golden(name: &str, got: &str) {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{name}.txt"));
    if std::env::var("NEXTDOOR_BLESS").is_ok_and(|v| v == "1") {
        std::fs::write(&path, got).unwrap();
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); bless with NEXTDOOR_BLESS=1",
            path.display()
        )
    });
    assert_eq!(
        got, want,
        "{name}: output diverged from the golden digest; if the change is \
         intentional, regenerate with NEXTDOOR_BLESS=1"
    );
}

/// The scripted chaos run. Returns `(outcome digest, fleet report digest)`.
///
/// Script: a healthy warm-up wave; then replica 1 is scheduled to drop off
/// the bus at its next launch and replica 2 to enter a transient-fault
/// storm; a full-queue wave rides through the failures (sheds under the
/// degraded capacity); a final wave runs on the recovered-but-degraded
/// fleet.
fn run_chaos(spec: &GpuSpec) -> (String, String) {
    let (graph, init) = workload();
    let gpus = vec![
        Gpu::new(spec.clone()),
        Gpu::new(spec.clone()),
        Gpu::new(spec.clone()),
    ];
    let pool = ReplicaPool::new(
        gpus,
        &graph,
        vec![app(), app(), app()],
        PoolConfig {
            max_retries: 6,
            backoff_base_ms: 0.05,
            hedge_after_ms: None,
            breaker: nextdoor::serve::BreakerConfig {
                trip_after: 2,
                cooldown_ms: 0.5,
            },
        },
    )
    .unwrap();
    let mut fleet = FleetBatcher::new(
        pool,
        ServeConfig {
            max_batch: 4,
            max_queue: 12,
            default_deadline_ms: None,
        },
    )
    .unwrap();

    let mut outcome_digest = String::new();
    let mut next_seed = 1000u64;
    let mut serve_wave = |fleet: &mut FleetBatcher, n: usize, label: &str| {
        for _ in 0..n {
            fleet
                .submit(Request::new(init.clone(), next_seed))
                .expect("waves stay within max_queue");
            next_seed += 1;
        }
        let served = fleet.drain();
        assert_eq!(served.len(), n, "{label}: every request got an outcome");
        for (id, outcome) in served {
            match outcome {
                Ok(resp) => outcome_digest.push_str(&format!(
                    "{label} {id:?} ok samples: {:?}\n",
                    resp.store.final_samples()
                )),
                Err(e) => outcome_digest.push_str(&format!("{label} {id:?} err: {e}\n")),
            }
        }
    };

    // Wave A: the healthy fleet.
    serve_wave(&mut fleet, 6, "warmup");
    assert_eq!(fleet.pool().healthy_count(), 3);

    // Chaos lands mid-stream, scheduled relative to each replica's live
    // launch counter: replica 1 dies outright, replica 2 storms long
    // enough to trip its breaker across several dispatches.
    fleet
        .pool_mut()
        .schedule_faults(1, FaultPlan::new().lose_device_at_launch(0));
    fleet.pool_mut().schedule_faults(
        2,
        FaultPlan {
            transient_launches: (0..110).collect(),
            ..FaultPlan::new()
        },
    );

    // Wave B: a full queue riding through the failures.
    serve_wave(&mut fleet, 12, "storm");

    // Wave C: the fleet has lost one replica for good; the stormed one
    // must have recovered through its breaker by the end of this wave.
    serve_wave(&mut fleet, 8, "recovered");

    let report = fleet.report();
    (outcome_digest, report.digest())
}

#[test]
fn chaos_run_is_thread_count_invariant_and_matches_golden() {
    let (samples, report) = run_chaos(&spec_with_threads(1));
    for t in &THREAD_COUNTS[1..] {
        let (s, r) = run_chaos(&spec_with_threads(*t));
        assert_eq!(
            samples, s,
            "chaos outcomes at {t} worker threads differ from sequential"
        );
        assert_eq!(
            report, r,
            "FleetReport at {t} worker threads differs from sequential"
        );
    }
    check_golden("chaos_outcomes", &samples);
    check_golden("chaos_fleet_report", &report);
}

/// The scripted sharded chaos run: a three-shard pool loses one shard
/// mid-walk while queries keep flowing. Returns
/// `(outcome digest, fleet report digest)`.
fn run_shard_chaos(spec: &GpuSpec) -> (String, String) {
    let (graph, _) = workload();
    let mut pool = ShardedPool::new(
        spec.clone(),
        graph.clone(),
        app(),
        ShardPoolConfig {
            num_shards: 3,
            ..ShardPoolConfig::default()
        },
    )
    .unwrap();

    let mut outcome_digest = String::new();
    let mut next_seed = 500u64;
    let mut wave = |pool: &mut ShardedPool, n: usize, label: &str| {
        // Each query gets its own random frontier, so home shards vary and
        // a dead shard sheds some queries while survivors keep serving.
        let queries: Vec<SessionQuery> = (0..n)
            .map(|_| {
                let init = initial_samples_random(&graph, 8, 1, next_seed).unwrap();
                let q = SessionQuery {
                    init,
                    seed: next_seed,
                };
                next_seed += 1;
                q
            })
            .collect();
        let d = pool.dispatch(&queries).unwrap();
        for (q, r) in queries.iter().zip(&d.results) {
            match r {
                Ok(store) => outcome_digest.push_str(&format!(
                    "{label} seed {} ok samples: {:?}\n",
                    q.seed,
                    store.final_samples()
                )),
                Err(e) => outcome_digest.push_str(&format!("{label} seed {} err: {e}\n", q.seed)),
            }
        }
    };

    // Wave A: the healthy sharded fleet.
    wave(&mut pool, 4, "warmup");
    assert_eq!(pool.healthy_count(), 3);

    // Shard 1 drops off the bus two launches into the next wave —
    // mid-walk, so in-flight walkers die at the shard boundary.
    pool.schedule_faults(1, FaultPlan::new().lose_device_at_launch(2));

    // Wave B rides through the loss; wave C runs on the degraded fleet.
    wave(&mut pool, 6, "storm");
    wave(&mut pool, 4, "degraded");

    (outcome_digest, pool.report().digest())
}

#[test]
fn sharded_chaos_is_thread_count_invariant_and_matches_golden() {
    let (samples, report) = run_shard_chaos(&spec_with_threads(1));
    for t in &THREAD_COUNTS[1..] {
        let (s, r) = run_shard_chaos(&spec_with_threads(*t));
        assert_eq!(
            samples, s,
            "sharded chaos outcomes at {t} worker threads differ from sequential"
        );
        assert_eq!(
            report, r,
            "sharded FleetReport at {t} worker threads differs from sequential"
        );
    }
    check_golden("shard_chaos_outcomes", &samples);
    check_golden("shard_fleet_report", &report);
}

#[test]
fn sharded_chaos_degrades_typed_and_keeps_survivors() {
    let spec = spec_with_threads(1);
    let (graph, _) = workload();
    let mut pool = ShardedPool::new(
        spec,
        graph.clone(),
        app(),
        ShardPoolConfig {
            num_shards: 3,
            ..ShardPoolConfig::default()
        },
    )
    .unwrap();

    let queries_at = |seed0: u64, n: usize| -> Vec<SessionQuery> {
        (0..n as u64)
            .map(|i| SessionQuery {
                init: initial_samples_random(&graph, 8, 1, seed0 + i).unwrap(),
                seed: seed0 + i,
            })
            .collect()
    };

    let warm = pool.dispatch(&queries_at(500, 4)).unwrap();
    assert!(
        warm.results.iter().all(Result::is_ok),
        "healthy fleet serves"
    );
    pool.schedule_faults(1, FaultPlan::new().lose_device_at_launch(2));
    pool.dispatch(&queries_at(600, 6)).unwrap();
    assert!(pool.sampler().shard_lost(1), "the scheduled loss landed");

    let after = pool.dispatch(&queries_at(700, 8)).unwrap();
    let mut served = 0usize;
    let mut shed = 0usize;
    for r in &after.results {
        match r {
            Ok(_) => served += 1,
            Err(ServeError::ShardLost { shard, shards }) => {
                assert_eq!((*shard, *shards), (1, 3));
                shed += 1;
            }
            Err(e) => panic!("unexpected outcome on the degraded fleet: {e}"),
        }
    }
    assert!(served > 0, "survivor shards keep serving");
    assert!(shed > 0, "queries homed on the dead shard are shed typed");

    let report = pool.report();
    assert!(report.replicas[1].lost);
    assert!(
        report.walkers_lost > 0,
        "mid-walk walkers died with the shard"
    );
    assert_eq!(report.shed, shed as u64);
    assert_eq!(
        pool.healthy_count(),
        2,
        "the fleet ends degraded but serving"
    );
    assert!(report.super_steps > 0 && report.handoffs > 0);
}

#[test]
fn chaos_run_recovers_breaker_and_sheds_typed() {
    let (graph, init) = workload();
    let spec = spec_with_threads(1);

    // Re-run the same script but assert on behaviour instead of digests,
    // and check every successful response against the fault-free oracle.
    let gpus = vec![
        Gpu::new(spec.clone()),
        Gpu::new(spec.clone()),
        Gpu::new(spec.clone()),
    ];
    let pool = ReplicaPool::new(
        gpus,
        &graph,
        vec![app(), app(), app()],
        PoolConfig {
            max_retries: 6,
            backoff_base_ms: 0.05,
            hedge_after_ms: None,
            breaker: nextdoor::serve::BreakerConfig {
                trip_after: 2,
                cooldown_ms: 0.5,
            },
        },
    )
    .unwrap();
    let mut fleet = FleetBatcher::new(
        pool,
        ServeConfig {
            max_batch: 4,
            max_queue: 12,
            default_deadline_ms: None,
        },
    )
    .unwrap();
    let mut oracle = SamplerSession::new(spec, graph.clone(), app()).unwrap();

    let mut next_seed = 1000u64;
    let mut shed = 0usize;
    let mut completed = 0usize;
    let mut serve_wave = |fleet: &mut FleetBatcher, n: usize| {
        let mut seed_of = std::collections::HashMap::new();
        for _ in 0..n {
            let id = fleet.submit(Request::new(init.clone(), next_seed)).unwrap();
            seed_of.insert(id, next_seed);
            next_seed += 1;
        }
        for (id, outcome) in fleet.drain() {
            match outcome {
                Ok(resp) => {
                    let clean = oracle.query(&init, seed_of[&id]).unwrap();
                    assert_eq!(
                        resp.store.final_samples(),
                        clean.store.final_samples(),
                        "recovered request must reproduce fault-free samples"
                    );
                    completed += 1;
                }
                Err(ServeError::Overloaded { healthy, replicas }) => {
                    assert!(healthy < replicas, "shed only under degradation");
                    shed += 1;
                }
                Err(e) => panic!("unexpected outcome in the chaos script: {e}"),
            }
        }
    };

    serve_wave(&mut fleet, 6);
    fleet
        .pool_mut()
        .schedule_faults(1, FaultPlan::new().lose_device_at_launch(0));
    fleet.pool_mut().schedule_faults(
        2,
        FaultPlan {
            transient_launches: (0..110).collect(),
            ..FaultPlan::new()
        },
    );
    serve_wave(&mut fleet, 12);
    serve_wave(&mut fleet, 8);

    let report = fleet.report();
    assert!(report.replicas[1].lost, "replica 1 died for good");
    assert!(
        !report.replicas[0].lost && !report.replicas[2].lost,
        "the other replicas survive"
    );
    assert!(
        report.replicas[2].trips >= 1,
        "the storm tripped replica 2's breaker: {report:?}"
    );
    assert!(
        report.replicas[2].recoveries >= 1,
        "replica 2's breaker recovered through a half-open probe: {report:?}"
    );
    assert!(report.retries >= 1, "serving-level retries happened");
    assert!(shed > 0, "degraded capacity shed some of the full queue");
    assert_eq!(report.shed as usize, shed);
    assert_eq!(completed + shed, 26, "no request vanished");
    assert!(
        !report.degraded_intervals.is_empty(),
        "the degraded-mode window is on the record"
    );
    assert_eq!(
        fleet.pool().healthy_count(),
        2,
        "the fleet ends degraded but serving"
    );
}
