//! Thread-count determinism: the simulator's host worker pool must be
//! invisible in every observable output. Each engine is run at worker
//! counts {1, 2, 4, 8}; the samples, the nvprof-style counters, the merged
//! profile ring and the fault report must be bit-identical across all of
//! them *and* identical to a checked-in golden digest, so a regression in
//! the canonical-order reduction cannot hide behind "it's still internally
//! consistent".
//!
//! Regenerate the golden files with `NEXTDOOR_BLESS=1 cargo test --test
//! determinism` after an intentional change to the cost model or engines.

use nextdoor::apps::KHop;
use nextdoor::core::multi_gpu::run_nextdoor_multi_gpu_with_faults;
use nextdoor::core::{
    initial_samples_random, run_cpu, run_nextdoor, run_sample_parallel, run_vanilla_tp, RunResult,
};
use nextdoor::gpu::{FaultPlan, Gpu, GpuSpec};
use nextdoor::graph::{Csr, Dataset, VertexId};
use std::path::Path;

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn workload() -> (Csr, Vec<Vec<VertexId>>, KHop) {
    let graph = Dataset::Ppi.generate(0.02, 5);
    let init = initial_samples_random(&graph, 48, 1, 11).unwrap();
    (graph, init, KHop::new(vec![3, 2]))
}

fn spec_with_threads(threads: usize) -> GpuSpec {
    let mut spec = GpuSpec::small();
    spec.host_threads = threads;
    spec
}

/// Everything observable from a single-device run, in Rust's `{:?}` format
/// (round-trip-exact for `f64`, so simulated cycle counts are compared
/// bit-for-bit).
fn digest(res: &RunResult, gpu: &Gpu) -> String {
    format!(
        "samples: {:?}\nedges: {:?}\ncounters: {:?}\nreport: {:?}\nsim_ms: {:?}\nprofile: {:?}\n",
        res.store.final_samples(),
        (0..res.store.num_samples())
            .map(|s| res.store.edges_of(s).to_vec())
            .collect::<Vec<_>>(),
        res.stats.counters,
        res.report,
        res.stats.total_ms,
        gpu.profile(),
    )
}

/// Compares `got` against the golden digest at `tests/golden/<name>.txt`,
/// or rewrites it when `NEXTDOOR_BLESS=1`.
fn check_golden(name: &str, got: &str) {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{name}.txt"));
    if std::env::var("NEXTDOOR_BLESS").is_ok_and(|v| v == "1") {
        std::fs::write(&path, got).unwrap();
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); bless with NEXTDOOR_BLESS=1",
            path.display()
        )
    });
    assert_eq!(
        got, want,
        "{name}: output diverged from the golden digest; if the change is \
         intentional, regenerate with NEXTDOOR_BLESS=1"
    );
}

/// Runs `f` once per worker count, asserts all digests are bit-identical,
/// and checks the shared digest against the golden file.
fn assert_thread_invariant(name: &str, f: impl Fn(GpuSpec) -> String) {
    let baseline = f(spec_with_threads(1));
    for t in &THREAD_COUNTS[1..] {
        let d = f(spec_with_threads(*t));
        assert_eq!(
            baseline, d,
            "{name}: output at {t} worker threads differs from sequential"
        );
    }
    check_golden(name, &baseline);
}

#[test]
fn nextdoor_engine_is_thread_count_invariant() {
    let (graph, init, app) = workload();
    assert_thread_invariant("nextdoor", |spec| {
        let mut gpu = Gpu::new(spec);
        let res = run_nextdoor(&mut gpu, &graph, &app, &init, 7).unwrap();
        digest(&res, &gpu)
    });
}

#[test]
fn sample_parallel_engine_is_thread_count_invariant() {
    let (graph, init, app) = workload();
    assert_thread_invariant("sample_parallel", |spec| {
        let mut gpu = Gpu::new(spec);
        let res = run_sample_parallel(&mut gpu, &graph, &app, &init, 7).unwrap();
        digest(&res, &gpu)
    });
}

#[test]
fn vanilla_tp_engine_is_thread_count_invariant() {
    let (graph, init, app) = workload();
    assert_thread_invariant("vanilla_tp", |spec| {
        let mut gpu = Gpu::new(spec);
        let res = run_vanilla_tp(&mut gpu, &graph, &app, &init, 7).unwrap();
        digest(&res, &gpu)
    });
}

#[test]
fn fault_retry_run_is_thread_count_invariant() {
    // A transient kernel fault forces a step retry; the retry bookkeeping
    // and the re-executed launches must reduce identically at any worker
    // count.
    let (graph, init, app) = workload();
    assert_thread_invariant("nextdoor_fault_retry", |spec| {
        let mut gpu = Gpu::new(spec);
        gpu.inject_faults(FaultPlan::new().transient_at_launch(3));
        let res = run_nextdoor(&mut gpu, &graph, &app, &init, 7).unwrap();
        assert!(res.report.step_retries >= 1, "fault plan did not fire");
        digest(&res, &gpu)
    });
}

#[test]
fn multi_gpu_failover_is_thread_count_invariant() {
    // Three devices, one of which drops off the bus mid-shard: the
    // device-concurrent first wave plus the in-order failover must match
    // the fully sequential host loop bit-for-bit.
    let (graph, init, app) = workload();
    let plans = vec![
        FaultPlan::default(),
        FaultPlan::new().lose_device_at_launch(2),
        FaultPlan::default(),
    ];
    assert_thread_invariant("multi_gpu_failover", |spec| {
        let res =
            run_nextdoor_multi_gpu_with_faults(&spec, 3, &graph, &app, &init, 7, &plans).unwrap();
        assert_eq!(res.report.devices_lost, 1);
        assert_eq!(res.report.failovers, 1);
        let samples: Vec<_> = res
            .per_gpu
            .iter()
            .map(|r| r.store.final_samples())
            .collect();
        format!(
            "samples: {samples:?}\nreport: {:?}\nmakespan_ms: {:?}\nprofiles: {:?}\n",
            res.report, res.makespan_ms, res.device_profiles,
        )
    });
}

#[test]
fn fused_session_serving_is_thread_count_invariant() {
    // The serving path — a warm session answering a fused micro-batch —
    // layers new machinery (fused RNG keying, store slicing, simulated-
    // clock latency accounting) over the engines; all of it must reduce
    // identically at any worker count, down to the latency split.
    let (graph, init, _) = workload();
    assert_thread_invariant("serve_fused", |spec| {
        let session = nextdoor::core::SamplerSession::new(
            spec,
            graph.clone(),
            Box::new(KHop::new(vec![3, 2])),
        )
        .unwrap();
        let mut batcher =
            nextdoor::serve::MicroBatcher::new(session, nextdoor::serve::ServeConfig::default())
                .unwrap();
        for (r, chunk) in init.chunks(16).enumerate() {
            batcher
                .submit(nextdoor::serve::Request::new(chunk.to_vec(), 7 + r as u64))
                .unwrap();
        }
        let served = batcher.drain();
        let mut out = String::new();
        for (id, outcome) in &served {
            let resp = outcome.as_ref().unwrap();
            out.push_str(&format!(
                "{id:?} samples: {:?}\nlatency: {:?}\n",
                resp.store.final_samples(),
                resp.latency,
            ));
        }
        out.push_str(&format!(
            "counters: {:?}\n",
            batcher.session().gpu().counters()
        ));
        out
    });
}

#[test]
fn mixed_width_fused_serving_is_thread_count_invariant() {
    // The width-class scheduler splits a heterogeneous drain into one
    // fused launch sequence per root-set width. The grouping, the
    // per-class RNG keying and the cross-class latency accounting must
    // all reduce identically at any worker count.
    let (graph, init, _) = workload();
    assert_thread_invariant("serve_mixed_width", |spec| {
        let session = nextdoor::core::SamplerSession::new(
            spec,
            graph.clone(),
            Box::new(KHop::new(vec![3, 2])),
        )
        .unwrap();
        let mut batcher =
            nextdoor::serve::MicroBatcher::new(session, nextdoor::serve::ServeConfig::default())
                .unwrap();
        // Widths alternate 1, 2, 1, 3 across requests built from the same
        // root pool, so a single drain mixes three width classes.
        let widths = [1usize, 2, 1, 3];
        for (r, &w) in widths.iter().enumerate() {
            let roots: Vec<Vec<VertexId>> = init[r * 8..(r + 1) * 8]
                .iter()
                .map(|s| vec![s[0]; w])
                .collect();
            batcher
                .submit(nextdoor::serve::Request::new(roots, 70 + r as u64))
                .unwrap();
        }
        let served = batcher.drain();
        let mut out = String::new();
        for (id, outcome) in &served {
            let resp = outcome.as_ref().unwrap();
            out.push_str(&format!(
                "{id:?} samples: {:?}\nlatency: {:?}\n",
                resp.store.final_samples(),
                resp.latency,
            ));
        }
        out.push_str(&format!(
            "launches: {} counters: {:?}\n",
            batcher.launches(),
            batcher.session().gpu().counters()
        ));
        out
    });
}

#[test]
fn tuned_session_is_thread_count_invariant() {
    // The autotuner derives its plan from completed profiles at query
    // boundaries and the hot-transit cache promotes from deterministic
    // frequency counts, so a tuned session's whole observable surface —
    // samples, the derived plan, replan count and cache counters — must be
    // bit-identical at any worker count. Samples are additionally checked
    // against an untuned session inline (they share a golden invariant,
    // not a golden file: tuning may only move cost-side observables).
    let (graph, init, _) = workload();
    assert_thread_invariant("tuned_session", |spec| {
        let mk = || {
            nextdoor::core::SamplerSession::new(
                spec.clone(),
                graph.clone(),
                Box::new(KHop::new(vec![3, 2])),
            )
            .unwrap()
        };
        let mut tuned = mk();
        tuned.enable_autotune(nextdoor::core::tuning::TunerConfig {
            warmup_queries: 1,
            ..Default::default()
        });
        tuned.enable_hot_cache(nextdoor::core::tuning::CacheConfig {
            min_hits: 1,
            ..Default::default()
        });
        let mut plain = mk();
        let mut out = String::new();
        for q in 0..4u64 {
            let res = tuned.query(&init, 7 + q).unwrap();
            let want = plain.query(&init, 7 + q).unwrap();
            assert_eq!(
                res.store.final_samples(),
                want.store.final_samples(),
                "tuning changed samples on query {q}"
            );
            out.push_str(&format!("q{q} samples: {:?}\n", res.store.final_samples()));
        }
        out.push_str(&format!(
            "plan: {:?}\nplan_updates: {}\ncache: {:?}\ncounters: {:?}\n",
            tuned.tuning_plan(),
            tuned.plan_updates(),
            tuned.cache_stats().unwrap(),
            tuned.gpu().counters(),
        ));
        out
    });
}

#[test]
fn serve_observability_is_thread_count_invariant() {
    // The observability layer — lifecycle spans and the metrics registry —
    // is recorded on the scheduler's own thread in simulated-clock order,
    // so its digests must be bit-identical at any worker count, through a
    // fleet run that exercises retries, backoff and breaker cool-downs.
    let (graph, init, _) = workload();
    assert_thread_invariant("serve_observability", |spec| {
        let mk_gpu = |plan: Option<FaultPlan>| {
            let mut gpu = Gpu::new(spec.clone());
            if let Some(p) = plan {
                gpu.inject_faults(p);
            }
            gpu
        };
        let pool = nextdoor::serve::ReplicaPool::new(
            vec![
                mk_gpu(None),
                mk_gpu(Some(FaultPlan {
                    transient_launches: (0..110).collect(),
                    ..FaultPlan::new()
                })),
            ],
            &graph,
            vec![
                Box::new(KHop::new(vec![3, 2])),
                Box::new(KHop::new(vec![3, 2])),
            ],
            nextdoor::serve::PoolConfig {
                max_retries: 6,
                backoff_base_ms: 0.001,
                hedge_after_ms: None,
                breaker: nextdoor::serve::BreakerConfig {
                    trip_after: 2,
                    cooldown_ms: 0.01,
                },
            },
        )
        .unwrap();
        let mut fleet = nextdoor::serve::FleetBatcher::new(
            pool,
            nextdoor::serve::ServeConfig {
                max_batch: 4,
                max_queue: 8,
                default_deadline_ms: None,
            },
        )
        .unwrap();
        for (w, chunk) in init.chunks(8).enumerate() {
            for (i, s) in chunk.iter().enumerate() {
                fleet
                    .submit(nextdoor::serve::Request::new(
                        vec![s.clone()],
                        (w * 8 + i) as u64,
                    ))
                    .unwrap();
            }
            fleet.drain();
        }
        assert!(fleet.report().retries > 0, "the storm must force retries");
        format!(
            "{}---\n{}",
            fleet.metrics().digest(),
            fleet.trace().digest()
        )
    });
}

#[test]
fn cpu_oracle_matches_gpu_samples() {
    // The CPU reference has no simulator state; pin down that its samples
    // (the oracle every engine is compared against) are golden-stable too.
    let (graph, init, app) = workload();
    let res = run_cpu(&graph, &app, &init, 7).unwrap();
    let got = format!("samples: {:?}\n", res.store.final_samples());
    check_golden("cpu", &got);
}
