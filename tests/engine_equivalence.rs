//! Cross-engine equivalence: every engine must produce bit-identical
//! samples for every benchmark application, because all randomness is
//! keyed by logical coordinates rather than execution order. This is the
//! workspace's strongest correctness check — it exercises the full
//! transit-parallel machinery (scheduling index, all three kernel classes,
//! collective neighbourhood building) against the sequential oracle.

use nextdoor::apps;
use nextdoor::core::{run_cpu, run_nextdoor, run_sample_parallel, run_vanilla_tp, SamplingApp};
use nextdoor::gpu::{Gpu, GpuSpec};
use nextdoor::graph::{cluster_vertices, Csr, Dataset, VertexId};

fn graph() -> Csr {
    Dataset::Ppi
        .generate(0.02, 3)
        .with_random_weights(1.0, 5.0, 9)
}

fn check_all_engines(app: &dyn SamplingApp, graph: &Csr, init: &[Vec<VertexId>]) {
    let cpu = run_cpu(graph, app, init, 99).unwrap();
    let mut g1 = Gpu::new(GpuSpec::small());
    let nd = run_nextdoor(&mut g1, graph, app, init, 99).unwrap();
    let mut g2 = Gpu::new(GpuSpec::small());
    let sp = run_sample_parallel(&mut g2, graph, app, init, 99).unwrap();
    let mut g3 = Gpu::new(GpuSpec::small());
    let tp = run_vanilla_tp(&mut g3, graph, app, init, 99).unwrap();
    let oracle = cpu.store.final_samples();
    assert_eq!(
        oracle,
        nd.store.final_samples(),
        "{}: ND != CPU",
        app.name()
    );
    assert_eq!(
        oracle,
        sp.store.final_samples(),
        "{}: SP != CPU",
        app.name()
    );
    assert_eq!(
        oracle,
        tp.store.final_samples(),
        "{}: TP != CPU",
        app.name()
    );
    // Recorded application edges must agree too.
    for s in 0..init.len() {
        assert_eq!(
            cpu.store.edges_of(s),
            nd.store.edges_of(s),
            "{}: sample {s} edges diverged",
            app.name()
        );
    }
}

fn walk_init(graph: &Csr, n: usize) -> Vec<Vec<VertexId>> {
    nextdoor::core::initial_samples_random(graph, n, 1, 5).expect("non-empty graph")
}

#[test]
fn walks_are_engine_independent() {
    let g = graph();
    let init = walk_init(&g, 96);
    check_all_engines(&apps::DeepWalk::new(15), &g, &init);
    check_all_engines(&apps::Ppr::new(0.05), &g, &init);
    check_all_engines(&apps::Node2Vec::new(15, 2.0, 0.5), &g, &init);
}

#[test]
fn multirw_is_engine_independent() {
    let g = graph();
    let init = nextdoor::core::initial_samples_random(&g, 24, 16, 6).unwrap();
    check_all_engines(&apps::MultiRw::new(20), &g, &init);
}

#[test]
fn khop_and_mvs_are_engine_independent() {
    let g = graph();
    check_all_engines(&apps::KHop::new(vec![10, 5]), &g, &walk_init(&g, 64));
    let batches = nextdoor::core::initial_samples_random(&g, 16, 32, 7).unwrap();
    check_all_engines(&apps::Mvs::new(2), &g, &batches);
}

#[test]
fn collective_apps_are_engine_independent() {
    let g = graph();
    check_all_engines(&apps::Layer::new(16, 48), &g, &walk_init(&g, 32));
    let batches = nextdoor::core::initial_samples_random(&g, 12, 16, 8).unwrap();
    check_all_engines(&apps::FastGcn::new(2, 24), &g, &batches);
    check_all_engines(&apps::Ladies::new(2, 24), &g, &batches);
}

#[test]
fn clustergcn_is_engine_independent() {
    let g = graph();
    let clustering = cluster_vertices(&g, 12, 4).unwrap();
    let init = apps::cluster_gcn_samples(&g, &clustering, 2, 8, 3);
    check_all_engines(&apps::ClusterGcn::new(32), &g, &init);
}

#[test]
fn different_seeds_give_different_samples() {
    let g = graph();
    let init = walk_init(&g, 32);
    let app = apps::DeepWalk::new(10);
    let a = run_cpu(&g, &app, &init, 1).unwrap();
    let b = run_cpu(&g, &app, &init, 2).unwrap();
    assert_ne!(a.store.final_samples(), b.store.final_samples());
}
