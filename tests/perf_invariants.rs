//! Cross-engine *performance-counter* invariants: beyond producing the
//! same samples, the engines must relate to each other the way the paper's
//! measurements say they do. These are the repository's executable versions
//! of the evaluation's qualitative claims.

use nextdoor::apps::{DeepWalk, KHop, Layer};
use nextdoor::core::{run_nextdoor, run_sample_parallel, run_vanilla_tp};
use nextdoor::gpu::{Gpu, GpuSpec};
use nextdoor::graph::{Csr, Dataset, VertexId};

fn graph() -> Csr {
    Dataset::Orkut
        .generate(0.002, 11)
        .with_random_weights(1.0, 5.0, 3)
}

/// One walker per vertex, the density the paper's workloads run at (and
/// what gives transit-parallelism its hub sharing).
fn dense_roots(g: &Csr) -> Vec<Vec<VertexId>> {
    roots(g, g.num_vertices())
}

fn roots(g: &Csr, n: usize) -> Vec<Vec<VertexId>> {
    nextdoor::core::initial_samples_random(g, n, 1, 17).expect("non-empty graph")
}

#[test]
fn khop_sampling_counter_ordering() {
    let g = graph();
    let init = dense_roots(&g);
    let app = KHop::new(vec![25, 10]);
    let mut g1 = Gpu::new(GpuSpec::small());
    let nd = run_nextdoor(&mut g1, &g, &app, &init, 5).unwrap();
    let mut g2 = Gpu::new(GpuSpec::small());
    let sp = run_sample_parallel(&mut g2, &g, &app, &init, 5).unwrap();
    // §8.2.1: NextDoor performs fewer L2 read transactions than SP.
    assert!(
        nd.stats.counters.l2_read_transactions() < sp.stats.counters.l2_read_transactions(),
        "ND reads {} !< SP reads {}",
        nd.stats.counters.l2_read_transactions(),
        sp.stats.counters.l2_read_transactions()
    );
    // §6.1: transit grouping eliminates warp divergence in the core
    // algorithm; SP's mixed-transit warps diverge more per next() call.
    let nd_div =
        nd.stats.counters.divergent_branches as f64 / nd.stats.counters.rand_draws.max(1) as f64;
    let sp_div =
        sp.stats.counters.divergent_branches as f64 / sp.stats.counters.rand_draws.max(1) as f64;
    assert!(
        nd_div <= sp_div * 1.05,
        "per-draw divergence: ND {nd_div:.3} vs SP {sp_div:.3}"
    );
    // NextDoor uses shared memory; SP cannot.
    assert!(nd.stats.counters.shared_loads > 0);
    assert_eq!(sp.stats.counters.shared_loads, 0);
}

#[test]
fn tp_has_worse_load_balance_than_nextdoor() {
    let g = graph();
    // Dense walkers on a skewed graph: step transits concentrate on hubs
    // proportionally to degree, so per-transit sample counts vary wildly —
    // the case the three kernel classes exist for. (A *uniformly*
    // concentrated batch would be balanced even one-block-per-transit.)
    let init = dense_roots(&g);
    let app = DeepWalk::new(30);
    let mut g1 = Gpu::new(GpuSpec::small());
    let nd = run_nextdoor(&mut g1, &g, &app, &init, 9).unwrap();
    let mut g2 = Gpu::new(GpuSpec::small());
    let tp = run_vanilla_tp(&mut g2, &g, &app, &init, 9).unwrap();
    assert!(
        nd.stats.sampling_ms < tp.stats.sampling_ms,
        "3-class kernels {} ms !< one-block-per-transit {} ms",
        nd.stats.sampling_ms,
        tp.stats.sampling_ms
    );
    // TP still pays the map inversion, so its scheduling time matches.
    assert!(tp.stats.scheduling_ms > 0.0);
}

#[test]
fn collective_build_is_cheaper_transit_parallel() {
    // §6.2: NextDoor builds combined neighbourhoods transit-parallel with
    // shared staging; SP re-reads each transit's adjacency per sample.
    let g = graph();
    let init: Vec<Vec<VertexId>> = (0..512).map(|i| vec![(i % 32) as u32]).collect();
    let app = Layer::new(32, 96);
    let mut g1 = Gpu::new(GpuSpec::small());
    let nd = run_nextdoor(&mut g1, &g, &app, &init, 13).unwrap();
    let mut g2 = Gpu::new(GpuSpec::small());
    let sp = run_sample_parallel(&mut g2, &g, &app, &init, 13).unwrap();
    assert_eq!(nd.store.final_samples(), sp.store.final_samples());
    assert!(
        nd.stats.counters.gld_transactions < sp.stats.counters.gld_transactions,
        "ND loads {} !< SP loads {}",
        nd.stats.counters.gld_transactions,
        sp.stats.counters.gld_transactions
    );
}

#[test]
fn walk_sampling_phase_beats_sp_even_when_totals_do_not() {
    // The EXPERIMENTS.md walk-row caveat, as an executable statement:
    // transit-parallel *sampling* wins; the scheduling index is the cost.
    let g = graph();
    let init = dense_roots(&g);
    let app = DeepWalk::new(30);
    let mut g1 = Gpu::new(GpuSpec::small());
    let nd = run_nextdoor(&mut g1, &g, &app, &init, 21).unwrap();
    let mut g2 = Gpu::new(GpuSpec::small());
    let sp = run_sample_parallel(&mut g2, &g, &app, &init, 21).unwrap();
    assert!(
        nd.stats.sampling_ms < sp.stats.sampling_ms,
        "ND sampling {} ms !< SP sampling {} ms",
        nd.stats.sampling_ms,
        sp.stats.sampling_ms
    );
    assert!(nd.stats.scheduling_ms > 0.0);
}

#[test]
fn scheduler_invariants_hold_for_every_kernel_of_every_engine() {
    // List scheduling cannot beat the work bound or the critical path, and
    // achieved occupancy is a fraction: for every kernel record of a smoke
    // run of each engine,
    //   makespan >= total busy cycles / num_sms,
    //   makespan >= the busiest single SM,
    //   occupancy in (0, 1].
    let g = graph();
    let init = roots(&g, 512);
    let app = KHop::new(vec![8, 4]);
    let num_sms = GpuSpec::small().num_sms as f64;
    type EngineFn = fn(
        &mut Gpu,
        &Csr,
        &dyn nextdoor::core::SamplingApp,
        &[Vec<VertexId>],
        u64,
    ) -> Result<nextdoor::core::RunResult, nextdoor::core::NextDoorError>;
    let engines: [(&str, EngineFn); 3] = [
        ("nextdoor", |gpu, g, a, i, s| run_nextdoor(gpu, g, a, i, s)),
        ("sample_parallel", |gpu, g, a, i, s| {
            run_sample_parallel(gpu, g, a, i, s)
        }),
        ("vanilla_tp", |gpu, g, a, i, s| {
            run_vanilla_tp(gpu, g, a, i, s)
        }),
    ];
    for (name, run) in engines {
        let mut gpu = Gpu::new(GpuSpec::small());
        run(&mut gpu, &g, &app, &init, 31).unwrap();
        let mut checked = 0usize;
        for k in gpu.profile().kernels() {
            let busy: f64 = k.per_sm_busy.iter().sum();
            let peak = k.per_sm_busy.iter().cloned().fold(0.0f64, f64::max);
            assert!(
                k.cycles >= busy / num_sms - 1e-6,
                "{name}/{}: makespan {} below work bound {}",
                k.name,
                k.cycles,
                busy / num_sms
            );
            assert!(
                k.cycles >= peak - 1e-6,
                "{name}/{}: makespan {} below busiest SM {peak}",
                k.name,
                k.cycles
            );
            assert!(
                k.occupancy > 0.0 && k.occupancy <= 1.0,
                "{name}/{}: occupancy {} outside (0, 1]",
                k.name,
                k.occupancy
            );
            checked += 1;
        }
        assert!(checked > 0, "{name}: smoke run recorded no kernels");
    }
}

#[test]
fn store_efficiency_is_high_for_fanout_apps() {
    let g = graph();
    let init = roots(&g, 2048);
    let mut gpu = Gpu::new(GpuSpec::small());
    let nd = run_nextdoor(&mut gpu, &g, &KHop::new(vec![16, 8]), &init, 3).unwrap();
    let eff = nd.stats.counters.gst_efficiency();
    assert!(eff > 70.0, "k-hop store efficiency {eff:.1}% too low");
    assert!(eff <= 100.0 + 1e-9);
}
