//! End-to-end pipeline tests spanning crates: GNN training driven by the
//! sampling engines, multi-GPU sampling, and out-of-core sampling.

use nextdoor::apps::{DeepWalk, KHop};
use nextdoor::baselines::cpu_samplers::khop_sampler;
use nextdoor::core::large_graph::run_nextdoor_out_of_core;
use nextdoor::core::multi_gpu::run_nextdoor_multi_gpu;
use nextdoor::core::{initial_samples_random, run_cpu, run_nextdoor};
use nextdoor::gnn::{GraphSageModel, Trainer};
use nextdoor::gpu::{Gpu, GpuSpec};
use nextdoor::graph::{Dataset, VertexId};

#[test]
fn gnn_trains_with_both_samplers_and_learns() {
    let graph = Dataset::Ppi.generate(0.02, 1);
    let verts: Vec<VertexId> = (0..256).collect();

    // CPU-reference-sampled training.
    let model = GraphSageModel::new(16, 32, 4, 5);
    let mut trainer = Trainer::new(model, 64, 0.3);
    let mut cpu_sampler = |batch: &[VertexId]| {
        let r = khop_sampler(&graph, batch, &[10, 5], 7, 2);
        (r.samples, r.wall_ms)
    };
    let first = trainer.run_epoch(&verts, &mut cpu_sampler);
    let mut last = first.clone();
    for _ in 0..10 {
        last = trainer.run_epoch(&verts, &mut cpu_sampler);
    }
    assert!(last.mean_loss < first.mean_loss, "training should converge");
    assert!(first.sampling_ms > 0.0 && first.training_ms > 0.0);

    // NextDoor-sampled training produces the same tensor shapes and learns.
    let model = GraphSageModel::new(16, 32, 4, 5);
    let mut trainer = Trainer::new(model, 64, 0.3);
    let app = KHop::new(vec![10, 5]);
    let mut nd_sampler = |batch: &[VertexId]| {
        let init: Vec<Vec<VertexId>> = batch.iter().map(|&v| vec![v]).collect();
        let mut gpu = Gpu::new(GpuSpec::small());
        let res = run_nextdoor(&mut gpu, &graph, &app, &init, 7).unwrap();
        (res.store.final_samples(), res.stats.total_ms)
    };
    let first = trainer.run_epoch(&verts, &mut nd_sampler);
    let mut last = first.clone();
    for _ in 0..10 {
        last = trainer.run_epoch(&verts, &mut nd_sampler);
    }
    assert!(last.mean_loss < first.mean_loss);
}

#[test]
fn multi_gpu_covers_all_samples_and_validates() {
    let graph = Dataset::Ppi.generate(0.02, 2);
    let init = initial_samples_random(&graph, 200, 1, 3).unwrap();
    let res =
        run_nextdoor_multi_gpu(&GpuSpec::small(), 4, &graph, &DeepWalk::new(8), &init, 9).unwrap();
    assert_eq!(res.total_samples(), 200);
    for per_gpu in &res.per_gpu {
        for s in per_gpu.store.final_samples() {
            for w in s.windows(2) {
                assert!(graph.has_edge(w[0], w[1]));
            }
        }
    }
}

#[test]
fn out_of_core_equals_in_core_samples() {
    let graph = Dataset::Ppi.generate(0.02, 4);
    let init = initial_samples_random(&graph, 128, 1, 7).unwrap();
    let app = KHop::new(vec![6, 3]);
    let mut gpu = Gpu::new(GpuSpec::small());
    let (ooc_res, ooc) =
        run_nextdoor_out_of_core(&mut gpu, &graph, &app, &init, 5, graph.size_bytes() / 3).unwrap();
    let cpu = run_cpu(&graph, &app, &init, 5).unwrap();
    assert_eq!(ooc_res.store.final_samples(), cpu.store.final_samples());
    assert!(ooc.partitions >= 2, "budget should force partitioning");
    assert!(ooc.transfer_ms > 0.0, "transfers must be charged");
    // The in-core engine spends nothing on transfers.
    let mut gpu2 = Gpu::new(GpuSpec::small());
    let in_core = run_nextdoor(&mut gpu2, &graph, &app, &init, 5).unwrap();
    assert!(ooc_res.stats.total_ms > in_core.stats.total_ms);
}

#[test]
fn readme_pipeline_smoke() {
    // The five-line pipeline from the README: dataset -> sampler -> stats.
    let graph = Dataset::Patents.generate(0.005, 1);
    let init = initial_samples_random(&graph, 64, 1, 2).unwrap();
    let mut gpu = Gpu::new(GpuSpec::v100());
    let result = run_nextdoor(&mut gpu, &graph, &DeepWalk::new(10), &init, 3).unwrap();
    assert_eq!(result.store.num_samples(), 64);
    assert!(result.stats.total_ms > 0.0);
    assert!(result.stats.counters.gst_efficiency() > 0.0);
}
