//! Statistical correctness of the samplers: chi-squared goodness-of-fit of
//! per-step transit-neighbour frequencies against the *exact* target
//! distribution of each application, on small fixed graphs where that
//! target can be computed in closed form.
//!
//! Every test runs against both the CPU oracle and the NextDoor engine.
//! Because all randomness is keyed by `(seed, sample, step, slot)`, the
//! empirical counts are a deterministic function of the seed list, so these
//! tests are *not* flaky: the significance threshold (chi-squared critical
//! value at alpha = 0.001) guards against implementation bias, not against
//! re-run noise.

use nextdoor::apps::{DeepWalk, KHop, Ladies, Layer, Node2Vec};
use nextdoor::core::{
    run_cpu, run_nextdoor, SampleStore, SamplingApp, ShardedSampler, NULL_VERTEX,
};
use nextdoor::gpu::{Gpu, GpuSpec};
use nextdoor::graph::{Csr, GraphBuilder, VertexId};
use std::collections::BTreeMap;

/// Chi-squared critical values at alpha = 0.001 for the degrees of freedom
/// used below.
fn chi2_critical(df: usize) -> f64 {
    match df {
        2 => 13.816,
        3 => 16.266,
        4 => 18.467,
        7 => 24.322,
        _ => panic!("no critical value tabulated for df = {df}"),
    }
}

/// Pearson's chi-squared statistic of observed counts against exact
/// per-category probabilities.
fn chi_squared(counts: &[u64], probs: &[f64]) -> f64 {
    assert_eq!(counts.len(), probs.len());
    let n: u64 = counts.iter().sum();
    assert!(n > 0, "no observations");
    counts
        .iter()
        .zip(probs)
        .map(|(&c, &p)| {
            let e = n as f64 * p;
            assert!(e >= 5.0, "expected count {e:.1} too small for chi-squared");
            (c as f64 - e).powi(2) / e
        })
        .sum()
}

/// The exact law of a capped rejection sampler: `probes` rounds draw a
/// candidate position uniformly from `d = accept.len()` and accept position
/// `i` with probability `accept[i]`; if every round rejects, a final
/// unconditional uniform draw is used. Returns the per-position law.
fn rejection_law(accept: &[f64], probes: u32) -> Vec<f64> {
    let d = accept.len() as f64;
    let q: f64 = accept.iter().sum::<f64>() / d;
    let fallthrough = (1.0 - q).powi(probes as i32);
    accept
        .iter()
        .map(|&a| (a / d) * (1.0 - fallthrough) / q + fallthrough / d)
        .collect()
}

type AppFactory = dyn Fn() -> Box<dyn SamplingApp + Send>;
type Runner = dyn Fn(&Csr, &AppFactory, &[Vec<VertexId>], u64) -> SampleStore;

/// Both execution paths under test: the sequential CPU oracle and the full
/// transit-parallel NextDoor engine on the simulated GPU.
fn runners() -> Vec<(&'static str, Box<Runner>)> {
    vec![
        (
            "cpu",
            Box::new(
                |g: &Csr, app: &AppFactory, init: &[Vec<VertexId>], seed: u64| {
                    run_cpu(g, app().as_ref(), init, seed).unwrap().store
                },
            ) as Box<Runner>,
        ),
        (
            "nextdoor",
            Box::new(
                |g: &Csr, app: &AppFactory, init: &[Vec<VertexId>], seed: u64| {
                    let mut gpu = Gpu::new(GpuSpec::small());
                    run_nextdoor(&mut gpu, g, app().as_ref(), init, seed)
                        .unwrap()
                        .store
                },
            ),
        ),
    ]
}

/// The sharded engine at 2 and 3 shards: same draws, routed through
/// partition-aware super-steps with cross-shard hand-off. Only individual
/// transit sampling is shardable, so these runners join the `runners()`
/// list for the k-hop and random-walk laws, not the collective ones.
fn sharded_runners() -> Vec<(&'static str, Box<Runner>)> {
    [("sharded-2", 2usize), ("sharded-3", 3usize)]
        .into_iter()
        .map(|(name, shards)| {
            let runner: Box<Runner> = Box::new(
                move |g: &Csr, app: &AppFactory, init: &[Vec<VertexId>], seed: u64| {
                    let mut s =
                        ShardedSampler::new(GpuSpec::small(), g.clone(), app(), shards, 0x5AD0)
                            .unwrap();
                    s.query(init, seed).unwrap().store
                },
            );
            (name, runner)
        })
        .collect()
}

const SEEDS: [u64; 5] = [11, 23, 47, 101, 9001];

/// Tallies the step-`step` values of every sample into per-vertex counts.
fn count_step_vertices(store: &SampleStore, step: usize) -> BTreeMap<VertexId, u64> {
    let mut counts = BTreeMap::new();
    for &v in &store.step_values(step).values {
        if v != NULL_VERTEX {
            *counts.entry(v).or_insert(0u64) += 1;
        }
    }
    counts
}

#[test]
fn khop_draws_are_uniform_over_neighbours() {
    // Root 0 has out-degree 8; a 1-hop draw must be uniform over 1..=8.
    let mut b = GraphBuilder::new(9);
    for v in 1..=8 {
        b.push_edge(0, v);
    }
    let g = b.build().unwrap();
    let init: Vec<Vec<VertexId>> = (0..2000).map(|_| vec![0]).collect();
    let probs = vec![1.0 / 8.0; 8];
    for (name, run) in runners().into_iter().chain(sharded_runners()) {
        let mut counts = BTreeMap::new();
        for seed in SEEDS {
            let res = run(&g, &|| Box::new(KHop::new(vec![1])), &init, seed);
            for (v, c) in count_step_vertices(&res, 0) {
                *counts.entry(v).or_insert(0u64) += c;
            }
        }
        let obs: Vec<u64> = (1..=8)
            .map(|v| counts.get(&v).copied().unwrap_or(0))
            .collect();
        let chi2 = chi_squared(&obs, &probs);
        assert!(
            chi2 < chi2_critical(7),
            "{name}: k-hop chi2 = {chi2:.2} over critical {} (counts {obs:?})",
            chi2_critical(7)
        );
    }
}

#[test]
fn layer_draws_are_uniform_over_combined_neighbourhood() {
    // Batch {0, 9}: the combined neighbourhood is the concatenation
    // [1, 2, 3] ++ [2, 3, 4, 5], so vertices 2 and 3 carry twice the mass
    // of 1, 4 and 5. Layer sampling draws positions uniformly.
    let g = GraphBuilder::new(10)
        .edge(0, 1)
        .edge(0, 2)
        .edge(0, 3)
        .edge(9, 2)
        .edge(9, 3)
        .edge(9, 4)
        .edge(9, 5)
        .build()
        .unwrap();
    let init: Vec<Vec<VertexId>> = (0..1500).map(|_| vec![0, 9]).collect();
    let probs = [1.0, 2.0, 2.0, 1.0, 1.0].map(|m| m / 7.0);
    for (name, run) in runners() {
        let mut counts = BTreeMap::new();
        for seed in SEEDS {
            // step_size 4, max_size 6: step 0 draws 4 vertices per batch of
            // 2, then the sample is full — only step 0 is analysed.
            let res = run(&g, &|| Box::new(Layer::new(4, 6)), &init, seed);
            for (v, c) in count_step_vertices(&res, 0) {
                *counts.entry(v).or_insert(0u64) += c;
            }
        }
        let obs: Vec<u64> = (1..=5)
            .map(|v| counts.get(&v).copied().unwrap_or(0))
            .collect();
        let chi2 = chi_squared(&obs, &probs);
        assert!(
            chi2 < chi2_critical(4),
            "{name}: layer chi2 = {chi2:.2} over critical {} (counts {obs:?})",
            chi2_critical(4)
        );
    }
}

#[test]
fn ladies_draws_follow_degree_biased_rejection_law() {
    // Root 0's neighbourhood holds candidates of out-degree 2, 8, 24 and 0.
    // LADIES accepts a uniformly drawn candidate `v` with probability
    // max(deg / (deg + 8), 0.05) for up to 8 probes, then falls back to a
    // uniform pick — an exactly computable law.
    let mut b = GraphBuilder::new(30);
    for v in 1..=4 {
        b.push_edge(0, v);
    }
    for t in 0..2 {
        b.push_edge(1, 5 + t);
    }
    for t in 0..8 {
        b.push_edge(2, 5 + t);
    }
    for t in 0..24 {
        b.push_edge(3, 5 + t);
    }
    let g = b.build().unwrap();
    let accept: Vec<f64> = [2.0, 8.0, 24.0, 0.0]
        .iter()
        .map(|&deg: &f64| (deg / (deg + 8.0)).max(0.05))
        .collect();
    let probs = rejection_law(&accept, 8);
    let init: Vec<Vec<VertexId>> = (0..800).map(|_| vec![0]).collect();
    for (name, run) in runners() {
        let mut counts = BTreeMap::new();
        for seed in SEEDS {
            let res = run(&g, &|| Box::new(Ladies::new(1, 8)), &init, seed);
            for (v, c) in count_step_vertices(&res, 0) {
                *counts.entry(v).or_insert(0u64) += c;
            }
        }
        let obs: Vec<u64> = (1..=4)
            .map(|v| counts.get(&v).copied().unwrap_or(0))
            .collect();
        let chi2 = chi_squared(&obs, &probs);
        assert!(
            chi2 < chi2_critical(3),
            "{name}: LADIES chi2 = {chi2:.2} over critical {} (counts {obs:?}, law {probs:?})",
            chi2_critical(3)
        );
    }
}

#[test]
fn deepwalk_draws_follow_weight_biased_rejection_law() {
    // Edge weights 1, 2 and 4 out of root 0: the rejection sampler accepts
    // with probability w / max_w over up to 24 probes.
    let g = GraphBuilder::new(4)
        .weighted_edge(0, 1, 1.0)
        .weighted_edge(0, 2, 2.0)
        .weighted_edge(0, 3, 4.0)
        .build()
        .unwrap();
    let probs = rejection_law(&[0.25, 0.5, 1.0], 24);
    let init: Vec<Vec<VertexId>> = (0..2000).map(|_| vec![0]).collect();
    for (name, run) in runners().into_iter().chain(sharded_runners()) {
        let mut counts = BTreeMap::new();
        for seed in SEEDS {
            let res = run(&g, &|| Box::new(DeepWalk::new(1)), &init, seed);
            for (v, c) in count_step_vertices(&res, 0) {
                *counts.entry(v).or_insert(0u64) += c;
            }
        }
        let obs: Vec<u64> = (1..=3)
            .map(|v| counts.get(&v).copied().unwrap_or(0))
            .collect();
        let chi2 = chi_squared(&obs, &probs);
        assert!(
            chi2 < chi2_critical(2),
            "{name}: DeepWalk chi2 = {chi2:.2} over critical {} (counts {obs:?}, law {probs:?})",
            chi2_critical(2)
        );
    }
}

/// node2vec step-1 law conditioned on the walk being at transit 1 with
/// previous vertex 0: candidate 0 is the return edge (weight `p`), 9 is a
/// common neighbour of 0 (weight `1/q`), 2 is neither (weight 1). The
/// rejection sampler normalises by `max(p, 1, 1/q)`.
fn node2vec_transition_counts(p: f32, q: f32) -> (Vec<f64>, Vec<(String, Vec<u64>)>) {
    let g = GraphBuilder::new(10)
        .edge(0, 1)
        .edge(0, 9)
        .edge(1, 0)
        .edge(1, 2)
        .edge(1, 9)
        .edge(9, 0)
        .build()
        .unwrap();
    let upper = f64::from(p.max(1.0).max(1.0 / q));
    let accept: Vec<f64> = [f64::from(p), 1.0, f64::from(1.0 / q)]
        .iter()
        .map(|w| w / upper)
        .collect();
    let probs = rejection_law(&accept, 24);
    let init: Vec<Vec<VertexId>> = (0..3000).map(|_| vec![0]).collect();
    let mut all = Vec::new();
    for (name, run) in runners() {
        // Counts for transitions 1 -> {0, 2, 9}.
        let mut counts = [0u64; 3];
        for seed in SEEDS {
            let res = run(&g, &move || Box::new(Node2Vec::new(2, p, q)), &init, seed);
            for s in res.final_samples() {
                // Condition on the walk being 0 -> 1 after step 0; the
                // step-1 RNG stream is keyed independently of step 0, so
                // this filter does not bias the transition law.
                if s.len() >= 3 && s[1] == 1 {
                    match s[2] {
                        0 => counts[0] += 1,
                        2 => counts[1] += 1,
                        9 => counts[2] += 1,
                        other => panic!("impossible transition 1 -> {other}"),
                    }
                }
            }
        }
        all.push((name.to_string(), counts.to_vec()));
    }
    (probs, all)
}

#[test]
fn node2vec_transitions_follow_pq_matrix() {
    for (p, q) in [(2.0f32, 0.5f32), (0.5, 4.0)] {
        let (probs, per_runner) = node2vec_transition_counts(p, q);
        for (name, counts) in per_runner {
            let chi2 = chi_squared(&counts, &probs);
            assert!(
                chi2 < chi2_critical(2),
                "{name}: node2vec(p={p}, q={q}) chi2 = {chi2:.2} over critical {} \
                 (counts {counts:?}, law {probs:?})",
                chi2_critical(2)
            );
        }
    }
}
