//! Property-based tests over randomly generated graphs and parameters.

use proptest::prelude::*;

use nextdoor::apps::{DeepWalk, KHop};
use nextdoor::core::engine::unique::dedup_values;
use nextdoor::core::session::SamplerSession;
use nextdoor::core::{run_cpu, run_nextdoor, SamplingApp, NULL_VERTEX};
use nextdoor::gpu::algorithms::{compact, exclusive_scan, histogram, radix_sort_pairs};
use nextdoor::gpu::{FaultPlan, Gpu, GpuSpec};
use nextdoor::graph::gen::{rmat, RmatParams};
use nextdoor::graph::{GraphBuilder, VertexId};
use nextdoor::serve::{FleetBatcher, PoolConfig, ReplicaPool, Request, ServeConfig};

/// An arbitrary fault script: any combination of a failed allocation, a
/// transient kernel fault and a whole-device loss, at arbitrary points.
fn arb_fault_plan() -> impl Strategy<Value = FaultPlan> {
    (
        proptest::option::weighted(0.5, 0u64..5),
        proptest::option::weighted(0.5, 0u64..12),
        proptest::option::weighted(0.3, 0u64..12),
    )
        .prop_map(|(alloc, transient, lose)| {
            let mut plan = FaultPlan::new();
            if let Some(i) = alloc {
                plan = plan.fail_alloc(i);
            }
            if let Some(i) = transient {
                plan = plan.transient_at_launch(i);
            }
            if let Some(i) = lose {
                plan = plan.lose_device_at_launch(i);
            }
            plan
        })
}

/// An arbitrary small graph from an edge list.
fn arb_graph() -> impl Strategy<Value = nextdoor::graph::Csr> {
    (
        2usize..64,
        proptest::collection::vec((0u32..64, 0u32..64), 1..256),
    )
        .prop_map(|(n, edges)| {
            let mut b = GraphBuilder::new(64).undirected(true);
            let _ = n;
            for (s, d) in edges {
                b.push_edge(s, d);
            }
            b.build().expect("endpoints in range")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn gpu_scan_matches_std(data in proptest::collection::vec(0u32..1000, 0..2000)) {
        let mut gpu = Gpu::new(GpuSpec::small());
        let input = gpu.to_device(&data);
        let (out, total) = exclusive_scan(&mut gpu, &input);
        let mut acc = 0u32;
        for (i, &v) in data.iter().enumerate() {
            prop_assert_eq!(out.as_slice()[i], acc);
            acc += v;
        }
        prop_assert_eq!(total, acc);
    }

    #[test]
    fn gpu_sort_matches_std(
        keys in proptest::collection::vec(0u32..100_000, 1..1500)
    ) {
        let vals: Vec<u32> = (0..keys.len() as u32).collect();
        let mut gpu = Gpu::new(GpuSpec::small());
        let kd = gpu.to_device(&keys);
        let vd = gpu.to_device(&vals);
        let (sk, sv) = radix_sort_pairs(&mut gpu, &kd, &vd, 100_000);
        let mut expect: Vec<(u32, u32)> =
            keys.iter().cloned().zip(vals.iter().cloned()).collect();
        expect.sort_by_key(|&(k, v)| (k, v)); // stable == sort by (key, idx)
        let got: Vec<(u32, u32)> = sk
            .as_slice()
            .iter()
            .cloned()
            .zip(sv.as_slice().iter().cloned())
            .collect();
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn gpu_histogram_matches_std(
        keys in proptest::collection::vec(0u32..64, 0..2000)
    ) {
        let mut gpu = Gpu::new(GpuSpec::small());
        let kd = gpu.to_device(&keys);
        let bins = histogram(&mut gpu, &kd, 64);
        let mut expect = vec![0u32; 64];
        for &k in &keys {
            expect[k as usize] += 1;
        }
        prop_assert_eq!(bins.as_slice(), expect.as_slice());
    }

    #[test]
    fn gpu_compact_matches_filter(
        pairs in proptest::collection::vec((0u32..100, proptest::bool::ANY), 0..1500)
    ) {
        let data: Vec<u32> = pairs.iter().map(|p| p.0).collect();
        let flags: Vec<u32> = pairs.iter().map(|p| u32::from(p.1)).collect();
        let mut gpu = Gpu::new(GpuSpec::small());
        let dd = gpu.to_device(&data);
        let fd = gpu.to_device(&flags);
        let (out, count) = compact(&mut gpu, &dd, &fd);
        let expect: Vec<u32> = pairs.iter().filter(|p| p.1).map(|p| p.0).collect();
        prop_assert_eq!(count, expect.len());
        prop_assert_eq!(out.as_slice(), expect.as_slice());
    }

    #[test]
    fn walks_only_traverse_edges(g in arb_graph(), seed in 0u64..1000) {
        let init: Vec<Vec<VertexId>> = (0..8).map(|i| vec![i * 7 % 64]).collect();
        let res = run_cpu(&g, &DeepWalk::new(6), &init, seed).unwrap();
        for s in res.store.final_samples() {
            for w in s.windows(2) {
                prop_assert!(g.has_edge(w[0], w[1]), "non-edge {} -> {}", w[0], w[1]);
            }
        }
    }

    #[test]
    fn khop_children_descend_from_transits(g in arb_graph(), seed in 0u64..1000) {
        let init: Vec<Vec<VertexId>> = (0..6).map(|i| vec![i * 11 % 64]).collect();
        let res = run_cpu(&g, &KHop::new(vec![3, 2]), &init, seed).unwrap();
        if res.store.num_steps() < 2 {
            // Every root was a dead end: nothing to check.
            return Ok(());
        }
        for s in 0..6 {
            let hop1 = &res.store.step_values(0).values[s * 3..(s + 1) * 3];
            let hop2 = &res.store.step_values(1).values[s * 6..(s + 1) * 6];
            for (i, &v) in hop2.iter().enumerate() {
                if v != NULL_VERTEX {
                    let t = hop1[i / 2];
                    prop_assert!(t != NULL_VERTEX);
                    prop_assert!(g.has_edge(t, v));
                }
            }
        }
    }

    #[test]
    fn engines_agree_on_random_graphs(g in arb_graph(), seed in 0u64..1000) {
        let init: Vec<Vec<VertexId>> = (0..12).map(|i| vec![i as u32 * 5 % 64]).collect();
        let app = KHop::new(vec![4, 2]);
        let cpu = run_cpu(&g, &app, &init, seed).unwrap();
        let mut gpu = Gpu::new(GpuSpec::small());
        let nd = run_nextdoor(&mut gpu, &g, &app, &init, seed).unwrap();
        prop_assert_eq!(cpu.store.final_samples(), nd.store.final_samples());
    }

    #[test]
    fn faulty_runs_never_panic_and_ok_runs_match_clean(
        g in arb_graph(),
        seed in 0u64..500,
        plan in arb_fault_plan()
    ) {
        // The robustness contract: under ANY scripted fault plan, a run
        // either recovers completely (samples byte-identical to a
        // fault-free run) or surfaces a typed error — it never panics and
        // never silently returns different samples.
        let init: Vec<Vec<VertexId>> = (0..8).map(|i| vec![i * 9 % 64]).collect();
        let apps: Vec<Box<dyn SamplingApp>> = vec![
            Box::new(DeepWalk::new(5)),
            Box::new(KHop::new(vec![3, 2])),
        ];
        for app in &apps {
            let mut clean_gpu = Gpu::new(GpuSpec::small());
            let clean = run_nextdoor(&mut clean_gpu, &g, app.as_ref(), &init, seed).unwrap();
            let mut gpu = Gpu::new(GpuSpec::small());
            gpu.inject_faults(plan.clone());
            // A typed error is an acceptable outcome; an Ok run must match
            // the fault-free samples exactly.
            if let Ok(res) = run_nextdoor(&mut gpu, &g, app.as_ref(), &init, seed) {
                prop_assert_eq!(res.store.final_samples(), clean.store.final_samples());
            }
        }
    }

    #[test]
    fn served_faulty_fleet_successes_match_fault_free_runs(
        seed in 0u64..500,
        plan in arb_fault_plan()
    ) {
        // The serving-tier robustness contract, end to end: under ANY
        // scripted fault plan on one replica of a two-replica pool, every
        // request the fleet reports as successful carries samples
        // byte-identical to a fault-free run — at any simulator worker
        // count. Failures may only be typed errors, never different
        // samples and never a panic.
        let g = rmat(7, 900, RmatParams::SKEWED, 5);
        let init: Vec<Vec<VertexId>> = (0..6).map(|i| vec![i * 13 % 128]).collect();
        let app = || -> Box<dyn SamplingApp + Send> { Box::new(KHop::new(vec![3, 2])) };
        let mut outcome_digests: Vec<Vec<Option<String>>> = Vec::new();
        for host_threads in [1usize, 4] {
            let mut spec = GpuSpec::small();
            spec.host_threads = host_threads;
            let mut solo = SamplerSession::new(spec.clone(), g.clone(), app()).unwrap();
            let gpus = vec![Gpu::new(spec.clone()), Gpu::new(spec.clone())];
            let pool = ReplicaPool::new(gpus, &g, vec![app(), app()], PoolConfig::default())
                .unwrap();
            let mut fleet = FleetBatcher::new(pool, ServeConfig::default()).unwrap();
            // Scheduled relative to current traffic, after the graph
            // uploads — so every generated plan lands on live serving
            // traffic instead of being swallowed by session setup.
            fleet.pool_mut().schedule_faults(0, plan.clone());
            for r in 0..4u64 {
                fleet.submit(Request::new(init.clone(), seed + r)).unwrap();
            }
            let served = fleet.drain();
            // Every admitted request got an outcome.
            prop_assert_eq!(served.len(), 4);
            let mut digests = Vec::new();
            for (_, outcome) in served.iter() {
                match outcome {
                    Ok(resp) => {
                        let q = seed + digests.len() as u64;
                        let clean = solo.query(&init, q).unwrap();
                        // A successful response must match the
                        // fault-free samples.
                        prop_assert_eq!(
                            resp.store.final_samples(),
                            clean.store.final_samples()
                        );
                        digests.push(Some(format!("{:?}", resp.store.final_samples())));
                    }
                    Err(_) => digests.push(None),
                }
            }
            outcome_digests.push(digests);
        }
        // Fleet outcomes are identical across simulator worker counts.
        prop_assert_eq!(&outcome_digests[0], &outcome_digests[1]);
    }

    #[test]
    fn dedup_is_sorted_unique_nullpadded(
        values in proptest::collection::vec(
            proptest::option::weighted(0.8, 0u32..50), 1..200
        ),
        slots in 1usize..16
    ) {
        let mut vals: Vec<u32> = values
            .iter()
            .map(|o| o.unwrap_or(NULL_VERTEX))
            .collect();
        let ns = vals.len() / slots;
        if ns == 0 {
            return Ok(());
        }
        vals.truncate(ns * slots);
        let original = vals.clone();
        dedup_values(&mut vals, slots, ns);
        for s in 0..ns {
            let chunk = &vals[s * slots..(s + 1) * slots];
            let live: Vec<u32> =
                chunk.iter().cloned().filter(|&v| v != NULL_VERTEX).collect();
            // Sorted and unique.
            prop_assert!(live.windows(2).all(|w| w[0] < w[1]));
            // NULLs only at the tail.
            let first_null = chunk.iter().position(|&v| v == NULL_VERTEX);
            if let Some(p) = first_null {
                prop_assert!(chunk[p..].iter().all(|&v| v == NULL_VERTEX));
            }
            // Same value set as the original chunk.
            let mut expect: Vec<u32> = original[s * slots..(s + 1) * slots]
                .iter()
                .cloned()
                .filter(|&v| v != NULL_VERTEX)
                .collect();
            expect.sort_unstable();
            expect.dedup();
            prop_assert_eq!(live, expect);
        }
    }
}
