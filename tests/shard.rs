//! Shard-equivalence suite: the sharded engine must be a pure
//! re-scheduling of the single-device engine.
//!
//! The contract under test, end to end:
//!
//! * **bit-identity**: for any graph, shard count and individual-transit
//!   app, `ShardedSampler::query` produces a store bit-identical to
//!   `run_nextdoor` of the same `(graph, app, init, seed)` — partitioning
//!   and cross-shard hand-off may change *where* a draw executes, never
//!   its value (property-based, below);
//! * **conservation**: every walker hand-off is visible exactly once in
//!   the super-step marks, the serving-tier `Handoff` spans, the metrics
//!   registry and the `FleetReport` — the four views agree to the walker;
//! * **typed degradation**: queries homed on a lost shard are shed with
//!   `ServeError::ShardLost` while survivors keep serving.

use proptest::prelude::*;

use nextdoor::apps::{DeepWalk, KHop};
use nextdoor::core::session::SessionQuery;
use nextdoor::core::{run_nextdoor, SampleStore, SamplingApp, ShardedSampler};
use nextdoor::gpu::{FaultPlan, Gpu, GpuSpec};
use nextdoor::graph::gen::{rmat, RmatParams};
use nextdoor::graph::{Csr, GraphBuilder, VertexId};
use nextdoor::serve::{ServeError, ShardPoolConfig, ShardedPool, SpanKind};

/// Everything a query observes of its own samples.
fn digest(store: &SampleStore) -> String {
    let edges: Vec<_> = (0..store.num_samples())
        .map(|s| store.edges_of(s).to_vec())
        .collect();
    format!("samples: {:?}\nedges: {edges:?}\n", store.final_samples())
}

/// An arbitrary small undirected graph over 64 vertices.
fn arb_graph() -> impl Strategy<Value = Csr> {
    proptest::collection::vec((0u32..64, 0u32..64), 1..256).prop_map(|edges| {
        let mut b = GraphBuilder::new(64).undirected(true);
        for (s, d) in edges {
            b.push_edge(s, d);
        }
        b.build().expect("endpoints in range")
    })
}

/// The individual-transit apps the sharded engine supports.
fn arb_app() -> impl Strategy<Value = usize> {
    0usize..3
}

fn make_app(idx: usize) -> Box<dyn SamplingApp + Send> {
    match idx {
        0 => Box::new(KHop::new(vec![2, 1])),
        1 => Box::new(KHop::new(vec![3])),
        _ => Box::new(DeepWalk::new(3)),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn sharded_runs_are_bit_identical_to_single_device(
        g in arb_graph(),
        shards in 1usize..=4,
        app_idx in arb_app(),
        seed in 0u64..1000,
        nroots in 1usize..12,
        placement_seed in 0u64..100,
    ) {
        let init: Vec<Vec<VertexId>> =
            (0..nroots).map(|i| vec![(i as u32 * 7 + seed as u32) % 64]).collect();
        let mut sharded = ShardedSampler::new(
            GpuSpec::small(),
            g.clone(),
            make_app(app_idx),
            shards,
            placement_seed,
        )
        .unwrap();
        let out = sharded.query(&init, seed).unwrap();
        let mut gpu = Gpu::new(GpuSpec::small());
        let solo = run_nextdoor(&mut gpu, &g, make_app(app_idx).as_ref(), &init, seed).unwrap();
        prop_assert_eq!(digest(&out.store), digest(&solo.store));
        prop_assert!(out.report.is_clean());
        prop_assert_eq!(out.walkers_lost, 0);
    }

    #[test]
    fn fused_sharded_batches_slice_back_to_standalone_queries(
        g in arb_graph(),
        shards in 2usize..=3,
        seeds in proptest::collection::vec(0u64..500, 2..5),
    ) {
        let queries: Vec<SessionQuery> = seeds
            .iter()
            .enumerate()
            .map(|(i, &seed)| SessionQuery {
                init: (0..4).map(|s| vec![(s * 11 + i as u32) % 64]).collect(),
                seed,
            })
            .collect();
        let mut sharded =
            ShardedSampler::new(GpuSpec::small(), g.clone(), make_app(0), shards, 7).unwrap();
        let fused = sharded.query_fused(&queries).unwrap();
        for (q, got) in queries.iter().zip(&fused.per_query) {
            let mut solo =
                ShardedSampler::new(GpuSpec::small(), g.clone(), make_app(0), shards, 7).unwrap();
            let want = solo.query(&q.init, q.seed).unwrap();
            prop_assert_eq!(digest(got), digest(&want.store));
        }
    }
}

#[test]
fn handoffs_agree_across_marks_spans_metrics_and_report() {
    let graph = rmat(8, 2000, RmatParams::SKEWED, 3);
    let mut pool = ShardedPool::new(
        GpuSpec::small(),
        graph,
        Box::new(KHop::new(vec![3, 2])),
        ShardPoolConfig {
            num_shards: 4,
            ..ShardPoolConfig::default()
        },
    )
    .unwrap();
    let queries: Vec<SessionQuery> = (0..6)
        .map(|i| SessionQuery {
            init: (0..8).map(|s| vec![(s * 29 + i * 3) % 256]).collect(),
            seed: 70 + u64::from(i),
        })
        .collect();
    let d = pool.dispatch(&queries).unwrap();
    assert!(d.handoffs > 0, "4 shards over an R-MAT graph must hand off");

    let span_walkers: u64 = pool
        .trace()
        .spans()
        .iter()
        .filter(|s| s.kind == SpanKind::Handoff)
        .map(|s| s.batch_size.expect("handoff spans carry walker counts") as u64)
        .sum();
    let report = pool.report();
    assert_eq!(span_walkers, d.handoffs, "spans vs dispatch");
    assert_eq!(report.handoffs, d.handoffs, "report vs dispatch");
    assert_eq!(
        pool.metrics().sim.handoffs,
        d.handoffs,
        "metrics vs dispatch"
    );
    assert_eq!(
        report.handoff_bytes,
        d.handoffs * nextdoor::core::sharded::HANDOFF_BYTES_PER_WALKER,
        "every hand-off is charged the same wire cost"
    );
    assert_eq!(
        pool.metrics().sim.super_steps,
        report.super_steps,
        "metrics and report agree on super-steps"
    );
    assert!(
        pool.trace().count(SpanKind::Handoff) + pool.trace().count(SpanKind::SuperStep) > 0,
        "the trace carries super-step and hand-off spans"
    );
}

#[test]
fn lost_shard_sheds_typed_while_survivors_serve() {
    let graph = rmat(8, 2000, RmatParams::SKEWED, 3);
    let mut pool = ShardedPool::new(
        GpuSpec::small(),
        graph.clone(),
        Box::new(KHop::new(vec![3, 2])),
        ShardPoolConfig {
            num_shards: 3,
            ..ShardPoolConfig::default()
        },
    )
    .unwrap();

    // Kill shard 2 partway through a batch that is mid-walk on it.
    pool.schedule_faults(2, FaultPlan::new().lose_device_at_launch(2));
    let warm: Vec<SessionQuery> = (0..3)
        .map(|i| SessionQuery {
            init: (0..8).map(|s| vec![(s * 13 + i) % 256]).collect(),
            seed: 7 + u64::from(i),
        })
        .collect();
    pool.dispatch(&warm).unwrap();
    assert!(pool.sampler().shard_lost(2), "the scheduled loss landed");
    let report = pool.report();
    assert!(report.replicas[2].lost);
    assert!(
        report.walkers_lost > 0,
        "mid-walk walkers died with the shard"
    );

    // A query homed on the dead shard is shed with the typed error; one
    // homed on a survivor still gets bit-identical samples.
    let dead_seed = (0..256u32)
        .find(|&v| pool.sampler().owner_of(v) == 2)
        .expect("shard 2 owns vertices");
    let live_seed = (0..256u32)
        .find(|&v| pool.sampler().owner_of(v) != 2)
        .expect("survivors own vertices");
    let dead_q = SessionQuery {
        init: vec![vec![dead_seed]; 4],
        seed: 1000,
    };
    let live_q = SessionQuery {
        init: vec![vec![live_seed]; 4],
        seed: 1001,
    };
    let d = pool.dispatch(&[dead_q, live_q.clone()]).unwrap();
    assert!(
        matches!(
            d.results[0],
            Err(ServeError::ShardLost {
                shard: 2,
                shards: 3
            })
        ),
        "dead-shard query is typed, got {:?}",
        d.results[0]
    );
    let served = d.results[1].as_ref().expect("survivor query serves");
    assert_eq!(pool.metrics().sim.shard_shed, 1);
    assert_eq!(pool.report().shed, 1);

    // The survivor's samples may still cross into the dead shard and lose
    // walkers there — but they are deterministic: a replayed pool with the
    // same script produces the same store.
    let mut replay = ShardedPool::new(
        GpuSpec::small(),
        graph,
        Box::new(KHop::new(vec![3, 2])),
        ShardPoolConfig {
            num_shards: 3,
            ..ShardPoolConfig::default()
        },
    )
    .unwrap();
    replay.schedule_faults(2, FaultPlan::new().lose_device_at_launch(2));
    replay.dispatch(&warm).unwrap();
    let d2 = replay
        .dispatch(&[
            SessionQuery {
                init: vec![vec![dead_seed]; 4],
                seed: 1000,
            },
            live_q,
        ])
        .unwrap();
    assert_eq!(
        digest(served),
        digest(d2.results[1].as_ref().expect("replay serves too")),
        "degraded results replay bit-identically"
    );
}
