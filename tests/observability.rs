//! The observability layer's conservation contract, extending the
//! profiler's (`tests/profiling.rs`) to the serving tier: spans and
//! metrics are *derived views* of the batcher and fleet state machines,
//! so every number they report must reproduce the primary accounting —
//! per-request latencies, `FleetReport` counters, device launch totals —
//! bit-exactly. Nothing here is allowed to be "close": the recorders
//! replay the same f64 expressions in the same order as the machinery
//! they observe.

use nextdoor::apps::KHop;
use nextdoor::core::{initial_samples_random, SamplerSession};
use nextdoor::gpu::{FaultPlan, Gpu, GpuSpec};
use nextdoor::graph::{Csr, Dataset, VertexId};
use nextdoor::serve::{
    BreakerConfig, FleetBatcher, MicroBatcher, PoolConfig, Priority, ReplicaPool, Request,
    ServeConfig, SpanKind,
};

fn workload() -> (Csr, Vec<Vec<VertexId>>) {
    let graph = Dataset::Ppi.generate(0.02, 5);
    let init = initial_samples_random(&graph, 48, 1, 11).unwrap();
    (graph, init)
}

fn app() -> Box<dyn nextdoor::core::SamplingApp + Send> {
    Box::new(KHop::new(vec![3, 2]))
}

/// Per-request span durations are the request's latency fields, bit-exact,
/// and the micro-batcher's metrics counters and histogram sums reproduce
/// the drain's outcomes and the device's launch total.
#[test]
fn micro_batcher_spans_and_metrics_reproduce_the_drain() {
    let (graph, init) = workload();
    let session = SamplerSession::new(GpuSpec::small(), graph, app()).unwrap();
    let mut b = MicroBatcher::new(session, ServeConfig::default()).unwrap();
    // Mixed widths so the drain produces a multi-class fused dispatch.
    let widths = [1usize, 2, 1, 3];
    for (r, &w) in widths.iter().enumerate() {
        let roots: Vec<Vec<VertexId>> = init[r * 8..(r + 1) * 8]
            .iter()
            .map(|s| vec![s[0]; w])
            .collect();
        b.submit(Request::new(roots, 70 + r as u64)).unwrap();
    }
    let served = b.drain();
    assert!(served.iter().all(|(_, r)| r.is_ok()));

    // Span durations == latency fields, per request, bit-exact.
    let spans = b.trace().spans();
    let mut queued_sum = 0.0f64;
    let mut service_sum = 0.0f64;
    let mut total_sum = 0.0f64;
    for (id, outcome) in &served {
        let resp = outcome.as_ref().unwrap();
        let queued = spans
            .iter()
            .find(|s| s.kind == SpanKind::Queued && s.request == Some(*id))
            .expect("every served request has a Queued span");
        let completion = spans
            .iter()
            .find(|s| s.kind == SpanKind::Completion && s.request == Some(*id))
            .expect("every served request has a Completion span");
        assert_eq!(queued.duration_ms(), resp.latency.queued_ms, "{id:?}");
        assert_eq!(completion.duration_ms(), resp.latency.total_ms, "{id:?}");
        assert_eq!(
            completion.end_ms - queued.end_ms,
            resp.latency.service_ms,
            "{id:?}: dispatch start to completion is the service time"
        );
        queued_sum += resp.latency.queued_ms;
        service_sum += resp.latency.service_ms;
        total_sum += resp.latency.total_ms;
    }

    // Metrics counters mirror the drain and the trace.
    let m = b.metrics();
    assert_eq!(m.sim.admitted, widths.len() as u64);
    assert_eq!(m.sim.completed, served.len() as u64);
    assert_eq!(m.sim.batches, b.trace().count(SpanKind::Dispatch) as u64);
    assert_eq!(
        m.sim.class_launches,
        b.trace().count(SpanKind::ClassLaunch) as u64
    );
    assert_eq!(
        m.sim.class_launches,
        b.launches(),
        "one ClassLaunch span per fused launch sequence"
    );
    // Histogram sums replay the same additions in the same order as the
    // drain's outcome list, so they agree bit-exactly.
    assert_eq!(m.sim.queued_ms.sum(), queued_sum);
    assert_eq!(m.sim.service_ms.sum(), service_sum);
    assert_eq!(m.sim.total_ms.sum(), total_sum);
    assert_eq!(m.sim.total_ms.count(), served.len() as u64);

    // Launch conservation: the Dispatch spans' half-open launch ranges
    // tile the device's launch counter, and each dispatch's ClassLaunch
    // spans tile their dispatch's range.
    let dispatches: Vec<_> = spans
        .iter()
        .filter(|s| s.kind == SpanKind::Dispatch)
        .collect();
    let spanned: u64 = dispatches
        .iter()
        .map(|s| {
            let (l0, l1) = s.launches.unwrap();
            let class_spanned: u64 = spans
                .iter()
                .filter(|c| c.kind == SpanKind::ClassLaunch && c.batch == s.batch)
                .map(|c| {
                    let (c0, c1) = c.launches.unwrap();
                    assert!(l0 <= c0 && c1 <= l1, "class range inside its dispatch");
                    c1 - c0
                })
                .sum();
            assert_eq!(class_spanned, l1 - l0, "classes tile the dispatch");
            l1 - l0
        })
        .sum();
    assert_eq!(
        spanned,
        b.session().gpu().launches_issued(),
        "dispatch spans account for every device launch"
    );
    // Every retained kernel record is linkable: its launch index falls in
    // exactly one dispatch span's range.
    for k in b.session().gpu().profile().kernels() {
        let owners = dispatches
            .iter()
            .filter(|s| {
                let (l0, l1) = s.launches.unwrap();
                l0 <= k.launch_idx && k.launch_idx < l1
            })
            .count();
        assert_eq!(owners, 1, "kernel launch {} has one owner", k.launch_idx);
    }
}

/// The fleet's metrics registry and trace reproduce the `FleetReport`'s
/// recovery counters one-for-one, under a chaos plan that exercises
/// retries, backoff, breaker cool-downs and degradation shedding.
#[test]
fn fleet_metrics_and_trace_reproduce_the_fleet_report() {
    let (graph, init) = workload();
    let mk_gpu = |plan: Option<FaultPlan>| {
        let mut gpu = Gpu::new(GpuSpec::small());
        if let Some(p) = plan {
            gpu.inject_faults(p);
        }
        gpu
    };
    // Replica 1 storms long enough to trip its breaker mid-stream.
    let pool = ReplicaPool::new(
        vec![
            mk_gpu(None),
            mk_gpu(Some(FaultPlan {
                transient_launches: (0..110).collect(),
                ..FaultPlan::new()
            })),
        ],
        &graph,
        vec![app(), app()],
        PoolConfig {
            max_retries: 6,
            backoff_base_ms: 0.001,
            hedge_after_ms: None,
            breaker: BreakerConfig {
                trip_after: 2,
                cooldown_ms: 0.01,
            },
        },
    )
    .unwrap();
    let mut fleet = FleetBatcher::new(
        pool,
        ServeConfig {
            max_batch: 4,
            max_queue: 8,
            default_deadline_ms: None,
        },
    )
    .unwrap();
    let mut served = 0usize;
    for (w, chunk) in init.chunks(8).enumerate() {
        for (i, s) in chunk.iter().enumerate() {
            let roots = vec![s.clone(); 1];
            fleet
                .submit(
                    Request::new(roots, (w * 8 + i) as u64).with_priority(if i % 3 == 0 {
                        Priority::High
                    } else {
                        Priority::Low
                    }),
                )
                .unwrap();
        }
        served += fleet.drain().len();
    }
    assert_eq!(served, init.len().min(48));

    let report = fleet.report();
    let m = fleet.metrics();
    let t = fleet.trace();
    assert!(report.retries > 0, "the storm must force retries");
    // Metrics counters are the report's counters.
    assert_eq!(m.sim.batches, report.batches);
    assert_eq!(m.sim.retries, report.retries);
    assert_eq!(m.sim.hedges, report.hedges);
    assert_eq!(m.sim.hedge_wins, report.hedge_wins);
    assert_eq!(m.sim.cooldown_waits, report.cooldown_waits);
    assert_eq!(m.sim.overload_shed, report.shed);
    assert_eq!(m.sim.admitted, 48);
    // Everything the pool dispatched either completed, missed its
    // deadline after service, or exhausted the retry budget.
    assert_eq!(
        report.requests,
        m.sim.completed + m.sim.deadline_missed + m.sim.failed
    );
    // The trace's span population mirrors the same counters.
    assert_eq!(t.count(SpanKind::Backoff) as u64, report.retries);
    assert_eq!(t.count(SpanKind::Hedge) as u64, report.hedges);
    assert_eq!(
        t.count(SpanKind::CooldownWait) as u64,
        report.cooldown_waits
    );
    assert_eq!(t.count(SpanKind::OverloadShed) as u64, report.shed);
    assert_eq!(
        t.count(SpanKind::Attempt) as u64,
        report.replicas.iter().map(|r| r.dispatches).sum::<u64>(),
        "one Attempt span per replica dispatch"
    );
    // Per-priority metrics partition the global ones.
    let by_priority: u64 = [Priority::Low, Priority::Normal, Priority::High]
        .iter()
        .map(|p| {
            let pm = m.priority(*p);
            pm.completed + pm.deadline_missed + pm.expired_shed + pm.overload_shed
        })
        .sum();
    assert_eq!(
        by_priority,
        m.sim.completed + m.sim.deadline_missed + m.sim.expired_shed + m.sim.overload_shed
    );
}
