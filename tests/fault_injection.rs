//! End-to-end fault-injection scenarios: scripted `FaultPlan`s drive the
//! recovery machinery (degradation to out-of-core, step retry, multi-GPU
//! failover) and every surviving run must produce samples byte-identical
//! to a fault-free run — the counter-based RNG makes re-execution exact.

use nextdoor::apps::KHop;
use nextdoor::core::multi_gpu::{run_nextdoor_multi_gpu, run_nextdoor_multi_gpu_with_faults};
use nextdoor::core::{initial_samples_random, run_nextdoor, NextDoorError};
use nextdoor::gpu::{FaultPlan, Gpu, GpuSpec};
use nextdoor::graph::Dataset;

/// The issue's acceptance scenario: one multi-GPU k-hop run that survives
/// an upload OOM (degrading that shard to out-of-core), a transient kernel
/// fault (retried), and a whole-device loss (failed over) — and still
/// returns exactly the samples of a fault-free run.
#[test]
fn scripted_faults_survive_a_multi_gpu_khop_run() {
    let graph = Dataset::Ppi.generate(0.02, 5);
    let init = initial_samples_random(&graph, 96, 1, 11).unwrap();
    let app = KHop::new(vec![4, 2]);
    let spec = GpuSpec::small();

    let clean = run_nextdoor_multi_gpu(&spec, 3, &graph, &app, &init, 7).unwrap();

    let plans = vec![
        // Device 0: the very first allocation (the graph upload) fails,
        // degrading shard 0 to the out-of-core engine.
        FaultPlan::new().fail_alloc(0),
        // Device 1: a transient memory fault on an early kernel launch,
        // absorbed by the bounded step retry.
        FaultPlan::new().transient_at_launch(3),
        // Device 2: the whole device drops off the bus mid-shard; the
        // shard fails over to a surviving device.
        FaultPlan::new().lose_device_at_launch(2),
    ];
    let faulty =
        run_nextdoor_multi_gpu_with_faults(&spec, 3, &graph, &app, &init, 7, &plans).unwrap();

    assert!(
        faulty.report.degraded_to_out_of_core,
        "shard 0 should have degraded to out-of-core: {}",
        faulty.report
    );
    assert!(
        faulty.report.step_retries >= 1,
        "the transient fault should have forced at least one retry: {}",
        faulty.report
    );
    assert_eq!(faulty.report.devices_lost, 1, "{}", faulty.report);
    assert_eq!(faulty.report.failovers, 1, "{}", faulty.report);

    assert_eq!(clean.per_gpu.len(), faulty.per_gpu.len());
    for (c, f) in clean.per_gpu.iter().zip(&faulty.per_gpu) {
        assert_eq!(
            c.store.final_samples(),
            f.store.final_samples(),
            "faulty run must reproduce the fault-free samples exactly"
        );
    }
}

#[test]
fn upload_oom_degrades_to_out_of_core_with_identical_samples() {
    let graph = Dataset::Ppi.generate(0.02, 3);
    let init = initial_samples_random(&graph, 64, 1, 9).unwrap();
    let app = KHop::new(vec![3, 2]);

    let mut clean_gpu = Gpu::new(GpuSpec::small());
    let clean = run_nextdoor(&mut clean_gpu, &graph, &app, &init, 4).unwrap();
    assert!(clean.report.is_clean());

    let mut gpu = Gpu::new(GpuSpec::small());
    gpu.inject_faults(FaultPlan::new().fail_alloc(0));
    let degraded = run_nextdoor(&mut gpu, &graph, &app, &init, 4).unwrap();
    assert!(degraded.report.degraded_to_out_of_core);
    assert!(degraded.report.alloc_faults >= 1);
    assert_eq!(clean.store.final_samples(), degraded.store.final_samples());
}

#[test]
fn transient_fault_is_retried_transparently() {
    let graph = Dataset::Ppi.generate(0.02, 3);
    let init = initial_samples_random(&graph, 64, 1, 9).unwrap();
    let app = KHop::new(vec![3, 2]);

    let mut clean_gpu = Gpu::new(GpuSpec::small());
    let clean = run_nextdoor(&mut clean_gpu, &graph, &app, &init, 4).unwrap();

    let mut gpu = Gpu::new(GpuSpec::small());
    gpu.inject_faults(FaultPlan::new().transient_at_launch(2));
    let retried = run_nextdoor(&mut gpu, &graph, &app, &init, 4).unwrap();
    assert!(retried.report.transient_faults >= 1);
    assert!(retried.report.step_retries >= 1);
    assert_eq!(clean.store.final_samples(), retried.store.final_samples());
}

#[test]
fn persistent_watchdog_timeouts_exhaust_retries_into_a_typed_error() {
    let graph = Dataset::Ppi.generate(0.02, 3);
    let init = initial_samples_random(&graph, 64, 1, 9).unwrap();

    let mut gpu = Gpu::new(GpuSpec::small());
    // A budget no kernel can meet: every attempt times out, the bounded
    // retry loop gives up with a typed error instead of hanging or
    // panicking.
    gpu.inject_faults(FaultPlan::new().watchdog_cycles(1.0));
    let err = run_nextdoor(&mut gpu, &graph, &KHop::new(vec![3, 2]), &init, 4)
        .err()
        .expect("persistent timeouts must fail the run");
    assert!(
        matches!(err, NextDoorError::KernelFault { .. }),
        "expected KernelFault, got {err:?}"
    );
}

#[test]
fn lost_single_device_is_a_typed_error_not_a_panic() {
    let graph = Dataset::Ppi.generate(0.02, 3);
    let init = initial_samples_random(&graph, 32, 1, 9).unwrap();

    let mut gpu = Gpu::new(GpuSpec::small());
    gpu.inject_faults(FaultPlan::new().lose_device_at_launch(1));
    let err = run_nextdoor(&mut gpu, &graph, &KHop::new(vec![3, 2]), &init, 4)
        .err()
        .expect("a lost device must fail the single-GPU run");
    assert!(
        matches!(err, NextDoorError::DeviceLost { device: 0 }),
        "expected DeviceLost, got {err:?}"
    );
}

#[test]
fn invalid_inputs_are_typed_errors() {
    let graph = Dataset::Ppi.generate(0.02, 3);
    let mut gpu = Gpu::new(GpuSpec::small());
    let app = KHop::new(vec![3, 2]);

    let res = run_nextdoor(&mut gpu, &graph, &app, &[], 1);
    assert!(matches!(res, Err(NextDoorError::EmptyInit)));

    let out_of_range = vec![vec![graph.num_vertices() as u32 + 7]];
    let res = run_nextdoor(&mut gpu, &graph, &app, &out_of_range, 1);
    assert!(matches!(res, Err(NextDoorError::RootOutOfRange { .. })));
}
