//! End-to-end guarantees of the serving layer: micro-batch fusion and
//! session reuse are pure throughput levers — every request's samples must
//! be bit-identical to a standalone run of the same `(init, seed)`, under
//! fault plans and deadline rejections included.

use nextdoor::apps::KHop;
use nextdoor::core::session::{SamplerSession, SessionQuery};
use nextdoor::core::{initial_samples_random, run_nextdoor, NextDoorError, SampleStore};
use nextdoor::gpu::{FaultPlan, Gpu, GpuSpec};
use nextdoor::graph::{Csr, Dataset, VertexId};
use nextdoor::serve::{
    BatchEngine, MicroBatcher, Request, RequestId, RequestOutcome, SampleServer, ServeConfig,
    ServeError,
};

fn workload() -> (Csr, Vec<Vec<Vec<VertexId>>>) {
    let graph = Dataset::Ppi.generate(0.02, 5);
    let inits = (0..4)
        .map(|r| initial_samples_random(&graph, 24, 1, 100 + r).unwrap())
        .collect();
    (graph, inits)
}

fn session(graph: &Csr) -> SamplerSession {
    SamplerSession::new(
        GpuSpec::small(),
        graph.clone(),
        Box::new(KHop::new(vec![3, 2])),
    )
    .unwrap()
}

/// Everything a request observes of its own samples.
fn digest(store: &SampleStore) -> String {
    let edges: Vec<_> = (0..store.num_samples())
        .map(|s| store.edges_of(s).to_vec())
        .collect();
    format!("samples: {:?}\nedges: {edges:?}\n", store.final_samples())
}

#[test]
fn fused_batch_is_bit_identical_to_sequential_requests() {
    let (graph, inits) = workload();

    // Sequential reference: each request served alone, one per fresh device.
    let sequential: Vec<String> = inits
        .iter()
        .enumerate()
        .map(|(r, init)| {
            let mut gpu = Gpu::new(GpuSpec::small());
            let res =
                run_nextdoor(&mut gpu, &graph, &KHop::new(vec![3, 2]), init, r as u64).unwrap();
            digest(&res.store)
        })
        .collect();

    // The same requests fused into one launch by the batcher.
    let mut batcher = MicroBatcher::new(session(&graph), ServeConfig::default()).unwrap();
    for (r, init) in inits.iter().enumerate() {
        batcher
            .submit(Request::new(init.clone(), r as u64))
            .unwrap();
    }
    let served = batcher.drain();
    assert_eq!(served.len(), inits.len());
    for ((_, outcome), want) in served.iter().zip(&sequential) {
        let resp = outcome.as_ref().unwrap();
        assert_eq!(resp.latency.batch_size, inits.len(), "requests did fuse");
        assert_eq!(&digest(&resp.store), want);
    }
}

#[test]
fn mixed_width_fused_batches_are_bit_identical_to_standalone_runs() {
    // Requests with different root-set widths land in one drain. The
    // width-class scheduler fuses each class separately, so nobody is
    // blocked behind a width change — and per-sample RNG keying keeps
    // every request's samples bit-identical to a standalone run of the
    // same `(init, seed)`.
    let graph = Dataset::Ppi.generate(0.02, 5);
    let widths = [1usize, 2, 1, 3, 2, 1];
    let inits: Vec<Vec<Vec<VertexId>>> = widths
        .iter()
        .enumerate()
        .map(|(r, &w)| initial_samples_random(&graph, 16, w, 300 + r as u64).unwrap())
        .collect();

    let standalone: Vec<String> = inits
        .iter()
        .enumerate()
        .map(|(r, init)| {
            let mut gpu = Gpu::new(GpuSpec::small());
            let res =
                run_nextdoor(&mut gpu, &graph, &KHop::new(vec![3, 2]), init, r as u64).unwrap();
            digest(&res.store)
        })
        .collect();

    let mut batcher = MicroBatcher::new(session(&graph), ServeConfig::default()).unwrap();
    for (r, init) in inits.iter().enumerate() {
        batcher
            .submit(Request::new(init.clone(), r as u64))
            .unwrap();
    }
    let served = batcher.drain();
    assert_eq!(served.len(), inits.len());
    assert_eq!(
        batcher.launches(),
        3,
        "three width classes fuse into three launch sequences, not six"
    );
    let mut seen = vec![false; inits.len()];
    for (id, outcome) in &served {
        let r = id.0 as usize;
        seen[r] = true;
        let resp = outcome.as_ref().unwrap();
        assert_eq!(
            &digest(&resp.store),
            &standalone[r],
            "request {r} (width {}) diverged from its standalone run",
            widths[r]
        );
    }
    assert!(seen.iter().all(|&s| s), "every request got an outcome");
}

#[test]
fn warm_session_reuse_is_identical_to_cold_one_shot_runs() {
    let (graph, inits) = workload();
    let mut warm = session(&graph);
    for (r, init) in inits.iter().enumerate() {
        let seed = 40 + r as u64;
        let warm_res = warm.query(init, seed).unwrap();
        let mut gpu = Gpu::new(GpuSpec::small());
        let cold = run_nextdoor(&mut gpu, &graph, &KHop::new(vec![3, 2]), init, seed).unwrap();
        assert_eq!(digest(&warm_res.store), digest(&cold.store));
    }
    assert_eq!(warm.queries_served(), inits.len() as u64);
}

#[test]
fn direct_fused_session_queries_match_solo_queries() {
    let (graph, inits) = workload();
    let mut s = session(&graph);
    let queries: Vec<SessionQuery> = inits
        .iter()
        .enumerate()
        .map(|(r, init)| SessionQuery {
            init: init.clone(),
            seed: 70 + r as u64,
        })
        .collect();
    let fused = s.query_fused(&queries).unwrap();
    for (q, sliced) in queries.iter().zip(&fused.per_query) {
        let solo = s.query(&q.init, q.seed).unwrap();
        assert_eq!(digest(sliced), digest(&solo.store));
    }
}

#[test]
fn faulted_batch_misses_one_deadline_while_batchmates_complete_identically() {
    let (graph, inits) = workload();

    // Clean pass: what the fused batch produces and how long it takes on
    // the simulated clock when nothing goes wrong.
    let mut clean = MicroBatcher::new(session(&graph), ServeConfig::default()).unwrap();
    for (r, init) in inits.iter().enumerate() {
        clean.submit(Request::new(init.clone(), r as u64)).unwrap();
    }
    let clean_served = clean.drain();
    let clean_total_ms = clean_served[0].1.as_ref().unwrap().latency.total_ms;

    // Faulty pass: a transient kernel fault forces a step retry, inflating
    // the batch on the simulated clock. Request 1 carries a deadline sized
    // for the clean batch, so the fault pushes it — and only it — over.
    let mut batcher = MicroBatcher::new(session(&graph), ServeConfig::default()).unwrap();
    batcher
        .session_mut()
        .gpu_mut()
        .inject_faults(FaultPlan::new().transient_at_launch(3));
    for (r, init) in inits.iter().enumerate() {
        let mut req = Request::new(init.clone(), r as u64);
        if r == 1 {
            req.deadline_ms = Some(clean_total_ms * 1.05);
        }
        batcher.submit(req).unwrap();
    }
    let served = batcher.drain();
    assert_eq!(served.len(), inits.len());
    // The deadline-carrying request is the most urgent, so EDF serves it
    // first; match outcomes by id rather than by drain position.
    assert_eq!(served[0].0 .0, 1, "EDF puts the deadline holder first");
    for (id, outcome) in &served {
        let r = id.0 as usize;
        if r == 1 {
            match outcome {
                Err(ServeError::DeadlineExceeded {
                    deadline_ms,
                    observed_ms,
                }) => assert!(observed_ms > deadline_ms),
                other => panic!("request 1 should miss its deadline, got {other:?}"),
            }
        } else {
            let resp = outcome.as_ref().unwrap();
            assert!(
                resp.report.transient_faults >= 1 && resp.report.step_retries >= 1,
                "fault plan did not fire: {}",
                resp.report
            );
            assert_eq!(
                digest(&resp.store),
                digest(&clean_served[r].1.as_ref().unwrap().store),
                "surviving request {r} must reproduce the fault-free samples"
            );
        }
    }
}

#[test]
fn admission_control_rejects_with_typed_errors() {
    let (graph, inits) = workload();
    let mut batcher = MicroBatcher::new(
        session(&graph),
        ServeConfig {
            max_queue: 2,
            ..ServeConfig::default()
        },
    )
    .unwrap();
    batcher.submit(Request::new(inits[0].clone(), 1)).unwrap();
    batcher.submit(Request::new(inits[1].clone(), 2)).unwrap();
    assert_eq!(
        batcher.submit(Request::new(inits[2].clone(), 3)).err(),
        Some(ServeError::QueueFull { capacity: 2 }),
        "bounded queue applies backpressure"
    );
    let served = batcher.drain();
    assert_eq!(served.len(), 2, "rejected requests never reach the device");
    assert!(matches!(
        batcher.submit(Request::new(vec![vec![u32::MAX]], 4)).err(),
        Some(ServeError::Sampling(NextDoorError::RootOutOfRange { .. }))
    ));
    batcher.submit(Request::new(inits[2].clone(), 3)).unwrap();
}

#[test]
fn sustained_overload_backpressure_is_deterministic_and_lossless() {
    // Drive the batcher well past `max_queue` for many rounds. The
    // regression contract: backpressure is *deterministic* (the same
    // submissions are rejected every round), *bounded* (never more than
    // `max_queue` admitted), and *lossless* for admitted requests (every
    // admitted id is served exactly once, in order, successfully).
    let (graph, inits) = workload();
    let mut batcher = MicroBatcher::new(
        session(&graph),
        ServeConfig {
            max_batch: 2,
            max_queue: 4,
            default_deadline_ms: None,
        },
    )
    .unwrap();
    let mut next_seed = 0u64;
    let mut last_served_id: Option<RequestId> = None;
    for round in 0..20 {
        let mut admitted = Vec::new();
        let mut rejected = 0usize;
        for _ in 0..8 {
            match batcher.submit(Request::new(inits[0].clone(), next_seed)) {
                Ok(id) => admitted.push(id),
                Err(ServeError::QueueFull { capacity }) => {
                    assert_eq!(capacity, 4);
                    rejected += 1;
                }
                Err(e) => panic!("unexpected admission error: {e}"),
            }
            next_seed += 1;
        }
        assert_eq!(
            admitted.len(),
            4,
            "round {round}: exactly max_queue admitted"
        );
        assert_eq!(rejected, 4, "round {round}: the rest rejected, not dropped");

        let served = batcher.drain();
        assert_eq!(batcher.pending_len(), 0);
        let served_ids: Vec<RequestId> = served.iter().map(|(id, _)| *id).collect();
        assert_eq!(
            served_ids, admitted,
            "round {round}: every admitted request served once, in order"
        );
        for (id, outcome) in &served {
            assert!(
                outcome.is_ok(),
                "round {round}: admitted request {id:?} must not be dropped: {outcome:?}"
            );
        }
        // Ids keep growing monotonically across rounds — nothing is
        // recycled or silently swallowed by the overload.
        if let Some(prev) = last_served_id {
            assert!(served_ids[0] > prev);
        }
        last_served_id = served_ids.last().copied();
    }
}

/// A [`BatchEngine`] whose worker dies mid-request, standing in for any
/// panic inside the scheduler thread.
struct PanickingEngine {
    next: u64,
}

impl BatchEngine for PanickingEngine {
    fn submit(&mut self, _req: Request) -> Result<RequestId, ServeError> {
        let id = RequestId(self.next);
        self.next += 1;
        Ok(id)
    }

    fn drain(&mut self) -> Vec<(RequestId, RequestOutcome)> {
        panic!("worker thread dies while serving");
    }
}

#[test]
fn dead_worker_thread_yields_server_gone_instead_of_hanging() {
    // Regression: `Ticket::wait` used to block forever if the scheduler
    // thread panicked (or the server was dropped) after admitting the
    // request. Now the vanished reply channel surfaces as a typed
    // `ServerGone`.
    let server = SampleServer::start(PanickingEngine { next: 0 });
    let client = server.client();
    let ticket = client
        .submit(Request::new(vec![vec![0]], 1))
        .expect("server was up at submission");
    assert_eq!(ticket.wait().err(), Some(ServeError::ServerGone));
    // Later traffic sees a typed refusal too (Disconnected at submission
    // or ServerGone from an abandoned reply, depending on shutdown
    // interleaving) — never a hang.
    assert!(matches!(
        client.query(Request::new(vec![vec![0]], 2)),
        Err(ServeError::Disconnected) | Err(ServeError::ServerGone)
    ));
    // Drop (not shutdown) reaps the panicked thread without re-raising.
    drop(server);
}

#[test]
fn threaded_server_serves_concurrent_clients_bit_identically() {
    let (graph, inits) = workload();
    let server =
        SampleServer::start(MicroBatcher::new(session(&graph), ServeConfig::default()).unwrap());
    let handles: Vec<_> = inits
        .iter()
        .enumerate()
        .map(|(r, init)| {
            let client = server.client();
            let init = init.clone();
            std::thread::spawn(move || client.query(Request::new(init, r as u64)).unwrap())
        })
        .collect();
    let responses: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    server.shutdown();
    for (r, (resp, init)) in responses.iter().zip(&inits).enumerate() {
        let mut gpu = Gpu::new(GpuSpec::small());
        let solo = run_nextdoor(&mut gpu, &graph, &KHop::new(vec![3, 2]), init, r as u64).unwrap();
        assert_eq!(digest(&resp.store), digest(&solo.store));
    }
}
