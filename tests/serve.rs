//! End-to-end guarantees of the serving layer: micro-batch fusion and
//! session reuse are pure throughput levers — every request's samples must
//! be bit-identical to a standalone run of the same `(init, seed)`, under
//! fault plans and deadline rejections included.

use nextdoor::apps::KHop;
use nextdoor::core::session::{SamplerSession, SessionQuery};
use nextdoor::core::{initial_samples_random, run_nextdoor, NextDoorError, SampleStore};
use nextdoor::gpu::{FaultPlan, Gpu, GpuSpec};
use nextdoor::graph::{Csr, Dataset, VertexId};
use nextdoor::serve::{MicroBatcher, Request, SampleServer, ServeConfig, ServeError};

fn workload() -> (Csr, Vec<Vec<Vec<VertexId>>>) {
    let graph = Dataset::Ppi.generate(0.02, 5);
    let inits = (0..4)
        .map(|r| initial_samples_random(&graph, 24, 1, 100 + r).unwrap())
        .collect();
    (graph, inits)
}

fn session(graph: &Csr) -> SamplerSession {
    SamplerSession::new(
        GpuSpec::small(),
        graph.clone(),
        Box::new(KHop::new(vec![3, 2])),
    )
    .unwrap()
}

/// Everything a request observes of its own samples.
fn digest(store: &SampleStore) -> String {
    let edges: Vec<_> = (0..store.num_samples())
        .map(|s| store.edges_of(s).to_vec())
        .collect();
    format!("samples: {:?}\nedges: {edges:?}\n", store.final_samples())
}

#[test]
fn fused_batch_is_bit_identical_to_sequential_requests() {
    let (graph, inits) = workload();

    // Sequential reference: each request served alone, one per fresh device.
    let sequential: Vec<String> = inits
        .iter()
        .enumerate()
        .map(|(r, init)| {
            let mut gpu = Gpu::new(GpuSpec::small());
            let res =
                run_nextdoor(&mut gpu, &graph, &KHop::new(vec![3, 2]), init, r as u64).unwrap();
            digest(&res.store)
        })
        .collect();

    // The same requests fused into one launch by the batcher.
    let mut batcher = MicroBatcher::new(session(&graph), ServeConfig::default());
    for (r, init) in inits.iter().enumerate() {
        batcher
            .submit(Request::new(init.clone(), r as u64))
            .unwrap();
    }
    let served = batcher.drain();
    assert_eq!(served.len(), inits.len());
    for ((_, outcome), want) in served.iter().zip(&sequential) {
        let resp = outcome.as_ref().unwrap();
        assert_eq!(resp.latency.batch_size, inits.len(), "requests did fuse");
        assert_eq!(&digest(&resp.store), want);
    }
}

#[test]
fn warm_session_reuse_is_identical_to_cold_one_shot_runs() {
    let (graph, inits) = workload();
    let mut warm = session(&graph);
    for (r, init) in inits.iter().enumerate() {
        let seed = 40 + r as u64;
        let warm_res = warm.query(init, seed).unwrap();
        let mut gpu = Gpu::new(GpuSpec::small());
        let cold = run_nextdoor(&mut gpu, &graph, &KHop::new(vec![3, 2]), init, seed).unwrap();
        assert_eq!(digest(&warm_res.store), digest(&cold.store));
    }
    assert_eq!(warm.queries_served(), inits.len() as u64);
}

#[test]
fn direct_fused_session_queries_match_solo_queries() {
    let (graph, inits) = workload();
    let mut s = session(&graph);
    let queries: Vec<SessionQuery> = inits
        .iter()
        .enumerate()
        .map(|(r, init)| SessionQuery {
            init: init.clone(),
            seed: 70 + r as u64,
        })
        .collect();
    let fused = s.query_fused(&queries).unwrap();
    for (q, sliced) in queries.iter().zip(&fused.per_query) {
        let solo = s.query(&q.init, q.seed).unwrap();
        assert_eq!(digest(sliced), digest(&solo.store));
    }
}

#[test]
fn faulted_batch_misses_one_deadline_while_batchmates_complete_identically() {
    let (graph, inits) = workload();

    // Clean pass: what the fused batch produces and how long it takes on
    // the simulated clock when nothing goes wrong.
    let mut clean = MicroBatcher::new(session(&graph), ServeConfig::default());
    for (r, init) in inits.iter().enumerate() {
        clean.submit(Request::new(init.clone(), r as u64)).unwrap();
    }
    let clean_served = clean.drain();
    let clean_total_ms = clean_served[0].1.as_ref().unwrap().latency.total_ms;

    // Faulty pass: a transient kernel fault forces a step retry, inflating
    // the batch on the simulated clock. Request 1 carries a deadline sized
    // for the clean batch, so the fault pushes it — and only it — over.
    let mut batcher = MicroBatcher::new(session(&graph), ServeConfig::default());
    batcher
        .session_mut()
        .gpu_mut()
        .inject_faults(FaultPlan::new().transient_at_launch(3));
    for (r, init) in inits.iter().enumerate() {
        let mut req = Request::new(init.clone(), r as u64);
        if r == 1 {
            req.deadline_ms = Some(clean_total_ms * 1.05);
        }
        batcher.submit(req).unwrap();
    }
    let served = batcher.drain();
    assert_eq!(served.len(), inits.len());
    for (r, ((_, outcome), (_, clean_outcome))) in served.iter().zip(&clean_served).enumerate() {
        if r == 1 {
            match outcome {
                Err(ServeError::DeadlineExceeded {
                    deadline_ms,
                    observed_ms,
                }) => assert!(observed_ms > deadline_ms),
                other => panic!("request 1 should miss its deadline, got {other:?}"),
            }
        } else {
            let resp = outcome.as_ref().unwrap();
            assert!(
                resp.report.transient_faults >= 1 && resp.report.step_retries >= 1,
                "fault plan did not fire: {}",
                resp.report
            );
            assert_eq!(
                digest(&resp.store),
                digest(&clean_outcome.as_ref().unwrap().store),
                "surviving request {r} must reproduce the fault-free samples"
            );
        }
    }
}

#[test]
fn admission_control_rejects_with_typed_errors() {
    let (graph, inits) = workload();
    let mut batcher = MicroBatcher::new(
        session(&graph),
        ServeConfig {
            max_queue: 2,
            ..ServeConfig::default()
        },
    );
    batcher.submit(Request::new(inits[0].clone(), 1)).unwrap();
    batcher.submit(Request::new(inits[1].clone(), 2)).unwrap();
    assert_eq!(
        batcher.submit(Request::new(inits[2].clone(), 3)).err(),
        Some(ServeError::QueueFull { capacity: 2 }),
        "bounded queue applies backpressure"
    );
    let served = batcher.drain();
    assert_eq!(served.len(), 2, "rejected requests never reach the device");
    assert!(matches!(
        batcher.submit(Request::new(vec![vec![u32::MAX]], 4)).err(),
        Some(ServeError::Sampling(NextDoorError::RootOutOfRange { .. }))
    ));
    batcher.submit(Request::new(inits[2].clone(), 3)).unwrap();
}

#[test]
fn threaded_server_serves_concurrent_clients_bit_identically() {
    let (graph, inits) = workload();
    let server = SampleServer::start(MicroBatcher::new(session(&graph), ServeConfig::default()));
    let handles: Vec<_> = inits
        .iter()
        .enumerate()
        .map(|(r, init)| {
            let client = server.client();
            let init = init.clone();
            std::thread::spawn(move || client.query(Request::new(init, r as u64)).unwrap())
        })
        .collect();
    let responses: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    server.shutdown();
    for (r, (resp, init)) in responses.iter().zip(&inits).enumerate() {
        let mut gpu = Gpu::new(GpuSpec::small());
        let solo = run_nextdoor(&mut gpu, &graph, &KHop::new(vec![3, 2]), init, r as u64).unwrap();
        assert_eq!(digest(&resp.store), digest(&solo.store));
    }
}
