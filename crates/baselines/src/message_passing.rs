//! A Tigr-style vertex message-passing engine on the GPU simulator (§7).
//!
//! In the message-passing abstraction each vertex holds local state and
//! exchanges messages with neighbours; graph sampling maps onto it with one
//! thread per transit vertex that processes **all of the transit's samples
//! sequentially** — the single degree of parallelism the paper criticises.
//! Lanes of one warp own different transits with different sample counts
//! and degrees, so the warp serialises on the longest lane and every
//! adjacency access is an uncoalesced global load.
//!
//! As with the frontier engine, sample values come from the functional CPU
//! oracle; the simulated kernel charges the abstraction's characteristic
//! execution via real per-lane traces.

use nextdoor_core::api::SamplingApp;
use nextdoor_core::{run_cpu, RunResult, NULL_VERTEX};
use nextdoor_gpu::lane::{LaneOp, LaneTrace};
use nextdoor_gpu::{Gpu, LaunchConfig, WARP_SIZE};
use nextdoor_graph::{Csr, VertexId};

/// Runs `app` under the message-passing abstraction.
///
/// # Panics
///
/// Panics for collective applications, which the abstraction cannot
/// express.
pub fn run_message_passing(
    gpu: &mut Gpu,
    graph: &Csr,
    app: &dyn SamplingApp,
    init: &[Vec<VertexId>],
    seed: u64,
) -> RunResult {
    assert!(
        matches!(app.sampling_type(), nextdoor_core::SamplingType::Individual),
        "the message-passing abstraction cannot express collective sampling"
    );
    let mut res = run_cpu(graph, app, init, seed).expect("valid sampling inputs");
    let counters0 = *gpu.counters();
    let gg = nextdoor_core::GpuGraph::upload(gpu, graph).expect("graph fits on device");
    for step in 0..res.stats.steps_run {
        let m = app.sample_size(step);
        // Transit -> number of samples it serves this step.
        let mut counts: std::collections::HashMap<VertexId, u32> = std::collections::HashMap::new();
        for (s, roots) in init.iter().enumerate().take(res.store.num_samples()) {
            let vals: &[VertexId] = if step == 0 {
                roots
            } else {
                let sv = res.store.step_values(step - 1);
                &sv.values[s * sv.slots..(s + 1) * sv.slots]
            };
            for &v in vals {
                if v != NULL_VERTEX {
                    *counts.entry(v).or_default() += 1;
                }
            }
        }
        let mut transits: Vec<(VertexId, u32)> = counts.into_iter().collect();
        transits.sort_unstable();
        let total = transits.len();
        if total == 0 {
            continue;
        }
        let cols_base = gg.cols_base();
        gpu.launch(
            "tigr_vertex_program",
            LaunchConfig::grid1d(total, 256),
            |blk| {
                blk.for_each_warp(|w| {
                    let gid = w.global_thread_ids();
                    let msk = w.mask_where(|l| gid[l] < total);
                    if msk == 0 {
                        return;
                    }
                    // Build the per-lane trace: the lane's transit serves
                    // `count` samples, each drawing `m` neighbours — all
                    // sequential, all uncoalesced.
                    let mut traces: [LaneTrace; WARP_SIZE] =
                        std::array::from_fn(|_| LaneTrace::new());
                    for l in 0..WARP_SIZE {
                        if msk & (1 << l) == 0 {
                            continue;
                        }
                        let (v, count) = transits[gid[l].min(total - 1)];
                        let (start, end) = graph.adjacency_range(v);
                        let deg = end - start;
                        for c in 0..count {
                            for j in 0..m {
                                // Receive the sample's message (its walker
                                // state) from the global message queue.
                                traces[l].push(LaneOp::GlobalLoad {
                                    addr: 0x7800_0000
                                        + (gid[l] as u64) * 4096
                                        + (c as u64 * m as u64 + j as u64) * 16,
                                    bytes: 8,
                                });
                                traces[l].push(LaneOp::Rand);
                                if deg > 0 {
                                    // The sampled neighbour's address: spread
                                    // deterministically over the adjacency.
                                    let off = (c as usize * 31 + j * 7) % deg;
                                    traces[l].push(LaneOp::GlobalLoad {
                                        addr: cols_base + ((start + off) as u64) * 4,
                                        bytes: 4,
                                    });
                                }
                                // Message send: scattered store of the new
                                // vertex into the sample's state.
                                traces[l].push(LaneOp::GlobalStore {
                                    addr: 0x7000_0000
                                        + (gid[l] as u64) * 4096
                                        + (c as u64 * m as u64 + j as u64) * 4,
                                    bytes: 4,
                                });
                                traces[l].push(LaneOp::Compute(2));
                            }
                        }
                    }
                    w.replay(&traces, msk);
                });
            },
        );
        // Message delivery: every sampled vertex becomes a message to its
        // next transit — an atomic append plus a scattered store, like
        // Gunrock's frontier insert but per sample.
        let deliveries = res
            .store
            .step_values(step)
            .values
            .iter()
            .filter(|&&v| v != NULL_VERTEX)
            .count();
        if deliveries > 0 {
            let queue = gpu.alloc::<u32>(deliveries);
            let cursor = gpu.alloc::<u32>(1);
            // `launch_ordered`: queue positions from the cursor atomics are
            // cross-block execution-order dependent (see the Gunrock
            // frontier insert), so blocks run sequentially.
            gpu.launch_ordered(
                "tigr_message_delivery",
                LaunchConfig::grid1d(deliveries, 256),
                |blk| {
                    blk.for_each_warp(|w| {
                        let gid = w.global_thread_ids();
                        let msk = w.mask_where(|l| gid[l] < deliveries);
                        if msk == 0 {
                            return;
                        }
                        let pos =
                            w.atomic_add_global(&cursor, &[0; WARP_SIZE], [1; WARP_SIZE], msk);
                        let idx: [usize; WARP_SIZE] =
                            std::array::from_fn(|l| (pos[l] as usize).min(deliveries - 1));
                        w.st_global(&queue, &idx, [0; WARP_SIZE], msk);
                    });
                },
            );
        }
    }
    let counters = gpu.counters().diff(&counters0);
    res.stats.total_ms = gpu.spec().cycles_to_ms(counters.cycles);
    res.stats.sampling_ms = res.stats.total_ms;
    res.stats.scheduling_ms = 0.0;
    res.stats.counters = counters;
    res
}

#[cfg(test)]
mod tests {
    use super::*;
    use nextdoor_apps::{DeepWalk, KHop};
    use nextdoor_core::run_nextdoor;
    use nextdoor_gpu::GpuSpec;
    use nextdoor_graph::gen::{rmat, RmatParams};

    #[test]
    fn message_passing_matches_samples_but_is_slower() {
        let g = rmat(10, 20_000, RmatParams::SKEWED, 5);
        let init: Vec<Vec<VertexId>> = (0..1024).map(|i| vec![(i * 3 % 1024) as u32]).collect();
        let app = KHop::graphsage();
        let mut g1 = Gpu::new(GpuSpec::small());
        let mp = run_message_passing(&mut g1, &g, &app, &init, 2);
        let mut g2 = Gpu::new(GpuSpec::small());
        let nd = run_nextdoor(&mut g2, &g, &app, &init, 2).unwrap();
        assert_eq!(mp.store.final_samples(), nd.store.final_samples());
        assert!(
            mp.stats.total_ms > nd.stats.total_ms,
            "message passing {:.3} ms should be slower than NextDoor {:.3} ms",
            mp.stats.total_ms,
            nd.stats.total_ms
        );
    }

    #[test]
    fn divergence_emerges_from_uneven_sample_counts() {
        let g = rmat(8, 3000, RmatParams::SKEWED, 1).with_random_weights(1.0, 5.0, 1);
        // Concentrated roots: a few transits serve many samples.
        let init: Vec<Vec<VertexId>> = (0..256).map(|i| vec![(i % 8) as u32]).collect();
        let mut gpu = Gpu::new(GpuSpec::small());
        let res = run_message_passing(&mut gpu, &g, &DeepWalk::new(5), &init, 3);
        assert!(res.stats.counters.divergent_branches > 0);
    }
}
