//! Reference CPU samplers of existing GNN systems.
//!
//! The paper compares NextDoor against "the samplers of existing GNNs …
//! written for TensorFlow or numpy and … designed to run only on multi-core
//! CPUs" (§8.2). These functions mirror those reference implementations'
//! structure: a per-sample outer loop that grows each sample to completion
//! before moving on — sample-parallel in spirit, with no transit grouping.
//! A `threads` parameter partitions the samples across cores, matching the
//! multi-core configuration the paper measures against.

use std::time::Instant;

use nextdoor_gpu::rng;
use nextdoor_graph::{Clustering, Csr, VertexId};

/// Output of a CPU sampler run.
pub struct CpuSamplerResult {
    /// One grown sample per input sample.
    pub samples: Vec<Vec<VertexId>>,
    /// Wall-clock milliseconds.
    pub wall_ms: f64,
}

fn run_per_sample<F>(num: usize, threads: usize, f: F) -> CpuSamplerResult
where
    F: Fn(usize) -> Vec<VertexId> + Sync,
{
    assert!(threads > 0, "need at least one thread");
    let t0 = Instant::now();
    let mut samples: Vec<Vec<VertexId>> = vec![Vec::new(); num];
    let per = num.div_ceil(threads);
    std::thread::scope(|scope| {
        let mut rest: &mut [Vec<VertexId>] = &mut samples;
        let mut base = 0usize;
        let f = &f;
        while base < num {
            let take = per.min(num - base);
            let (chunk, tail) = rest.split_at_mut(take);
            rest = tail;
            let chunk_base = base;
            scope.spawn(move || {
                for (off, slot) in chunk.iter_mut().enumerate() {
                    *slot = f(chunk_base + off);
                }
            });
            base += take;
        }
    });
    CpuSamplerResult {
        samples,
        wall_ms: t0.elapsed().as_secs_f64() * 1e3,
    }
}

#[inline]
fn draw(seed: u64, sample: usize, ctr: &mut u64, n: usize) -> usize {
    let v = rng::rand_range(seed, sample as u64, *ctr, n as u32) as usize;
    *ctr += 1;
    v
}

/// GraphSAGE's reference k-hop sampler: per root, nested loops expand each
/// hop with the given fanouts.
pub fn khop_sampler(
    graph: &Csr,
    roots: &[VertexId],
    fanouts: &[usize],
    seed: u64,
    threads: usize,
) -> CpuSamplerResult {
    run_per_sample(roots.len(), threads, |s| {
        let mut ctr = 0u64;
        let mut out = vec![roots[s]];
        let mut frontier = vec![roots[s]];
        for &m in fanouts {
            let mut next_frontier = Vec::with_capacity(frontier.len() * m);
            for &t in &frontier {
                let d = graph.degree(t);
                for _ in 0..m {
                    if d == 0 {
                        continue;
                    }
                    let v = graph.neighbor(t, draw(seed, s, &mut ctr, d));
                    out.push(v);
                    next_frontier.push(v);
                }
            }
            frontier = next_frontier;
        }
        out
    })
}

/// MVS's reference sampler: the 1-hop neighbours of each batch.
pub fn mvs_sampler(
    graph: &Csr,
    batches: &[Vec<VertexId>],
    seed: u64,
    threads: usize,
) -> CpuSamplerResult {
    run_per_sample(batches.len(), threads, |s| {
        let mut ctr = 0u64;
        let mut out = batches[s].clone();
        for &t in &batches[s] {
            let d = graph.degree(t);
            if d > 0 {
                out.push(graph.neighbor(t, draw(seed, s, &mut ctr, d)));
            }
        }
        out
    })
}

/// GraphSAINT's multi-dimensional random-walk sampler.
pub fn multirw_sampler(
    graph: &Csr,
    root_sets: &[Vec<VertexId>],
    length: usize,
    seed: u64,
    threads: usize,
) -> CpuSamplerResult {
    run_per_sample(root_sets.len(), threads, |s| {
        let mut ctr = 0u64;
        let mut roots = root_sets[s].clone();
        let mut out = roots.clone();
        for _ in 0..length {
            if roots.is_empty() {
                break;
            }
            let r = draw(seed, s, &mut ctr, roots.len());
            let t = roots[r];
            let d = graph.degree(t);
            if d == 0 {
                continue;
            }
            let v = graph.neighbor(t, draw(seed, s, &mut ctr, d));
            out.push(v);
            roots[r] = v;
        }
        out
    })
}

/// The layer-sampling reference: repeatedly materialises the combined
/// neighbourhood (the expensive part) and draws from it.
pub fn layer_sampler(
    graph: &Csr,
    roots: &[VertexId],
    step_size: usize,
    max_size: usize,
    seed: u64,
    threads: usize,
) -> CpuSamplerResult {
    run_per_sample(roots.len(), threads, |s| {
        let mut ctr = 0u64;
        let mut out = vec![roots[s]];
        let mut frontier = vec![roots[s]];
        while out.len() < max_size {
            // Materialise the combined neighbourhood, as the reference
            // TensorFlow implementation does.
            let mut combined = Vec::new();
            for &t in &frontier {
                combined.extend_from_slice(graph.neighbors(t));
            }
            if combined.is_empty() {
                break;
            }
            let mut added = Vec::new();
            for _ in 0..step_size {
                if out.len() + added.len() >= max_size {
                    break;
                }
                added.push(combined[draw(seed, s, &mut ctr, combined.len())]);
            }
            if added.is_empty() {
                break;
            }
            out.extend_from_slice(&added);
            frontier = added;
        }
        out
    })
}

/// FastGCN's reference importance sampler: per layer, draw a batch from the
/// whole vertex set and keep the adjacency rows between layers.
pub fn fastgcn_sampler(
    graph: &Csr,
    batches: &[Vec<VertexId>],
    layers: usize,
    batch_size: usize,
    seed: u64,
    threads: usize,
) -> CpuSamplerResult {
    let n = graph.num_vertices();
    run_per_sample(batches.len(), threads, |s| {
        let mut ctr = 0u64;
        let mut out = batches[s].clone();
        let mut transits = batches[s].clone();
        for _ in 0..layers {
            let mut drawn = Vec::with_capacity(batch_size);
            for _ in 0..batch_size {
                let v = draw(seed, s, &mut ctr, n) as VertexId;
                // The reference implementation probes the adjacency matrix
                // rows of every transit for the drawn column.
                for &t in &transits {
                    let _linked = graph.has_edge(t, v);
                }
                drawn.push(v);
            }
            out.extend_from_slice(&drawn);
            transits = drawn;
        }
        out
    })
}

/// LADIES' reference sampler: candidates restricted to the combined
/// neighbourhood, weighted by connectivity.
pub fn ladies_sampler(
    graph: &Csr,
    batches: &[Vec<VertexId>],
    layers: usize,
    batch_size: usize,
    seed: u64,
    threads: usize,
) -> CpuSamplerResult {
    run_per_sample(batches.len(), threads, |s| {
        let mut ctr = 0u64;
        let mut out = batches[s].clone();
        let mut transits = batches[s].clone();
        for _ in 0..layers {
            let mut combined = Vec::new();
            for &t in &transits {
                combined.extend_from_slice(graph.neighbors(t));
            }
            if combined.is_empty() {
                break;
            }
            // Degree-weighted draw (the layer-dependent distribution):
            // prefix sums + binary search, as the reference implementation
            // does with numpy's cumsum/searchsorted.
            let mut prefix = Vec::with_capacity(combined.len());
            let mut acc = 0usize;
            for &v in &combined {
                acc += graph.degree(v) + 1;
                prefix.push(acc);
            }
            let total = acc;
            let mut drawn = Vec::with_capacity(batch_size);
            for _ in 0..batch_size {
                let target = draw(seed, s, &mut ctr, total);
                let idx = prefix.partition_point(|&p| p <= target);
                drawn.push(combined[idx.min(combined.len() - 1)]);
            }
            out.extend_from_slice(&drawn);
            transits = drawn;
        }
        out
    })
}

/// ClusterGCN's reference sampler: gathers the clusters' vertices and scans
/// their adjacency for intra-sample edges.
pub fn clustergcn_sampler(
    graph: &Csr,
    clustering: &Clustering,
    clusters_per_sample: usize,
    num_samples: usize,
    seed: u64,
    threads: usize,
) -> CpuSamplerResult {
    run_per_sample(num_samples, threads, |s| {
        let mut ctr = 0u64;
        let mut members = Vec::new();
        let mut chosen: Vec<u32> = Vec::new();
        while chosen.len() < clusters_per_sample.min(clustering.num_clusters()) {
            let c = draw(seed, s, &mut ctr, clustering.num_clusters()) as u32;
            if !chosen.contains(&c) {
                chosen.push(c);
                members.extend_from_slice(clustering.members(c));
            }
        }
        members.sort_unstable();
        // Extract the induced adjacency: scan every member's neighbours.
        let mut edges = 0usize;
        for &u in &members {
            for &v in graph.neighbors(u) {
                if members.binary_search(&v).is_ok() {
                    edges += 1;
                }
            }
        }
        let _ = edges;
        members
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use nextdoor_graph::cluster_vertices;
    use nextdoor_graph::gen::{ring_lattice, rmat, RmatParams};

    fn graph() -> Csr {
        rmat(8, 2500, RmatParams::SKEWED, 3)
    }

    #[test]
    fn khop_shapes() {
        let g = ring_lattice(128, 4, 0);
        let roots: Vec<VertexId> = (0..20).collect();
        let res = khop_sampler(&g, &roots, &[3, 2], 1, 4);
        for (i, s) in res.samples.iter().enumerate() {
            assert_eq!(s[0], roots[i]);
            assert_eq!(s.len(), 1 + 3 + 6, "regular graph: no short samples");
        }
    }

    #[test]
    fn khop_edges_valid() {
        let g = graph();
        let roots: Vec<VertexId> = (0..10).map(|i| i * 11 % 256).collect();
        let res = khop_sampler(&g, &roots, &[4], 5, 2);
        for (i, s) in res.samples.iter().enumerate() {
            for &v in &s[1..] {
                assert!(g.has_edge(roots[i], v));
            }
        }
    }

    #[test]
    fn thread_count_does_not_change_output() {
        let g = graph();
        let roots: Vec<VertexId> = (0..64).map(|i| i * 3 % 256).collect();
        let a = khop_sampler(&g, &roots, &[5, 3], 9, 1);
        let b = khop_sampler(&g, &roots, &[5, 3], 9, 8);
        assert_eq!(a.samples, b.samples);
    }

    #[test]
    fn multirw_adds_one_per_step() {
        let g = ring_lattice(64, 2, 0);
        let sets: Vec<Vec<VertexId>> = (0..5).map(|s| vec![s as u32, s as u32 + 10]).collect();
        let res = multirw_sampler(&g, &sets, 8, 2, 2);
        for s in &res.samples {
            assert_eq!(s.len(), 2 + 8);
        }
    }

    #[test]
    fn layer_respects_max_size() {
        let g = graph();
        let roots: Vec<VertexId> = (0..8).map(|i| i * 17 % 256).collect();
        let res = layer_sampler(&g, &roots, 10, 30, 3, 2);
        for s in &res.samples {
            assert!(s.len() <= 30 + 10);
        }
    }

    #[test]
    fn fastgcn_and_ladies_sizes() {
        let g = graph();
        let batches: Vec<Vec<VertexId>> = (0..4).map(|s| vec![s as u32, s as u32 + 5]).collect();
        let f = fastgcn_sampler(&g, &batches, 2, 8, 7, 2);
        for s in &f.samples {
            assert_eq!(s.len(), 2 + 16);
        }
        let l = ladies_sampler(&g, &batches, 2, 8, 7, 2);
        for s in &l.samples {
            assert!(s.len() <= 2 + 16);
        }
    }

    #[test]
    fn clustergcn_returns_cluster_members() {
        let g = graph();
        let clustering = cluster_vertices(&g, 8, 1).unwrap();
        let res = clustergcn_sampler(&g, &clustering, 2, 5, 3, 2);
        for s in &res.samples {
            assert!(!s.is_empty());
            let mut cl: Vec<u32> = s.iter().map(|&v| clustering.cluster_of(v)).collect();
            cl.sort_unstable();
            cl.dedup();
            assert!(cl.len() <= 2);
        }
    }
}
