//! A Gunrock-style frontier-centric engine on the GPU simulator (paper §7).
//!
//! Gunrock's `Advance` operator assigns **one thread per neighbour of each
//! frontier vertex** and generates the next frontier. Expressing graph
//! sampling this way has the two structural problems the paper identifies:
//!
//! 1. only one degree of parallelism — every thread that owns a neighbour
//!    must iterate over *all* the samples associated with its transit
//!    sequentially;
//! 2. load is balanced by vertex degree, but sampling touches only
//!    `m ≪ degree` neighbours, so most of the expanded work is wasted.
//!
//! The engine produces exactly the same samples as the other engines (it
//! executes the application functionally through the CPU oracle) while the
//! simulated kernels charge the frontier abstraction's characteristic
//! work: a full neighbour expansion per step plus a sequential per-sample
//! loop in every thread.

use nextdoor_core::api::SamplingApp;
use nextdoor_core::{run_cpu, RunResult, NULL_VERTEX};
use nextdoor_gpu::{Gpu, LaunchConfig, WARP_SIZE};
use nextdoor_graph::{Csr, VertexId};

/// Runs `app` under the frontier-centric abstraction.
///
/// Returns the run result with `stats.total_ms` reflecting the simulated
/// frontier-centric execution. Only individual-transit applications whose
/// transits are the previous step's vertices can be expressed in this
/// abstraction (as in Gunrock itself); collective applications panic.
pub fn run_frontier(
    gpu: &mut Gpu,
    graph: &Csr,
    app: &dyn SamplingApp,
    init: &[Vec<VertexId>],
    seed: u64,
) -> RunResult {
    assert!(
        matches!(app.sampling_type(), nextdoor_core::SamplingType::Individual),
        "the frontier abstraction cannot express collective sampling"
    );
    let mut res = run_cpu(graph, app, init, seed).expect("valid sampling inputs");
    let counters0 = *gpu.counters();
    let gg = nextdoor_core::GpuGraph::upload(gpu, graph).expect("graph fits on device");
    // Re-trace each executed step, charging the Advance expansion.
    for step in 0..res.stats.steps_run {
        let m = app.sample_size(step);
        // Frontier = the transits of this step with their sample counts.
        let mut counts: std::collections::HashMap<VertexId, u32> = std::collections::HashMap::new();
        for (s, roots) in init.iter().enumerate().take(res.store.num_samples()) {
            let vals: &[VertexId] = if step == 0 {
                roots
            } else {
                let sv = res.store.step_values(step - 1);
                &sv.values[s * sv.slots..(s + 1) * sv.slots]
            };
            for &v in vals {
                if v != NULL_VERTEX {
                    *counts.entry(v).or_default() += 1;
                }
            }
        }
        let mut frontier: Vec<(VertexId, u32)> = counts.into_iter().collect();
        frontier.sort_unstable();
        // Advance: one thread per (frontier vertex, neighbour).
        let mut lane_of: Vec<(VertexId, u32, usize)> = Vec::new();
        for &(v, c) in &frontier {
            for nbr in 0..graph.degree(v) {
                lane_of.push((v, c, nbr));
            }
        }
        let total = lane_of.len();
        if total == 0 {
            continue;
        }
        gpu.launch("gunrock_advance", LaunchConfig::grid1d(total, 256), |blk| {
            blk.for_each_warp(|w| {
                let gid = w.global_thread_ids();
                let msk = w.mask_where(|l| gid[l] < total);
                if msk == 0 {
                    return;
                }
                // Each thread loads its neighbour (coalesced within a
                // vertex's range).
                let idx: [usize; WARP_SIZE] = std::array::from_fn(|l| {
                    let (v, _, nbr) = lane_of[gid[l].min(total - 1)];
                    let (start, _) = graph.adjacency_range(v);
                    start + nbr
                });
                let _ = w.ld_global(&gg.cols, &idx, msk);
                // Sequential loop over the transit's samples: the warp
                // serialises to the largest count (divergence).
                let mut max_c = 0u32;
                let mut min_c = u32::MAX;
                for l in 0..WARP_SIZE {
                    if msk & (1 << l) != 0 {
                        let (_, c, _) = lane_of[gid[l].min(total - 1)];
                        max_c = max_c.max(c);
                        min_c = min_c.min(c);
                    }
                }
                if max_c != min_c {
                    w.charge_divergence(2);
                }
                // Per sample: the sampling decision (an RNG draw and a
                // comparison) for each of the m draws, plus the
                // conditional frontier insert — all sequential.
                let rand_cost = (nextdoor_gpu::GpuSpec::v100().cost.rand_cycles) as u64;
                w.charge_compute(max_c as u64 * (m as u64 * (rand_cost + 1) + 1));
            });
        });
        // Frontier-insert pass: scattered atomic appends of new transits.
        let inserts = res
            .store
            .step_values(step)
            .values
            .iter()
            .filter(|&&v| v != NULL_VERTEX)
            .count();
        if inserts > 0 {
            let new_frontier = gpu.alloc::<u32>(inserts);
            let cursor = gpu.alloc::<u32>(1);
            // `launch_ordered`: the queue positions returned by the cursor
            // atomics depend on cross-block execution order, so this kernel
            // must run its blocks sequentially to stay deterministic.
            gpu.launch_ordered(
                "gunrock_frontier_insert",
                LaunchConfig::grid1d(inserts, 256),
                |blk| {
                    blk.for_each_warp(|w| {
                        let gid = w.global_thread_ids();
                        let msk = w.mask_where(|l| gid[l] < inserts);
                        if msk == 0 {
                            return;
                        }
                        // Atomic cursor bump, then a scattered write of the
                        // accepted vertex into the new frontier.
                        let pos =
                            w.atomic_add_global(&cursor, &[0; WARP_SIZE], [1; WARP_SIZE], msk);
                        let idx: [usize; WARP_SIZE] =
                            std::array::from_fn(|l| (pos[l] as usize).min(inserts - 1));
                        w.st_global(&new_frontier, &idx, [0; WARP_SIZE], msk);
                    });
                },
            );
        }
    }
    let counters = gpu.counters().diff(&counters0);
    res.stats.total_ms = gpu.spec().cycles_to_ms(counters.cycles);
    res.stats.sampling_ms = res.stats.total_ms;
    res.stats.scheduling_ms = 0.0;
    res.stats.counters = counters;
    res
}

#[cfg(test)]
mod tests {
    use super::*;
    use nextdoor_apps::KHop;
    use nextdoor_core::run_nextdoor;
    use nextdoor_gpu::GpuSpec;
    use nextdoor_graph::gen::{rmat, RmatParams};

    #[test]
    fn frontier_produces_correct_samples_but_slower() {
        let g = rmat(10, 20_000, RmatParams::SKEWED, 3);
        let init: Vec<Vec<VertexId>> = (0..1024).map(|i| vec![(i * 5 % 1024) as u32]).collect();
        let app = KHop::graphsage();
        let mut g1 = Gpu::new(GpuSpec::small());
        let fr = run_frontier(&mut g1, &g, &app, &init, 4);
        let mut g2 = Gpu::new(GpuSpec::small());
        let nd = run_nextdoor(&mut g2, &g, &app, &init, 4).unwrap();
        assert_eq!(fr.store.final_samples(), nd.store.final_samples());
        assert!(
            fr.stats.total_ms > nd.stats.total_ms,
            "frontier {:.3} ms should be slower than NextDoor {:.3} ms",
            fr.stats.total_ms,
            nd.stats.total_ms
        );
    }
}
