//! A KnightKing-style walker-centric CPU random-walk engine.
//!
//! KnightKing (Yang et al., SOSP '19) is the paper's CPU baseline for
//! random walks (§8.2). Its essential properties, reproduced here:
//!
//! * **walker-centric**: each walker advances independently through a tight
//!   per-walker loop — no per-step global coordination;
//! * **rejection sampling**: biased transitions (DeepWalk weights,
//!   node2vec's second-order bias) are selected by probing against an
//!   upper bound instead of materialising distributions;
//! * **multi-threaded**: walkers are partitioned across all cores;
//! * **walks only**: the API cannot express k-hop or collective sampling,
//!   which is why the paper uses it only for the random-walk benchmarks.

use std::time::Instant;

use nextdoor_gpu::rng;
use nextdoor_graph::{cluster_vertices, Csr, VertexId};

/// A random-walk transition rule, the extent of KnightKing's API.
pub trait WalkRule: Sync {
    /// Display name.
    fn name(&self) -> &'static str;

    /// Maximum number of steps a walker may take.
    fn max_steps(&self) -> usize;

    /// Chooses the next vertex from `cur` (with `prev` the vertex before
    /// it, for second-order walks), or `None` to terminate the walk.
    fn step(
        &self,
        graph: &Csr,
        cur: VertexId,
        prev: Option<VertexId>,
        rng: &mut WalkerRng,
    ) -> Option<VertexId>;
}

/// Per-walker deterministic RNG.
pub struct WalkerRng {
    seed: u64,
    walker: u64,
    counter: u64,
}

impl WalkerRng {
    fn new(seed: u64, walker: usize) -> Self {
        WalkerRng {
            seed,
            walker: walker as u64,
            counter: 0,
        }
    }

    /// Uniform draw in `[0, n)`.
    pub fn range(&mut self, n: usize) -> usize {
        let v = rng::rand_range(self.seed, self.walker, self.counter, n as u32);
        self.counter += 1;
        v as usize
    }

    /// Uniform draw in `[0, 1)`.
    pub fn f32(&mut self) -> f32 {
        let v = rng::rand_f32(self.seed, self.walker, self.counter);
        self.counter += 1;
        v
    }
}

/// Result of a KnightKing run.
pub struct KnightKingResult {
    /// One walk per walker, starting with its root.
    pub walks: Vec<Vec<VertexId>>,
    /// Wall-clock milliseconds.
    pub wall_ms: f64,
    /// Threads used.
    pub threads: usize,
}

/// Runs one walker per root to completion across `threads` OS threads.
///
/// # Panics
///
/// Panics if `roots` is empty or `threads` is zero.
pub fn run_knightking(
    graph: &Csr,
    rule: &dyn WalkRule,
    roots: &[VertexId],
    seed: u64,
    threads: usize,
) -> KnightKingResult {
    assert!(!roots.is_empty(), "need at least one walker");
    assert!(threads > 0, "need at least one thread");
    let t0 = Instant::now();
    let n = roots.len();
    let mut walks: Vec<Vec<VertexId>> = vec![Vec::new(); n];
    let per = n.div_ceil(threads);
    std::thread::scope(|scope| {
        let mut rest: &mut [Vec<VertexId>] = &mut walks;
        let mut base = 0usize;
        while base < n {
            let take = per.min(n - base);
            let (chunk, tail) = rest.split_at_mut(take);
            rest = tail;
            let chunk_base = base;
            scope.spawn(move || {
                for (off, slot) in chunk.iter_mut().enumerate() {
                    let walker = chunk_base + off;
                    let mut rng = WalkerRng::new(seed, walker);
                    let root = roots[walker];
                    slot.push(root);
                    let mut prev = None;
                    let mut cur = root;
                    for _ in 0..rule.max_steps() {
                        match rule.step(graph, cur, prev, &mut rng) {
                            Some(nxt) => {
                                slot.push(nxt);
                                prev = Some(cur);
                                cur = nxt;
                            }
                            None => break,
                        }
                    }
                }
            });
            base += take;
        }
    });
    KnightKingResult {
        walks,
        wall_ms: t0.elapsed().as_secs_f64() * 1e3,
        threads,
    }
}

/// Result of a sharded KnightKing run: the same walks as
/// [`run_knightking`], plus the distribution telemetry.
pub struct ShardedKnightKingResult {
    /// One walk per walker, bit-identical to the unsharded run.
    pub walks: Vec<Vec<VertexId>>,
    /// Wall-clock milliseconds.
    pub wall_ms: f64,
    /// Shards the graph was partitioned into.
    pub shards: usize,
    /// Super-steps executed (global barriers).
    pub super_steps: usize,
    /// Walker hand-offs between shards (one per walker per cross-shard
    /// transition).
    pub handoffs: u64,
}

/// KnightKing's distributed execution model: the graph partitioned across
/// `shards` workers, walkers queued on the shard owning their current
/// vertex, advanced one step per **super-step**, then exchanged — a walker
/// whose new vertex lives on another shard is handed off (its RNG counter
/// travels with it). Shards are drained in canonical index order each
/// super-step, so the run is deterministic, and because every draw comes
/// from the walker's own [`WalkerRng`] (keyed, not shared), the walks are
/// **bit-identical** to the single-machine [`run_knightking`] of the same
/// `(graph, rule, roots, seed)`.
///
/// # Panics
///
/// Panics if `roots` is empty, or the graph cannot be partitioned into
/// `shards` non-empty clusters.
pub fn run_knightking_sharded(
    graph: &Csr,
    rule: &dyn WalkRule,
    roots: &[VertexId],
    seed: u64,
    shards: usize,
    placement_seed: u64,
) -> ShardedKnightKingResult {
    assert!(!roots.is_empty(), "need at least one walker");
    let t0 = Instant::now();
    let clustering = match cluster_vertices(graph, shards, placement_seed) {
        Ok(c) => c,
        Err(e) => panic!("cannot shard the graph {shards} ways: {e}"),
    };
    let n = roots.len();

    struct Walker {
        rng: WalkerRng,
        cur: VertexId,
        prev: Option<VertexId>,
        steps_left: usize,
    }
    let mut walks: Vec<Vec<VertexId>> = Vec::with_capacity(n);
    let mut walkers: Vec<Walker> = Vec::with_capacity(n);
    let mut queues: Vec<Vec<usize>> = vec![Vec::new(); shards];
    for (w, &root) in roots.iter().enumerate() {
        walks.push(vec![root]);
        walkers.push(Walker {
            rng: WalkerRng::new(seed, w),
            cur: root,
            prev: None,
            steps_left: rule.max_steps(),
        });
        queues[clustering.cluster_of(root) as usize].push(w);
    }

    let mut super_steps = 0usize;
    let mut handoffs = 0u64;
    while queues.iter().any(|q| !q.is_empty()) {
        super_steps += 1;
        let mut next: Vec<Vec<usize>> = vec![Vec::new(); shards];
        for (s, queue) in queues.iter().enumerate() {
            for &w in queue {
                let walker = &mut walkers[w];
                if walker.steps_left == 0 {
                    continue;
                }
                walker.steps_left -= 1;
                match rule.step(graph, walker.cur, walker.prev, &mut walker.rng) {
                    Some(nxt) => {
                        walks[w].push(nxt);
                        walker.prev = Some(walker.cur);
                        walker.cur = nxt;
                        if walker.steps_left > 0 {
                            let owner = clustering.cluster_of(nxt) as usize;
                            if owner != s {
                                handoffs += 1;
                            }
                            next[owner].push(w);
                        }
                    }
                    None => walker.steps_left = 0,
                }
            }
        }
        queues = next;
    }

    ShardedKnightKingResult {
        walks,
        wall_ms: t0.elapsed().as_secs_f64() * 1e3,
        shards,
        super_steps,
        handoffs,
    }
}

/// DeepWalk's weight-biased transition under rejection sampling.
pub struct DeepWalkRule {
    /// Walk length.
    pub length: usize,
}

impl WalkRule for DeepWalkRule {
    fn name(&self) -> &'static str {
        "DeepWalk"
    }

    fn max_steps(&self) -> usize {
        self.length
    }

    fn step(
        &self,
        graph: &Csr,
        cur: VertexId,
        _prev: Option<VertexId>,
        rng: &mut WalkerRng,
    ) -> Option<VertexId> {
        let d = graph.degree(cur);
        if d == 0 {
            return None;
        }
        let max_w = graph.max_edge_weight(cur);
        for _ in 0..24 {
            let i = rng.range(d);
            if rng.f32() * max_w <= graph.edge_weight(cur, i) {
                return Some(graph.neighbor(cur, i));
            }
        }
        Some(graph.neighbor(cur, rng.range(d)))
    }
}

/// Personalised-PageRank transition: terminate with fixed probability.
pub struct PprRule {
    /// Termination probability per step.
    pub termination: f32,
    /// Hard cap on walk length.
    pub cap: usize,
}

impl WalkRule for PprRule {
    fn name(&self) -> &'static str {
        "PPR"
    }

    fn max_steps(&self) -> usize {
        self.cap
    }

    fn step(
        &self,
        graph: &Csr,
        cur: VertexId,
        _prev: Option<VertexId>,
        rng: &mut WalkerRng,
    ) -> Option<VertexId> {
        if rng.f32() < self.termination {
            return None;
        }
        let d = graph.degree(cur);
        if d == 0 {
            return None;
        }
        Some(graph.neighbor(cur, rng.range(d)))
    }
}

/// node2vec's second-order transition under rejection sampling.
pub struct Node2VecRule {
    /// Walk length.
    pub length: usize,
    /// Return parameter.
    pub p: f32,
    /// In-out parameter.
    pub q: f32,
}

impl WalkRule for Node2VecRule {
    fn name(&self) -> &'static str {
        "node2vec"
    }

    fn max_steps(&self) -> usize {
        self.length
    }

    fn step(
        &self,
        graph: &Csr,
        cur: VertexId,
        prev: Option<VertexId>,
        rng: &mut WalkerRng,
    ) -> Option<VertexId> {
        let d = graph.degree(cur);
        if d == 0 {
            return None;
        }
        let inv_q = 1.0 / self.q;
        let upper = self.p.max(1.0).max(inv_q);
        for _ in 0..24 {
            let i = rng.range(d);
            let u = graph.neighbor(cur, i);
            let w = match prev {
                Some(t) if u == t => self.p,
                Some(t) if graph.has_edge(t, u) => inv_q,
                _ => 1.0,
            };
            if rng.f32() * upper <= w {
                return Some(u);
            }
        }
        Some(graph.neighbor(cur, rng.range(d)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nextdoor_graph::gen::{ring_lattice, rmat, RmatParams};

    #[test]
    fn walks_are_edge_paths() {
        let g = rmat(8, 2000, RmatParams::SKEWED, 1).with_random_weights(1.0, 5.0, 2);
        let roots: Vec<VertexId> = (0..50).map(|i| i * 5 % 256).collect();
        let res = run_knightking(&g, &DeepWalkRule { length: 20 }, &roots, 7, 4);
        assert_eq!(res.walks.len(), 50);
        for (i, w) in res.walks.iter().enumerate() {
            assert_eq!(w[0], roots[i]);
            for pair in w.windows(2) {
                assert!(g.has_edge(pair[0], pair[1]));
            }
        }
        assert!(res.wall_ms >= 0.0);
    }

    #[test]
    fn deterministic_regardless_of_thread_count() {
        let g = ring_lattice(128, 3, 0);
        let roots: Vec<VertexId> = (0..64).collect();
        let a = run_knightking(
            &g,
            &PprRule {
                termination: 0.1,
                cap: 100,
            },
            &roots,
            3,
            1,
        );
        let b = run_knightking(
            &g,
            &PprRule {
                termination: 0.1,
                cap: 100,
            },
            &roots,
            3,
            8,
        );
        assert_eq!(a.walks, b.walks, "walker RNG is keyed, not thread-ordered");
    }

    #[test]
    fn ppr_walks_vary_in_length() {
        let g = ring_lattice(128, 3, 0);
        let roots: Vec<VertexId> = (0..500).map(|i| i % 128).collect();
        let res = run_knightking(
            &g,
            &PprRule {
                termination: 0.2,
                cap: 200,
            },
            &roots,
            5,
            4,
        );
        let lens: Vec<usize> = res.walks.iter().map(|w| w.len() - 1).collect();
        let mean = lens.iter().sum::<usize>() as f64 / lens.len() as f64;
        assert!(
            (2.5..7.0).contains(&mean),
            "mean length {mean}, expected ~4"
        );
    }

    #[test]
    fn sharded_walks_are_bit_identical_to_single_machine() {
        let g = rmat(8, 2000, RmatParams::SKEWED, 1).with_random_weights(1.0, 5.0, 2);
        let roots: Vec<VertexId> = (0..60).map(|i| i * 7 % 256).collect();
        let rule = DeepWalkRule { length: 15 };
        let solo = run_knightking(&g, &rule, &roots, 11, 4);
        for shards in [1, 2, 4] {
            let sharded = run_knightking_sharded(&g, &rule, &roots, 11, shards, 0x5AD0);
            assert_eq!(
                sharded.walks, solo.walks,
                "{shards}-shard walks must match the single-machine run"
            );
            assert_eq!(sharded.shards, shards);
            assert!(sharded.super_steps >= 1);
            if shards == 1 {
                assert_eq!(sharded.handoffs, 0, "one shard has nowhere to hand off");
            }
        }
    }

    #[test]
    fn sharded_second_order_walks_match_too() {
        let g = ring_lattice(128, 3, 0);
        let roots: Vec<VertexId> = (0..64).collect();
        let rule = Node2VecRule {
            length: 10,
            p: 2.0,
            q: 0.5,
        };
        let solo = run_knightking(&g, &rule, &roots, 21, 2);
        let sharded = run_knightking_sharded(&g, &rule, &roots, 21, 3, 7);
        assert_eq!(sharded.walks, solo.walks);
        assert!(
            sharded.handoffs > 0,
            "a ring walk across 3 shards must cross a boundary"
        );
    }

    #[test]
    fn node2vec_with_high_p_revisits_previous_vertex() {
        // With p >> 1 the walk is strongly biased back to where it came
        // from, so short walks should frequently alternate.
        let g = ring_lattice(64, 2, 0);
        let roots: Vec<VertexId> = (0..200).map(|i| i % 64).collect();
        let res = run_knightking(
            &g,
            &Node2VecRule {
                length: 4,
                p: 50.0,
                q: 1.0,
            },
            &roots,
            9,
            2,
        );
        let mut returns = 0;
        let mut chances = 0;
        for w in &res.walks {
            for i in 2..w.len() {
                chances += 1;
                if w[i] == w[i - 2] {
                    returns += 1;
                }
            }
        }
        let rate = returns as f64 / chances as f64;
        assert!(rate > 0.5, "return rate {rate:.2} should be high at p=50");
    }
}
