//! Comparison systems the paper evaluates NextDoor against (§8.2, §8.3).
//!
//! * [`knightking`] — a walker-centric, multi-threaded CPU random-walk
//!   engine in the style of KnightKing (Yang et al., SOSP '19), the
//!   state-of-the-art CPU baseline for random walks. Its API is restricted
//!   to random walks, exactly like the original's.
//! * [`cpu_samplers`] — the reference CPU samplers that ship with existing
//!   GNNs (GraphSAGE, FastGCN, LADIES, MVS, ClusterGCN, GraphSAINT):
//!   per-sample loops on the host, as in their TensorFlow/numpy
//!   implementations.
//! * [`frontier`] — a Gunrock-style frontier-centric engine running on the
//!   GPU simulator: the `Advance` operator visits *every* neighbour of
//!   every frontier vertex and processes a transit's samples sequentially
//!   (§7 "Frontier-centric Abstraction").
//! * [`message_passing`] — a Tigr-style vertex message-passing engine on
//!   the GPU simulator: one thread per transit vertex, all its samples
//!   processed sequentially (§7 "Message-passing Abstraction").

pub mod cpu_samplers;
pub mod frontier;
pub mod knightking;
pub mod message_passing;
