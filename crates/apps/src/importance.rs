//! Importance sampling: FastGCN and LADIES (paper Figure 4b).

use nextdoor_core::api::NextCtx;
use nextdoor_core::{SamplingApp, SamplingType, Steps};
use nextdoor_graph::VertexId;

/// FastGCN layer-wise importance sampling (Chen et al., ICLR '18).
///
/// At each step (network layer) a batch of vertices is drawn from the whole
/// graph and, for every transit that links to a drawn vertex, an edge is
/// recorded into the sample's adjacency matrix — the structure the GCN
/// layer multiplies with. This follows the paper's Figure 4b sketch:
/// `next` draws `randInt(0, graph.vertices())` and calls `s.addEdge` for
/// each connected transit.
#[derive(Debug, Clone)]
pub struct FastGcn {
    layers: usize,
    batch: usize,
}

impl FastGcn {
    /// FastGCN sampling for `layers` network layers with `batch` vertices
    /// drawn per layer (the paper evaluates batch and step size 64).
    pub fn new(layers: usize, batch: usize) -> Self {
        assert!(layers > 0 && batch > 0, "layers and batch must be positive");
        FastGcn { layers, batch }
    }
}

impl SamplingApp for FastGcn {
    fn name(&self) -> &'static str {
        "FastGCN"
    }

    fn steps(&self) -> Steps {
        Steps::Fixed(self.layers)
    }

    fn sample_size(&self, _step: usize) -> usize {
        self.batch
    }

    fn sampling_type(&self) -> SamplingType {
        SamplingType::Collective
    }

    fn next(&self, ctx: &mut NextCtx<'_>) -> Option<VertexId> {
        let n = ctx.num_vertices();
        let v = ctx.rand_range(n) as VertexId;
        let transits = ctx.transits().to_vec();
        for t in transits {
            if ctx.has_edge(t, v) {
                ctx.add_edge(t, v);
            }
        }
        Some(v)
    }
}

/// LADIES layer-dependent importance sampling (Zou et al., NeurIPS '19).
///
/// Unlike FastGCN, LADIES restricts each layer's candidates to the
/// *combined neighbourhood* of the current transits and weights them by
/// (squared) connectivity — approximated here by degree-proportional
/// rejection sampling over the combined neighbourhood, with the same
/// adjacency-matrix recording as FastGCN.
#[derive(Debug, Clone)]
pub struct Ladies {
    layers: usize,
    batch: usize,
}

impl Ladies {
    /// LADIES sampling for `layers` layers with `batch` vertices per layer.
    pub fn new(layers: usize, batch: usize) -> Self {
        assert!(layers > 0 && batch > 0, "layers and batch must be positive");
        Ladies { layers, batch }
    }
}

/// Rejection probes for the degree-proportional draw.
const MAX_PROBES: usize = 8;

impl SamplingApp for Ladies {
    fn name(&self) -> &'static str {
        "LADIES"
    }

    fn steps(&self) -> Steps {
        Steps::Fixed(self.layers)
    }

    fn sample_size(&self, _step: usize) -> usize {
        self.batch
    }

    fn sampling_type(&self) -> SamplingType {
        SamplingType::Collective
    }

    fn next(&self, ctx: &mut NextCtx<'_>) -> Option<VertexId> {
        let d = ctx.num_edges();
        if d == 0 {
            return None;
        }
        // Degree-proportional rejection over the combined neighbourhood: a
        // candidate's acceptance probability grows with its connectivity,
        // approximating LADIES' layer-dependent importance distribution.
        let mut chosen = None;
        for _ in 0..MAX_PROBES {
            let i = ctx.rand_range(d);
            let v = ctx.src_edge(i);
            let deg = ctx.degree_of(v);
            // Normalise against a soft cap; heavier vertices accept sooner.
            let accept = (deg as f32 / (deg as f32 + 8.0)).max(0.05);
            if ctx.rand_f32() <= accept {
                chosen = Some(v);
                break;
            }
        }
        let v = match chosen {
            Some(v) => v,
            None => {
                let i = ctx.rand_range(d);
                ctx.src_edge(i)
            }
        };
        let transits = ctx.transits().to_vec();
        for t in transits {
            if ctx.has_edge(t, v) {
                ctx.add_edge(t, v);
            }
        }
        Some(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nextdoor_core::{run_cpu, run_nextdoor, run_sample_parallel};
    use nextdoor_gpu::{Gpu, GpuSpec};
    use nextdoor_graph::gen::{rmat, RmatParams};

    fn batches(n: usize, per: usize, v: usize) -> Vec<Vec<VertexId>> {
        (0..n)
            .map(|s| {
                (0..per)
                    .map(|i| ((s * 37 + i * 13) % v) as VertexId)
                    .collect()
            })
            .collect()
    }

    #[test]
    fn fastgcn_records_only_real_edges() {
        let g = rmat(8, 3000, RmatParams::SKEWED, 1);
        let init = batches(6, 8, 256);
        let res = run_cpu(&g, &FastGcn::new(2, 16), &init, 3).unwrap();
        let mut total_edges = 0;
        for s in 0..6 {
            for &(u, v) in res.store.edges_of(s) {
                assert!(g.has_edge(u, v), "recorded a non-edge ({u}, {v})");
                total_edges += 1;
            }
        }
        assert!(total_edges > 0, "dense RMAT batches should record edges");
    }

    #[test]
    fn fastgcn_draws_fixed_batch_per_layer() {
        let g = rmat(8, 3000, RmatParams::SKEWED, 1);
        let res = run_cpu(&g, &FastGcn::new(3, 16), &batches(2, 4, 256), 5).unwrap();
        assert_eq!(res.stats.steps_run, 3);
        for step in 0..3 {
            assert_eq!(res.store.step_values(step).slots, 16);
        }
    }

    #[test]
    fn ladies_candidates_come_from_combined_neighborhood() {
        let g = rmat(8, 3000, RmatParams::SKEWED, 9);
        let init = batches(4, 4, 256);
        let res = run_cpu(&g, &Ladies::new(1, 8), &init, 7).unwrap();
        for (s, batch) in init.iter().enumerate().take(4) {
            for &v in &res.store.step_values(0).values[s * 8..(s + 1) * 8] {
                if v == nextdoor_core::NULL_VERTEX {
                    continue;
                }
                assert!(
                    batch.iter().any(|&t| g.has_edge(t, v)),
                    "vertex {v} is not in the batch's combined neighbourhood"
                );
            }
        }
    }

    #[test]
    fn ladies_prefers_high_degree_vertices() {
        let g = rmat(10, 20_000, RmatParams::SKEWED, 4);
        let init = batches(64, 8, 1024);
        let res = run_cpu(&g, &Ladies::new(1, 16), &init, 2).unwrap();
        let uniform = run_cpu(&g, &Layer16, &init, 2).unwrap();
        let mean_deg = |r: &nextdoor_core::RunResult| {
            let mut sum = 0usize;
            let mut n = 0usize;
            for s in 0..64 {
                for &v in &r.store.step_values(0).values[s * 16..(s + 1) * 16] {
                    if v != nextdoor_core::NULL_VERTEX {
                        sum += g.degree(v);
                        n += 1;
                    }
                }
            }
            sum as f64 / n as f64
        };
        let ladies_deg = mean_deg(&res);
        let uniform_deg = mean_deg(&uniform);
        assert!(
            ladies_deg > uniform_deg,
            "LADIES mean degree {ladies_deg:.1} should exceed uniform {uniform_deg:.1}"
        );
    }

    /// Uniform collective sampler used as the control in the degree test.
    struct Layer16;
    impl SamplingApp for Layer16 {
        fn name(&self) -> &'static str {
            "uniform-collective"
        }
        fn steps(&self) -> Steps {
            Steps::Fixed(1)
        }
        fn sample_size(&self, _: usize) -> usize {
            16
        }
        fn sampling_type(&self) -> SamplingType {
            SamplingType::Collective
        }
        fn next(&self, ctx: &mut NextCtx<'_>) -> Option<VertexId> {
            let d = ctx.num_edges();
            if d == 0 {
                return None;
            }
            let i = ctx.rand_range(d);
            Some(ctx.src_edge(i))
        }
    }

    #[test]
    fn importance_apps_match_across_engines() {
        let g = rmat(8, 2500, RmatParams::SKEWED, 6);
        let init = batches(8, 6, 256);
        for app in [
            Box::new(FastGcn::new(2, 12)) as Box<dyn SamplingApp>,
            Box::new(Ladies::new(2, 12)),
        ] {
            let cpu = run_cpu(&g, app.as_ref(), &init, 8).unwrap();
            let mut g1 = Gpu::new(GpuSpec::small());
            let nd = run_nextdoor(&mut g1, &g, app.as_ref(), &init, 8).unwrap();
            let mut g2 = Gpu::new(GpuSpec::small());
            let sp = run_sample_parallel(&mut g2, &g, app.as_ref(), &init, 8).unwrap();
            assert_eq!(
                cpu.store.final_samples(),
                nd.store.final_samples(),
                "{} CPU vs ND",
                app.name()
            );
            assert_eq!(
                cpu.store.final_samples(),
                sp.store.final_samples(),
                "{} CPU vs SP",
                app.name()
            );
            for s in 0..8 {
                assert_eq!(cpu.store.edges_of(s), nd.store.edges_of(s));
            }
        }
    }
}
