//! The graph sampling applications of the paper (§4.2, §8 "Benchmarks").
//!
//! Each application is a [`nextdoor_core::SamplingApp`] implementation, a
//! handful of lines of `next`/`stepTransits`/`sampleSize` logic — exactly
//! the programming model Figure 4 of the paper demonstrates. The same
//! objects run on every engine (NextDoor, SP, TP, CPU reference) and on the
//! CPU baselines' own executors.
//!
//! | Application | Paper source | Type |
//! |---|---|---|
//! | [`DeepWalk`] | Perozzi et al., KDD '14 | individual, static biased walk |
//! | [`Ppr`] | personalised PageRank | individual, variable-length walk |
//! | [`Node2Vec`] | Grover & Leskovec, KDD '16 | individual, 2nd-order walk |
//! | [`MultiRw`] | Ribeiro & Towsley, IMC '10 (GraphSAINT) | individual |
//! | [`KHop`] | GraphSAGE, NIPS '17 | individual, k-hop neighbourhood |
//! | [`Mvs`] | Cong et al., KDD '20 | individual, 1-hop of a batch |
//! | [`Layer`] | Gao et al., KDD '18 | collective layer sampling |
//! | [`FastGcn`] | Chen et al., ICLR '18 | collective importance sampling |
//! | [`Ladies`] | Zou et al., NeurIPS '19 | collective importance sampling |
//! | [`ClusterGcn`] | Chiang et al., KDD '19 | collective cluster sampling |

pub mod cluster;
pub mod importance;
pub mod khop;
pub mod layer;
pub mod multirw;
pub mod walks;

pub use cluster::{cluster_gcn_samples, ClusterGcn};
pub use importance::{FastGcn, Ladies};
pub use khop::{KHop, Mvs};
pub use layer::Layer;
pub use multirw::MultiRw;
pub use walks::{DeepWalk, Node2Vec, Ppr};

use nextdoor_core::SamplingApp;

/// The paper's standard benchmark parameterisation (§8 "Benchmarks"):
/// random walks of length 100 (PPR mean length 100), node2vec `p = 2.0`,
/// `q = 0.5`, MultiRW with 100 roots, GraphSAGE's 2-hop `m = [25, 10]`,
/// layer sampling to 2000 vertices in steps of 1000, importance/MVS batch
/// and step size 64.
pub fn paper_benchmark_apps() -> Vec<Box<dyn SamplingApp>> {
    vec![
        Box::new(DeepWalk::new(100)),
        Box::new(Ppr::new(0.01)),
        Box::new(Node2Vec::new(100, 2.0, 0.5)),
        Box::new(MultiRw::new(100)),
        Box::new(KHop::new(vec![25, 10])),
        Box::new(Mvs::default()),
        Box::new(Layer::new(1000, 2000)),
        Box::new(FastGcn::new(2, 64)),
        Box::new(Ladies::new(2, 64)),
        Box::new(ClusterGcn::new(64)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_suite_is_complete() {
        let apps = paper_benchmark_apps();
        assert_eq!(apps.len(), 10);
        let names: Vec<&str> = apps.iter().map(|a| a.name()).collect();
        for expected in [
            "DeepWalk",
            "PPR",
            "node2vec",
            "MultiRW",
            "k-hop",
            "MVS",
            "Layer",
            "FastGCN",
            "LADIES",
            "ClusterGCN",
        ] {
            assert!(names.contains(&expected), "missing {expected}");
        }
    }
}
