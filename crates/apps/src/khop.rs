//! k-hop neighbourhood sampling (GraphSAGE) and MVS batch sampling.

use nextdoor_core::api::NextCtx;
use nextdoor_core::{SamplingApp, Steps};
use nextdoor_graph::VertexId;

/// k-hop neighbourhood sampling as in GraphSAGE (paper Figure 4d).
///
/// At step `i`, every vertex added at the previous step becomes a transit
/// and `fanouts[i]` of its neighbours are sampled uniformly with
/// replacement. The paper evaluates GraphSAGE's 2-hop configuration
/// `fanouts = [25, 10]`.
#[derive(Debug, Clone)]
pub struct KHop {
    fanouts: Vec<usize>,
}

impl KHop {
    /// A k-hop sampler with the given per-step fanouts.
    ///
    /// # Panics
    ///
    /// Panics if `fanouts` is empty or contains a zero.
    pub fn new(fanouts: Vec<usize>) -> Self {
        assert!(!fanouts.is_empty(), "need at least one hop");
        assert!(fanouts.iter().all(|&m| m > 0), "fanouts must be positive");
        KHop { fanouts }
    }

    /// GraphSAGE's published configuration.
    pub fn graphsage() -> Self {
        KHop::new(vec![25, 10])
    }
}

impl SamplingApp for KHop {
    fn name(&self) -> &'static str {
        "k-hop"
    }

    fn steps(&self) -> Steps {
        Steps::Fixed(self.fanouts.len())
    }

    fn sample_size(&self, step: usize) -> usize {
        self.fanouts[step]
    }

    fn next(&self, ctx: &mut NextCtx<'_>) -> Option<VertexId> {
        let d = ctx.num_edges();
        if d == 0 {
            return None;
        }
        let i = ctx.rand_range(d);
        Some(ctx.src_edge(i))
    }
}

/// Minimal-variance sampling (MVS, Cong et al. KDD '20): each mini-batch
/// takes the 1-hop neighbours of all vertices in the batch. Expressed in
/// the abstraction as a single-step individual sampler whose samples start
/// with a whole batch of root vertices (paper §4.2: "MVS is implemented in
/// a similar way [to k-hop] as it obtains 1-hop neighbors of all initial
/// vertices in the sample").
#[derive(Debug, Clone)]
pub struct Mvs {
    neighbors_per_root: usize,
}

impl Mvs {
    /// MVS taking `neighbors_per_root` neighbours of each batch vertex.
    pub fn new(neighbors_per_root: usize) -> Self {
        assert!(neighbors_per_root > 0, "need a positive fanout");
        Mvs { neighbors_per_root }
    }
}

impl Default for Mvs {
    /// One neighbour per batch vertex, the reference configuration.
    fn default() -> Self {
        Mvs::new(1)
    }
}

impl SamplingApp for Mvs {
    fn name(&self) -> &'static str {
        "MVS"
    }

    fn steps(&self) -> Steps {
        Steps::Fixed(1)
    }

    fn sample_size(&self, _step: usize) -> usize {
        self.neighbors_per_root
    }

    fn next(&self, ctx: &mut NextCtx<'_>) -> Option<VertexId> {
        let d = ctx.num_edges();
        if d == 0 {
            return None;
        }
        let i = ctx.rand_range(d);
        Some(ctx.src_edge(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nextdoor_core::{run_cpu, run_nextdoor, run_sample_parallel, NULL_VERTEX};
    use nextdoor_gpu::{Gpu, GpuSpec};
    use nextdoor_graph::gen::{ring_lattice, rmat, RmatParams};

    #[test]
    fn khop_shapes_follow_fanouts() {
        let g = ring_lattice(256, 4, 0);
        let init: Vec<Vec<VertexId>> = (0..10).map(|i| vec![i as VertexId]).collect();
        let res = run_cpu(&g, &KHop::new(vec![3, 2]), &init, 1).unwrap();
        assert_eq!(res.store.step_values(0).slots, 3);
        assert_eq!(res.store.step_values(1).slots, 6);
        // On this graph every vertex has degree 8, so no NULLs appear.
        assert_eq!(res.store.final_samples()[0].len(), 1 + 3 + 6);
    }

    #[test]
    fn khop_vertices_are_neighbors_of_transits() {
        let g = rmat(8, 2000, RmatParams::SKEWED, 3);
        let init: Vec<Vec<VertexId>> = (0..16).map(|i| vec![(i * 9 % 256) as VertexId]).collect();
        let res = run_cpu(&g, &KHop::new(vec![4, 3]), &init, 2).unwrap();
        for (s, sample_init) in init.iter().enumerate().take(16) {
            let root = sample_init[0];
            let hop1 = &res.store.step_values(0).values[s * 4..(s + 1) * 4];
            for &v in hop1 {
                if v != NULL_VERTEX {
                    assert!(g.has_edge(root, v));
                }
            }
            let hop2 = &res.store.step_values(1).values[s * 12..(s + 1) * 12];
            for (i, &v) in hop2.iter().enumerate() {
                if v == NULL_VERTEX {
                    continue;
                }
                let transit = hop1[i / 3];
                assert_ne!(transit, NULL_VERTEX, "live child of a dead transit");
                assert!(g.has_edge(transit, v));
            }
        }
    }

    #[test]
    fn dead_transits_yield_null_children() {
        // Star graph: centre 0 points at leaves; leaves have out-degree 0.
        let mut b = nextdoor_graph::GraphBuilder::new(5);
        for i in 1..5 {
            b.push_edge(0, i);
        }
        let g = b.build().unwrap();
        let res = run_cpu(&g, &KHop::new(vec![2, 2]), &[vec![0]], 1).unwrap();
        let hop1 = &res.store.step_values(0).values;
        assert!(hop1.iter().all(|&v| v != NULL_VERTEX));
        let hop2 = &res.store.step_values(1).values;
        assert!(
            hop2.iter().all(|&v| v == NULL_VERTEX),
            "leaves have no out-edges"
        );
    }

    #[test]
    fn mvs_takes_one_hop_of_batch() {
        let g = ring_lattice(64, 2, 0);
        let batch: Vec<Vec<VertexId>> = vec![vec![0, 5, 9, 13]];
        let res = run_cpu(&g, &Mvs::default(), &batch, 3).unwrap();
        assert_eq!(res.stats.steps_run, 1);
        let vals = &res.store.step_values(0).values;
        assert_eq!(vals.len(), 4);
        for (i, &v) in vals.iter().enumerate() {
            assert!(g.has_edge(batch[0][i], v));
        }
    }

    #[test]
    fn khop_matches_across_all_engines() {
        let g = rmat(9, 4000, RmatParams::SKEWED, 5);
        let init: Vec<Vec<VertexId>> = (0..48).map(|i| vec![(i * 11 % 512) as VertexId]).collect();
        let app = KHop::graphsage();
        let cpu = run_cpu(&g, &app, &init, 6).unwrap();
        let mut g1 = Gpu::new(GpuSpec::small());
        let nd = run_nextdoor(&mut g1, &g, &app, &init, 6).unwrap();
        let mut g2 = Gpu::new(GpuSpec::small());
        let sp = run_sample_parallel(&mut g2, &g, &app, &init, 6).unwrap();
        assert_eq!(cpu.store.final_samples(), nd.store.final_samples());
        assert_eq!(cpu.store.final_samples(), sp.store.final_samples());
    }

    #[test]
    #[should_panic(expected = "at least one hop")]
    fn khop_rejects_empty_fanouts() {
        let _ = KHop::new(vec![]);
    }
}
