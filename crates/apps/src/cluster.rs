//! ClusterGCN sampling (Chiang et al., KDD '19).

use nextdoor_core::api::NextCtx;
use nextdoor_core::{SamplingApp, SamplingType, Steps};
use nextdoor_gpu::rng;
use nextdoor_graph::{Clustering, Csr, VertexId};

/// ClusterGCN sampling: each sample consists of the vertices of a few
/// randomly-chosen clusters, and the sampler extracts the adjacency matrix
/// among them (paper §4.2: "at each step an edge is recorded in a sample's
/// adjacency matrix if the edge exists between any two transits"; the
/// evaluation randomly assigns vertices to clusters and puts 20 clusters
/// in each sample).
///
/// Expressed in the abstraction as a single-step collective application:
/// the cluster vertices are the initial sample (and therefore its
/// transits); `next` draws from the combined neighbourhood and records the
/// edges that land back inside the cluster set.
#[derive(Debug, Clone)]
pub struct ClusterGcn {
    budget: usize,
}

impl ClusterGcn {
    /// ClusterGCN extraction drawing `budget` candidates per sample.
    pub fn new(budget: usize) -> Self {
        assert!(budget > 0, "budget must be positive");
        ClusterGcn { budget }
    }
}

impl SamplingApp for ClusterGcn {
    fn name(&self) -> &'static str {
        "ClusterGCN"
    }

    fn steps(&self) -> Steps {
        Steps::Fixed(1)
    }

    fn sample_size(&self, _step: usize) -> usize {
        self.budget
    }

    fn sampling_type(&self) -> SamplingType {
        SamplingType::Collective
    }

    fn next(&self, ctx: &mut NextCtx<'_>) -> Option<VertexId> {
        let d = ctx.num_edges();
        if d == 0 {
            return None;
        }
        let i = ctx.rand_range(d);
        let v = ctx.src_edge(i);
        let transits = ctx.transits().to_vec();
        // Record the intra-cluster edges incident to the drawn vertex.
        if transits.contains(&v) {
            for t in transits {
                if ctx.has_edge(t, v) {
                    ctx.add_edge(t, v);
                }
            }
        }
        Some(v)
    }
}

/// Builds ClusterGCN initial samples: each sample is the (padded) union of
/// `clusters_per_sample` clusters chosen deterministically from `seed`.
///
/// The engines require equally-sized initial samples, so shorter unions are
/// padded by repeating their first vertex — harmless, since transits are a
/// set of sources for the combined neighbourhood.
pub fn cluster_gcn_samples(
    graph: &Csr,
    clustering: &Clustering,
    clusters_per_sample: usize,
    num_samples: usize,
    seed: u64,
) -> Vec<Vec<VertexId>> {
    let _ = graph;
    assert!(clusters_per_sample > 0, "need at least one cluster");
    assert!(
        clusters_per_sample <= clustering.num_clusters(),
        "more clusters per sample than clusters"
    );
    let mut samples: Vec<Vec<VertexId>> = (0..num_samples)
        .map(|s| {
            let mut chosen = Vec::with_capacity(clusters_per_sample);
            let mut salt = 0u64;
            while chosen.len() < clusters_per_sample {
                let c = rng::rand_range(seed, s as u64, salt, clustering.num_clusters() as u32);
                salt += 1;
                if !chosen.contains(&c) {
                    chosen.push(c);
                }
            }
            let mut verts = Vec::new();
            for c in chosen {
                verts.extend_from_slice(clustering.members(c));
            }
            verts
        })
        .collect();
    let max_len = samples.iter().map(Vec::len).max().unwrap_or(0);
    for s in &mut samples {
        while s.len() < max_len {
            let pad = s[0];
            s.push(pad);
        }
    }
    samples
}

#[cfg(test)]
mod tests {
    use super::*;
    use nextdoor_core::{run_cpu, run_nextdoor};
    use nextdoor_gpu::{Gpu, GpuSpec};
    use nextdoor_graph::cluster_vertices;
    use nextdoor_graph::gen::{rmat, RmatParams};

    #[test]
    fn samples_are_cluster_unions_padded_equal() {
        let g = rmat(8, 2000, RmatParams::SKEWED, 1);
        let clustering = cluster_vertices(&g, 16, 5).unwrap();
        let samples = cluster_gcn_samples(&g, &clustering, 3, 6, 9);
        assert_eq!(samples.len(), 6);
        let len0 = samples[0].len();
        assert!(samples.iter().all(|s| s.len() == len0));
        // Every vertex of a sample belongs to one of at most 3 clusters.
        for s in &samples {
            let mut clusters: Vec<u32> = s.iter().map(|&v| clustering.cluster_of(v)).collect();
            clusters.sort_unstable();
            clusters.dedup();
            assert!(clusters.len() <= 3);
        }
    }

    #[test]
    fn recorded_edges_are_intra_cluster_set() {
        let g = rmat(9, 8000, RmatParams::SKEWED, 2);
        let clustering = cluster_vertices(&g, 8, 3).unwrap();
        let init = cluster_gcn_samples(&g, &clustering, 2, 4, 7);
        let res = run_cpu(&g, &ClusterGcn::new(64), &init, 5).unwrap();
        for (s, sample_init) in init.iter().enumerate().take(4) {
            for &(u, v) in res.store.edges_of(s) {
                assert!(g.has_edge(u, v));
                assert!(sample_init.contains(&u), "edge source outside the clusters");
                assert!(sample_init.contains(&v), "edge target outside the clusters");
            }
        }
    }

    #[test]
    fn matches_across_engines() {
        let g = rmat(8, 3000, RmatParams::SKEWED, 4);
        let clustering = cluster_vertices(&g, 12, 1).unwrap();
        let init = cluster_gcn_samples(&g, &clustering, 2, 5, 3);
        let app = ClusterGcn::new(32);
        let cpu = run_cpu(&g, &app, &init, 6).unwrap();
        let mut gpu = Gpu::new(GpuSpec::small());
        let nd = run_nextdoor(&mut gpu, &g, &app, &init, 6).unwrap();
        assert_eq!(cpu.store.final_samples(), nd.store.final_samples());
        for s in 0..5 {
            assert_eq!(cpu.store.edges_of(s), nd.store.edges_of(s));
        }
    }

    #[test]
    #[should_panic(expected = "more clusters per sample")]
    fn rejects_oversubscription() {
        let g = rmat(6, 200, RmatParams::SKEWED, 1);
        let clustering = cluster_vertices(&g, 4, 1).unwrap();
        let _ = cluster_gcn_samples(&g, &clustering, 5, 1, 0);
    }
}
