//! Multi-dimensional random walks (Ribeiro & Towsley; used by GraphSAINT).

use nextdoor_core::api::{NextCtx, RngStream, SampleView};
use nextdoor_core::{SamplingApp, Steps, NULL_VERTEX};
use nextdoor_graph::VertexId;

/// Multi-dimensional random walk (paper §3, Figure 4c).
///
/// Each sample holds a set of root vertices. At every step one root is
/// chosen uniformly as the transit, one of its neighbours is sampled, and
/// the neighbour *replaces* the chosen root. The paper evaluates with 100
/// roots per sample and 100 steps.
#[derive(Debug, Clone)]
pub struct MultiRw {
    length: usize,
}

impl MultiRw {
    /// A multi-dimensional walk of `length` steps.
    pub fn new(length: usize) -> Self {
        MultiRw { length }
    }
}

impl SamplingApp for MultiRw {
    fn name(&self) -> &'static str {
        "MultiRW"
    }

    fn steps(&self) -> Steps {
        Steps::Fixed(self.length)
    }

    fn sample_size(&self, _step: usize) -> usize {
        1
    }

    fn initial_transits(&self, _initial_len: usize) -> usize {
        1
    }

    fn num_transits(&self, _step: usize, _initial_len: usize) -> usize {
        1
    }

    fn step_transit(
        &self,
        _step: usize,
        view: &dyn SampleView,
        _transit_idx: usize,
        rng: &mut RngStream,
    ) -> VertexId {
        let roots = view.roots();
        if roots.is_empty() {
            return NULL_VERTEX;
        }
        roots[rng.next_range(roots.len() as u32) as usize]
    }

    fn next(&self, ctx: &mut NextCtx<'_>) -> Option<VertexId> {
        let d = ctx.num_edges();
        if d == 0 {
            return None;
        }
        let i = ctx.rand_range(d);
        Some(ctx.src_edge(i))
    }

    fn update_roots(
        &self,
        roots: &mut Vec<VertexId>,
        _step: usize,
        transit: VertexId,
        new_vertex: VertexId,
    ) {
        if let Some(slot) = roots.iter_mut().find(|r| **r == transit) {
            *slot = new_vertex;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nextdoor_core::{run_cpu, run_nextdoor};
    use nextdoor_gpu::{Gpu, GpuSpec};
    use nextdoor_graph::gen::{ring_lattice, rmat, RmatParams};

    fn roots(n_samples: usize, roots_per: usize, v: usize) -> Vec<Vec<VertexId>> {
        (0..n_samples)
            .map(|s| {
                (0..roots_per)
                    .map(|i| ((s * 31 + i * 7) % v) as VertexId)
                    .collect()
            })
            .collect()
    }

    #[test]
    fn one_vertex_added_per_step() {
        let g = ring_lattice(128, 3, 0);
        let res = run_cpu(&g, &MultiRw::new(10), &roots(8, 5, 128), 3).unwrap();
        for s in 0..8 {
            // 5 roots + 10 walk steps.
            assert_eq!(res.store.final_samples()[s].len(), 15);
        }
    }

    #[test]
    fn roots_evolve() {
        let g = ring_lattice(128, 3, 0);
        let before = roots(4, 5, 128);
        let res = run_cpu(&g, &MultiRw::new(20), &before, 5).unwrap();
        let mut changed = 0;
        for (s, b) in before.iter().enumerate().take(4) {
            if res.store.roots_of(s) != b.as_slice() {
                changed += 1;
            }
        }
        assert!(changed >= 3, "root sets should evolve as the walk moves");
        for s in 0..4 {
            assert_eq!(res.store.roots_of(s).len(), 5, "root count is stable");
        }
    }

    #[test]
    fn every_new_vertex_neighbors_some_past_root() {
        let g = rmat(8, 1500, RmatParams::SKEWED, 3);
        let res = run_cpu(&g, &MultiRw::new(15), &roots(6, 4, 256), 11).unwrap();
        for s in 0..6 {
            let sample = &res.store.final_samples()[s];
            for step in 0..res.stats.steps_run {
                let v = res.store.step_values(step).values[s];
                if v != NULL_VERTEX {
                    // Must be adjacent to something already in the sample.
                    assert!(
                        sample.iter().any(|&u| g.has_edge(u, v)),
                        "sampled vertex {v} is not adjacent to the sample"
                    );
                }
            }
        }
    }

    #[test]
    fn matches_across_engines() {
        let g = rmat(8, 2000, RmatParams::SKEWED, 5);
        let ini = roots(16, 8, 256);
        let cpu = run_cpu(&g, &MultiRw::new(12), &ini, 4).unwrap();
        let mut gpu = Gpu::new(GpuSpec::small());
        let nd = run_nextdoor(&mut gpu, &g, &MultiRw::new(12), &ini, 4).unwrap();
        assert_eq!(cpu.store.final_samples(), nd.store.final_samples());
        for s in 0..16 {
            assert_eq!(cpu.store.roots_of(s), nd.store.roots_of(s));
        }
    }
}
