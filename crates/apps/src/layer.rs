//! Layer sampling (Gao et al., KDD '18).

use nextdoor_core::api::NextCtx;
use nextdoor_core::{SamplingApp, SamplingType, Steps};
use nextdoor_graph::VertexId;

/// Layer sampling: at each step, `step_size` vertices are drawn from the
/// *combined* neighbourhood of all the sample's transits, until the sample
/// reaches `max_size` (paper §3 "Layer Sampling", Figure 2c; the
/// evaluation uses `step_size = 1000`, `max_size = 2000`).
///
/// This is the canonical collective transit sampling application: building
/// the combined neighbourhood dominates its cost, which is exactly the
/// phase NextDoor accelerates transit-parallel (§6.2).
#[derive(Debug, Clone)]
pub struct Layer {
    step_size: usize,
    max_size: usize,
}

impl Layer {
    /// Layer sampling with the given per-step budget and final size.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < step_size <= max_size`.
    pub fn new(step_size: usize, max_size: usize) -> Self {
        assert!(step_size > 0, "step size must be positive");
        assert!(step_size <= max_size, "step size exceeds maximum size");
        Layer {
            step_size,
            max_size,
        }
    }
}

impl SamplingApp for Layer {
    fn name(&self) -> &'static str {
        "Layer"
    }

    fn steps(&self) -> Steps {
        Steps::Infinite
    }

    fn max_steps_cap(&self) -> usize {
        // The sample grows by up to step_size per step; allow slack for
        // steps that sample fewer (NULL draws on empty neighbourhoods).
        4 * self.max_size.div_ceil(self.step_size) + 4
    }

    fn sample_size(&self, _step: usize) -> usize {
        self.step_size
    }

    fn sampling_type(&self) -> SamplingType {
        SamplingType::Collective
    }

    fn next(&self, ctx: &mut NextCtx<'_>) -> Option<VertexId> {
        if ctx.sample_len() >= self.max_size {
            return None;
        }
        let d = ctx.num_edges();
        if d == 0 {
            return None;
        }
        let i = ctx.rand_range(d);
        Some(ctx.src_edge(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nextdoor_core::{run_cpu, run_nextdoor, run_sample_parallel};
    use nextdoor_gpu::{Gpu, GpuSpec};
    use nextdoor_graph::gen::{ring_lattice, rmat, RmatParams};

    #[test]
    fn samples_stop_near_max_size() {
        let g = ring_lattice(512, 8, 0);
        let init: Vec<Vec<VertexId>> = (0..6).map(|i| vec![(i * 50) as VertexId]).collect();
        let res = run_cpu(&g, &Layer::new(20, 50), &init, 3).unwrap();
        for s in res.store.final_samples() {
            assert!(s.len() >= 50, "sample stopped early at {}", s.len());
            assert!(s.len() < 50 + 20, "sample overshot to {}", s.len());
        }
    }

    #[test]
    fn sampled_vertices_come_from_combined_neighborhood() {
        let g = rmat(8, 3000, RmatParams::SKEWED, 7);
        let init: Vec<Vec<VertexId>> = vec![vec![3], vec![100]];
        let res = run_cpu(&g, &Layer::new(4, 12), &init, 9).unwrap();
        for (s, sample_init) in init.iter().enumerate().take(2) {
            // Step 0 draws only from the root's neighbourhood.
            let root = sample_init[0];
            for &v in &res.store.step_values(0).values[s * 4..(s + 1) * 4] {
                if v != nextdoor_core::NULL_VERTEX {
                    assert!(g.has_edge(root, v));
                }
            }
        }
    }

    #[test]
    fn matches_across_engines() {
        let g = rmat(8, 3000, RmatParams::SKEWED, 2);
        let init: Vec<Vec<VertexId>> = (0..12).map(|i| vec![(i * 13 % 256) as VertexId]).collect();
        let app = Layer::new(8, 24);
        let cpu = run_cpu(&g, &app, &init, 21).unwrap();
        let mut g1 = Gpu::new(GpuSpec::small());
        let nd = run_nextdoor(&mut g1, &g, &app, &init, 21).unwrap();
        let mut g2 = Gpu::new(GpuSpec::small());
        let sp = run_sample_parallel(&mut g2, &g, &app, &init, 21).unwrap();
        assert_eq!(cpu.store.final_samples(), nd.store.final_samples());
        assert_eq!(cpu.store.final_samples(), sp.store.final_samples());
    }

    #[test]
    fn nextdoor_builds_combined_neighborhood_cheaper_than_sp() {
        // §6.2: the combined neighbourhood is built transit-parallel with
        // shared-memory staging; SP re-reads every transit's adjacency from
        // global memory per sample. Concentrated roots maximise sharing.
        let g = rmat(9, 8000, RmatParams::SKEWED, 4);
        let init: Vec<Vec<VertexId>> = (0..256).map(|i| vec![(i % 16) as VertexId]).collect();
        let app = Layer::new(16, 48);
        let mut g1 = Gpu::new(GpuSpec::small());
        let nd = run_nextdoor(&mut g1, &g, &app, &init, 5).unwrap();
        let mut g2 = Gpu::new(GpuSpec::small());
        let sp = run_sample_parallel(&mut g2, &g, &app, &init, 5).unwrap();
        assert_eq!(nd.store.final_samples(), sp.store.final_samples());
        assert!(
            nd.stats.counters.gld_transactions < sp.stats.counters.gld_transactions,
            "ND loads {} should undercut SP loads {}",
            nd.stats.counters.gld_transactions,
            sp.stats.counters.gld_transactions
        );
    }

    #[test]
    #[should_panic(expected = "step size exceeds")]
    fn rejects_step_larger_than_max() {
        let _ = Layer::new(100, 50);
    }
}
