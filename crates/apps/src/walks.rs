//! Random-walk applications: DeepWalk, personalised PageRank and node2vec.

use nextdoor_core::api::NextCtx;
use nextdoor_core::{SamplingApp, Steps};
use nextdoor_graph::VertexId;

/// Cap on rejection-sampling probes before falling back to a uniform pick.
/// KnightKing's rejection loops have the same guard; on weights in `[1, 5)`
/// the expected probe count is well under 2.
const MAX_REJECTION_PROBES: usize = 24;

/// DeepWalk: fixed-length, static *biased* random walk where the
/// probability of following an edge is proportional to its weight
/// (Perozzi et al.; paper §3 "Random walks").
///
/// Edge selection uses rejection sampling against the transit's maximum
/// edge weight, as in KnightKing. On an unweighted graph this degenerates
/// to a uniform walk.
#[derive(Debug, Clone)]
pub struct DeepWalk {
    length: usize,
}

impl DeepWalk {
    /// A DeepWalk of `length` steps (the paper evaluates length 100).
    pub fn new(length: usize) -> Self {
        DeepWalk { length }
    }
}

impl SamplingApp for DeepWalk {
    fn name(&self) -> &'static str {
        "DeepWalk"
    }

    fn steps(&self) -> Steps {
        Steps::Fixed(self.length)
    }

    fn sample_size(&self, _step: usize) -> usize {
        1
    }

    fn next(&self, ctx: &mut NextCtx<'_>) -> Option<VertexId> {
        let d = ctx.num_edges();
        if d == 0 {
            return None;
        }
        let transit = ctx.transits()[0];
        let max_w = ctx.max_edge_weight(transit);
        for _ in 0..MAX_REJECTION_PROBES {
            let i = ctx.rand_range(d);
            let w = ctx.edge_weight(i);
            if ctx.rand_f32() * max_w <= w {
                return Some(ctx.src_edge(i));
            }
        }
        let i = ctx.rand_range(d);
        Some(ctx.src_edge(i))
    }
}

/// Personalised PageRank: a variable-length walk that terminates with a
/// fixed probability at each step (paper §3; termination probability 1/100
/// in the evaluation, for a mean length of 100).
#[derive(Debug, Clone)]
pub struct Ppr {
    termination: f32,
    cap: usize,
}

impl Ppr {
    /// A PPR walk with the given termination probability.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < termination <= 1`.
    pub fn new(termination: f32) -> Self {
        assert!(
            termination > 0.0 && termination <= 1.0,
            "termination probability must be in (0, 1]"
        );
        // Cap at ~8 mean lengths: the residual tail probability is e^-8.
        let cap = ((8.0 / termination) as usize).max(8);
        Ppr { termination, cap }
    }
}

impl SamplingApp for Ppr {
    fn name(&self) -> &'static str {
        "PPR"
    }

    fn steps(&self) -> Steps {
        Steps::Infinite
    }

    fn max_steps_cap(&self) -> usize {
        self.cap
    }

    fn sample_size(&self, _step: usize) -> usize {
        1
    }

    fn next(&self, ctx: &mut NextCtx<'_>) -> Option<VertexId> {
        if ctx.rand_f32() < self.termination {
            return None;
        }
        let d = ctx.num_edges();
        if d == 0 {
            return None;
        }
        let i = ctx.rand_range(d);
        Some(ctx.src_edge(i))
    }
}

/// node2vec: a second-order random walk biased by hyper-parameters `p` and
/// `q` (Grover & Leskovec; paper Figure 4a).
///
/// With `v` the current transit and `t` the previous one, the unnormalised
/// probability of taking edge `(v, u)` is `p` if `u = t`, `1/q` if `u` is a
/// neighbour of `t`, and `1` otherwise — selected by rejection sampling
/// whose neighbour-of-`t` check is a binary search over `t`'s adjacency
/// (the memory-divergent part the paper calls out in §8.2).
#[derive(Debug, Clone)]
pub struct Node2Vec {
    length: usize,
    p: f32,
    q: f32,
}

impl Node2Vec {
    /// A node2vec walk of `length` steps (the paper uses `p = 2.0`,
    /// `q = 0.5`, length 100).
    ///
    /// # Panics
    ///
    /// Panics unless `p` and `q` are positive.
    pub fn new(length: usize, p: f32, q: f32) -> Self {
        assert!(p > 0.0 && q > 0.0, "p and q must be positive");
        Node2Vec { length, p, q }
    }
}

impl SamplingApp for Node2Vec {
    fn name(&self) -> &'static str {
        "node2vec"
    }

    fn steps(&self) -> Steps {
        Steps::Fixed(self.length)
    }

    fn sample_size(&self, _step: usize) -> usize {
        1
    }

    fn next(&self, ctx: &mut NextCtx<'_>) -> Option<VertexId> {
        let d = ctx.num_edges();
        if d == 0 {
            return None;
        }
        let t = ctx.prev_vertex(2, 0);
        let inv_q = 1.0 / self.q;
        let upper = self.p.max(1.0).max(inv_q);
        for _ in 0..MAX_REJECTION_PROBES {
            let i = ctx.rand_range(d);
            let u = ctx.src_edge(i);
            let w = if u == t {
                self.p
            } else if ctx.has_edge(t, u) {
                inv_q
            } else {
                1.0
            };
            if ctx.rand_f32() * upper <= w {
                return Some(u);
            }
        }
        let i = ctx.rand_range(d);
        Some(ctx.src_edge(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nextdoor_core::{run_cpu, run_nextdoor};
    use nextdoor_gpu::{Gpu, GpuSpec};
    use nextdoor_graph::gen::{ring_lattice, rmat, RmatParams};
    use nextdoor_graph::Csr;

    fn graph() -> Csr {
        rmat(9, 4000, RmatParams::SKEWED, 11).with_random_weights(1.0, 5.0, 2)
    }

    fn init(n: usize, v: usize) -> Vec<Vec<VertexId>> {
        (0..n).map(|i| vec![(i * 7 % v) as VertexId]).collect()
    }

    #[test]
    fn deepwalk_walks_are_edge_paths_of_full_length() {
        let g = graph();
        let res = run_cpu(&g, &DeepWalk::new(20), &init(40, 512), 3).unwrap();
        for s in res.store.final_samples() {
            for w in s.windows(2) {
                assert!(g.has_edge(w[0], w[1]));
            }
        }
    }

    #[test]
    fn deepwalk_prefers_heavy_edges() {
        // A 3-vertex graph where 0 -> 1 has weight 4 and 0 -> 2 weight 1:
        // walks from 0 should land on 1 roughly 4x as often as on 2.
        let g = nextdoor_graph::GraphBuilder::new(3)
            .weighted_edge(0, 1, 4.0)
            .weighted_edge(0, 2, 1.0)
            .build()
            .unwrap();
        let init: Vec<Vec<VertexId>> = (0..4000).map(|_| vec![0]).collect();
        let res = run_cpu(&g, &DeepWalk::new(1), &init, 5).unwrap();
        let mut ones = 0;
        let mut twos = 0;
        for s in res.store.final_samples() {
            match s[1] {
                1 => ones += 1,
                2 => twos += 1,
                other => panic!("unexpected vertex {other}"),
            }
        }
        let ratio = ones as f64 / twos as f64;
        assert!(
            (3.0..5.5).contains(&ratio),
            "weight-4 edge taken {ratio:.2}x as often; expected ~4x"
        );
    }

    #[test]
    fn ppr_lengths_follow_geometric_distribution() {
        let g = ring_lattice(256, 4, 0);
        let res = run_cpu(&g, &Ppr::new(0.1), &init(2000, 256), 7).unwrap();
        let lens: Vec<usize> = res
            .store
            .final_samples()
            .iter()
            .map(|s| s.len() - 1)
            .collect();
        let mean = lens.iter().sum::<usize>() as f64 / lens.len() as f64;
        assert!(
            (6.0..14.0).contains(&mean),
            "mean walk length {mean:.1}, expected ~9-10 for alpha=0.1"
        );
        assert!(lens.iter().any(|&l| l < 3), "some walks end early");
        assert!(lens.iter().any(|&l| l > 15), "some walks run long");
    }

    #[test]
    fn node2vec_low_q_prefers_distant_vertices() {
        // A path graph 0-1-2 plus a triangle 0-1-3: from transit 1 with
        // previous transit 0, vertex 2 (not a neighbour of 0) has weight 1
        // while vertex 3 (neighbour of 0) has weight 1/q. With q >> 1 the
        // walk should rarely visit 3 relative to uniform.
        let g = nextdoor_graph::GraphBuilder::new(4)
            .edge(0, 1)
            .edge(1, 0)
            .edge(1, 2)
            .edge(1, 3)
            .edge(0, 3)
            .edge(3, 0)
            .build()
            .unwrap();
        let init: Vec<Vec<VertexId>> = (0..3000).map(|_| vec![0]).collect();
        // Step 0 moves 0 -> {1, 3}; step 1 applies the bias.
        let biased = run_cpu(&g, &Node2Vec::new(2, 1.0, 8.0), &init, 13).unwrap();
        let mut to_3 = 0;
        let mut to_2 = 0;
        for s in biased.store.final_samples() {
            if s[1] == 1 {
                match s.get(2) {
                    Some(3) => to_3 += 1,
                    Some(2) => to_2 += 1,
                    _ => {}
                }
            }
        }
        assert!(
            (to_3 as f64) < 0.45 * (to_2 as f64),
            "q=8 should suppress common-neighbour hops: to_3={to_3} to_2={to_2}"
        );
    }

    #[test]
    fn walks_match_across_engines() {
        let g = graph();
        let ini = init(64, 512);
        for app in [
            Box::new(DeepWalk::new(12)) as Box<dyn SamplingApp>,
            Box::new(Ppr::new(0.05)),
            Box::new(Node2Vec::new(12, 2.0, 0.5)),
        ] {
            let cpu = run_cpu(&g, app.as_ref(), &ini, 9).unwrap();
            let mut gpu = Gpu::new(GpuSpec::small());
            let nd = run_nextdoor(&mut gpu, &g, app.as_ref(), &ini, 9).unwrap();
            assert_eq!(
                cpu.store.final_samples(),
                nd.store.final_samples(),
                "{} diverged across engines",
                app.name()
            );
        }
    }

    #[test]
    #[should_panic(expected = "termination probability")]
    fn ppr_rejects_zero_termination() {
        let _ = Ppr::new(0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn node2vec_rejects_nonpositive_params() {
        let _ = Node2Vec::new(10, 0.0, 1.0);
    }
}
