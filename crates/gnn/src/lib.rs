//! Minimal GNN training substrate.
//!
//! The paper's Table 1 measures what fraction of a training epoch existing
//! GNNs spend in (CPU) graph sampling, and Table 5 the end-to-end speedup
//! from swapping NextDoor in as the sampler. Reproducing those requires a
//! trainer whose per-batch compute is real and whose sampler is pluggable —
//! not a state-of-the-art GNN. This crate provides:
//!
//! * [`tensor`] — a small dense matrix type with the matmul/activation/
//!   softmax kernels mini-batch training needs;
//! * [`features`] — deterministic synthetic vertex features and labels (the
//!   datasets' real features are not available, and only the *compute
//!   shape* matters for timing);
//! * [`model`] — a two-layer GraphSAGE-style network (mean aggregation of
//!   sampled neighbourhoods, two linear layers, softmax cross-entropy) with
//!   full backpropagation;
//! * [`train`] — the epoch loop with pluggable samplers and a
//!   sampling-vs-training time breakdown.
//!
//! Training compute runs on the host; a documented calibration constant
//! ([`train::GPU_TRAIN_SPEEDUP`]) converts it to an estimated GPU training
//! time, since the paper's baselines train on the V100 while sampling on
//! the CPU.

pub mod features;
pub mod model;
pub mod tensor;
pub mod train;

pub use model::GraphSageModel;
pub use tensor::Matrix;
pub use train::{EpochBreakdown, Trainer};
