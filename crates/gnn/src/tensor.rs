//! Dense row-major matrices and the handful of kernels training needs.

use nextdoor_gpu::rng;

/// A dense row-major `f32` matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// A zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Builds a matrix from a per-entry function.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Deterministic He-style initialisation keyed by `seed`.
    pub fn he_init(rows: usize, cols: usize, seed: u64) -> Self {
        let scale = (2.0 / rows as f32).sqrt();
        Matrix::from_fn(rows, cols, |r, c| {
            let u = rng::rand_f32(seed, (r * cols + c) as u64, 1);
            (u * 2.0 - 1.0) * scale
        })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.cols + c]
    }

    /// Mutable element accessor.
    #[inline]
    pub fn get_mut(&mut self, r: usize, c: usize) -> &mut f32 {
        &mut self.data[r * self.cols + c]
    }

    /// Row slice.
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable row slice.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// `self × other`.
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "matmul dimension mismatch");
        let mut out = Matrix::zeros(self.rows, other.cols);
        for r in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(r, k);
                if a == 0.0 {
                    continue;
                }
                let orow = other.row(k);
                let out_row = out.row_mut(r);
                for (o, &b) in out_row.iter_mut().zip(orow) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `selfᵀ × other` without materialising the transpose.
    pub fn t_matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "t_matmul dimension mismatch");
        let mut out = Matrix::zeros(self.cols, other.cols);
        for r in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(r, k);
                if a == 0.0 {
                    continue;
                }
                let orow = other.row(r);
                let out_row = out.row_mut(k);
                for (o, &b) in out_row.iter_mut().zip(orow) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `self × otherᵀ` without materialising the transpose.
    pub fn matmul_t(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "matmul_t dimension mismatch");
        let mut out = Matrix::zeros(self.rows, other.rows);
        for r in 0..self.rows {
            for c in 0..other.rows {
                let mut acc = 0.0;
                for (a, b) in self.row(r).iter().zip(other.row(c)) {
                    acc += a * b;
                }
                *out.get_mut(r, c) = acc;
            }
        }
        out
    }

    /// In-place ReLU; returns the pre-activation mask for backprop.
    pub fn relu_in_place(&mut self) -> Vec<bool> {
        self.data
            .iter_mut()
            .map(|v| {
                let active = *v > 0.0;
                if !active {
                    *v = 0.0;
                }
                active
            })
            .collect()
    }

    /// Zeroes entries whose mask bit is false (ReLU backward).
    pub fn apply_mask(&mut self, mask: &[bool]) {
        assert_eq!(mask.len(), self.data.len(), "mask length mismatch");
        for (v, &m) in self.data.iter_mut().zip(mask) {
            if !m {
                *v = 0.0;
            }
        }
    }

    /// Row-wise softmax in place.
    pub fn softmax_rows(&mut self) {
        for r in 0..self.rows {
            let row = self.row_mut(r);
            let max = row.iter().cloned().fold(f32::MIN, f32::max);
            let mut sum = 0.0;
            for v in row.iter_mut() {
                *v = (*v - max).exp();
                sum += *v;
            }
            for v in row.iter_mut() {
                *v /= sum;
            }
        }
    }

    /// `self -= lr * grad` (SGD step).
    pub fn sgd_step(&mut self, grad: &Matrix, lr: f32) {
        assert_eq!(self.rows, grad.rows, "gradient shape mismatch");
        assert_eq!(self.cols, grad.cols, "gradient shape mismatch");
        for (w, g) in self.data.iter_mut().zip(&grad.data) {
            *w -= lr * g;
        }
    }

    /// Scales every entry.
    pub fn scale(&mut self, s: f32) {
        for v in &mut self.data {
            *v *= s;
        }
    }
}

/// Mean cross-entropy of softmax `probs` against integer `labels`, and the
/// pre-softmax gradient `(probs - onehot) / n`.
pub fn cross_entropy(probs: &Matrix, labels: &[usize]) -> (f32, Matrix) {
    assert_eq!(probs.rows(), labels.len(), "one label per row");
    let n = labels.len() as f32;
    let mut grad = probs.clone();
    let mut loss = 0.0;
    for (r, &y) in labels.iter().enumerate() {
        assert!(y < probs.cols(), "label out of range");
        loss -= probs.get(r, y).max(1e-12).ln();
        *grad.get_mut(r, y) -= 1.0;
    }
    grad.scale(1.0 / n);
    (loss / n, grad)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_small() {
        let a = Matrix::from_fn(2, 3, |r, c| (r * 3 + c) as f32);
        let b = Matrix::from_fn(3, 2, |r, c| (r * 2 + c) as f32);
        let c = a.matmul(&b);
        assert_eq!(c.rows(), 2);
        assert_eq!(c.cols(), 2);
        // First row of a is [0,1,2]; first col of b is [0,2,4].
        assert_eq!(c.get(0, 0), 10.0);
        assert_eq!(c.get(1, 1), 40.0);
    }

    #[test]
    fn transposed_matmuls_agree_with_explicit() {
        let a = Matrix::from_fn(3, 2, |r, c| (r + c) as f32);
        let b = Matrix::from_fn(3, 4, |r, c| (r * c) as f32 + 1.0);
        let t = a.t_matmul(&b);
        // aᵀ is 2x3, so the result is 2x4.
        assert_eq!((t.rows(), t.cols()), (2, 4));
        let explicit = Matrix::from_fn(2, 3, |r, c| a.get(c, r)).matmul(&b);
        assert_eq!(t, explicit);

        let c = Matrix::from_fn(5, 2, |r, c| (r * 2 + c) as f32);
        let d = Matrix::from_fn(3, 2, |r, c| (r + c) as f32);
        let m = c.matmul_t(&d);
        let explicit = c.matmul(&Matrix::from_fn(2, 3, |r, cc| d.get(cc, r)));
        assert_eq!(m, explicit);
    }

    #[test]
    fn relu_roundtrip() {
        let mut m = Matrix::from_fn(1, 4, |_, c| c as f32 - 2.0);
        let mask = m.relu_in_place();
        assert_eq!(m.row(0), &[0.0, 0.0, 0.0, 1.0]);
        assert_eq!(mask, vec![false, false, false, true]);
        let mut g = Matrix::from_fn(1, 4, |_, _| 1.0);
        g.apply_mask(&mask);
        assert_eq!(g.row(0), &[0.0, 0.0, 0.0, 1.0]);
    }

    #[test]
    fn softmax_rows_normalise() {
        let mut m = Matrix::from_fn(2, 3, |r, c| (r + c) as f32);
        m.softmax_rows();
        for r in 0..2 {
            let s: f32 = m.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-6);
            assert!(m.row(r).iter().all(|&v| v > 0.0));
        }
    }

    #[test]
    fn cross_entropy_gradient_points_down() {
        let mut logits = Matrix::from_fn(1, 3, |_, c| c as f32);
        logits.softmax_rows();
        let (loss, grad) = cross_entropy(&logits, &[2]);
        assert!(loss > 0.0);
        assert!(grad.get(0, 2) < 0.0, "true class pushed up");
        assert!(grad.get(0, 0) > 0.0, "wrong classes pushed down");
    }

    #[test]
    fn sgd_moves_against_gradient() {
        let mut w = Matrix::zeros(1, 2);
        let g = Matrix::from_fn(1, 2, |_, c| if c == 0 { 1.0 } else { -1.0 });
        w.sgd_step(&g, 0.5);
        assert_eq!(w.row(0), &[-0.5, 0.5]);
    }

    #[test]
    fn he_init_is_deterministic_and_bounded() {
        let a = Matrix::he_init(16, 8, 3);
        let b = Matrix::he_init(16, 8, 3);
        assert_eq!(a, b);
        let scale = (2.0f32 / 16.0).sqrt();
        assert!(a.row(0).iter().all(|v| v.abs() <= scale));
        assert_ne!(a, Matrix::he_init(16, 8, 4));
    }
}
