//! A two-layer GraphSAGE-style network with full backpropagation.

use nextdoor_graph::VertexId;

use crate::features::{feature_matrix, mean_aggregate};
use crate::tensor::{cross_entropy, Matrix};

/// A two-layer mean-aggregation GNN:
///
/// ```text
/// h   = ReLU([X_root ‖ mean(X_sampled)] · W1)
/// ŷ   = softmax(h · W2)
/// ```
///
/// where `X_root` are the root vertices' features and `mean(X_sampled)` the
/// mean-aggregated features of each root's sampled neighbourhood. Gradients
/// flow through both linear layers (the aggregation is a fixed linear map,
/// as in GraphSAGE-mean inference).
pub struct GraphSageModel {
    /// Input feature dimension (per half of the concatenation).
    pub feature_dim: usize,
    /// Hidden width.
    pub hidden: usize,
    /// Output classes.
    pub classes: usize,
    w1: Matrix,
    w2: Matrix,
    feature_seed: u64,
}

/// One training step's outputs.
pub struct StepOutcome {
    /// Mean cross-entropy loss of the batch.
    pub loss: f32,
    /// Fraction of the batch classified correctly (pre-update).
    pub accuracy: f32,
}

impl GraphSageModel {
    /// Creates a model with He-initialised weights.
    pub fn new(feature_dim: usize, hidden: usize, classes: usize, seed: u64) -> Self {
        GraphSageModel {
            feature_dim,
            hidden,
            classes,
            w1: Matrix::he_init(2 * feature_dim, hidden, seed ^ 0x57A7),
            w2: Matrix::he_init(hidden, classes, seed ^ 0x57A8),
            feature_seed: seed ^ 0xF00D,
        }
    }

    /// Builds the input activation for a batch: root features concatenated
    /// with the mean-aggregated features of each root's sample.
    fn batch_input(&self, roots: &[VertexId], samples: &[Vec<VertexId>]) -> Matrix {
        debug_assert_eq!(roots.len(), samples.len());
        let xf = feature_matrix(roots, self.feature_dim, self.feature_seed);
        let xa = mean_aggregate(samples, self.feature_dim, self.feature_seed);
        Matrix::from_fn(roots.len(), 2 * self.feature_dim, |r, c| {
            if c < self.feature_dim {
                xf.get(r, c)
            } else {
                xa.get(r, c - self.feature_dim)
            }
        })
    }

    /// Runs one SGD step on a batch: `roots[i]`'s label is predicted from
    /// its sampled neighbourhood `samples[i]`.
    ///
    /// # Panics
    ///
    /// Panics if `roots` and `samples` have different lengths.
    pub fn train_step(
        &mut self,
        roots: &[VertexId],
        samples: &[Vec<VertexId>],
        lr: f32,
    ) -> StepOutcome {
        assert_eq!(roots.len(), samples.len(), "one sample per root");
        let labels: Vec<usize> = roots
            .iter()
            .map(|&v| crate::features::vertex_label(v, self.classes, self.feature_seed))
            .collect();
        // Forward.
        let x = self.batch_input(roots, samples);
        let mut h = x.matmul(&self.w1);
        let mask = h.relu_in_place();
        let mut probs = h.matmul(&self.w2);
        probs.softmax_rows();
        let accuracy = {
            let mut correct = 0;
            for (r, &y) in labels.iter().enumerate() {
                let pred = (0..self.classes)
                    .max_by(|&a, &b| probs.get(r, a).total_cmp(&probs.get(r, b)))
                    .expect("classes > 0");
                if pred == y {
                    correct += 1;
                }
            }
            correct as f32 / labels.len() as f32
        };
        // Backward.
        let (loss, dlogits) = cross_entropy(&probs, &labels);
        let dw2 = h.t_matmul(&dlogits);
        let mut dh = dlogits.matmul_t(&self.w2);
        dh.apply_mask(&mask);
        let dw1 = x.t_matmul(&dh);
        self.w2.sgd_step(&dw2, lr);
        self.w1.sgd_step(&dw1, lr);
        StepOutcome { loss, accuracy }
    }

    /// Classification accuracy on a batch without updating weights.
    pub fn evaluate(&self, roots: &[VertexId], samples: &[Vec<VertexId>]) -> f32 {
        let x = self.batch_input(roots, samples);
        let mut h = x.matmul(&self.w1);
        let _ = h.relu_in_place();
        let mut probs = h.matmul(&self.w2);
        probs.softmax_rows();
        let mut correct = 0;
        for (r, &v) in roots.iter().enumerate() {
            let y = crate::features::vertex_label(v, self.classes, self.feature_seed);
            let pred = (0..self.classes)
                .max_by(|&a, &b| probs.get(r, a).total_cmp(&probs.get(r, b)))
                .expect("classes > 0");
            if pred == y {
                correct += 1;
            }
        }
        correct as f32 / roots.len().max(1) as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batch(n: usize) -> (Vec<VertexId>, Vec<Vec<VertexId>>) {
        let roots: Vec<VertexId> = (0..n as u32).collect();
        let samples: Vec<Vec<VertexId>> = roots.iter().map(|&r| vec![r, r + 1, r + 2]).collect();
        (roots, samples)
    }

    #[test]
    fn loss_decreases_over_steps() {
        let mut model = GraphSageModel::new(16, 32, 4, 1);
        let (roots, samples) = batch(128);
        let first = model.train_step(&roots, &samples, 0.5).loss;
        let mut last = first;
        for _ in 0..60 {
            last = model.train_step(&roots, &samples, 0.5).loss;
        }
        assert!(
            last < first * 0.8,
            "loss should drop substantially: {first:.4} -> {last:.4}"
        );
    }

    #[test]
    fn accuracy_beats_chance_after_training() {
        let mut model = GraphSageModel::new(16, 32, 4, 2);
        let (roots, samples) = batch(256);
        for _ in 0..80 {
            model.train_step(&roots, &samples, 0.5);
        }
        let acc = model.evaluate(&roots, &samples);
        assert!(acc > 0.4, "accuracy {acc:.2} should beat 0.25 chance");
    }

    #[test]
    fn train_step_is_deterministic() {
        let (roots, samples) = batch(32);
        let mut a = GraphSageModel::new(8, 16, 3, 5);
        let mut b = GraphSageModel::new(8, 16, 3, 5);
        let la = a.train_step(&roots, &samples, 0.1).loss;
        let lb = b.train_step(&roots, &samples, 0.1).loss;
        assert_eq!(la, lb);
    }

    #[test]
    #[should_panic(expected = "one sample per root")]
    fn mismatched_batch_rejected() {
        let mut model = GraphSageModel::new(4, 8, 2, 1);
        let _ = model.train_step(&[0, 1], &[vec![0]], 0.1);
    }
}
