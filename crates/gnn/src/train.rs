//! The mini-batch training loop with pluggable samplers and timing.

use std::time::Instant;

use nextdoor_graph::VertexId;

use crate::model::GraphSageModel;

/// Calibration constant converting host training time to an estimated GPU
/// training time.
///
/// The paper's configurations train the network on the V100 while sampling
/// on the CPU; our training compute runs on the host, so the epoch
/// breakdown scales it down by this factor to model GPU-resident training.
/// 25× is a conservative dense-kernel speedup for a V100 over one Xeon
/// core. The *shape* of Tables 1 and 5 (which sampler dominates, how the
/// balance shifts with graph size) is insensitive to the exact value; see
/// DESIGN.md.
pub const GPU_TRAIN_SPEEDUP: f64 = 25.0;

/// A pluggable mini-batch sampler: given the batch's root vertices, returns
/// each root's sampled neighbourhood and the sampling time in milliseconds.
///
/// CPU reference samplers report wall-clock time; the NextDoor-backed
/// sampler reports simulated GPU time.
pub type BatchSampler<'a> = dyn FnMut(&[VertexId]) -> (Vec<Vec<VertexId>>, f64) + 'a;

/// Per-epoch timing breakdown.
#[derive(Debug, Clone, Default)]
pub struct EpochBreakdown {
    /// Milliseconds spent producing samples.
    pub sampling_ms: f64,
    /// Estimated GPU milliseconds spent in the training step.
    pub training_ms: f64,
    /// Mean training loss over the epoch.
    pub mean_loss: f32,
    /// Batches processed.
    pub batches: usize,
}

impl EpochBreakdown {
    /// Fraction of the epoch spent sampling (Table 1's metric).
    pub fn sampling_fraction(&self) -> f64 {
        let total = self.sampling_ms + self.training_ms;
        if total == 0.0 {
            0.0
        } else {
            self.sampling_ms / total
        }
    }

    /// Total epoch time in milliseconds.
    pub fn total_ms(&self) -> f64 {
        self.sampling_ms + self.training_ms
    }
}

/// A mini-batch trainer around [`GraphSageModel`].
pub struct Trainer {
    model: GraphSageModel,
    batch_size: usize,
    lr: f32,
}

impl Trainer {
    /// Creates a trainer.
    ///
    /// # Panics
    ///
    /// Panics if `batch_size` is zero.
    pub fn new(model: GraphSageModel, batch_size: usize, lr: f32) -> Self {
        assert!(batch_size > 0, "batch size must be positive");
        Trainer {
            model,
            batch_size,
            lr,
        }
    }

    /// The wrapped model.
    pub fn model(&self) -> &GraphSageModel {
        &self.model
    }

    /// Runs one epoch over `train_vertices`, sampling each batch with
    /// `sampler` and timing both phases.
    pub fn run_epoch(
        &mut self,
        train_vertices: &[VertexId],
        sampler: &mut BatchSampler<'_>,
    ) -> EpochBreakdown {
        let mut breakdown = EpochBreakdown::default();
        let mut loss_sum = 0.0f32;
        for batch in train_vertices.chunks(self.batch_size) {
            let (samples, sampling_ms) = sampler(batch);
            assert_eq!(
                samples.len(),
                batch.len(),
                "sampler must return one sample per root"
            );
            breakdown.sampling_ms += sampling_ms;
            let t0 = Instant::now();
            let outcome = self.model.train_step(batch, &samples, self.lr);
            breakdown.training_ms += t0.elapsed().as_secs_f64() * 1e3 / GPU_TRAIN_SPEEDUP;
            loss_sum += outcome.loss;
            breakdown.batches += 1;
        }
        breakdown.mean_loss = loss_sum / breakdown.batches.max(1) as f32;
        breakdown
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nextdoor_baselines::cpu_samplers::khop_sampler;
    use nextdoor_graph::gen::{rmat, RmatParams};

    #[test]
    fn epoch_times_both_phases() {
        let g = rmat(9, 4000, RmatParams::SKEWED, 1);
        let model = GraphSageModel::new(16, 32, 4, 7);
        let mut trainer = Trainer::new(model, 64, 0.1);
        let verts: Vec<VertexId> = (0..512).collect();
        let mut sampler = |batch: &[VertexId]| {
            let res = khop_sampler(&g, batch, &[5, 3], 3, 2);
            (res.samples, res.wall_ms)
        };
        let b = trainer.run_epoch(&verts, &mut sampler);
        assert_eq!(b.batches, 8);
        assert!(b.sampling_ms > 0.0);
        assert!(b.training_ms > 0.0);
        let f = b.sampling_fraction();
        assert!((0.0..=1.0).contains(&f));
        assert!(b.total_ms() >= b.sampling_ms);
    }

    #[test]
    fn learning_progresses_across_epochs() {
        let g = rmat(8, 2000, RmatParams::SKEWED, 2);
        let model = GraphSageModel::new(16, 32, 4, 9);
        let mut trainer = Trainer::new(model, 128, 0.5);
        let verts: Vec<VertexId> = (0..256).collect();
        let mut sampler = |batch: &[VertexId]| {
            let res = khop_sampler(&g, batch, &[4], 5, 2);
            (res.samples, res.wall_ms)
        };
        let first = trainer.run_epoch(&verts, &mut sampler).mean_loss;
        let mut last = first;
        for _ in 0..30 {
            last = trainer.run_epoch(&verts, &mut sampler).mean_loss;
        }
        assert!(last < first, "loss should fall: {first:.4} -> {last:.4}");
    }

    #[test]
    #[should_panic(expected = "batch size must be positive")]
    fn zero_batch_rejected() {
        let _ = Trainer::new(GraphSageModel::new(4, 8, 2, 1), 0, 0.1);
    }
}
