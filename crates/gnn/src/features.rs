//! Deterministic synthetic vertex features and labels.
//!
//! The paper's datasets ship with real features; for timing experiments
//! only the tensor *shapes* matter, so features are generated from a hash
//! of the vertex id. Labels are derived from features so that training has
//! signal to fit (useful for smoke-testing that learning actually works).

use nextdoor_gpu::rng;
use nextdoor_graph::VertexId;

use crate::tensor::Matrix;

/// Deterministic feature vector of `dim` entries for vertex `v`.
pub fn vertex_features(v: VertexId, dim: usize, seed: u64) -> Vec<f32> {
    (0..dim)
        .map(|i| rng::rand_f32(seed, v as u64, i as u64) * 2.0 - 1.0)
        .collect()
}

/// Deterministic label in `[0, classes)` for vertex `v`, correlated with
/// its features (the sign pattern of the first few entries).
pub fn vertex_label(v: VertexId, classes: usize, seed: u64) -> usize {
    let f = vertex_features(v, 4, seed);
    let mut bits = 0usize;
    for (i, &x) in f.iter().enumerate() {
        if x > 0.0 {
            bits |= 1 << i;
        }
    }
    bits % classes
}

/// Stacks the features of `vertices` into a `(len, dim)` matrix.
pub fn feature_matrix(vertices: &[VertexId], dim: usize, seed: u64) -> Matrix {
    Matrix::from_fn(vertices.len(), dim, |r, c| {
        rng::rand_f32(seed, vertices[r] as u64, c as u64) * 2.0 - 1.0
    })
}

/// Mean of each sample's sampled-vertex features: a `(num_samples, dim)`
/// matrix. This is the mean-aggregation step of GraphSAGE applied to the
/// sampled neighbourhood.
pub fn mean_aggregate(samples: &[Vec<VertexId>], dim: usize, seed: u64) -> Matrix {
    Matrix::from_fn(samples.len(), dim, |r, c| {
        let s = &samples[r];
        if s.is_empty() {
            return 0.0;
        }
        let mut acc = 0.0;
        for &v in s {
            acc += rng::rand_f32(seed, v as u64, c as u64) * 2.0 - 1.0;
        }
        acc / s.len() as f32
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn features_deterministic_and_bounded() {
        let a = vertex_features(5, 16, 1);
        let b = vertex_features(5, 16, 1);
        assert_eq!(a, b);
        assert!(a.iter().all(|v| (-1.0..=1.0).contains(v)));
        assert_ne!(a, vertex_features(6, 16, 1));
    }

    #[test]
    fn labels_in_range_and_distributed() {
        let mut counts = [0usize; 4];
        for v in 0..1000u32 {
            counts[vertex_label(v, 4, 7)] += 1;
        }
        for (c, &n) in counts.iter().enumerate() {
            assert!(n > 100, "class {c} underrepresented: {n}");
        }
    }

    #[test]
    fn feature_matrix_matches_vectors() {
        let m = feature_matrix(&[3, 9], 8, 2);
        assert_eq!(m.row(0), vertex_features(3, 8, 2).as_slice());
        assert_eq!(m.row(1), vertex_features(9, 8, 2).as_slice());
    }

    #[test]
    fn mean_aggregate_averages() {
        let m = mean_aggregate(&[vec![1, 1]], 4, 3);
        let f = vertex_features(1, 4, 3);
        for (c, &fc) in f.iter().enumerate() {
            assert!((m.get(0, c) - fc).abs() < 1e-6);
        }
        let empty = mean_aggregate(&[vec![]], 4, 3);
        assert_eq!(empty.row(0), &[0.0; 4]);
    }
}
