//! A dependency-free JSON parser and subset JSON-Schema validator.
//!
//! The repo hand-writes all of its JSON (there is no serde in the tree),
//! so CI needs an equally dependency-free way to hold the exported
//! observability artifacts to a contract. [`parse`] is a strict
//! recursive-descent JSON parser; [`validate`] checks a value against a
//! schema document using the subset of JSON Schema the checked-in schemas
//! under `schemas/` use: `type` (including `"integer"`), `required`,
//! `properties`, `items`, `enum` and `const`. Unknown keywords are
//! ignored, unknown object members are allowed — the contract pins shape,
//! not closed-world exactness.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value. Numbers are kept as `f64` (every number the
/// exporters emit is exactly representable or printed from an `f64` in the
/// first place).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string (escapes decoded).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; member order is not part of the contract, so a sorted
    /// map keeps lookups simple.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Member lookup on an object; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The array elements, or `None` for non-arrays.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The string contents, or `None` for non-strings.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// A parse failure, with the byte offset it happened at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the input.
    pub at: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, msg: &str) -> Result<T, ParseError> {
        Err(ParseError {
            at: self.i,
            msg: msg.to_string(),
        })
    }

    fn skip_ws(&mut self) {
        while let Some(&c) = self.b.get(self.i) {
            if c == b' ' || c == b'\t' || c == b'\n' || c == b'\r' {
                self.i += 1;
            } else {
                break;
            }
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), ParseError> {
        if self.b.get(self.i) == Some(&c) {
            self.i += 1;
            Ok(())
        } else {
            self.err(&format!("expected '{}'", c as char))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        self.skip_ws();
        match self.b.get(self.i) {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c.is_ascii_digit() || *c == b'-' => self.number(),
            _ => self.err("expected a value"),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, ParseError> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            self.err(&format!("expected '{word}'"))
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.i;
        if self.b.get(self.i) == Some(&b'-') {
            self.i += 1;
        }
        while self
            .b
            .get(self.i)
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.i += 1;
        }
        let s = std::str::from_utf8(&self.b[start..self.i]).expect("digits are ASCII");
        match s.parse::<f64>() {
            Ok(v) if v.is_finite() => Ok(Json::Num(v)),
            _ => self.err("malformed number"),
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.b.get(self.i) {
                None => return self.err("unterminated string"),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    let esc = *self.b.get(self.i).ok_or(ParseError {
                        at: self.i,
                        msg: "unterminated escape".into(),
                    })?;
                    self.i += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .b
                                .get(self.i..self.i + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok());
                            let Some(code) = hex else {
                                return self.err("malformed \\u escape");
                            };
                            self.i += 4;
                            // Surrogate pairs are not emitted by our
                            // exporters; map lone surrogates to U+FFFD
                            // rather than failing the whole document.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        _ => return self.err("unknown escape"),
                    }
                }
                Some(&c) => {
                    if c < 0x20 {
                        return self.err("control character in string");
                    }
                    // Copy the full UTF-8 sequence starting here.
                    let ch_len = match c {
                        0x00..=0x7F => 1,
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    let Some(chunk) = self.b.get(self.i..self.i + ch_len) else {
                        return self.err("truncated UTF-8");
                    };
                    let Ok(s) = std::str::from_utf8(chunk) else {
                        return self.err("invalid UTF-8");
                    };
                    out.push_str(s);
                    self.i += ch_len;
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut v = Vec::new();
        self.skip_ws();
        if self.b.get(self.i) == Some(&b']') {
            self.i += 1;
            return Ok(Json::Arr(v));
        }
        loop {
            v.push(self.value()?);
            self.skip_ws();
            match self.b.get(self.i) {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Json::Arr(v));
                }
                _ => return self.err("expected ',' or ']'"),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut m = BTreeMap::new();
        self.skip_ws();
        if self.b.get(self.i) == Some(&b'}') {
            self.i += 1;
            return Ok(Json::Obj(m));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            m.insert(key, val);
            self.skip_ws();
            match self.b.get(self.i) {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Json::Obj(m));
                }
                _ => return self.err("expected ',' or '}'"),
            }
        }
    }
}

/// Parses a complete JSON document (trailing whitespace allowed, trailing
/// garbage rejected).
///
/// # Errors
///
/// [`ParseError`] with the byte offset of the first malformed construct.
pub fn parse(text: &str) -> Result<Json, ParseError> {
    let mut p = Parser {
        b: text.as_bytes(),
        i: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.i != p.b.len() {
        return p.err("trailing garbage after document");
    }
    Ok(v)
}

/// Validates `value` against `schema`, appending one message per violation
/// to `errors` with a JSON-Pointer-style path. Returns `true` when no
/// violation was found under this subtree.
pub fn validate(value: &Json, schema: &Json, path: &str, errors: &mut Vec<String>) -> bool {
    let before = errors.len();
    if let Some(ty) = schema.get("type").and_then(Json::as_str) {
        let ok = match ty {
            "object" => matches!(value, Json::Obj(_)),
            "array" => matches!(value, Json::Arr(_)),
            "string" => matches!(value, Json::Str(_)),
            "number" => matches!(value, Json::Num(_)),
            "integer" => matches!(value, Json::Num(n) if n.fract() == 0.0),
            "boolean" => matches!(value, Json::Bool(_)),
            "null" => matches!(value, Json::Null),
            other => {
                errors.push(format!("{path}: schema has unknown type '{other}'"));
                true
            }
        };
        if !ok {
            errors.push(format!("{path}: expected type {ty}, got {value:?}"));
            return false;
        }
    }
    if let Some(expected) = schema.get("const") {
        if value != expected {
            errors.push(format!(
                "{path}: expected const {expected:?}, got {value:?}"
            ));
        }
    }
    if let Some(options) = schema.get("enum").and_then(Json::as_arr) {
        if !options.contains(value) {
            errors.push(format!("{path}: {value:?} not in enum"));
        }
    }
    if let Some(required) = schema.get("required").and_then(Json::as_arr) {
        for name in required.iter().filter_map(Json::as_str) {
            if value.get(name).is_none() {
                errors.push(format!("{path}: missing required member '{name}'"));
            }
        }
    }
    if let (Some(Json::Obj(props)), Json::Obj(members)) = (schema.get("properties"), value) {
        for (name, sub) in props {
            if let Some(member) = members.get(name) {
                validate(member, sub, &format!("{path}/{name}"), errors);
            }
        }
    }
    if let (Some(item_schema), Json::Arr(items)) = (schema.get("items"), value) {
        for (i, item) in items.iter().enumerate() {
            validate(item, item_schema, &format!("{path}/{i}"), errors);
        }
    }
    errors.len() == before
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let v = parse(r#"{"a": [1, 2.5, -3e2], "b": {"c": "x\n\"y\""}, "d": null}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(
            v.get("b").unwrap().get("c").unwrap().as_str(),
            Some("x\n\"y\"")
        );
        assert_eq!(v.get("d"), Some(&Json::Null));
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{} trailing").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn validates_types_required_and_items() {
        let schema = parse(
            r#"{"type":"object","required":["n","xs"],
                "properties":{"n":{"type":"integer"},
                              "xs":{"type":"array","items":{"type":"number"}}}}"#,
        )
        .unwrap();
        let mut errs = Vec::new();
        let good = parse(r#"{"n": 3, "xs": [1.5, 2]}"#).unwrap();
        assert!(validate(&good, &schema, "$", &mut errs), "{errs:?}");
        let bad = parse(r#"{"n": 3.5, "xs": [1.5, "two"]}"#).unwrap();
        assert!(!validate(&bad, &schema, "$", &mut errs));
        assert_eq!(errs.len(), 2, "{errs:?}");
        let missing = parse(r#"{"n": 3}"#).unwrap();
        errs.clear();
        assert!(!validate(&missing, &schema, "$", &mut errs));
    }
}
