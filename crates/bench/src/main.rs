use nextdoor_core::api::{NextCtx, SamplingApp, Steps};
use nextdoor_core::engine::nextdoor::run_nextdoor;
use nextdoor_gpu::{Gpu, GpuSpec};
use nextdoor_graph::gen::{rmat, RmatParams};
use std::collections::HashMap;

struct Walk(usize);
impl SamplingApp for Walk {
    fn name(&self) -> &'static str {
        "walk"
    }
    fn steps(&self) -> Steps {
        Steps::Fixed(self.0)
    }
    fn sample_size(&self, _: usize) -> usize {
        1
    }
    fn next(&self, ctx: &mut NextCtx<'_>) -> Option<u32> {
        let d = ctx.num_edges();
        if d == 0 {
            return None;
        }
        let i = ctx.rand_range(d);
        Some(ctx.src_edge(i))
    }
}

fn main() {
    let g = rmat(10, 10_000, RmatParams::SKEWED, 7);
    let init: Vec<Vec<u32>> = (0..512).map(|i| vec![(i * 2) as u32]).collect();
    let mut gpu = Gpu::new(GpuSpec::small());
    let _ = run_nextdoor(&mut gpu, &g, &Walk(10), &init, 4);
    let mut by: HashMap<String, (u64, u64, f64)> = HashMap::new();
    for k in gpu.kernel_log() {
        let e = by.entry(k.name.clone()).or_default();
        e.0 += k.counters.gld_transactions;
        e.1 += 1;
        e.2 += k.cycles;
    }
    let mut v: Vec<_> = by.into_iter().collect();
    v.sort_by_key(|x| std::cmp::Reverse(x.1 .0));
    for (n, (tx, cnt, cyc)) in v {
        println!("{n:24} gld_tx={tx:8} launches={cnt:4} cycles={cyc:12.0}");
    }
    println!(
        "total gld={} cycles={}",
        gpu.counters().gld_transactions,
        gpu.counters().cycles
    );
}
