//! `nextdoor-bench`: a profiled smoke run of the NextDoor engine.
//!
//! Runs one random-walk workload on the transit-parallel engine and prints
//! the per-kernel breakdown (the Table 4 view: launches, simulated time,
//! load/store transactions, occupancy, phase). With `--profile`, also
//! exports `results/profile_smoke.json` and
//! `results/profile_smoke.trace.json` — open the latter in
//! `chrome://tracing` or Perfetto to see the per-SM timeline.

use nextdoor_bench::{header, row, BenchConfig};
use nextdoor_core::api::{NextCtx, SamplingApp, Steps};
use nextdoor_core::engine::nextdoor::run_nextdoor;
use nextdoor_gpu::Gpu;
use nextdoor_graph::Dataset;

struct Walk(usize);
impl SamplingApp for Walk {
    fn name(&self) -> &'static str {
        "walk"
    }
    fn steps(&self) -> Steps {
        Steps::Fixed(self.0)
    }
    fn sample_size(&self, _: usize) -> usize {
        1
    }
    fn next(&self, ctx: &mut NextCtx<'_>) -> Option<u32> {
        let d = ctx.num_edges();
        if d == 0 {
            return None;
        }
        let i = ctx.rand_range(d);
        Some(ctx.src_edge(i))
    }
}

fn main() {
    let cfg = BenchConfig::from_args();
    let g = cfg.graph(Dataset::Ppi);
    let init = cfg.walk_init(&g);
    let mut gpu = Gpu::new(cfg.gpu.clone());
    let res = run_nextdoor(&mut gpu, &g, &Walk(10), &init, cfg.seed).expect("smoke run succeeds");

    header(
        "per-kernel breakdown (10-step walk, NextDoor engine)",
        &["phase", "launches", "ms", "gld_tx", "gst_tx", "occup"],
    );
    for k in &res.stats.profile.kernels {
        row(
            &k.name,
            &[
                k.phase.label().to_string(),
                k.launches.to_string(),
                format!("{:.3}", k.ms),
                k.counters.gld_transactions.to_string(),
                k.counters.gst_transactions.to_string(),
                format!("{:.2}", k.avg_occupancy),
            ],
        );
    }
    println!(
        "\ntotal {:.3}ms over {} steps ({} kernel launches); scheduling {:.3}ms",
        res.stats.total_ms,
        res.stats.steps_run,
        res.stats.profile.total_launches(),
        res.stats.scheduling_ms,
    );
    cfg.export_profile("smoke", &gpu);
}
