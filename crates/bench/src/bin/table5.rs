//! Table 5: end-to-end training speedup after integrating NextDoor as the
//! sampler (paper: 1.03x-4.75x, growing with graph size for FastGCN and
//! LADIES because sampling cost scales with the graph while per-batch
//! training cost stays constant).

use nextdoor_baselines::cpu_samplers as cpu;
use nextdoor_bench::{header, row, BenchConfig};
use nextdoor_core::run_nextdoor;
use nextdoor_gnn::{GraphSageModel, Trainer};
use nextdoor_gpu::Gpu;
use nextdoor_graph::{Dataset, VertexId};

fn main() {
    let cfg = BenchConfig::from_args();
    println!(
        "Table 5: end-to-end GNN speedup with NextDoor sampling (scale {})",
        cfg.scale
    );
    println!("Paper reference: GraphSAGE limited by TF tensor copies; FastGCN 1.25-4.75x,");
    println!("LADIES 1.07-2.34x, ClusterGCN 1.03-1.51x; bigger graphs gain more.");
    let datasets = [
        Dataset::Ppi,
        Dataset::Reddit,
        Dataset::Orkut,
        Dataset::Patents,
        Dataset::LiveJournal,
    ];
    header(
        "epoch speedup",
        &["PPI", "Reddit", "Orkut", "Patents", "LiveJ"],
    );
    for name in ["GraphSAGE", "FastGCN", "LADIES"] {
        let mut cells = Vec::new();
        for dataset in datasets {
            let graph = cfg.graph(dataset);
            let verts: Vec<VertexId> = (0..cfg.samples.min(graph.num_vertices()) as u32).collect();
            // Baseline epoch: reference CPU sampler.
            let model = GraphSageModel::new(128, 128, 16, cfg.seed);
            let mut trainer = Trainer::new(model, 64, 0.1);
            let mut cpu_sampler = |batch: &[VertexId]| match name {
                "GraphSAGE" => {
                    let r = cpu::khop_sampler(&graph, batch, &[25, 10], cfg.seed, cfg.threads);
                    (r.samples, r.wall_ms)
                }
                "FastGCN" => {
                    let batches: Vec<Vec<VertexId>> = batch.iter().map(|&v| vec![v]).collect();
                    let r = cpu::fastgcn_sampler(&graph, &batches, 2, 64, cfg.seed, cfg.threads);
                    (r.samples, r.wall_ms)
                }
                "LADIES" => {
                    let batches: Vec<Vec<VertexId>> = batch.iter().map(|&v| vec![v]).collect();
                    let r = cpu::ladies_sampler(&graph, &batches, 2, 64, cfg.seed, cfg.threads);
                    (r.samples, r.wall_ms)
                }
                other => panic!("unknown sampler {other}"),
            };
            let base = trainer.run_epoch(&verts, &mut cpu_sampler);
            // NextDoor epoch: simulated GPU sampling time.
            let model = GraphSageModel::new(128, 128, 16, cfg.seed);
            let mut trainer = Trainer::new(model, 64, 0.1);
            let mut nd_sampler = |batch: &[VertexId]| {
                let init: Vec<Vec<VertexId>> = batch.iter().map(|&v| vec![v]).collect();
                let mut gpu = Gpu::new(cfg.gpu.clone());
                let res = match name {
                    "GraphSAGE" => run_nextdoor(
                        &mut gpu,
                        &graph,
                        &nextdoor_apps::KHop::graphsage(),
                        &init,
                        cfg.seed,
                    ),
                    "FastGCN" => run_nextdoor(
                        &mut gpu,
                        &graph,
                        &nextdoor_apps::FastGcn::new(2, 64),
                        &init,
                        cfg.seed,
                    ),
                    "LADIES" => run_nextdoor(
                        &mut gpu,
                        &graph,
                        &nextdoor_apps::Ladies::new(2, 64),
                        &init,
                        cfg.seed,
                    ),
                    other => panic!("unknown sampler {other}"),
                }
                .expect("bench run");
                (res.store.final_samples(), res.stats.total_ms)
            };
            let with_nd = trainer.run_epoch(&verts, &mut nd_sampler);
            cells.push(format!("{:.2}x", base.total_ms() / with_nd.total_ms()));
        }
        row(name, &cells);
    }
}
