//! Serving-layer benchmark: persistent sessions and request micro-batching.
//!
//! Serves the same stream of sampling requests three ways and records
//! throughput and latency tails into `BENCH_serve.json`:
//!
//! 1. **cold per-request** — every request pays a fresh device and graph
//!    upload (the one-shot `run_nextdoor` path a service would take without
//!    sessions);
//! 2. **warm per-request** — one [`SamplerSession`] answers each request
//!    alone (upload amortised, no fusion);
//! 3. **warm fused** — a [`SampleServer`] under open-loop load (all
//!    requests submitted up front), so the scheduler coalesces them into
//!    fused launches of up to `max_batch`.
//!
//! All three legs must produce bit-identical samples per request — fusion
//! and session reuse are pure throughput levers. Wall-clock latency is
//! measured per request (submit → result); the fused leg additionally
//! reports the simulated-clock latency split (queued vs service) that the
//! serving layer carves from the device's counter/profile machinery.

use nextdoor_bench::BenchConfig;
use nextdoor_core::api::{NextCtx, SamplingApp, Steps};
use nextdoor_core::engine::nextdoor::run_nextdoor;
use nextdoor_core::session::SamplerSession;
use nextdoor_core::SampleStore;
use nextdoor_gpu::Gpu;
use nextdoor_graph::{Dataset, VertexId};
use nextdoor_serve::{MicroBatcher, Request, SampleServer, ServeConfig};
use std::time::Instant;

struct Walk(usize);
impl SamplingApp for Walk {
    fn name(&self) -> &'static str {
        "walk"
    }
    fn steps(&self) -> Steps {
        Steps::Fixed(self.0)
    }
    fn sample_size(&self, _: usize) -> usize {
        1
    }
    fn next(&self, ctx: &mut NextCtx<'_>) -> Option<u32> {
        let d = ctx.num_edges();
        if d == 0 {
            return None;
        }
        let i = ctx.rand_range(d);
        Some(ctx.src_edge(i))
    }
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

struct Leg {
    total_ms: f64,
    throughput_rps: f64,
    p50_ms: f64,
    p99_ms: f64,
}

fn leg_stats(mut latencies_ms: Vec<f64>, total_ms: f64) -> Leg {
    let n = latencies_ms.len();
    latencies_ms.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    Leg {
        total_ms,
        throughput_rps: n as f64 / (total_ms / 1e3).max(1e-12),
        p50_ms: percentile(&latencies_ms, 50.0),
        p99_ms: percentile(&latencies_ms, 99.0),
    }
}

fn leg_json(name: &str, leg: &Leg) -> String {
    format!(
        "  \"{name}\": {{\n    \"total_ms\": {:.3},\n    \"throughput_rps\": {:.1},\n    \
         \"p50_ms\": {:.4},\n    \"p99_ms\": {:.4}\n  }}",
        leg.total_ms, leg.throughput_rps, leg.p50_ms, leg.p99_ms
    )
}

fn main() {
    let cfg = BenchConfig::from_args();
    let g = cfg.graph(Dataset::Ppi);
    let app_steps = 10;
    let requests = 64usize;
    // Serving requests are mini-batch sized (a training iteration's worth),
    // not experiment sized: cap the per-request workload so per-launch fixed
    // costs — the thing fusion amortises — keep their service-time share.
    let samples_per_request = (cfg.samples / requests).clamp(8, 64);
    let inits: Vec<Vec<Vec<VertexId>>> = (0..requests)
        .map(|r| {
            nextdoor_core::initial_samples_random(
                &g,
                samples_per_request,
                1,
                cfg.seed ^ (0xA000 + r as u64),
            )
            .expect("bench graph is non-empty")
        })
        .collect();
    let seed_of = |r: usize| cfg.seed + r as u64;
    println!(
        "serving {requests} requests x {samples_per_request} samples, walk({app_steps}), \
         graph |V|={} |E|={}",
        g.num_vertices(),
        g.num_edges()
    );

    // Leg 1: cold per-request — fresh device + upload every time.
    let mut cold_lat = Vec::with_capacity(requests);
    let mut cold_out: Vec<SampleStore> = Vec::with_capacity(requests);
    let cold_t0 = Instant::now();
    for (r, init) in inits.iter().enumerate() {
        let t = Instant::now();
        let mut gpu = Gpu::new(cfg.gpu.clone());
        let res = run_nextdoor(&mut gpu, &g, &Walk(app_steps), init, seed_of(r))
            .expect("cold run succeeds");
        cold_lat.push(t.elapsed().as_secs_f64() * 1e3);
        cold_out.push(res.store);
    }
    let cold = leg_stats(cold_lat, cold_t0.elapsed().as_secs_f64() * 1e3);

    // Leg 2: warm per-request — one session, no fusion.
    let mut session = SamplerSession::new(cfg.gpu.clone(), g.clone(), Box::new(Walk(app_steps)))
        .expect("bench graph fits on the device");
    let mut warm_lat = Vec::with_capacity(requests);
    let warm_t0 = Instant::now();
    for (r, init) in inits.iter().enumerate() {
        let t = Instant::now();
        let res = session
            .query(init, seed_of(r))
            .expect("warm query succeeds");
        warm_lat.push(t.elapsed().as_secs_f64() * 1e3);
        assert_eq!(
            res.store.final_samples(),
            cold_out[r].final_samples(),
            "warm session diverged from cold run on request {r}"
        );
    }
    let warm = leg_stats(warm_lat, warm_t0.elapsed().as_secs_f64() * 1e3);

    // Leg 3: warm fused — open-loop load on the micro-batching server.
    let serve_cfg = ServeConfig {
        max_batch: 8,
        max_queue: requests,
        default_deadline_ms: None,
    };
    let server = SampleServer::start(
        MicroBatcher::new(session, serve_cfg).expect("bench serve config is valid"),
    );
    let client = server.client();
    let fused_t0 = Instant::now();
    let tickets: Vec<(Instant, _)> = inits
        .iter()
        .enumerate()
        .map(|(r, init)| {
            let req = Request::new(init.clone(), seed_of(r));
            (
                Instant::now(),
                client.submit(req).expect("server accepts while running"),
            )
        })
        .collect();
    let mut fused_lat = Vec::with_capacity(requests);
    let mut sim_queued = Vec::with_capacity(requests);
    let mut sim_service = Vec::with_capacity(requests);
    let mut batch_sizes = Vec::with_capacity(requests);
    for (r, (submitted, ticket)) in tickets.into_iter().enumerate() {
        let resp = ticket.wait().expect("fused request succeeds");
        fused_lat.push(submitted.elapsed().as_secs_f64() * 1e3);
        sim_queued.push(resp.latency.queued_ms);
        sim_service.push(resp.latency.service_ms);
        batch_sizes.push(resp.latency.batch_size);
        assert_eq!(
            resp.store.final_samples(),
            cold_out[r].final_samples(),
            "fused batch diverged from cold run on request {r}"
        );
    }
    let fused = leg_stats(fused_lat, fused_t0.elapsed().as_secs_f64() * 1e3);
    let batcher = server.shutdown();
    cfg.export_fleet_obs(
        "serve",
        batcher.session().gpu().spec(),
        batcher.trace(),
        batcher.metrics(),
        &[("session", batcher.session().gpu().profile())],
    );

    let mean_batch = batch_sizes.iter().sum::<usize>() as f64 / batch_sizes.len() as f64;
    sim_queued.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    sim_service.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    println!(
        "cold    {:8.1} req/s  p50 {:.3}ms p99 {:.3}ms",
        cold.throughput_rps, cold.p50_ms, cold.p99_ms
    );
    println!(
        "warm    {:8.1} req/s  p50 {:.3}ms p99 {:.3}ms",
        warm.throughput_rps, warm.p50_ms, warm.p99_ms
    );
    println!(
        "fused   {:8.1} req/s  p50 {:.3}ms p99 {:.3}ms  (mean batch {mean_batch:.1})",
        fused.throughput_rps, fused.p50_ms, fused.p99_ms
    );
    assert!(
        fused.throughput_rps > cold.throughput_rps,
        "warm fused serving must beat cold per-request serving"
    );

    let json = format!(
        "{{\n  \"workload\": \"walk{app_steps}_ppi\",\n  \"requests\": {requests},\n  \
         \"samples_per_request\": {samples_per_request},\n  \"max_batch\": {},\n\
         {},\n{},\n{},\n  \"fused_sim_latency\": {{\n    \"queued_p50_ms\": {:.4},\n    \
         \"queued_p99_ms\": {:.4},\n    \"service_p50_ms\": {:.4},\n    \
         \"service_p99_ms\": {:.4}\n  }},\n  \"mean_batch_size\": {mean_batch:.2},\n  \
         \"bit_identical\": true,\n  \"warm_fused_beats_cold\": true\n}}\n",
        serve_cfg.max_batch,
        leg_json("cold_per_request", &cold),
        leg_json("warm_per_request", &warm),
        leg_json("warm_fused", &fused),
        percentile(&sim_queued, 50.0),
        percentile(&sim_queued, 99.0),
        percentile(&sim_service, 50.0),
        percentile(&sim_service, 99.0),
    );
    std::fs::write("BENCH_serve.json", &json).expect("can write BENCH_serve.json");
    println!("wrote BENCH_serve.json");
}
