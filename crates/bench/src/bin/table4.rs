//! Table 4: global-memory store efficiency and multiprocessor activity of
//! NextDoor (paper: ~100% store efficiency for k-hop and Layer; full SM
//! activity except on the small PPI graph).

use nextdoor_bench::{header, row, AppInit, BenchConfig};
use nextdoor_core::{run_nextdoor, SamplingApp};
use nextdoor_gpu::Gpu;
use nextdoor_graph::Dataset;

fn main() {
    let cfg = BenchConfig::from_args();
    println!(
        "Table 4: store efficiency and multiprocessor activity (scale {})",
        cfg.scale
    );
    println!("Paper reference: store efficiency 98.5-100% (k-hop, Layer);");
    println!("activity 100% everywhere except PPI walks (67.8-70.1%): too few samples.");
    let apps: Vec<(Box<dyn SamplingApp>, AppInit)> = vec![
        (
            Box::new(nextdoor_apps::KHop::new(vec![16, 8])),
            AppInit::Walk,
        ),
        (
            Box::new(nextdoor_apps::Layer::new(256, 512)),
            AppInit::LayerRoots,
        ),
        (Box::new(nextdoor_apps::DeepWalk::new(100)), AppInit::Walk),
        (Box::new(nextdoor_apps::Ppr::new(0.01)), AppInit::Walk),
        (
            Box::new(nextdoor_apps::Node2Vec::new(100, 2.0, 0.5)),
            AppInit::Walk,
        ),
    ];
    header(
        "store efficiency %% / multiprocessor activity %%",
        &["PPI", "Orkut", "Patents", "LiveJ"],
    );
    for (app, kind) in apps {
        let mut cells = Vec::new();
        for dataset in Dataset::MAIN4 {
            let graph = cfg.graph(dataset);
            let init = cfg.init_for(&graph, kind);
            let mut gpu = Gpu::new(cfg.gpu.clone());
            let res =
                run_nextdoor(&mut gpu, &graph, app.as_ref(), &init, cfg.seed).expect("bench run");
            cells.push(format!(
                "{:.0}/{:.0}",
                res.stats.counters.gst_efficiency(),
                res.stats.counters.multiprocessor_activity()
            ));
            cfg.export_profile(
                &format!("table4_{}_{}", app.name(), dataset.spec().abbrev),
                &gpu,
            );
        }
        row(app.name(), &cells);
    }
}
