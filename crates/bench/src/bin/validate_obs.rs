//! Validates an exported observability artifact against a checked-in
//! schema (`schemas/*.schema.json`). CI runs this over the `--profile`
//! exports so a refactor cannot silently change the JSON contract the
//! timeline viewer and downstream tooling rely on.
//!
//! Usage: `validate_obs --schema schemas/serve_metrics.schema.json results/metrics_load.json`
//!
//! Exits 0 when the document parses and satisfies the schema, 1 otherwise
//! (printing one path-qualified message per violation).

use nextdoor_bench::jsonv;
use std::process::ExitCode;

fn load(path: &str, what: &str) -> Result<jsonv::Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{what} {path}: {e}"))?;
    jsonv::parse(&text).map_err(|e| format!("{what} {path}: {e}"))
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (schema_path, file_path) = match args.as_slice() {
        [flag, schema, file] if flag == "--schema" => (schema.clone(), file.clone()),
        _ => {
            return Err("usage: validate_obs --schema <schema.json> <file.json>".to_string());
        }
    };
    let schema = load(&schema_path, "schema")?;
    let doc = load(&file_path, "document")?;
    let mut errors = Vec::new();
    jsonv::validate(&doc, &schema, "$", &mut errors);
    if errors.is_empty() {
        println!("{file_path}: OK ({schema_path})");
        Ok(())
    } else {
        Err(format!(
            "{file_path}: {} schema violation(s):\n  {}",
            errors.len(),
            errors.join("\n  ")
        ))
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}
