//! Figure 6: fraction of NextDoor's execution time spent sampling vs
//! building the scheduling index (paper: the index costs 5% of total time
//! for ClusterGCN on LiveJ up to 40.4% for DeepWalk on Orkut; random walks
//! pay the most because they sample one vertex per step).

use nextdoor_bench::{benchmark_suite, header, row, BenchConfig};
use nextdoor_core::run_nextdoor;
use nextdoor_gpu::Gpu;
use nextdoor_graph::Dataset;

fn main() {
    let cfg = BenchConfig::from_args();
    println!(
        "Figure 6: sampling vs scheduling-index time (scale {})",
        cfg.scale
    );
    println!("Paper reference: index cost is 5%-40.4% of total; highest for random walks.");
    header(
        "scheduling-index share of total NextDoor time",
        &["PPI", "Orkut", "Patents", "LiveJ"],
    );
    let graphs: Vec<_> = Dataset::MAIN4.iter().map(|&d| (d, cfg.graph(d))).collect();
    for (app, kind) in benchmark_suite() {
        let mut cells = Vec::new();
        for (ds, graph) in &graphs {
            let init = cfg.init_for(graph, kind);
            let mut gpu = Gpu::new(cfg.gpu.clone());
            let res =
                run_nextdoor(&mut gpu, graph, app.as_ref(), &init, cfg.seed).expect("bench run");
            let frac = 100.0 * res.stats.scheduling_ms / res.stats.total_ms.max(1e-12);
            cells.push(format!("{frac:.1}%"));
            cfg.export_profile(&format!("fig6_{}_{}", app.name(), ds.spec().abbrev), &gpu);
        }
        row(app.name(), &cells);
    }
}
