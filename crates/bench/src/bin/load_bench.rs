//! Open-loop load generator for the serving layer: sustained overload,
//! mixed widths, deadlines and priorities.
//!
//! Simulates hundreds of clients issuing sampling requests with Poisson
//! arrivals at an offered rate deliberately above the device's service
//! rate, against a single-replica [`FleetBatcher`] (so the retry/backoff
//! path is part of the run: a transient-fault storm lands a third of the
//! way through the stream). Requests mix three root-set widths, three
//! [`Priority`] levels and an SLO deadline calibrated from a measured
//! clean batch — so every scheduling path (width-class formation, EDF,
//! priority tie-breaks, admission backpressure, pre-dispatch expiry
//! shedding, retry with exponential backoff) carries real traffic.
//!
//! Under `--profile` the run exports its observability artifacts — the
//! chrome://tracing fleet timeline (`results/fleet_load.trace.json`, with
//! the shed/expired requests, the storm's backoff spans and an explicit
//! multi-width fused dispatch all visible and linked to their kernel
//! records) and the deterministic metrics snapshot
//! (`results/metrics_load.json`, including per-priority SLO attainment).
//! The trace and metrics digests are folded into
//! `results/load_digest.txt`, so CI's cross-thread-count comparison also
//! pins the whole observability layer bit-for-bit.
//!
//! Everything scheduling-relevant runs on the simulated clock with
//! counter-based RNG, so the run is deterministic: a digest of every
//! request's outcome is written to `results/load_digest.txt` for CI to
//! compare bit-for-bit across host thread counts. Wall-clock latencies are
//! measured too but stay out of the digest.
//!
//! A second experiment isolates the head-of-line-blocking fix: the same
//! mixed-width request set is served (a) interleaved under the width-class
//! scheduler, (b) width-sorted (the old scheduler's best case), and (c)
//! interleaved under an emulation of the old FIFO-prefix rule (drain at
//! every width change). The interleaved run must match the sorted run and
//! beat the FIFO-prefix emulation — the fix makes arrival order
//! irrelevant to fusion.
//!
//! Results are spliced into the `"load"` section of `BENCH_serve.json`
//! (run `serve_bench` first to get the healthy serving regimes in the same
//! file).

use nextdoor_bench::BenchConfig;
use nextdoor_core::api::SamplingApp;
use nextdoor_core::session::{SamplerSession, SessionQuery};
use nextdoor_gpu::{FaultPlan, Gpu, GpuSpec};
use nextdoor_graph::{Csr, Dataset, VertexId};
use nextdoor_serve::{
    BreakerConfig, FleetBatcher, MicroBatcher, PoolConfig, Priority, ReplicaPool, Request,
    ServeConfig, ServeError, SpanKind,
};
use std::time::Instant;

fn app() -> Box<dyn SamplingApp + Send> {
    Box::new(nextdoor_apps::KHop::new(vec![3, 2]))
}

/// Counter-based deterministic RNG (splitmix64) — the generator must not
/// depend on host state, so the arrival script is identical everywhere.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Uniform in (0, 1), never exactly zero so `ln` stays finite.
fn unit(r: u64) -> f64 {
    ((r >> 11) as f64 + 0.5) / (1u64 << 53) as f64
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn sorted(mut v: Vec<f64>) -> Vec<f64> {
    v.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    v
}

/// One scripted arrival: which client sent what, when (simulated ms).
struct Arrival {
    at_ms: f64,
    client: usize,
    init: Vec<Vec<VertexId>>,
    seed: u64,
    priority: Priority,
}

const WIDTHS: [usize; 3] = [1, 2, 4];

fn priority_of(client: usize) -> Priority {
    match client % 7 {
        0 => Priority::High,
        1 | 2 => Priority::Low,
        _ => Priority::Normal,
    }
}

/// The deterministic arrival script: `n` Poisson arrivals at rate
/// `lambda_per_ms`, spread over `clients` simulated clients with
/// client-keyed widths and priorities.
fn arrivals(
    g: &Csr,
    n: usize,
    clients: usize,
    samples_per_request: usize,
    lambda_per_ms: f64,
    seed: u64,
) -> Vec<Arrival> {
    let mut rng = seed ^ 0x10AD_10AD_10AD_10AD;
    let mut t = 0.0f64;
    (0..n)
        .map(|i| {
            t += -unit(splitmix64(&mut rng)).ln() / lambda_per_ms;
            let client = (splitmix64(&mut rng) as usize) % clients;
            let width = WIDTHS[client % WIDTHS.len()];
            let init = nextdoor_core::initial_samples_random(
                g,
                samples_per_request,
                width,
                seed ^ (0x1000 + i as u64),
            )
            .expect("bench graph is non-empty");
            Arrival {
                at_ms: t,
                client,
                init,
                seed: seed + i as u64,
                priority: priority_of(client),
            }
        })
        .collect()
}

/// Simulated service time of one clean max-batch fused launch — the unit
/// every SLO and rate knob is expressed in, measured rather than
/// hard-coded because the cost model varies with the GPU spec.
fn calibrate_batch_ms(spec: &GpuSpec, g: &Csr, arrivals: &[Arrival], cfg: &ServeConfig) -> f64 {
    let session = SamplerSession::new(spec.clone(), g.clone(), app())
        .expect("bench graph fits on the device");
    let mut probe = MicroBatcher::new(session, *cfg).expect("bench serve config is valid");
    for a in arrivals.iter().take(cfg.max_batch) {
        // Same width so the probe is exactly one fused launch.
        probe
            .submit(Request::new(arrivals[0].init.clone(), a.seed))
            .expect("calibration batch fits the queue");
    }
    let served = probe.drain();
    assert!(served.iter().all(|(_, r)| r.is_ok()));
    probe.session().sim_ms()
}

struct LoadOutcome {
    admitted: usize,
    queue_rejected: usize,
    completed: usize,
    deadline_missed: usize,
    launches: u64,
    run_sim_ms: f64,
    digest: String,
    wall_ms: Vec<f64>,
    queued_ms: Vec<f64>,
    service_ms: Vec<f64>,
    total_ms: Vec<f64>,
    batch_sizes: Vec<usize>,
}

/// FNV-1a over a string — pins a multi-KB digest as one line in
/// `results/load_digest.txt`.
fn fnv64(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// FNV-1a over a request's final samples — enough to pin bit-identity in
/// the digest without dumping every vertex.
fn samples_hash(store: &nextdoor_core::SampleStore) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for s in store.final_samples() {
        for v in s {
            h = (h ^ v as u64).wrapping_mul(0x100_0000_01b3);
        }
    }
    h
}

/// The single-replica fleet the open loop runs against. A pool rather
/// than a bare [`MicroBatcher`] so the load run also exercises the
/// retry/backoff path: a transient-fault storm lands mid-stream (see
/// [`run_open_loop`]) and the generous retry budget rides it out. The
/// breaker threshold is set beyond the storm so the lone replica never
/// trips into cool-down (which, at one replica, would degrade-shed the
/// whole queue and drown the overload signal this bench is about).
fn load_fleet(spec: &GpuSpec, g: &Csr, cfg: &ServeConfig, batch_ms: f64) -> FleetBatcher {
    let pool = ReplicaPool::new(
        vec![Gpu::new(spec.clone())],
        g,
        vec![app()],
        PoolConfig {
            max_retries: 24,
            backoff_base_ms: batch_ms / 16.0,
            hedge_after_ms: None,
            breaker: BreakerConfig {
                trip_after: 10_000,
                cooldown_ms: batch_ms,
            },
        },
    )
    .expect("bench graph fits on the device");
    FleetBatcher::new(pool, *cfg).expect("bench serve config is valid")
}

/// Drives the open-loop script against the single-replica fleet. Arrivals
/// are admitted as their simulated arrival time passes the fleet clock (at
/// least one per round so the clock always advances); each round then
/// drains, which serves the backlog and moves the clock. Overload
/// therefore shows up exactly as in a real open-loop system: the queue
/// fills while the device is busy, late arrivals bounce off `QueueFull`,
/// and queued requests outlive their deadline and are shed before
/// dispatch. A third of the way in, a transient-fault storm hits the
/// replica, so the tail of the run also pays retry/backoff.
fn run_open_loop(
    spec: &GpuSpec,
    g: &Csr,
    script: &[Arrival],
    cfg: &ServeConfig,
    batch_ms: f64,
) -> (LoadOutcome, FleetBatcher) {
    let mut b = load_fleet(spec, g, cfg, batch_ms);
    let storm_at = script.len() / 3;
    let mut out = LoadOutcome {
        admitted: 0,
        queue_rejected: 0,
        completed: 0,
        deadline_missed: 0,
        launches: 0,
        run_sim_ms: 0.0,
        digest: String::new(),
        wall_ms: Vec::new(),
        queued_ms: Vec::new(),
        service_ms: Vec::new(),
        total_ms: Vec::new(),
        batch_sizes: Vec::new(),
    };
    let mut meta = std::collections::HashMap::new();
    let mut submitted_wall = std::collections::HashMap::new();
    let mut next = 0usize;
    while next < script.len() || b.pending_len() > 0 {
        let now = b.pool().fleet_ms();
        let mut this_round = 0usize;
        while next < script.len() && (script[next].at_ms <= now || this_round == 0) {
            if next == storm_at {
                // Relative to the replica's live launch counter: the next
                // 60 launches fault transiently, so dispatches fail and
                // the pool's retry/backoff machinery carries the stream.
                b.pool_mut().schedule_faults(
                    0,
                    FaultPlan {
                        transient_launches: (0..60).collect(),
                        ..FaultPlan::new()
                    },
                );
            }
            let a = &script[next];
            let req = Request::new(a.init.clone(), a.seed).with_priority(a.priority);
            match b.submit(req) {
                Ok(id) => {
                    out.admitted += 1;
                    meta.insert(id, next);
                    submitted_wall.insert(id, Instant::now());
                }
                Err(ServeError::QueueFull { .. }) => {
                    out.queue_rejected += 1;
                    out.digest
                        .push_str(&format!("arrival {next} client {} queue-full\n", a.client));
                }
                Err(e) => panic!("unexpected admission outcome: {e}"),
            }
            next += 1;
            this_round += 1;
        }
        for (id, outcome) in b.drain() {
            let i = meta[&id];
            let wall = submitted_wall[&id].elapsed().as_secs_f64() * 1e3;
            out.wall_ms.push(wall);
            match outcome {
                Ok(resp) => {
                    out.completed += 1;
                    out.queued_ms.push(resp.latency.queued_ms);
                    out.service_ms.push(resp.latency.service_ms);
                    out.total_ms.push(resp.latency.total_ms);
                    out.batch_sizes.push(resp.latency.batch_size);
                    out.digest.push_str(&format!(
                        "arrival {i} client {} ok hash {:016x} queued {:?} service {:?}\n",
                        script[i].client,
                        samples_hash(&resp.store),
                        resp.latency.queued_ms,
                        resp.latency.service_ms,
                    ));
                }
                Err(ServeError::DeadlineExceeded {
                    deadline_ms,
                    observed_ms,
                }) => {
                    out.deadline_missed += 1;
                    out.digest.push_str(&format!(
                        "arrival {i} client {} deadline-miss {deadline_ms:?} observed \
                         {observed_ms:?}\n",
                        script[i].client,
                    ));
                }
                Err(e) => panic!("unexpected serving outcome: {e}"),
            }
        }
    }
    out.launches = b.pool().session(0).gpu().launches_issued();
    out.run_sim_ms = b.pool().fleet_ms();
    (out, b)
}

/// Serves `reqs` in one drain on a fresh session; returns
/// `(sim_ms, launches)`.
fn closed_fused(spec: &GpuSpec, g: &Csr, reqs: &[(Vec<Vec<VertexId>>, u64)]) -> (f64, u64) {
    let session = SamplerSession::new(spec.clone(), g.clone(), app())
        .expect("bench graph fits on the device");
    let mut b = MicroBatcher::new(
        session,
        ServeConfig {
            max_queue: reqs.len().max(1),
            ..ServeConfig::default()
        },
    )
    .expect("bench serve config is valid");
    for (init, seed) in reqs {
        b.submit(Request::new(init.clone(), *seed))
            .expect("closed-loop batch fits the queue");
    }
    assert!(b.drain().iter().all(|(_, r)| r.is_ok()));
    (b.session().sim_ms(), b.launches())
}

/// The old FIFO-prefix rule, emulated: drain at every width change, so
/// each maximal equal-width run becomes its own set of launches.
fn closed_fifo_prefix(spec: &GpuSpec, g: &Csr, reqs: &[(Vec<Vec<VertexId>>, u64)]) -> (f64, u64) {
    let session = SamplerSession::new(spec.clone(), g.clone(), app())
        .expect("bench graph fits on the device");
    let mut b = MicroBatcher::new(
        session,
        ServeConfig {
            max_queue: reqs.len().max(1),
            ..ServeConfig::default()
        },
    )
    .expect("bench serve config is valid");
    let mut prev_width = None;
    for (init, seed) in reqs {
        let w = init[0].len();
        if prev_width.is_some_and(|p| p != w) {
            assert!(b.drain().iter().all(|(_, r)| r.is_ok()));
        }
        prev_width = Some(w);
        b.submit(Request::new(init.clone(), *seed))
            .expect("closed-loop batch fits the queue");
    }
    assert!(b.drain().iter().all(|(_, r)| r.is_ok()));
    (b.session().sim_ms(), b.launches())
}

/// Splices the `"load"` section into an existing `BENCH_serve.json`
/// written by `serve_bench`/`chaos_bench`, or writes a standalone object.
fn write_json(section: &str) {
    let path = "BENCH_serve.json";
    let existing = std::fs::read_to_string(path).unwrap_or_default();
    let head = existing.trim_end().strip_suffix('}').map(str::trim_end);
    let merged = match head {
        Some(h) if !h.is_empty() && !h.ends_with('{') => {
            format!("{h},\n  \"load\": {section}\n}}\n")
        }
        _ => format!("{{\n  \"load\": {section}\n}}\n"),
    };
    std::fs::write(path, merged).expect("can write BENCH_serve.json");
    println!("wrote load section into {path}");
}

fn main() {
    let cfg = BenchConfig::from_args();
    let g = cfg.graph(Dataset::Ppi);
    let clients = 512usize;
    let requests = 600usize;
    let samples_per_request = (cfg.samples / 256).clamp(4, 16);
    let serve_cfg = ServeConfig {
        max_batch: 8,
        max_queue: 64,
        default_deadline_ms: None,
    };

    // Rate calibration: measure one clean fused batch, then offer load at
    // 2x the device's ideal service rate so the queue saturates, and hold
    // every request to an SLO of a few batch times.
    let probe_script = arrivals(&g, 8, clients, samples_per_request, 1.0, cfg.seed);
    let batch_ms = calibrate_batch_ms(&cfg.gpu, &g, &probe_script, &serve_cfg);
    let service_rate = serve_cfg.max_batch as f64 / batch_ms; // req per sim-ms
    let lambda = 2.0 * service_rate;
    let slo_ms = 3.0 * batch_ms;
    let serve_cfg = ServeConfig {
        default_deadline_ms: Some(slo_ms),
        ..serve_cfg
    };
    println!(
        "open-loop load: {requests} requests from {clients} clients x {samples_per_request} \
         samples, widths {WIDTHS:?}, khop[3,2], graph |V|={} |E|={}\n\
         calibrated batch {batch_ms:.4} sim-ms -> offered {:.1} req/sim-s \
         (2x service rate), SLO {slo_ms:.4} sim-ms",
        g.num_vertices(),
        g.num_edges(),
        lambda * 1e3,
    );

    let script = arrivals(&g, requests, clients, samples_per_request, lambda, cfg.seed);
    let (load, mut lb) = run_open_loop(&cfg.gpu, &g, &script, &serve_cfg, batch_ms);
    assert_eq!(
        load.completed + load.deadline_missed,
        load.admitted,
        "no admitted request vanishes"
    );
    assert_eq!(load.admitted + load.queue_rejected, requests);
    assert!(
        load.queue_rejected > 0,
        "2x overload must produce sustained QueueFull backpressure"
    );
    assert!(
        load.deadline_missed > 0,
        "queue waits under overload must blow some SLOs"
    );
    assert!(load.completed > 0, "the served fraction still completes");
    let slo_attainment = load.completed as f64 / load.admitted as f64;
    let throughput = load.completed as f64 / (load.run_sim_ms / 1e3).max(1e-12);
    let mean_batch = if load.batch_sizes.is_empty() {
        0.0
    } else {
        load.batch_sizes.iter().sum::<usize>() as f64 / load.batch_sizes.len() as f64
    };
    let wall = sorted(load.wall_ms.clone());
    let queued = sorted(load.queued_ms.clone());
    let service = sorted(load.service_ms.clone());
    let total = sorted(load.total_ms.clone());
    println!(
        "served {:.1} req/s (sim): {} completed, {} SLO misses, {} queue-rejected \
         (attainment {:.3}, mean batch {mean_batch:.2}, {} launches, {} retries)",
        throughput,
        load.completed,
        load.deadline_missed,
        load.queue_rejected,
        slo_attainment,
        load.launches,
        lb.metrics().sim.retries,
    );

    // One explicit multi-width fused dispatch: the scheduler's formation
    // rule keeps batches single-width (that is the head-of-line fix), so
    // the fleet timeline's fused multi-class dispatch — one Dispatch span
    // fanning into one ClassLaunch span per width — is driven directly
    // through the pool.
    let mixed_queries: Vec<SessionQuery> = WIDTHS
        .iter()
        .enumerate()
        .map(|(i, &w)| SessionQuery {
            init: nextdoor_core::initial_samples_random(
                &g,
                samples_per_request,
                w,
                cfg.seed ^ (0x3000 + i as u64),
            )
            .expect("bench graph is non-empty"),
            seed: cfg.seed ^ (0x4000 + i as u64),
        })
        .collect();
    let pr = lb
        .pool_mut()
        .dispatch(&mixed_queries)
        .expect("clean post-run dispatch succeeds");
    assert_eq!(
        pr.fused.class_marks.len(),
        WIDTHS.len(),
        "the mixed dispatch fuses one launch sequence per width class"
    );

    // The acceptance contract on the exported timeline: at least one shed
    // (expired) request, one retry (backoff span), and the multi-width
    // dispatch above, all as distinct spans.
    let trace = lb.trace();
    assert!(
        trace.count(SpanKind::Expired) >= 1,
        "overload must shed at least one expired request into the trace"
    );
    assert!(
        trace.count(SpanKind::Backoff) >= 1 && lb.metrics().sim.retries >= 1,
        "the transient storm must force at least one retry/backoff"
    );
    let mixed_widths: Vec<usize> = trace
        .spans()
        .iter()
        .filter(|s| s.kind == SpanKind::ClassLaunch && s.batch == Some(pr.batch))
        .filter_map(|s| s.width)
        .collect();
    assert_eq!(
        mixed_widths.len(),
        WIDTHS.len(),
        "the mixed dispatch must appear as one ClassLaunch span per width"
    );

    let metrics_digest = lb.metrics().digest();
    let trace_digest = lb.trace().digest();
    let per_priority: Vec<(&str, Priority)> = vec![
        ("high", Priority::High),
        ("normal", Priority::Normal),
        ("low", Priority::Low),
    ];
    for (name, p) in &per_priority {
        let m = lb.metrics().priority(*p);
        println!(
            "  {name:>6}: attainment {} ({} completed, {} missed, {} expired), \
             p99 total {} sim-ms",
            m.slo_attainment()
                .map_or("n/a".into(), |a| format!("{a:.3}")),
            m.completed,
            m.deadline_missed,
            m.expired_shed,
            m.total_ms
                .quantile(0.99)
                .map_or("n/a".into(), |q| format!("{q:.3}")),
        );
    }

    cfg.export_fleet_obs(
        "load",
        &cfg.gpu,
        lb.trace(),
        lb.metrics(),
        &[("replica0", lb.pool().session(0).gpu().profile())],
    );

    // Head-of-line isolation: the same mixed-width set, three ways.
    let mixed: Vec<(Vec<Vec<VertexId>>, u64)> = script
        .iter()
        .take(64)
        .map(|a| (a.init.clone(), a.seed))
        .collect();
    let mut by_width = mixed.clone();
    by_width.sort_by_key(|(init, _)| init[0].len());
    let (interleaved_ms, interleaved_launches) = closed_fused(&cfg.gpu, &g, &mixed);
    let (sorted_ms, sorted_launches) = closed_fused(&cfg.gpu, &g, &by_width);
    let (fifo_ms, fifo_launches) = closed_fifo_prefix(&cfg.gpu, &g, &mixed);
    let interleaved_tp = mixed.len() as f64 / (interleaved_ms / 1e3);
    let fifo_tp = mixed.len() as f64 / (fifo_ms / 1e3);
    println!(
        "mixed-width fusion: interleaved {interleaved_ms:.4} sim-ms ({interleaved_launches} \
         launches) vs width-sorted {sorted_ms:.4} ({sorted_launches}) vs FIFO-prefix emulation \
         {fifo_ms:.4} ({fifo_launches}) -> {:.2}x over FIFO-prefix",
        fifo_ms / interleaved_ms
    );
    assert!(
        (interleaved_ms - sorted_ms).abs() <= 1e-9 * sorted_ms.max(1.0),
        "width-class formation makes arrival order irrelevant: \
         {interleaved_ms} vs {sorted_ms}"
    );
    assert_eq!(interleaved_launches, sorted_launches);
    assert!(
        interleaved_launches < fifo_launches,
        "width classes fuse what FIFO-prefix fragmented"
    );
    assert!(
        interleaved_tp >= fifo_tp,
        "mixed-width fused throughput must not lose to the old FIFO-prefix rule"
    );

    // The digest CI compares across thread counts: every outcome line,
    // then the observability layer folded in as two hashes — the trace and
    // metrics digests are multi-KB `{:?}` dumps, so pin them by FNV.
    let mut digest = load.digest.clone();
    digest.push_str(&format!(
        "metrics-digest fnv64 {:016x}\n",
        fnv64(&metrics_digest)
    ));
    digest.push_str(&format!(
        "trace-digest fnv64 {:016x}\n",
        fnv64(&trace_digest)
    ));
    digest.push_str(&format!("trace-spans {}\n", lb.trace().len()));
    std::fs::create_dir_all("results").expect("can create results/");
    std::fs::write("results/load_digest.txt", &digest).expect("can write the load digest");
    println!("wrote results/load_digest.txt ({} outcomes)", requests);

    let priority_json = per_priority
        .iter()
        .map(|(name, p)| {
            let m = lb.metrics().priority(*p);
            format!(
                "      \"{name}\": {{\n        \"completed\": {},\n        \
                 \"deadline_missed\": {},\n        \"expired_shed\": {},\n        \
                 \"slo_attainment\": {},\n        \"total_p50_ms\": {},\n        \
                 \"total_p99_ms\": {}\n      }}",
                m.completed,
                m.deadline_missed,
                m.expired_shed,
                m.slo_attainment()
                    .map_or("null".into(), |a| format!("{a:.4}")),
                m.total_ms
                    .quantile(0.5)
                    .map_or("null".into(), |q| format!("{q:.4}")),
                m.total_ms
                    .quantile(0.99)
                    .map_or("null".into(), |q| format!("{q:.4}")),
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let section = format!(
        "{{\n    \"clients\": {clients},\n    \"requests\": {requests},\n    \
         \"samples_per_request\": {samples_per_request},\n    \
         \"offered_rps_sim\": {:.1},\n    \"slo_ms\": {slo_ms:.4},\n    \
         \"admitted\": {},\n    \"queue_rejected\": {},\n    \"completed\": {},\n    \
         \"deadline_missed\": {},\n    \"slo_attainment\": {slo_attainment:.4},\n    \
         \"retries\": {},\n    \
         \"attainment_by_priority\": {{\n{priority_json}\n    }},\n    \
         \"throughput_rps_sim\": {throughput:.1},\n    \"launches\": {},\n    \
         \"mean_batch_size\": {mean_batch:.2},\n    \"sim_latency\": {{\n      \
         \"queued_p50_ms\": {:.4},\n      \"queued_p99_ms\": {:.4},\n      \
         \"service_p50_ms\": {:.4},\n      \"service_p99_ms\": {:.4},\n      \
         \"total_p50_ms\": {:.4},\n      \"total_p99_ms\": {:.4}\n    }},\n    \
         \"wall_latency\": {{\n      \"p50_ms\": {:.4},\n      \"p99_ms\": {:.4}\n    }},\n    \
         \"mixed_width_fusion\": {{\n      \"requests\": {},\n      \
         \"interleaved_sim_ms\": {interleaved_ms:.4},\n      \
         \"interleaved_launches\": {interleaved_launches},\n      \
         \"width_sorted_sim_ms\": {sorted_ms:.4},\n      \
         \"fifo_prefix_sim_ms\": {fifo_ms:.4},\n      \
         \"fifo_prefix_launches\": {fifo_launches},\n      \
         \"interleaved_rps_sim\": {interleaved_tp:.1},\n      \
         \"fifo_prefix_rps_sim\": {fifo_tp:.1},\n      \
         \"speedup_over_fifo_prefix\": {:.4}\n    }},\n    \
         \"order_invariant_fusion\": true\n  }}",
        lambda * 1e3,
        load.admitted,
        load.queue_rejected,
        load.completed,
        load.deadline_missed,
        lb.metrics().sim.retries,
        load.launches,
        percentile(&queued, 50.0),
        percentile(&queued, 99.0),
        percentile(&service, 50.0),
        percentile(&service, 99.0),
        percentile(&total, 50.0),
        percentile(&total, 99.0),
        percentile(&wall, 50.0),
        percentile(&wall, 99.0),
        mixed.len(),
        fifo_ms / interleaved_ms,
    );
    write_json(&section);
}
