//! Figure 8: L2 cache read transactions of NextDoor relative to SP
//! (paper: a fraction of SP's, thanks to coalesced reads and caching of
//! transit adjacencies in shared memory and registers).

use nextdoor_bench::{benchmark_suite, header, row, BenchConfig};
use nextdoor_core::{run_nextdoor, run_sample_parallel};
use nextdoor_gpu::Gpu;
use nextdoor_graph::Dataset;

fn main() {
    let cfg = BenchConfig::from_args();
    println!(
        "Figure 8: NextDoor's L2 read transactions relative to SP (scale {})",
        cfg.scale
    );
    println!("Paper reference: NextDoor performs a fraction of SP's L2 loads.");
    header(
        "ND / SP L2 read transactions",
        &["PPI", "Orkut", "Patents", "LiveJ"],
    );
    let graphs: Vec<_> = Dataset::MAIN4.iter().map(|&d| (d, cfg.graph(d))).collect();
    for (app, kind) in benchmark_suite() {
        // The paper plots DeepWalk, PPR, node2vec, k-hop and Layer; the
        // remaining applications "perform a similar number of loads".
        if !matches!(
            app.name(),
            "DeepWalk" | "PPR" | "node2vec" | "k-hop" | "Layer"
        ) {
            continue;
        }
        let mut cells = Vec::new();
        for (ds, graph) in &graphs {
            let init = cfg.init_for(graph, kind);
            let mut g1 = Gpu::new(cfg.gpu.clone());
            let nd =
                run_nextdoor(&mut g1, graph, app.as_ref(), &init, cfg.seed).expect("bench run");
            let mut g2 = Gpu::new(cfg.gpu.clone());
            let sp = run_sample_parallel(&mut g2, graph, app.as_ref(), &init, cfg.seed)
                .expect("bench run");
            let ratio = nd.stats.counters.l2_read_transactions() as f64
                / sp.stats.counters.l2_read_transactions().max(1) as f64;
            cells.push(format!("{ratio:.2}"));
            let abbrev = ds.spec().abbrev;
            cfg.export_profile(&format!("fig8_nd_{}_{}", app.name(), abbrev), &g1);
            cfg.export_profile(&format!("fig8_sp_{}_{}", app.name(), abbrev), &g2);
        }
        row(app.name(), &cells);
    }
}
