//! Section 8.4: sampling graphs that exceed device memory. NextDoor
//! transfers the needed sub-graphs each step; the paper reports 3.3M
//! samples/s on k-hop and 2M on layer sampling for Friendster, with
//! KnightKing faster on cheap walks (DeepWalk, PPR) but NextDoor 1.5x
//! faster on compute-heavy node2vec.

use nextdoor_baselines::knightking::{
    run_knightking, DeepWalkRule, Node2VecRule, PprRule, WalkRule,
};
use nextdoor_bench::{header, row, AppInit, BenchConfig};
use nextdoor_core::large_graph::run_nextdoor_out_of_core;
use nextdoor_core::SamplingApp;
use nextdoor_gpu::Gpu;
use nextdoor_graph::Dataset;

/// A GPU sampling application paired with the KnightKing walk rule that
/// mirrors it (walks only; k-hop and layer have no KnightKing equivalent).
type AppAndRule = (Box<dyn SamplingApp>, Option<Box<dyn WalkRule>>);

fn main() {
    let mut cfg = BenchConfig::from_args();
    // Friendster is 20x larger than the other graphs; shrink accordingly so
    // the default run stays laptop-sized, and scale the PCIe link with the
    // machine (DESIGN.md): the paper's crossover between compute-bound and
    // transfer-bound applications depends on the graph-size-to-bandwidth
    // ratio.
    cfg.scale *= 0.2;
    cfg.gpu.pcie_gbps *= cfg.gpu.num_sms as f64 / 80.0;
    let graph = cfg.graph(Dataset::Friendster);
    // Model a device that holds only a quarter of the graph.
    let budget = graph.size_bytes() / 4;
    println!(
        "Section 8.4: out-of-memory sampling on FriendS stand-in ({} vertices, {} edges)",
        graph.num_vertices(),
        graph.num_edges()
    );
    println!(
        "Device graph budget: {} MiB (graph is {} MiB)",
        budget >> 20,
        graph.size_bytes() >> 20
    );
    println!("Paper reference: k-hop/layer are compute-bound (GPU wins);");
    println!("DeepWalk/PPR are transfer-bound (KnightKing ~2x); node2vec GPU 1.5x.");

    header(
        "throughput (samples/s)",
        &["NextDoor", "KnightKing", "ND/KK"],
    );
    let apps: Vec<AppAndRule> = vec![
        (Box::new(nextdoor_apps::KHop::graphsage()), None),
        // Layer sampling uses a capped batch (its combined neighbourhoods
        // are hundreds of vertices per sample).
        (Box::new(nextdoor_apps::Layer::new(250, 500)), None),
        (
            Box::new(nextdoor_apps::DeepWalk::new(100)),
            Some(Box::new(DeepWalkRule { length: 100 })),
        ),
        (
            Box::new(nextdoor_apps::Ppr::new(0.01)),
            Some(Box::new(PprRule {
                termination: 0.01,
                cap: 800,
            })),
        ),
        (
            Box::new(nextdoor_apps::Node2Vec::new(100, 2.0, 0.5)),
            Some(Box::new(Node2VecRule {
                length: 100,
                p: 2.0,
                q: 0.5,
            })),
        ),
    ];
    for (app, rule) in apps {
        let kind = if app.name() == "Layer" {
            AppInit::LayerRoots
        } else {
            AppInit::Walk
        };
        let init = cfg.init_for(&graph, kind);
        let mut gpu = Gpu::new(cfg.gpu.clone());
        let (_res, ooc) =
            run_nextdoor_out_of_core(&mut gpu, &graph, app.as_ref(), &init, cfg.seed, budget)
                .expect("bench run");
        let kk_tp = rule.map(|r| {
            let roots: Vec<u32> = init.iter().map(|s| s[0]).collect();
            let res = run_knightking(&graph, r.as_ref(), &roots, cfg.seed, cfg.threads);
            roots.len() as f64 / (res.wall_ms / 1e3)
        });
        row(
            app.name(),
            &[
                format!("{:.0}", ooc.samples_per_sec),
                kk_tp.map_or("n/a".into(), |t| format!("{t:.0}")),
                kk_tp.map_or("n/a".into(), |t| format!("{:.2}x", ooc.samples_per_sec / t)),
            ],
        );
    }
}
