//! Sequential-vs-parallel wall-clock of the simulator's host worker pool.
//!
//! Runs the smoke workload (the 10-step walk of `nextdoor-bench`) twice —
//! once with one host worker thread (the exact sequential code path) and
//! once with the configured thread count (default: available parallelism) —
//! verifies the outputs are bit-identical, and records both wall-clock
//! times into `BENCH_parallel.json` as the first datapoint of the
//! parallel-performance trajectory. On a machine with at least 4 cores the
//! parallel leg is expected to be at least 2x faster; on smaller machines
//! the file still records the honest measurement.

use nextdoor_bench::BenchConfig;
use nextdoor_core::api::{NextCtx, SamplingApp, Steps};
use nextdoor_core::engine::nextdoor::run_nextdoor;
use nextdoor_gpu::Gpu;
use nextdoor_graph::Dataset;
use std::time::Instant;

struct Walk(usize);
impl SamplingApp for Walk {
    fn name(&self) -> &'static str {
        "walk"
    }
    fn steps(&self) -> Steps {
        Steps::Fixed(self.0)
    }
    fn sample_size(&self, _: usize) -> usize {
        1
    }
    fn next(&self, ctx: &mut NextCtx<'_>) -> Option<u32> {
        let d = ctx.num_edges();
        if d == 0 {
            return None;
        }
        let i = ctx.rand_range(d);
        Some(ctx.src_edge(i))
    }
}

fn main() {
    let cfg = BenchConfig::from_args();
    let g = cfg.graph(Dataset::Ppi);
    let init = cfg.walk_init(&g);
    let app = Walk(10);
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let parallel_threads = if cfg.gpu.host_threads > 0 {
        cfg.gpu.host_threads
    } else {
        cores
    };

    let run_at = |threads: usize| {
        let mut spec = cfg.gpu.clone();
        spec.host_threads = threads;
        let mut gpu = Gpu::new(spec);
        let start = Instant::now();
        let res = run_nextdoor(&mut gpu, &g, &app, &init, cfg.seed).expect("smoke run succeeds");
        (start.elapsed().as_secs_f64() * 1e3, res)
    };

    let (seq_ms, seq) = run_at(1);
    let (par_ms, par) = run_at(parallel_threads);
    assert_eq!(
        seq.store.final_samples(),
        par.store.final_samples(),
        "parallel launch diverged from the sequential path"
    );
    let speedup = seq_ms / par_ms.max(1e-9);
    println!(
        "smoke walk: sequential {seq_ms:.1}ms, {parallel_threads} threads {par_ms:.1}ms \
         ({speedup:.2}x, {cores} cores)"
    );
    if cores >= 4 && speedup < 2.0 {
        eprintln!("warning: expected >= 2x speedup on a {cores}-core host, got {speedup:.2}x");
    }

    let json = format!(
        "{{\n  \"workload\": \"smoke_walk10_ppi\",\n  \"samples\": {},\n  \
         \"host_cores\": {cores},\n  \"threads_sequential\": 1,\n  \
         \"threads_parallel\": {parallel_threads},\n  \"sequential_ms\": {seq_ms:.3},\n  \
         \"parallel_ms\": {par_ms:.3},\n  \"speedup\": {speedup:.3},\n  \
         \"bit_identical\": true\n}}\n",
        init.len(),
    );
    std::fs::write("BENCH_parallel.json", &json).expect("can write BENCH_parallel.json");
    println!("wrote BENCH_parallel.json");
}
