//! Chaos benchmark: what fault recovery costs the serving tier.
//!
//! Serves the same request stream through a three-replica [`ReplicaPool`]
//! twice — once healthy, once under a scripted chaos plan (one replica
//! killed mid-stream, another stormed with transient faults until its
//! circuit breaker trips and recovers) — and records the degraded-mode
//! throughput next to the healthy baseline in the `"chaos"` section of
//! `BENCH_serve.json`.
//!
//! Both legs run on the simulated fleet clock, so the numbers are
//! deterministic: the chaos leg completes every non-shed request with
//! samples bit-identical to the healthy leg (asserted here), it just pays
//! for the retries, backoffs, cool-down waits and the shrunken batch cap.

use nextdoor_bench::BenchConfig;
use nextdoor_core::api::SamplingApp;
use nextdoor_gpu::{FaultPlan, Gpu, GpuSpec};
use nextdoor_graph::{Csr, Dataset, VertexId};
use nextdoor_serve::{
    BreakerConfig, FleetBatcher, FleetReport, PoolConfig, ReplicaPool, Request, ServeConfig,
    ServeError,
};
use std::collections::HashMap;

fn app() -> Box<dyn SamplingApp + Send> {
    Box::new(nextdoor_apps::KHop::new(vec![3, 2]))
}

fn pool_config(cooldown_ms: f64) -> PoolConfig {
    PoolConfig {
        max_retries: 6,
        backoff_base_ms: cooldown_ms / 10.0,
        hedge_after_ms: None,
        breaker: BreakerConfig {
            trip_after: 2,
            cooldown_ms,
        },
    }
}

fn fleet(spec: &GpuSpec, graph: &Csr, max_queue: usize, cooldown_ms: f64) -> FleetBatcher {
    let gpus = vec![
        Gpu::new(spec.clone()),
        Gpu::new(spec.clone()),
        Gpu::new(spec.clone()),
    ];
    let pool = ReplicaPool::new(
        gpus,
        graph,
        vec![app(), app(), app()],
        pool_config(cooldown_ms),
    )
    .expect("bench graph fits on every replica");
    FleetBatcher::new(
        pool,
        ServeConfig {
            max_batch: 4,
            max_queue,
            default_deadline_ms: None,
        },
    )
    .expect("bench serve config is valid")
}

/// One clean fused batch's simulated milliseconds on `spec` — the scale
/// every breaker/backoff knob must be expressed in, since the cost model
/// (and with it the fleet clock's tick per batch) varies across specs.
fn calibrate_batch_ms(spec: &GpuSpec, graph: &Csr, inits: &[Vec<Vec<VertexId>>], seed: u64) -> f64 {
    let pool = ReplicaPool::new(
        vec![Gpu::new(spec.clone())],
        graph,
        vec![app()],
        PoolConfig::default(),
    )
    .expect("bench graph fits on the calibration replica");
    let mut probe = FleetBatcher::new(
        pool,
        ServeConfig {
            max_batch: 4,
            max_queue: 4,
            default_deadline_ms: None,
        },
    )
    .expect("calibration serve config is valid");
    for (i, init) in inits.iter().take(4).enumerate() {
        probe
            .submit(Request::new(init.clone(), seed + i as u64))
            .expect("calibration batch fits the queue");
    }
    assert!(probe.drain().iter().all(|(_, r)| r.is_ok()));
    probe.pool().fleet_ms()
}

struct LegResult {
    submitted: usize,
    completed: usize,
    shed: usize,
    samples: HashMap<u64, Vec<Vec<u32>>>,
    report: FleetReport,
}

fn tripped_and_recovered(report: &FleetReport) -> bool {
    report.replicas.iter().map(|r| r.trips).sum::<u64>() >= 1
        && report.replicas.iter().map(|r| r.recoveries).sum::<u64>() >= 1
}

/// Serves `inits` through `fleet` in max-queue-sized waves.
///
/// With `chaos_after_first_wave`, the chaos plan lands after the warm-up
/// wave and the stream keeps flowing until the stormed breaker has both
/// tripped and recovered (or the request list runs out — asserted against
/// in `main`); otherwise exactly `limit` requests are served.
fn serve_stream(
    mut fleet: FleetBatcher,
    inits: &[Vec<Vec<VertexId>>],
    seed_of: impl Fn(usize) -> u64,
    wave: usize,
    chaos_after_first_wave: bool,
    limit: Option<usize>,
) -> (LegResult, FleetBatcher) {
    let mut submitted = 0usize;
    let mut completed = 0usize;
    let mut shed = 0usize;
    let mut samples = HashMap::new();
    for (w, chunk) in inits.chunks(wave).enumerate() {
        let take = match limit {
            Some(l) => chunk.len().min(l.saturating_sub(submitted)),
            None => chunk.len(),
        };
        if take == 0 {
            break;
        }
        if w == 1 && chaos_after_first_wave {
            // Mid-stream, relative to each replica's live launch counter:
            // replica 1 drops off the bus, replica 2 storms long enough to
            // trip its breaker across several dispatches before recovery.
            fleet
                .pool_mut()
                .schedule_faults(1, FaultPlan::new().lose_device_at_launch(0));
            fleet.pool_mut().schedule_faults(
                2,
                FaultPlan {
                    transient_launches: (0..110).collect(),
                    ..FaultPlan::new()
                },
            );
        }
        let mut seed_of_id = HashMap::new();
        for (i, init) in chunk[..take].iter().enumerate() {
            let seed = seed_of(submitted + i);
            let id = fleet
                .submit(Request::new(init.clone(), seed))
                .expect("waves sized to max_queue");
            seed_of_id.insert(id, seed);
        }
        submitted += take;
        for (id, outcome) in fleet.drain() {
            match outcome {
                Ok(resp) => {
                    completed += 1;
                    samples.insert(
                        seed_of_id[&id],
                        resp.store
                            .final_samples()
                            .iter()
                            .map(|s| s.to_vec())
                            .collect(),
                    );
                }
                Err(ServeError::Overloaded { .. }) => shed += 1,
                Err(e) => panic!("unexpected serving outcome: {e}"),
            }
        }
        // The chaos leg runs until the recovery story has played out.
        if chaos_after_first_wave && w >= 1 && tripped_and_recovered(&fleet.report()) {
            break;
        }
    }
    let leg = LegResult {
        submitted,
        completed,
        shed,
        samples,
        report: fleet.report(),
    };
    (leg, fleet)
}

fn leg_json(name: &str, leg: &LegResult) -> String {
    let rep = &leg.report;
    // fold from +0.0: an empty iterator's f64 sum is -0.0, which would
    // print as "-0.0000" in the healthy leg.
    let degraded_ms = rep
        .degraded_intervals
        .iter()
        .fold(0.0f64, |acc, (a, b)| acc + (b - a));
    let throughput = leg.completed as f64 / (rep.fleet_ms / 1e3).max(1e-12);
    format!(
        "    \"{name}\": {{\n      \"completed\": {},\n      \"shed\": {},\n      \
         \"fleet_ms\": {:.4},\n      \"throughput_rps_sim\": {:.1},\n      \
         \"retries\": {},\n      \"trips\": {},\n      \"recoveries\": {},\n      \
         \"cooldown_waits\": {},\n      \"degraded_ms\": {:.4}\n    }}",
        leg.completed,
        leg.shed,
        rep.fleet_ms,
        throughput,
        rep.retries,
        rep.replicas.iter().map(|r| r.trips).sum::<u64>(),
        rep.replicas.iter().map(|r| r.recoveries).sum::<u64>(),
        rep.cooldown_waits,
        degraded_ms,
    )
}

/// Splices the `"chaos"` section into an existing `BENCH_serve.json`
/// written by `serve_bench`, or writes a standalone object.
fn write_json(section: &str) {
    let path = "BENCH_serve.json";
    let existing = std::fs::read_to_string(path).unwrap_or_default();
    let head = existing.trim_end().strip_suffix('}').map(str::trim_end);
    let merged = match head {
        Some(h) if !h.is_empty() && !h.ends_with('{') => {
            format!("{h},\n  \"chaos\": {section}\n}}\n")
        }
        _ => format!("{{\n  \"chaos\": {section}\n}}\n"),
    };
    std::fs::write(path, merged).expect("can write BENCH_serve.json");
    println!("wrote chaos section into {path}");
}

fn main() {
    let cfg = BenchConfig::from_args();
    let g = cfg.graph(Dataset::Ppi);
    // An upper bound on the stream; the chaos leg stops early once the
    // stormed breaker has tripped and recovered.
    let max_requests = 144usize;
    let wave = 12usize;
    let samples_per_request = (cfg.samples / 32).clamp(8, 32);
    let inits: Vec<Vec<Vec<VertexId>>> = (0..max_requests)
        .map(|r| {
            nextdoor_core::initial_samples_random(
                &g,
                samples_per_request,
                1,
                cfg.seed ^ (0xC000 + r as u64),
            )
            .expect("bench graph is non-empty")
        })
        .collect();
    let seed_of = |r: usize| cfg.seed + r as u64;
    // Breaker cool-down and retry backoff are absolute simulated
    // milliseconds, but batch durations depend on the GPU spec's cost
    // model — so derive them from a measured clean batch instead of
    // hard-coding a number tuned for one spec.
    let batch_ms = calibrate_batch_ms(&cfg.gpu, &g, &inits, seed_of(0));
    let cooldown_ms = batch_ms * 2.0;
    println!(
        "chaos-serving up to {max_requests} requests x {samples_per_request} samples over \
         3 replicas, khop[3,2], graph |V|={} |E|={} (batch {batch_ms:.4} sim-ms, \
         breaker cooldown {cooldown_ms:.4} sim-ms)",
        g.num_vertices(),
        g.num_edges()
    );

    let (chaos, chaos_fleet) = serve_stream(
        fleet(&cfg.gpu, &g, wave, cooldown_ms),
        &inits,
        seed_of,
        wave,
        true,
        None,
    );
    let requests = chaos.submitted;
    assert_eq!(
        chaos.completed + chaos.shed,
        requests,
        "no request vanishes under chaos"
    );
    // Fleet timeline of the chaos leg: retries, cool-down waits and the
    // degraded batches, one track per replica with flow arrows into each
    // replica's kernel lanes.
    let labels: Vec<String> = (0..3).map(|i| format!("replica{i}")).collect();
    let devices: Vec<(&str, &nextdoor_gpu::Profile)> = labels
        .iter()
        .enumerate()
        .map(|(i, l)| (l.as_str(), chaos_fleet.pool().session(i).gpu().profile()))
        .collect();
    cfg.export_fleet_obs(
        "chaos",
        &cfg.gpu,
        chaos_fleet.trace(),
        chaos_fleet.metrics(),
        &devices,
    );

    let (healthy, _) = serve_stream(
        fleet(&cfg.gpu, &g, wave, cooldown_ms),
        &inits,
        seed_of,
        wave,
        false,
        Some(requests),
    );
    assert_eq!(healthy.completed, requests, "healthy fleet completes all");
    assert_eq!(healthy.shed, 0);
    let trips: u64 = chaos.report.replicas.iter().map(|r| r.trips).sum();
    let recoveries: u64 = chaos.report.replicas.iter().map(|r| r.recoveries).sum();
    assert!(trips >= 1, "the storm must trip a breaker");
    assert!(recoveries >= 1, "the breaker must recover within the run");

    // Recovery never changes samples: every request the chaos leg
    // completed matches the healthy leg bit-for-bit.
    for (seed, got) in &chaos.samples {
        assert_eq!(
            got, &healthy.samples[seed],
            "chaos-run samples diverged for seed {seed}"
        );
    }

    let healthy_tp = healthy.completed as f64 / (healthy.report.fleet_ms / 1e3).max(1e-12);
    let chaos_tp = chaos.completed as f64 / (chaos.report.fleet_ms / 1e3).max(1e-12);
    println!(
        "healthy {healthy_tp:8.1} req/s (sim)   chaos {chaos_tp:8.1} req/s (sim)  \
         [{} completed, {} shed, {} retries, {trips} trips, {recoveries} recoveries]",
        chaos.completed, chaos.shed, chaos.report.retries
    );

    let section = format!(
        "{{\n    \"replicas\": 3,\n    \"requests\": {requests},\n    \
         \"samples_per_request\": {samples_per_request},\n{},\n{},\n    \
         \"degraded_over_healthy_throughput\": {:.4},\n    \
         \"bit_identical_successes\": true\n  }}",
        leg_json("healthy", &healthy),
        leg_json("faulted", &chaos),
        chaos_tp / healthy_tp.max(1e-12),
    );
    write_json(&section);
}
