//! Shard-scaling benchmark: what partitioning the graph across devices
//! buys (and costs) the serving tier.
//!
//! Serves the same request stream through a [`ShardedPool`] at 1, 2 and 4
//! shards, then re-runs the 4-shard configuration with one shard killed
//! mid-stream, and records per-configuration throughput, hand-off traffic
//! and partition quality in the `"shard"` section of `BENCH_serve.json`.
//!
//! Everything runs on the simulated fleet clock: per super-step the clock
//! pays the slowest shard plus the exchange phase (hand-off bytes over the
//! inter-shard link, plus a barrier), so the scaling curve reflects the
//! paper's sub-warp load balance *and* the communication the partition's
//! edge cut induces. Samples are asserted bit-identical across shard
//! counts before any number is written.

use nextdoor_bench::BenchConfig;
use nextdoor_core::api::SamplingApp;
use nextdoor_core::session::SessionQuery;
use nextdoor_gpu::FaultPlan;
use nextdoor_graph::{Csr, Dataset};
use nextdoor_serve::{ServeError, ShardPoolConfig, ShardedPool};
use std::collections::HashMap;

fn app() -> Box<dyn SamplingApp + Send> {
    Box::new(nextdoor_apps::KHop::new(vec![3, 2]))
}

struct LegResult {
    completed: usize,
    shed: usize,
    fleet_ms: f64,
    handoffs: u64,
    handoff_bytes: u64,
    super_steps: u64,
    walkers_lost: u64,
    edge_cut_fraction: f64,
    samples: HashMap<u64, Vec<Vec<u32>>>,
}

/// Serves `queries` through a fresh pool of `shards` shards, optionally
/// killing shard 1 two launches into the second wave.
fn serve_stream(
    cfg: &BenchConfig,
    graph: &Csr,
    queries: &[SessionQuery],
    shards: usize,
    wave: usize,
    lose_shard_mid_stream: bool,
) -> (LegResult, ShardedPool) {
    let mut pool = ShardedPool::new(
        cfg.gpu.clone(),
        graph.clone(),
        app(),
        ShardPoolConfig {
            num_shards: shards,
            placement_seed: cfg.seed,
            ..ShardPoolConfig::default()
        },
    )
    .expect("bench graph shards cleanly");
    let mut completed = 0usize;
    let mut shed = 0usize;
    let mut samples = HashMap::new();
    for (w, chunk) in queries.chunks(wave).enumerate() {
        if w == 1 && lose_shard_mid_stream {
            pool.schedule_faults(1, FaultPlan::new().lose_device_at_launch(2));
        }
        let d = pool.dispatch(chunk).expect("dispatch survives shard loss");
        for (q, r) in chunk.iter().zip(&d.results) {
            match r {
                Ok(store) => {
                    completed += 1;
                    samples.insert(
                        q.seed,
                        store.final_samples().iter().map(|s| s.to_vec()).collect(),
                    );
                }
                Err(ServeError::ShardLost { .. }) => shed += 1,
                Err(e) => panic!("unexpected serving outcome: {e}"),
            }
        }
    }
    let report = pool.report();
    let leg = LegResult {
        completed,
        shed,
        fleet_ms: report.fleet_ms,
        handoffs: report.handoffs,
        handoff_bytes: report.handoff_bytes,
        super_steps: report.super_steps,
        walkers_lost: report.walkers_lost,
        edge_cut_fraction: pool.partition_stats().edge_cut_fraction,
        samples,
    };
    (leg, pool)
}

fn leg_json(name: &str, leg: &LegResult, shards: usize) -> String {
    let throughput = leg.completed as f64 / (leg.fleet_ms / 1e3).max(1e-12);
    format!(
        "    \"{name}\": {{\n      \"shards\": {shards},\n      \"completed\": {},\n      \
         \"shed\": {},\n      \"fleet_ms\": {:.4},\n      \
         \"throughput_rps_sim\": {:.1},\n      \"handoffs\": {},\n      \
         \"handoff_bytes\": {},\n      \"super_steps\": {},\n      \
         \"walkers_lost\": {},\n      \"edge_cut_fraction\": {:.4}\n    }}",
        leg.completed,
        leg.shed,
        leg.fleet_ms,
        throughput,
        leg.handoffs,
        leg.handoff_bytes,
        leg.super_steps,
        leg.walkers_lost,
        leg.edge_cut_fraction,
    )
}

/// Splices the `"shard"` section into an existing `BENCH_serve.json`
/// written by `serve_bench`, or writes a standalone object.
fn write_json(section: &str) {
    let path = "BENCH_serve.json";
    let existing = std::fs::read_to_string(path).unwrap_or_default();
    let head = existing.trim_end().strip_suffix('}').map(str::trim_end);
    let merged = match head {
        Some(h) if !h.is_empty() && !h.ends_with('{') => {
            format!("{h},\n  \"shard\": {section}\n}}\n")
        }
        _ => format!("{{\n  \"shard\": {section}\n}}\n"),
    };
    std::fs::write(path, merged).expect("can write BENCH_serve.json");
    println!("wrote shard section into {path}");
}

fn main() {
    let cfg = BenchConfig::from_args();
    let g = cfg.graph(Dataset::Ppi);
    let requests = 48usize;
    let wave = 12usize;
    let samples_per_request = (cfg.samples / 32).clamp(8, 32);
    let queries: Vec<SessionQuery> = (0..requests)
        .map(|r| {
            let seed = cfg.seed + r as u64;
            SessionQuery {
                init: nextdoor_core::initial_samples_random(
                    &g,
                    samples_per_request,
                    1,
                    cfg.seed ^ (0x54AD + r as u64),
                )
                .expect("bench graph is non-empty"),
                seed,
            }
        })
        .collect();
    println!(
        "shard-serving {requests} requests x {samples_per_request} samples, khop[3,2], \
         graph |V|={} |E|={}",
        g.num_vertices(),
        g.num_edges()
    );

    let shard_counts = [1usize, 2, 4];
    let mut legs = Vec::new();
    for &shards in &shard_counts {
        let (leg, pool) = serve_stream(&cfg, &g, &queries, shards, wave, false);
        assert_eq!(leg.completed, requests, "healthy fleets complete all");
        assert_eq!(leg.shed, 0);
        let throughput = leg.completed as f64 / (leg.fleet_ms / 1e3).max(1e-12);
        println!(
            "{shards} shard(s): {throughput:8.1} req/s (sim)  \
             [{} handoffs, {} super-steps, edge cut {:.3}]",
            leg.handoffs, leg.super_steps, leg.edge_cut_fraction
        );
        if shards == 4 {
            let labels: Vec<String> = (0..shards).map(|s| format!("shard{s}")).collect();
            let devices: Vec<(&str, &nextdoor_gpu::Profile)> = labels
                .iter()
                .enumerate()
                .map(|(s, l)| (l.as_str(), pool.sampler().shard_gpu(s).profile()))
                .collect();
            cfg.export_fleet_obs("shard", &cfg.gpu, pool.trace(), pool.metrics(), &devices);
        }
        legs.push((shards, leg));
    }

    // Sharding must never change the samples: every request matches the
    // single-shard leg bit-for-bit.
    let baseline = &legs[0].1.samples;
    for (shards, leg) in &legs[1..] {
        for (seed, got) in &leg.samples {
            assert_eq!(
                got, &baseline[seed],
                "{shards}-shard samples diverged for seed {seed}"
            );
        }
    }

    // The degraded datapoint: the 4-shard fleet loses shard 1 mid-stream
    // and keeps serving the queries homed on survivors.
    let (lost, _) = serve_stream(&cfg, &g, &queries, 4, wave, true);
    assert!(
        lost.completed + lost.shed == requests,
        "no request vanishes under shard loss"
    );
    assert!(lost.shed > 0, "the dead shard's queries are shed typed");
    assert!(
        lost.walkers_lost > 0,
        "mid-walk walkers died with the shard"
    );
    let lost_tp = lost.completed as f64 / (lost.fleet_ms / 1e3).max(1e-12);
    println!(
        "4 shards, one lost: {lost_tp:8.1} req/s (sim)  \
         [{} completed, {} shed, {} walkers lost]",
        lost.completed, lost.shed, lost.walkers_lost
    );

    let mut parts: Vec<String> = legs
        .iter()
        .map(|(shards, leg)| leg_json(&format!("shards_{shards}"), leg, *shards))
        .collect();
    parts.push(leg_json("shards_4_one_lost", &lost, 4));
    let section = format!(
        "{{\n    \"requests\": {requests},\n    \"samples_per_request\": \
         {samples_per_request},\n{},\n    \"bit_identical_across_shard_counts\": true\n  }}",
        parts.join(",\n"),
    );
    write_json(&section);
}
