//! Autotuning benchmark: profile-guided plans and the hot-transit cache.
//!
//! Two legs, both gated:
//!
//! 1. **Suite leg** — every application of the fig6/fig8 benchmark suite
//!    answers the same short query stream twice from a persistent
//!    [`SamplerSession`]: once untouched (baseline
//!    [`TuningPlan`](nextdoor_core::tuning::TuningPlan)) and once
//!    with [`SamplerSession::enable_autotune`] +
//!    [`SamplerSession::enable_hot_cache`]. Every query's samples must be
//!    bit-identical across the two sessions — tuning moves launch geometry
//!    and cost only — and the autotuned stream's total simulated cost must
//!    not exceed the default stream's (the "autotuned ≥ default"
//!    throughput gate).
//! 2. **Warm cached leg** — the `serve_bench` warm-per-request workload
//!    (walk(10) on PPI, 64 requests) served by a tuned session, wall-clock
//!    timed, and compared against the committed `warm_per_request` numbers
//!    in `BENCH_serve.json`: with the cache keeping hot transits resident
//!    across queries, the warm path must come in below the committed
//!    untuned total.
//!
//! Results are spliced into the `"tune"` section of `BENCH_serve.json`
//! (same convention as `chaos_bench` / `load_bench` / `shard_bench`).

use nextdoor_bench::{benchmark_suite, header, jsonv, ms, row, speedup, BenchConfig};
use nextdoor_core::api::{NextCtx, SamplingApp, Steps};
use nextdoor_core::session::SamplerSession;
use nextdoor_core::tuning::{CacheConfig, TunerConfig};
use nextdoor_graph::{Dataset, VertexId};
use std::time::Instant;

struct Walk(usize);
impl SamplingApp for Walk {
    fn name(&self) -> &'static str {
        "walk"
    }
    fn steps(&self) -> Steps {
        Steps::Fixed(self.0)
    }
    fn sample_size(&self, _: usize) -> usize {
        1
    }
    fn next(&self, ctx: &mut NextCtx<'_>) -> Option<u32> {
        let d = ctx.num_edges();
        if d == 0 {
            return None;
        }
        let i = ctx.rand_range(d);
        Some(ctx.src_edge(i))
    }
}

fn tuning_configs() -> (TunerConfig, CacheConfig) {
    (
        TunerConfig {
            warmup_queries: 1,
            ..TunerConfig::default()
        },
        CacheConfig {
            min_hits: 2,
            ..CacheConfig::default()
        },
    )
}

struct AppResult {
    name: String,
    default_ms: f64,
    tuned_ms: f64,
    cache_hit_rate: f64,
    plan_updates: u64,
}

/// Runs one app's query stream through a default and a tuned session,
/// asserting per-query bit-identity, and returns the simulated costs.
fn run_app(
    cfg: &BenchConfig,
    g: &nextdoor_graph::Csr,
    app_default: Box<dyn SamplingApp + Send>,
    app_tuned: Box<dyn SamplingApp + Send>,
    init: &[Vec<VertexId>],
    queries: u64,
) -> AppResult {
    let name = app_default.name().to_string();
    let mut sd = SamplerSession::new(cfg.gpu.clone(), g.clone(), app_default)
        .expect("bench graph fits on the device");
    let t0 = sd.sim_ms();
    let mut outs = Vec::with_capacity(queries as usize);
    for q in 0..queries {
        outs.push(sd.query(init, cfg.seed + q).expect("default query runs"));
    }
    let default_ms = sd.sim_ms() - t0;

    let mut st = SamplerSession::new(cfg.gpu.clone(), g.clone(), app_tuned)
        .expect("bench graph fits on the device");
    let (tuner, cache) = tuning_configs();
    st.enable_autotune(tuner);
    st.enable_hot_cache(cache);
    let t0 = st.sim_ms();
    for q in 0..queries {
        let r = st.query(init, cfg.seed + q).expect("tuned query runs");
        assert_eq!(
            r.store.final_samples(),
            outs[q as usize].store.final_samples(),
            "{name}: tuned query {q} diverged from the default session"
        );
    }
    let tuned_ms = st.sim_ms() - t0;
    let stats = st.cache_stats().expect("cache enabled");
    AppResult {
        name,
        default_ms,
        tuned_ms,
        cache_hit_rate: stats.hit_rate(),
        plan_updates: st.plan_updates(),
    }
}

/// The committed `warm_per_request` numbers from `BENCH_serve.json`, if the
/// file is present and carries them.
fn committed_warm() -> Option<(f64, f64)> {
    let text = std::fs::read_to_string("BENCH_serve.json").ok()?;
    let root = jsonv::parse(&text).ok()?;
    let warm = root.get("warm_per_request")?;
    let num = |k: &str| match warm.get(k) {
        Some(jsonv::Json::Num(v)) => Some(*v),
        _ => None,
    };
    Some((num("total_ms")?, num("throughput_rps")?))
}

/// Splices the `"tune"` section into an existing `BENCH_serve.json`
/// written by `serve_bench`, or writes a standalone object.
fn write_json(section: &str) {
    let path = "BENCH_serve.json";
    let existing = std::fs::read_to_string(path).unwrap_or_default();
    let head = existing.trim_end().strip_suffix('}').map(str::trim_end);
    let merged = match head {
        Some(h) if !h.is_empty() && !h.ends_with('{') => {
            format!("{h},\n  \"tune\": {section}\n}}\n")
        }
        _ => format!("{{\n  \"tune\": {section}\n}}\n"),
    };
    std::fs::write(path, merged).expect("can write BENCH_serve.json");
    println!("wrote tune section into {path}");
}

fn main() {
    let mut cfg = BenchConfig::from_args();
    // The suite leg serves a query *stream* per app (queries × apps × two
    // sessions), so cap the per-query workload at mini-batch scale.
    cfg.samples = cfg.samples.min(4096);
    let g = cfg.graph(Dataset::Ppi);
    let queries = 5u64;
    println!(
        "autotuned vs default, {queries} queries/app, graph |V|={} |E|={}",
        g.num_vertices(),
        g.num_edges()
    );

    // Leg 1: the benchmark suite, default vs autotuned.
    header(
        "autotuned vs default (simulated cost of the query stream)",
        &["default", "autotuned", "speedup", "cache hits", "replans"],
    );
    let mut results = Vec::new();
    for ((app_d, kind), (app_t, _)) in benchmark_suite().into_iter().zip(benchmark_suite()) {
        let init = cfg.init_for(&g, kind);
        let r = run_app(&cfg, &g, app_d, app_t, &init, queries);
        row(
            &r.name,
            &[
                ms(r.default_ms),
                ms(r.tuned_ms),
                speedup(r.default_ms, r.tuned_ms),
                format!("{:.0}%", r.cache_hit_rate * 100.0),
                r.plan_updates.to_string(),
            ],
        );
        results.push(r);
    }
    let default_total: f64 = results.iter().map(|r| r.default_ms).sum();
    let tuned_total: f64 = results.iter().map(|r| r.tuned_ms).sum();
    row(
        "total",
        &[
            ms(default_total),
            ms(tuned_total),
            speedup(default_total, tuned_total),
            String::new(),
            String::new(),
        ],
    );
    assert!(
        tuned_total <= default_total,
        "autotuned suite cost {tuned_total:.3}ms exceeds default {default_total:.3}ms — \
         the never-worse gate failed"
    );

    // Leg 2: the serve_bench warm workload on a tuned session, wall-clock.
    let requests = 64usize;
    let samples_per_request = (cfg.samples / requests).clamp(8, 64);
    let inits: Vec<Vec<Vec<VertexId>>> = (0..requests)
        .map(|r| {
            nextdoor_core::initial_samples_random(
                &g,
                samples_per_request,
                1,
                cfg.seed ^ (0xA000 + r as u64),
            )
            .expect("bench graph is non-empty")
        })
        .collect();
    let mut warm = SamplerSession::new(cfg.gpu.clone(), g.clone(), Box::new(Walk(10)))
        .expect("bench graph fits on the device");
    let (tuner, cache) = tuning_configs();
    warm.enable_autotune(tuner);
    warm.enable_hot_cache(cache);
    // Epoch 0 warms the tuner, the transit arena and the scheduling-index
    // memo — a training loop replays the same mini-batch stream every
    // epoch, and the committed warm numbers are per-epoch. Bit-identity is
    // checked against an untuned session on the way.
    let mut plain = SamplerSession::new(cfg.gpu.clone(), g.clone(), Box::new(Walk(10)))
        .expect("bench graph fits on the device");
    for (r, init) in inits.iter().enumerate() {
        let tuned = warm
            .query(init, cfg.seed + r as u64)
            .expect("warm-up query runs");
        let untuned = plain
            .query(init, cfg.seed + r as u64)
            .expect("untuned query runs");
        assert_eq!(
            tuned.store.final_samples(),
            untuned.store.final_samples(),
            "tuned warm request {r} diverged from the untuned session"
        );
    }
    // Epoch 1: the measured warm pass over the identical request stream.
    let mut lat: Vec<f64> = Vec::with_capacity(requests);
    let t0 = Instant::now();
    for (r, init) in inits.iter().enumerate() {
        let t = Instant::now();
        warm.query(init, cfg.seed + r as u64)
            .expect("warm tuned query runs");
        lat.push(t.elapsed().as_secs_f64() * 1e3);
    }
    let warm_total_ms = t0.elapsed().as_secs_f64() * 1e3;
    let warm_rps = requests as f64 / (warm_total_ms / 1e3).max(1e-12);
    lat.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    let p50 = lat[lat.len() / 2];
    let p99 = lat[(lat.len() * 99 / 100).min(lat.len() - 1)];
    let warm_stats = warm.cache_stats().expect("cache enabled");
    println!(
        "\nwarm cached  {warm_rps:8.1} req/s  total {warm_total_ms:.3}ms  \
         p50 {p50:.4}ms p99 {p99:.4}ms  (cache hit rate {:.0}%)",
        warm_stats.hit_rate() * 100.0
    );
    let committed = committed_warm();
    if let Some((committed_total, committed_rps)) = committed {
        println!(
            "committed warm_per_request: total {committed_total:.3}ms ({committed_rps:.1} req/s)"
        );
        assert!(
            warm_total_ms < committed_total,
            "tuned warm path ({warm_total_ms:.3}ms) must beat the committed untuned warm \
             numbers ({committed_total:.3}ms)"
        );
    } else {
        println!("BENCH_serve.json has no warm_per_request section; run serve_bench first");
    }

    let apps_json: Vec<String> = results
        .iter()
        .map(|r| {
            format!(
                "      {{\"app\": \"{}\", \"default_ms\": {:.4}, \"tuned_ms\": {:.4}, \
                 \"cache_hit_rate\": {:.4}, \"plan_updates\": {}}}",
                r.name, r.default_ms, r.tuned_ms, r.cache_hit_rate, r.plan_updates
            )
        })
        .collect();
    let section = format!(
        "{{\n    \"queries_per_app\": {queries},\n    \"suite\": [\n{}\n    ],\n    \
         \"suite_default_ms\": {default_total:.4},\n    \"suite_tuned_ms\": {tuned_total:.4},\n    \
         \"warm_cached\": {{\n      \"requests\": {requests},\n      \
         \"samples_per_request\": {samples_per_request},\n      \
         \"total_ms\": {warm_total_ms:.3},\n      \"throughput_rps\": {warm_rps:.1},\n      \
         \"p50_ms\": {p50:.4},\n      \"p99_ms\": {p99:.4},\n      \
         \"cache_hit_rate\": {:.4}\n    }},\n    \"committed_warm_total_ms\": {},\n    \
         \"bit_identical\": true,\n    \"autotuned_not_worse\": true\n  }}",
        apps_json.join(",\n"),
        warm_stats.hit_rate(),
        committed.map_or("null".into(), |(t, _)| format!("{t:.3}")),
    );
    write_json(&section);
}
