//! Figure 10: speedup of sampling with four GPUs over one (paper:
//! near-linear scaling except for random walks on the small PPI graph,
//! which cannot saturate four devices).

use nextdoor_bench::{header, row, AppInit, BenchConfig};
use nextdoor_core::multi_gpu::run_nextdoor_multi_gpu;
use nextdoor_core::SamplingApp;
use nextdoor_graph::Dataset;

fn main() {
    let cfg = BenchConfig::from_args();
    println!(
        "Figure 10: 4-GPU vs 1-GPU sampling speedup (scale {})",
        cfg.scale
    );
    println!("Paper reference: significant speedups everywhere except PPI random walks;");
    println!("k-hop scales even on PPI because transits grow exponentially per step.");
    let apps: Vec<(Box<dyn SamplingApp>, AppInit)> = vec![
        (Box::new(nextdoor_apps::DeepWalk::new(100)), AppInit::Walk),
        (
            Box::new(nextdoor_apps::Node2Vec::new(100, 2.0, 0.5)),
            AppInit::Walk,
        ),
        (Box::new(nextdoor_apps::KHop::graphsage()), AppInit::Walk),
        (
            Box::new(nextdoor_apps::Layer::new(250, 500)),
            AppInit::LayerRoots,
        ),
    ];
    header("4-GPU speedup", &["PPI", "Orkut", "Patents", "LiveJ"]);
    for (app, kind) in &apps {
        let mut cells = Vec::new();
        for dataset in Dataset::MAIN4 {
            let graph = cfg.graph(dataset);
            let init = cfg.init_for(&graph, *kind);
            let one = run_nextdoor_multi_gpu(&cfg.gpu, 1, &graph, app.as_ref(), &init, cfg.seed)
                .expect("bench run");
            let four = run_nextdoor_multi_gpu(&cfg.gpu, 4, &graph, app.as_ref(), &init, cfg.seed)
                .expect("bench run");
            cells.push(format!("{:.2}x", one.makespan_ms / four.makespan_ms));
        }
        row(app.name(), &cells);
    }
}
