//! Table 1: fraction of training time existing GNNs spend in (CPU) graph
//! sampling (paper: 25%-62% of each epoch, worst for FastGCN on LiveJ).

use nextdoor_baselines::cpu_samplers as cpu;
use nextdoor_bench::{header, row, BenchConfig};
use nextdoor_gnn::{GraphSageModel, Trainer};
use nextdoor_graph::{cluster_vertices, Dataset, VertexId};

fn main() {
    let cfg = BenchConfig::from_args();
    println!(
        "Table 1: fraction of epoch time spent sampling (scale {})",
        cfg.scale
    );
    println!("Paper reference: GraphSAGE 25%-51%, FastGCN 26%-62%, LADIES 25%-56%,");
    println!("MVS 24%-51%, ClusterGCN 26%-43%, GraphSAINT 25%-53%.");
    let datasets = [
        Dataset::Ppi,
        Dataset::Reddit,
        Dataset::Orkut,
        Dataset::Patents,
        Dataset::LiveJournal,
    ];
    header(
        "sampling share of epoch",
        &["PPI", "Reddit", "Orkut", "Patents", "LiveJ"],
    );
    let samplers: [&str; 6] = [
        "GraphSAGE",
        "FastGCN",
        "LADIES",
        "MVS",
        "ClusterGCN",
        "GraphSAINT",
    ];
    for name in samplers {
        let mut cells = Vec::new();
        for dataset in datasets {
            let graph = cfg.graph(dataset);
            let model = GraphSageModel::new(128, 128, 16, cfg.seed);
            let mut trainer = Trainer::new(model, 64, 0.1);
            let verts: Vec<VertexId> = (0..cfg.samples.min(graph.num_vertices()) as u32).collect();
            let clustering = cluster_vertices(&graph, (graph.num_vertices() / 64).max(8), cfg.seed)
                .expect("benchmark graphs have more vertices than clusters");
            let mut sampler = |batch: &[VertexId]| match name {
                "GraphSAGE" => {
                    let r = cpu::khop_sampler(&graph, batch, &[25, 10], cfg.seed, cfg.threads);
                    (r.samples, r.wall_ms)
                }
                "FastGCN" => {
                    let batches: Vec<Vec<VertexId>> = batch.iter().map(|&v| vec![v]).collect();
                    let r = cpu::fastgcn_sampler(&graph, &batches, 2, 64, cfg.seed, cfg.threads);
                    (r.samples, r.wall_ms)
                }
                "LADIES" => {
                    let batches: Vec<Vec<VertexId>> = batch.iter().map(|&v| vec![v]).collect();
                    let r = cpu::ladies_sampler(&graph, &batches, 2, 64, cfg.seed, cfg.threads);
                    (r.samples, r.wall_ms)
                }
                "MVS" => {
                    let batches: Vec<Vec<VertexId>> = batch.iter().map(|&v| vec![v]).collect();
                    let r = cpu::mvs_sampler(&graph, &batches, cfg.seed, cfg.threads);
                    (r.samples, r.wall_ms)
                }
                "ClusterGCN" => {
                    let r = cpu::clustergcn_sampler(
                        &graph,
                        &clustering,
                        2,
                        batch.len(),
                        cfg.seed,
                        cfg.threads,
                    );
                    (r.samples, r.wall_ms)
                }
                "GraphSAINT" => {
                    let sets: Vec<Vec<VertexId>> = batch.iter().map(|&v| vec![v; 4]).collect();
                    let r = cpu::multirw_sampler(&graph, &sets, 100, cfg.seed, cfg.threads);
                    (r.samples, r.wall_ms)
                }
                other => panic!("unknown sampler {other}"),
            };
            let b = trainer.run_epoch(&verts, &mut sampler);
            cells.push(format!("{:.0}%", 100.0 * b.sampling_fraction()));
        }
        row(name, &cells);
    }
}
