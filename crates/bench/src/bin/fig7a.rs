//! Figure 7a: NextDoor's speedup on random walks over KnightKing, SP and
//! TP (paper: 26–50x over KnightKing; 1.09–6x over SP).

use nextdoor_baselines::knightking::{
    run_knightking, DeepWalkRule, Node2VecRule, PprRule, WalkRule,
};
use nextdoor_bench::{header, row, speedup, AppInit, BenchConfig};
use nextdoor_core::{run_nextdoor, run_sample_parallel, run_vanilla_tp, SamplingApp};
use nextdoor_gpu::Gpu;
use nextdoor_graph::Dataset;

fn main() {
    let cfg = BenchConfig::from_args();
    println!(
        "Figure 7a: random-walk speedups (scale {}, {} samples)",
        cfg.scale, cfg.samples
    );
    println!("Paper reference: NextDoor is 26-50x over KnightKing and 1.09-6x over SP;");
    println!("node2vec gains least over SP (divergent rejection loop), DeepWalk/PPR most.");
    let apps: Vec<(Box<dyn SamplingApp>, Box<dyn WalkRule>)> = vec![
        (
            Box::new(nextdoor_apps::DeepWalk::new(100)),
            Box::new(DeepWalkRule { length: 100 }),
        ),
        (
            Box::new(nextdoor_apps::Ppr::new(0.01)),
            Box::new(PprRule {
                termination: 0.01,
                cap: 800,
            }),
        ),
        (
            Box::new(nextdoor_apps::Node2Vec::new(100, 2.0, 0.5)),
            Box::new(Node2VecRule {
                length: 100,
                p: 2.0,
                q: 0.5,
            }),
        ),
    ];
    for dataset in Dataset::MAIN4 {
        let graph = cfg.graph(dataset);
        let init = cfg.init_for(&graph, AppInit::Walk);
        let roots: Vec<u32> = init.iter().map(|s| s[0]).collect();
        header(
            &format!(
                "{dataset} ({} vertices, {} edges)",
                graph.num_vertices(),
                graph.num_edges()
            ),
            &[
                "KnightKing",
                "SP",
                "TP",
                "NextDoor",
                "vs KK",
                "vs SP",
                "vs TP",
            ],
        );
        for (app, rule) in &apps {
            let kk = run_knightking(&graph, rule.as_ref(), &roots, cfg.seed, cfg.threads);
            let mut g1 = Gpu::new(cfg.gpu.clone());
            let sp = run_sample_parallel(&mut g1, &graph, app.as_ref(), &init, cfg.seed)
                .expect("bench run");
            let mut g2 = Gpu::new(cfg.gpu.clone());
            let tp =
                run_vanilla_tp(&mut g2, &graph, app.as_ref(), &init, cfg.seed).expect("bench run");
            let mut g3 = Gpu::new(cfg.gpu.clone());
            let nd =
                run_nextdoor(&mut g3, &graph, app.as_ref(), &init, cfg.seed).expect("bench run");
            row(
                app.name(),
                &[
                    nextdoor_bench::ms(kk.wall_ms),
                    nextdoor_bench::ms(sp.stats.total_ms),
                    nextdoor_bench::ms(tp.stats.total_ms),
                    nextdoor_bench::ms(nd.stats.total_ms),
                    speedup(kk.wall_ms, nd.stats.total_ms),
                    speedup(sp.stats.total_ms, nd.stats.total_ms),
                    speedup(tp.stats.total_ms, nd.stats.total_ms),
                ],
            );
        }
    }
}
