//! Figure 9: NextDoor's speedup over the Gunrock-style frontier-centric
//! and Tigr-style message-passing abstractions (paper: consistent speedups
//! from the extra degree of parallelism and sampling-aware load balance).

use nextdoor_baselines::{frontier::run_frontier, message_passing::run_message_passing};
use nextdoor_bench::{header, row, speedup, AppInit, BenchConfig};
use nextdoor_core::{run_nextdoor, SamplingApp};
use nextdoor_gpu::Gpu;
use nextdoor_graph::Dataset;

fn main() {
    let cfg = BenchConfig::from_args();
    println!(
        "Figure 9: speedup over Gunrock and Tigr abstractions (scale {})",
        cfg.scale
    );
    println!("Paper reference: NextDoor wins because those abstractions expose only one");
    println!("degree of parallelism and balance load by degree, not by samples.");
    let apps: Vec<(Box<dyn SamplingApp>, AppInit)> = vec![
        (Box::new(nextdoor_apps::KHop::graphsage()), AppInit::Walk),
        (Box::new(nextdoor_apps::DeepWalk::new(100)), AppInit::Walk),
        (
            Box::new(nextdoor_apps::Node2Vec::new(100, 2.0, 0.5)),
            AppInit::Walk,
        ),
    ];
    for dataset in Dataset::MAIN4 {
        let graph = cfg.graph(dataset);
        header(
            &format!("{dataset} ({} vertices)", graph.num_vertices()),
            &["Gunrock", "Tigr", "NextDoor", "vs Gunrock", "vs Tigr"],
        );
        for (app, kind) in &apps {
            let init = cfg.init_for(&graph, *kind);
            let mut g1 = Gpu::new(cfg.gpu.clone());
            let fr = run_frontier(&mut g1, &graph, app.as_ref(), &init, cfg.seed);
            let mut g2 = Gpu::new(cfg.gpu.clone());
            let mp = run_message_passing(&mut g2, &graph, app.as_ref(), &init, cfg.seed);
            let mut g3 = Gpu::new(cfg.gpu.clone());
            let nd =
                run_nextdoor(&mut g3, &graph, app.as_ref(), &init, cfg.seed).expect("bench run");
            row(
                app.name(),
                &[
                    nextdoor_bench::ms(fr.stats.total_ms),
                    nextdoor_bench::ms(mp.stats.total_ms),
                    nextdoor_bench::ms(nd.stats.total_ms),
                    speedup(fr.stats.total_ms, nd.stats.total_ms),
                    speedup(mp.stats.total_ms, nd.stats.total_ms),
                ],
            );
        }
    }
}
