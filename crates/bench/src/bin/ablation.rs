//! Ablations of NextDoor's design choices (DESIGN.md's ablation index):
//!
//! 1. **Shared-memory caching off** — shrinking the per-block shared-memory
//!    budget to zero forces the thread-block and grid kernels to read
//!    adjacencies from global memory on every access (§6.1.2's spill path
//!    made mandatory), isolating the caching contribution.
//! 2. **Load balancing off** — the vanilla-TP engine keeps the map
//!    inversion but drops the three kernel classes, isolating the
//!    contribution of Table 2's scheduling.
//! 3. **Machine-size sweep** — the same workload across 2–32 SMs shows
//!    when the scheduling index's fixed costs amortise.

use nextdoor_apps::{DeepWalk, KHop};
use nextdoor_bench::{header, row, AppInit, BenchConfig};
use nextdoor_core::{run_nextdoor, run_vanilla_tp, SamplingApp};
use nextdoor_gpu::Gpu;
use nextdoor_graph::Dataset;

fn main() {
    let cfg = BenchConfig::from_args();
    println!(
        "Ablations of NextDoor's design choices (scale {})",
        cfg.scale
    );
    let graph = cfg.graph(Dataset::LiveJournal);
    let apps: Vec<(Box<dyn SamplingApp>, AppInit)> = vec![
        (Box::new(KHop::graphsage()), AppInit::Walk),
        (Box::new(DeepWalk::new(50)), AppInit::Walk),
    ];

    header(
        "caching & balancing ablation (total ms)",
        &[
            "full",
            "no-cache",
            "no-balance",
            "cache gain",
            "balance gain",
        ],
    );
    for (app, kind) in &apps {
        let init = cfg.init_for(&graph, *kind);
        let mut g_full = Gpu::new(cfg.gpu.clone());
        let full =
            run_nextdoor(&mut g_full, &graph, app.as_ref(), &init, cfg.seed).expect("bench run");
        let mut spec_nocache = cfg.gpu.clone();
        // Just enough shared memory for the sort's 256-word counters, but
        // effectively nothing left for adjacency caches.
        spec_nocache.shared_mem_per_block = 1152;
        let mut g_nc = Gpu::new(spec_nocache);
        let nocache =
            run_nextdoor(&mut g_nc, &graph, app.as_ref(), &init, cfg.seed).expect("bench run");
        let mut g_tp = Gpu::new(cfg.gpu.clone());
        let nobalance =
            run_vanilla_tp(&mut g_tp, &graph, app.as_ref(), &init, cfg.seed).expect("bench run");
        assert_eq!(
            full.store.final_samples(),
            nocache.store.final_samples(),
            "ablations must not change results"
        );
        row(
            app.name(),
            &[
                nextdoor_bench::ms(full.stats.total_ms),
                nextdoor_bench::ms(nocache.stats.total_ms),
                nextdoor_bench::ms(nobalance.stats.total_ms),
                format!("{:.2}x", nocache.stats.total_ms / full.stats.total_ms),
                format!("{:.2}x", nobalance.stats.total_ms / full.stats.total_ms),
            ],
        );
    }

    header(
        "SM-count sweep: k-hop total ms (fixed workload)",
        &["2", "4", "8", "16", "32"],
    );
    let app = KHop::graphsage();
    let init = cfg.init_for(&graph, AppInit::Walk);
    let mut cells = Vec::new();
    for sms in [2usize, 4, 8, 16, 32] {
        let mut spec = cfg.gpu.clone();
        spec.num_sms = sms;
        let mut gpu = Gpu::new(spec);
        let res = run_nextdoor(&mut gpu, &graph, &app, &init, cfg.seed).expect("bench run");
        cells.push(nextdoor_bench::ms(res.stats.total_ms));
    }
    row("k-hop", &cells);
}
