//! Figure 7b: NextDoor's speedup on GNN sampling applications over the
//! GNNs' reference CPU samplers, SP and TP (paper: order-of-magnitude over
//! the CPU samplers; 1.09-6x over SP).

use nextdoor_baselines::cpu_samplers as cpu;
use nextdoor_bench::{header, row, speedup, AppInit, BenchConfig};
use nextdoor_core::{run_nextdoor, run_sample_parallel, run_vanilla_tp, SamplingApp};
use nextdoor_gpu::Gpu;
use nextdoor_graph::{cluster_vertices, Dataset};

fn main() {
    let cfg = BenchConfig::from_args();
    println!(
        "Figure 7b: GNN-sampler speedups (scale {}, {} samples)",
        cfg.scale, cfg.samples
    );
    println!("Paper reference: order-of-magnitude speedups over existing GNN samplers;");
    println!("SP also beats them, and NextDoor beats SP by 1.09-6x (layer sampling most).");
    for dataset in Dataset::MAIN4 {
        let graph = cfg.graph(dataset);
        header(
            &format!("{dataset} ({} vertices)", graph.num_vertices()),
            &[
                "CPU sampler",
                "SP",
                "TP",
                "NextDoor",
                "vs CPU",
                "vs SP",
                "vs TP",
            ],
        );
        let apps: Vec<(Box<dyn SamplingApp>, AppInit)> = vec![
            (Box::new(nextdoor_apps::KHop::graphsage()), AppInit::Walk),
            (Box::new(nextdoor_apps::MultiRw::new(100)), AppInit::MultiRw),
            (
                Box::new(nextdoor_apps::Layer::new(250, 500)),
                AppInit::LayerRoots,
            ),
            (Box::new(nextdoor_apps::FastGcn::new(2, 64)), AppInit::Batch),
            (Box::new(nextdoor_apps::Ladies::new(2, 64)), AppInit::Batch),
            (Box::new(nextdoor_apps::Mvs::default()), AppInit::Batch),
            (
                Box::new(nextdoor_apps::ClusterGcn::new(64)),
                AppInit::Cluster,
            ),
        ];
        for (app, kind) in apps {
            let init = cfg.init_for(&graph, kind);
            let cpu_ms = match app.name() {
                "k-hop" => {
                    let roots: Vec<u32> = init.iter().map(|s| s[0]).collect();
                    cpu::khop_sampler(&graph, &roots, &[25, 10], cfg.seed, cfg.threads).wall_ms
                }
                "MultiRW" => {
                    cpu::multirw_sampler(&graph, &init, 100, cfg.seed, cfg.threads).wall_ms
                }
                "Layer" => {
                    let roots: Vec<u32> = init.iter().map(|s| s[0]).collect();
                    cpu::layer_sampler(&graph, &roots, 250, 500, cfg.seed, cfg.threads).wall_ms
                }
                "FastGCN" => {
                    cpu::fastgcn_sampler(&graph, &init, 2, 64, cfg.seed, cfg.threads).wall_ms
                }
                "LADIES" => {
                    cpu::ladies_sampler(&graph, &init, 2, 64, cfg.seed, cfg.threads).wall_ms
                }
                "MVS" => cpu::mvs_sampler(&graph, &init, cfg.seed, cfg.threads).wall_ms,
                "ClusterGCN" => {
                    let clustering = cluster_vertices(
                        &graph,
                        (graph.num_vertices() / 64).max(8),
                        cfg.seed ^ 0x1004,
                    )
                    .expect("bench graphs have more vertices than clusters");
                    cpu::clustergcn_sampler(
                        &graph,
                        &clustering,
                        4,
                        init.len(),
                        cfg.seed,
                        cfg.threads,
                    )
                    .wall_ms
                }
                other => panic!("no CPU reference sampler for {other}"),
            };
            let mut g1 = Gpu::new(cfg.gpu.clone());
            let sp = run_sample_parallel(&mut g1, &graph, app.as_ref(), &init, cfg.seed)
                .expect("bench run");
            let mut g2 = Gpu::new(cfg.gpu.clone());
            let tp =
                run_vanilla_tp(&mut g2, &graph, app.as_ref(), &init, cfg.seed).expect("bench run");
            let mut g3 = Gpu::new(cfg.gpu.clone());
            let nd =
                run_nextdoor(&mut g3, &graph, app.as_ref(), &init, cfg.seed).expect("bench run");
            row(
                app.name(),
                &[
                    nextdoor_bench::ms(cpu_ms),
                    nextdoor_bench::ms(sp.stats.total_ms),
                    nextdoor_bench::ms(tp.stats.total_ms),
                    nextdoor_bench::ms(nd.stats.total_ms),
                    speedup(cpu_ms, nd.stats.total_ms),
                    speedup(sp.stats.total_ms, nd.stats.total_ms),
                    speedup(tp.stats.total_ms, nd.stats.total_ms),
                ],
            );
        }
    }
}
