//! Shared harness for the table/figure reproduction binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the paper
//! (see DESIGN.md's per-experiment index). They share the configuration,
//! dataset preparation and formatting helpers defined here.
//!
//! All binaries accept:
//!
//! * `--scale <f>`   — dataset scale factor relative to Table 3 (default 0.01)
//! * `--samples <n>` — samples per application run (default 2048)
//! * `--sms <n>`     — SMs of the simulated GPU (default 16, a 1/5 V100)
//! * `--seed <n>`    — RNG seed (default 42)
//! * `--threads <n>` — host worker threads for the simulator's launch pool
//!   and the CPU baselines (default: available parallelism)
//! * `--profile`     — export per-kernel JSON + chrome-trace files to
//!   `results/` (see [`BenchConfig::export_profile`])

use nextdoor_core::initial_samples_random;
use nextdoor_gpu::{Gpu, GpuSpec};
use nextdoor_graph::{Csr, Dataset, VertexId};
use std::path::PathBuf;

pub mod jsonv;

/// Configuration shared by all bench binaries.
#[derive(Debug, Clone)]
pub struct BenchConfig {
    /// Dataset scale factor relative to Table 3.
    pub scale: f64,
    /// Samples per run.
    pub samples: usize,
    /// Simulated GPU.
    pub gpu: GpuSpec,
    /// RNG seed.
    pub seed: u64,
    /// CPU threads for the CPU baselines.
    pub threads: usize,
    /// Whether to export per-kernel profile artifacts to `results/`.
    pub profile: bool,
}

impl Default for BenchConfig {
    fn default() -> Self {
        let mut gpu = GpuSpec::v100();
        // A 1/20-scale V100 with launch overhead scaled by the same
        // factor. The paper's runs use millions of samples per step on 80
        // SMs; the benches use tens of thousands, so the machine is scaled
        // to keep the workload-to-machine ratio (and hence the
        // fixed-cost-to-work ratio every figure depends on) near the
        // paper's (DESIGN.md).
        gpu.num_sms = 4;
        gpu.cost.launch_overhead = 150.0;
        BenchConfig {
            scale: 0.005,
            samples: 16384,
            gpu,
            seed: 42,
            threads: std::thread::available_parallelism().map_or(4, |n| n.get()),
            profile: false,
        }
    }
}

impl BenchConfig {
    /// Parses the common CLI flags; unknown flags abort with usage help.
    pub fn from_args() -> Self {
        let mut cfg = BenchConfig::default();
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut it = args.iter();
        while let Some(flag) = it.next() {
            let mut value = |name: &str| {
                it.next()
                    .unwrap_or_else(|| panic!("{name} requires a value"))
                    .clone()
            };
            match flag.as_str() {
                "--scale" => cfg.scale = value("--scale").parse().expect("numeric --scale"),
                "--samples" => cfg.samples = value("--samples").parse().expect("integer --samples"),
                "--sms" => cfg.gpu.num_sms = value("--sms").parse().expect("integer --sms"),
                "--seed" => cfg.seed = value("--seed").parse().expect("integer --seed"),
                "--threads" => {
                    let n: usize = value("--threads").parse().expect("integer --threads");
                    assert!(n > 0, "--threads must be positive");
                    cfg.threads = n;
                    cfg.gpu.host_threads = n;
                }
                "--profile" => cfg.profile = true,
                "--help" | "-h" => {
                    eprintln!(
                        "flags: --scale <f> --samples <n> --sms <n> --seed <n> --threads <n> \
                         --profile (see DESIGN.md)"
                    );
                    std::process::exit(0);
                }
                other => panic!("unknown flag {other}; try --help"),
            }
        }
        cfg
    }

    /// Generates the weighted, scaled stand-in for `dataset`.
    pub fn graph(&self, dataset: Dataset) -> Csr {
        dataset
            .generate(self.scale, self.seed)
            .with_random_weights(1.0, 5.0, self.seed ^ 0x77)
    }

    /// Root sets for walk-style applications: one random vertex per sample.
    ///
    /// DeepWalk-style training walks from *every* vertex, so the walker
    /// count is at least the vertex count — this is also what gives
    /// transit-parallelism its sharing (hubs attract many walkers).
    pub fn walk_init(&self, graph: &Csr) -> Vec<Vec<VertexId>> {
        let n = self.samples.max(graph.num_vertices());
        initial_samples_random(graph, n, 1, self.seed ^ 0x1001).expect("bench graphs are non-empty")
    }

    /// Root sets for multi-dimensional walks (100 roots per sample, as in
    /// the paper, scaled down alongside the sample budget).
    pub fn multirw_init(&self, graph: &Csr) -> Vec<Vec<VertexId>> {
        let per = 100usize;
        initial_samples_random(graph, (self.samples / 8).max(32), per, self.seed ^ 0x1002)
            .expect("bench graphs are non-empty")
    }

    /// Batches for importance sampling (batch size 64, as in the paper).
    pub fn batch_init(&self, graph: &Csr) -> Vec<Vec<VertexId>> {
        initial_samples_random(graph, (self.samples / 8).max(32), 64, self.seed ^ 0x1003)
            .expect("bench graphs are non-empty")
    }

    /// Directory the bench binaries drop artifacts into (created on
    /// demand).
    pub fn results_dir(&self) -> PathBuf {
        let dir = PathBuf::from("results");
        std::fs::create_dir_all(&dir).expect("can create results/");
        dir
    }

    /// Exports the device's profile as `results/profile_<label>.json` (the
    /// per-kernel Table 4 view) and `results/profile_<label>.trace.json`
    /// (a `chrome://tracing` / Perfetto file laid out by SM). No-op unless
    /// `--profile` was passed.
    pub fn export_profile(&self, label: &str, gpu: &Gpu) {
        if !self.profile {
            return;
        }
        let dir = self.results_dir();
        let report = dir.join(format!("profile_{label}.json"));
        let trace = dir.join(format!("profile_{label}.trace.json"));
        nextdoor_gpu::write_kernel_report(&report, gpu.spec(), gpu.profile())
            .expect("can write profile report");
        nextdoor_gpu::write_chrome_trace(&trace, gpu.spec(), &[(label, gpu.profile())])
            .expect("can write chrome trace");
        eprintln!(
            "profile: wrote {} and {}",
            report.display(),
            trace.display()
        );
    }

    /// Exports a serving tier's observability artifacts:
    /// `results/fleet_<label>.trace.json` (the chrome://tracing fleet
    /// timeline with one track per replica plus batcher/queue tracks, flow
    /// arrows into each device's per-SM lanes) and
    /// `results/metrics_<label>.json` (the deterministic metrics
    /// snapshot). `devices[r]` is replica `r`'s label and kernel profile —
    /// a single-session batcher passes its one device. No-op unless
    /// `--profile` was passed.
    pub fn export_fleet_obs(
        &self,
        label: &str,
        spec: &GpuSpec,
        tracer: &nextdoor_serve::Tracer,
        metrics: &nextdoor_serve::ServeMetrics,
        devices: &[(&str, &nextdoor_gpu::Profile)],
    ) {
        if !self.profile {
            return;
        }
        let dir = self.results_dir();
        let trace = dir.join(format!("fleet_{label}.trace.json"));
        let report = dir.join(format!("metrics_{label}.json"));
        nextdoor_serve::write_fleet_trace(&trace, spec, tracer, devices)
            .expect("can write fleet trace");
        metrics
            .write_json(&report, label)
            .expect("can write metrics report");
        eprintln!(
            "profile: wrote {} and {}",
            trace.display(),
            report.display()
        );
    }
}

/// How an application's initial samples are built.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AppInit {
    /// One random root per sample (walks, k-hop).
    Walk,
    /// One random root per sample with a capped sample count (layer
    /// sampling's combined neighbourhoods are ~`m × avg_degree` vertices
    /// per sample, so its batches are far smaller in practice).
    LayerRoots,
    /// 100 random roots per sample (multi-dimensional walks).
    MultiRw,
    /// 64-vertex batches (importance sampling, MVS).
    Batch,
    /// Unions of clusters (ClusterGCN).
    Cluster,
}

impl BenchConfig {
    /// Builds initial samples of the given shape.
    pub fn init_for(&self, graph: &Csr, kind: AppInit) -> Vec<Vec<VertexId>> {
        match kind {
            AppInit::Walk => self.walk_init(graph),
            AppInit::LayerRoots => {
                initial_samples_random(graph, (self.samples / 4).max(64), 1, self.seed ^ 0x1001)
                    .expect("bench graphs are non-empty")
            }
            AppInit::MultiRw => self.multirw_init(graph),
            AppInit::Batch => self.batch_init(graph),
            AppInit::Cluster => {
                let clustering = nextdoor_graph::cluster_vertices(
                    graph,
                    (graph.num_vertices() / 64).max(8),
                    self.seed ^ 0x1004,
                )
                .expect("bench graphs have more vertices than clusters");
                nextdoor_apps::cluster_gcn_samples(
                    graph,
                    &clustering,
                    4,
                    (self.samples / 16).max(16),
                    self.seed ^ 0x1005,
                )
            }
        }
    }
}

/// The ten benchmark applications paired with their initial-sample shapes,
/// using the paper's parameters (§8 "Benchmarks") except where scale
/// dictates smaller collective budgets (documented in DESIGN.md).
pub fn benchmark_suite() -> Vec<(Box<dyn nextdoor_core::SamplingApp + Send>, AppInit)> {
    use nextdoor_apps as apps;
    vec![
        (Box::new(apps::DeepWalk::new(100)) as _, AppInit::Walk),
        (Box::new(apps::Ppr::new(0.01)) as _, AppInit::Walk),
        (
            Box::new(apps::Node2Vec::new(100, 2.0, 0.5)) as _,
            AppInit::Walk,
        ),
        (Box::new(apps::MultiRw::new(100)) as _, AppInit::MultiRw),
        (Box::new(apps::KHop::graphsage()) as _, AppInit::Walk),
        (Box::new(apps::Mvs::default()) as _, AppInit::Batch),
        (
            Box::new(apps::Layer::new(250, 500)) as _,
            AppInit::LayerRoots,
        ),
        (Box::new(apps::FastGcn::new(2, 64)) as _, AppInit::Batch),
        (Box::new(apps::Ladies::new(2, 64)) as _, AppInit::Batch),
        (Box::new(apps::ClusterGcn::new(64)) as _, AppInit::Cluster),
    ]
}

/// Prints a table header followed by an underline.
pub fn header(title: &str, columns: &[&str]) {
    println!("\n== {title} ==");
    let row = columns
        .iter()
        .map(|c| format!("{c:>14}"))
        .collect::<Vec<_>>()
        .join(" ");
    println!("{row}");
    println!("{}", "-".repeat(row.len()));
}

/// Prints one row: a left-aligned label plus right-aligned cells.
pub fn row(label: &str, cells: &[String]) {
    let cells = cells
        .iter()
        .map(|c| format!("{c:>14}"))
        .collect::<Vec<_>>()
        .join(" ");
    println!("{label:>14} {cells}");
}

/// Formats a speedup factor.
pub fn speedup(base_ms: f64, new_ms: f64) -> String {
    if new_ms <= 0.0 {
        "n/a".into()
    } else {
        format!("{:.2}x", base_ms / new_ms)
    }
}

/// Formats milliseconds.
pub fn ms(v: f64) -> String {
    if v >= 100.0 {
        format!("{v:.0}ms")
    } else {
        format!("{v:.2}ms")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let cfg = BenchConfig::default();
        assert!(cfg.scale > 0.0);
        assert!(cfg.samples > 0);
        assert!(cfg.gpu.num_sms > 0);
        assert!(cfg.threads > 0);
    }

    #[test]
    fn graph_and_inits_respect_config() {
        let cfg = BenchConfig {
            samples: 128,
            ..BenchConfig::default()
        };
        let g = cfg.graph(Dataset::Ppi);
        assert!(g.is_weighted());
        let init = cfg.walk_init(&g);
        assert_eq!(init.len(), 128.max(g.num_vertices()));
        assert!(init.iter().all(|s| s.len() == 1));
        let mrw = cfg.multirw_init(&g);
        assert!(mrw.iter().all(|s| s.len() == 100));
        let b = cfg.batch_init(&g);
        assert!(b.iter().all(|s| s.len() == 64));
    }

    #[test]
    fn speedup_formatting() {
        assert_eq!(speedup(10.0, 2.0), "5.00x");
        assert_eq!(speedup(10.0, 0.0), "n/a");
    }
}
