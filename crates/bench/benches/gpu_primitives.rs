//! Criterion micro-benchmarks of the GPU simulator's device-wide
//! primitives: the components whose cost Figure 6 attributes to the
//! scheduling index.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nextdoor_gpu::algorithms::{exclusive_scan, histogram, radix_sort_pairs};
use nextdoor_gpu::{Gpu, GpuSpec};

fn bench_scan(c: &mut Criterion) {
    let mut group = c.benchmark_group("exclusive_scan");
    for n in [1_000usize, 10_000, 100_000] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let data: Vec<u32> = (0..n as u32).map(|i| i % 7).collect();
            b.iter(|| {
                let mut gpu = Gpu::new(GpuSpec::small());
                let input = gpu.to_device(&data);
                let (out, total) = exclusive_scan(&mut gpu, &input);
                criterion::black_box((out.len(), total));
            });
        });
    }
    group.finish();
}

fn bench_radix_sort(c: &mut Criterion) {
    let mut group = c.benchmark_group("radix_sort_pairs");
    group.sample_size(10);
    for n in [10_000usize, 50_000] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let keys: Vec<u32> = (0..n as u64)
                .map(|i| nextdoor_gpu::rng::rand_range(3, i, 0, 1 << 20))
                .collect();
            let vals: Vec<u32> = (0..n as u32).collect();
            b.iter(|| {
                let mut gpu = Gpu::new(GpuSpec::small());
                let k = gpu.to_device(&keys);
                let v = gpu.to_device(&vals);
                let (sk, _sv) = radix_sort_pairs(&mut gpu, &k, &v, 1 << 20);
                criterion::black_box(sk.len());
            });
        });
    }
    group.finish();
}

fn bench_histogram(c: &mut Criterion) {
    c.bench_function("histogram_100k_into_256", |b| {
        let keys: Vec<u32> = (0..100_000u64)
            .map(|i| nextdoor_gpu::rng::rand_range(5, i, 0, 256))
            .collect();
        b.iter(|| {
            let mut gpu = Gpu::new(GpuSpec::small());
            let k = gpu.to_device(&keys);
            let bins = histogram(&mut gpu, &k, 256);
            criterion::black_box(bins.as_slice()[0]);
        });
    });
}

criterion_group!(benches, bench_scan, bench_radix_sort, bench_histogram);
criterion_main!(benches);
