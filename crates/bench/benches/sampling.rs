//! Criterion micro-benchmarks comparing the engines on one step-heavy and
//! one fanout-heavy application (host-time of the simulation itself; the
//! table/figure binaries report *simulated* time).

use criterion::{criterion_group, criterion_main, Criterion};
use nextdoor_apps::{DeepWalk, KHop};
use nextdoor_core::{run_cpu, run_nextdoor, run_sample_parallel, run_vanilla_tp};
use nextdoor_gpu::{Gpu, GpuSpec};
use nextdoor_graph::gen::{rmat, RmatParams};

fn bench_engines(c: &mut Criterion) {
    let graph = rmat(10, 10_000, RmatParams::SKEWED, 1).with_random_weights(1.0, 5.0, 2);
    let init: Vec<Vec<u32>> = (0..256).map(|i| vec![(i * 4) as u32]).collect();
    let mut group = c.benchmark_group("engines_khop");
    group.sample_size(10);
    let app = KHop::new(vec![8, 4]);
    group.bench_function("nextdoor", |b| {
        b.iter(|| {
            let mut gpu = Gpu::new(GpuSpec::small());
            criterion::black_box(
                run_nextdoor(&mut gpu, &graph, &app, &init, 3)
                    .unwrap()
                    .stats
                    .total_ms,
            )
        })
    });
    group.bench_function("sample_parallel", |b| {
        b.iter(|| {
            let mut gpu = Gpu::new(GpuSpec::small());
            criterion::black_box(
                run_sample_parallel(&mut gpu, &graph, &app, &init, 3)
                    .unwrap()
                    .stats
                    .total_ms,
            )
        })
    });
    group.bench_function("vanilla_tp", |b| {
        b.iter(|| {
            let mut gpu = Gpu::new(GpuSpec::small());
            criterion::black_box(
                run_vanilla_tp(&mut gpu, &graph, &app, &init, 3)
                    .unwrap()
                    .stats
                    .total_ms,
            )
        })
    });
    group.bench_function("cpu_reference", |b| {
        b.iter(|| criterion::black_box(run_cpu(&graph, &app, &init, 3).unwrap().stats.total_ms))
    });
    group.finish();

    let mut group = c.benchmark_group("engines_deepwalk");
    group.sample_size(10);
    let app = DeepWalk::new(20);
    group.bench_function("nextdoor", |b| {
        b.iter(|| {
            let mut gpu = Gpu::new(GpuSpec::small());
            criterion::black_box(
                run_nextdoor(&mut gpu, &graph, &app, &init, 3)
                    .unwrap()
                    .stats
                    .total_ms,
            )
        })
    });
    group.bench_function("cpu_reference", |b| {
        b.iter(|| criterion::black_box(run_cpu(&graph, &app, &init, 3).unwrap().stats.total_ms))
    });
    group.finish();
}

criterion_group!(benches, bench_engines);
criterion_main!(benches);
