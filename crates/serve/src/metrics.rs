//! Deterministic metrics for the serving tier: counters and fixed-bucket
//! histograms whose snapshots are **bit-identical at any host thread
//! count**.
//!
//! Everything that feeds the digest derives from the simulated clock (the
//! session clock for a [`MicroBatcher`](crate::MicroBatcher), the fleet
//! clock for a [`ReplicaPool`](crate::ReplicaPool)) or from deterministic
//! scheduling decisions, and is recorded on the single scheduler thread in
//! a fixed order — so histogram sums accumulate over bit-identical values
//! in a bit-identical sequence and the whole snapshot golden-pins like the
//! engine's reports. Wall-clock latency is the one nondeterministic
//! series; it lives beside the deterministic block
//! ([`ServeMetrics::wall_ms`]) and is deliberately **excluded** from
//! [`ServeMetrics::digest`] while still appearing in the JSON export.
//!
//! Bucket bounds are fixed constants, not configuration-derived, so
//! digests from different runs and different configs line up
//! bucket-for-bucket.

use std::io;
use std::path::Path;

use crate::batcher::Priority;
use nextdoor_gpu::json_escape;

/// Upper bounds (ms) of the latency histograms, spanning sub-launch waits
/// to multi-second stalls.
pub const LATENCY_BOUNDS_MS: [f64; 16] = [
    0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0, 1000.0,
];

/// Upper bounds of the queue-depth histogram (requests waiting at batch
/// formation).
pub const DEPTH_BOUNDS: [f64; 9] = [0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0];

/// Upper bounds of the batch-width histogram (initial vertices per sample
/// of the batch's width class).
pub const WIDTH_BOUNDS: [f64; 7] = [1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0];

/// Upper bounds of the batch-size histogram (requests fused per dispatch).
pub const SIZE_BOUNDS: [f64; 6] = [1.0, 2.0, 4.0, 8.0, 16.0, 32.0];

/// A fixed-bucket histogram: cumulative-style upper bounds (a value lands
/// in the first bucket whose bound it does not exceed; one overflow bucket
/// catches the rest) plus exact count/sum/min/max.
///
/// Observation is plain f64 accumulation in recording order, so two runs
/// observing the same sequence of values produce bit-identical state.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    bounds: &'static [f64],
    counts: Vec<u64>,
    count: u64,
    sum: f64,
    min: Option<f64>,
    max: Option<f64>,
}

impl Histogram {
    /// An empty histogram over the given fixed upper bounds (one extra
    /// overflow bucket is appended internally).
    pub fn new(bounds: &'static [f64]) -> Self {
        Histogram {
            bounds,
            counts: vec![0; bounds.len() + 1],
            count: 0,
            sum: 0.0,
            min: None,
            max: None,
        }
    }

    /// Records one value.
    pub fn observe(&mut self, v: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.count += 1;
        self.sum += v;
        self.min = Some(self.min.map_or(v, |m| m.min(v)));
        self.max = Some(self.max.map_or(v, |m| m.max(v)));
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Smallest observed value (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        self.min
    }

    /// Largest observed value (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        self.max
    }

    /// Mean of observed values (`None` when empty).
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// The fixed upper bounds.
    pub fn bounds(&self) -> &[f64] {
        self.bounds
    }

    /// Per-bucket counts (`bounds().len() + 1` entries; last = overflow).
    pub fn bucket_counts(&self) -> &[u64] {
        &self.counts
    }

    /// Deterministic upper-bound quantile estimate: the bound of the first
    /// bucket at which the cumulative count reaches `q` of the total (the
    /// exact max for the overflow bucket). `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let target = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= target {
                return match self.bounds.get(i) {
                    Some(&b) => Some(b),
                    None => self.max,
                };
            }
        }
        self.max
    }

    fn to_json(&self) -> String {
        let bounds: Vec<String> = self.bounds.iter().map(|b| format!("{b:?}")).collect();
        let counts: Vec<String> = self.counts.iter().map(|c| c.to_string()).collect();
        format!(
            "{{\"bounds\":[{}],\"counts\":[{}],\"count\":{},\"sum\":{},\"min\":{},\"max\":{}}}",
            bounds.join(","),
            counts.join(","),
            self.count,
            json_f64(self.sum),
            opt_json_f64(self.min),
            opt_json_f64(self.max),
        )
    }
}

/// Finite floats in `{:?}` round-trip form; non-finite as JSON `null`.
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:?}")
    } else {
        "null".to_string()
    }
}

fn opt_json_f64(v: Option<f64>) -> String {
    v.map_or_else(|| "null".to_string(), json_f64)
}

/// Outcome counters and the total-latency histogram for one priority
/// level. "SLO" here is the request's deadline: a request attains its SLO
/// iff it completes at or before its deadline (no-deadline requests attain
/// trivially on completion).
#[derive(Debug, Clone, PartialEq)]
pub struct PriorityMetrics {
    /// Requests completed within their deadline (or having none).
    pub completed: u64,
    /// Requests served but past their deadline.
    pub deadline_missed: u64,
    /// Requests shed from the queue after their deadline expired unserved.
    pub expired_shed: u64,
    /// Requests shed by degraded-mode load shedding.
    pub overload_shed: u64,
    /// End-to-end simulated latency of served requests.
    pub total_ms: Histogram,
}

impl PriorityMetrics {
    fn new() -> Self {
        PriorityMetrics {
            completed: 0,
            deadline_missed: 0,
            expired_shed: 0,
            overload_shed: 0,
            total_ms: Histogram::new(&LATENCY_BOUNDS_MS),
        }
    }

    /// Fraction of this priority's finished requests that attained their
    /// SLO (completed in time, out of completed + missed + shed). `None`
    /// when no request of this priority finished.
    pub fn slo_attainment(&self) -> Option<f64> {
        let denom = self.completed + self.deadline_missed + self.expired_shed + self.overload_shed;
        (denom > 0).then(|| self.completed as f64 / denom as f64)
    }

    fn to_json(&self) -> String {
        format!(
            "{{\"completed\":{},\"deadline_missed\":{},\"expired_shed\":{},\
             \"overload_shed\":{},\"slo_attainment\":{},\"total_ms\":{}}}",
            self.completed,
            self.deadline_missed,
            self.expired_shed,
            self.overload_shed,
            opt_json_f64(self.slo_attainment()),
            self.total_ms.to_json(),
        )
    }
}

/// The deterministic block of the registry: everything here derives from
/// the simulated clock and deterministic scheduling, and is covered by
/// [`ServeMetrics::digest`].
#[derive(Debug, Clone, PartialEq)]
pub struct SimMetrics {
    /// Requests accepted into the queue.
    pub admitted: u64,
    /// Requests bounced at admission with `QueueFull`.
    pub queue_rejected: u64,
    /// Requests completed within their deadline (or having none).
    pub completed: u64,
    /// Requests served but past their deadline.
    pub deadline_missed: u64,
    /// Requests shed unserved after their deadline expired in the queue.
    pub expired_shed: u64,
    /// Requests shed by degraded-mode load shedding (`Overloaded`).
    pub overload_shed: u64,
    /// Requests that failed with a non-recoverable sampling error.
    pub failed: u64,
    /// Batches dispatched to a device.
    pub batches: u64,
    /// Fused launch sequences across all dispatches (one per width class
    /// per batch).
    pub class_launches: u64,
    /// Dispatch retries after recoverable replica failures.
    pub retries: u64,
    /// Hedged dispatches issued.
    pub hedges: u64,
    /// Hedges that beat the primary.
    pub hedge_wins: u64,
    /// Times the scheduler waited out a breaker cool-down.
    pub cooldown_waits: u64,
    /// Walkers handed between shards during super-step exchanges (sharded
    /// pool only; zero for replicated and single-session tiers).
    pub handoffs: u64,
    /// Sharded super-steps executed across all dispatches (sharded pool
    /// only).
    pub super_steps: u64,
    /// Requests shed because their seeds' home shard was permanently lost
    /// (`ShardLost`; sharded pool only).
    pub shard_shed: u64,
    /// Requests waiting in the queue at each batch formation.
    pub queue_depth: Histogram,
    /// Requests fused per dispatched batch.
    pub batch_size: Histogram,
    /// Width class (initial vertices per sample) per fused launch sequence.
    pub batch_width: Histogram,
    /// Simulated ms each served request waited before its batch launched.
    pub queued_ms: Histogram,
    /// Simulated ms of device service per served request.
    pub service_ms: Histogram,
    /// End-to-end simulated ms per served request.
    pub total_ms: Histogram,
    /// Per-priority outcome breakdown, indexed `[low, normal, high]`.
    pub per_priority: [PriorityMetrics; 3],
}

impl SimMetrics {
    fn new() -> Self {
        SimMetrics {
            admitted: 0,
            queue_rejected: 0,
            completed: 0,
            deadline_missed: 0,
            expired_shed: 0,
            overload_shed: 0,
            failed: 0,
            batches: 0,
            class_launches: 0,
            retries: 0,
            hedges: 0,
            hedge_wins: 0,
            cooldown_waits: 0,
            handoffs: 0,
            super_steps: 0,
            shard_shed: 0,
            queue_depth: Histogram::new(&DEPTH_BOUNDS),
            batch_size: Histogram::new(&SIZE_BOUNDS),
            batch_width: Histogram::new(&WIDTH_BOUNDS),
            queued_ms: Histogram::new(&LATENCY_BOUNDS_MS),
            service_ms: Histogram::new(&LATENCY_BOUNDS_MS),
            total_ms: Histogram::new(&LATENCY_BOUNDS_MS),
            per_priority: [
                PriorityMetrics::new(),
                PriorityMetrics::new(),
                PriorityMetrics::new(),
            ],
        }
    }
}

/// Autotuner and hot-transit-cache counters harvested from the batcher's
/// session after each drain (see
/// [`SamplerSession::cache_stats`](nextdoor_core::session::SamplerSession::cache_stats)).
/// Deterministic — every field derives from the session's query history —
/// but kept **beside** [`SimMetrics`] rather than inside it so the
/// long-standing serve digests stay stable; tuned-session goldens pin this
/// block separately.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TuningMetrics {
    /// Transit segments served with their adjacency arena-resident.
    pub cache_hits: u64,
    /// Transit segments served without residency.
    pub cache_misses: u64,
    /// Transits promoted into the session arena.
    pub installs: u64,
    /// Transits demoted out of the session arena.
    pub evictions: u64,
    /// Maintenance passes that fell back to the uncached path for lack of
    /// device memory.
    pub pressure_fallbacks: u64,
    /// Steps whose scheduling index was reused from the session memo.
    pub sched_reuses: u64,
    /// Steps whose scheduling index was built on the device.
    pub sched_builds: u64,
    /// Times the autotuner changed the active [`TuningPlan`](nextdoor_core::tuning::TuningPlan).
    pub plan_updates: u64,
}

impl TuningMetrics {
    /// `cache_hits / (cache_hits + cache_misses)`, or `None` before any
    /// segment was served.
    ///
    /// ```
    /// use nextdoor_serve::TuningMetrics;
    /// let mut t = TuningMetrics::default();
    /// assert_eq!(t.hit_rate(), None);
    /// t.cache_hits = 3;
    /// t.cache_misses = 1;
    /// assert_eq!(t.hit_rate(), Some(0.75));
    /// ```
    pub fn hit_rate(&self) -> Option<f64> {
        let n = self.cache_hits + self.cache_misses;
        (n > 0).then(|| self.cache_hits as f64 / n as f64)
    }

    fn to_json(self) -> String {
        format!(
            "{{\"cache_hits\":{},\"cache_misses\":{},\"installs\":{},\"evictions\":{},\
             \"pressure_fallbacks\":{},\"sched_reuses\":{},\"sched_builds\":{},\
             \"plan_updates\":{},\"hit_rate\":{}}}",
            self.cache_hits,
            self.cache_misses,
            self.installs,
            self.evictions,
            self.pressure_fallbacks,
            self.sched_reuses,
            self.sched_builds,
            self.plan_updates,
            opt_json_f64(self.hit_rate()),
        )
    }
}

fn pidx(p: Priority) -> usize {
    match p {
        Priority::Low => 0,
        Priority::Normal => 1,
        Priority::High => 2,
    }
}

const PRIORITY_NAMES: [&str; 3] = ["low", "normal", "high"];

/// The serving tier's metrics registry: a deterministic block
/// ([`ServeMetrics::sim`], digest-pinned) plus the wall-clock latency
/// histogram (reported, never digested). One registry serves one batcher
/// or one replica pool; see the [module docs](self) for the determinism
/// argument.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeMetrics {
    /// Simulated-clock counters and histograms (the digest-covered block).
    pub sim: SimMetrics,
    /// Autotuner and session-cache counters (deterministic; pinned by the
    /// tuned-session goldens rather than [`ServeMetrics::digest`], which
    /// predates tuning).
    pub tuning: TuningMetrics,
    /// Wall-clock end-to-end latency (ms) as observed by the server's
    /// scheduler thread. Machine- and load-dependent: excluded from
    /// [`ServeMetrics::digest`].
    pub wall_ms: Histogram,
}

impl Default for ServeMetrics {
    fn default() -> Self {
        Self::new()
    }
}

impl ServeMetrics {
    /// An empty registry.
    pub fn new() -> Self {
        ServeMetrics {
            sim: SimMetrics::new(),
            tuning: TuningMetrics::default(),
            wall_ms: Histogram::new(&LATENCY_BOUNDS_MS),
        }
    }

    /// Read access to one priority's breakdown.
    pub fn priority(&self, p: Priority) -> &PriorityMetrics {
        &self.sim.per_priority[pidx(p)]
    }

    pub(crate) fn priority_mut(&mut self, p: Priority) -> &mut PriorityMetrics {
        &mut self.sim.per_priority[pidx(p)]
    }

    /// Records a wall-clock end-to-end latency sample (ms). Reported in
    /// the JSON export only; never part of the digest.
    pub fn observe_wall_ms(&mut self, ms: f64) {
        self.wall_ms.observe(ms);
    }

    /// A point-in-time copy of the registry.
    pub fn snapshot(&self) -> ServeMetrics {
        self.clone()
    }

    /// Canonical digest of the deterministic block: the pretty-printed
    /// debug form of [`ServeMetrics::sim`] (f64 debug formatting is
    /// round-trip exact, so this pins every bit). Identical at any host
    /// thread count; golden-pinned in `tests/determinism.rs`.
    pub fn digest(&self) -> String {
        format!("{:#?}\n", self.sim)
    }

    /// The JSON metrics report (schema
    /// `schemas/serve_metrics.schema.json`): counters, histograms and the
    /// per-priority SLO breakdown, plus the nondeterministic wall-clock
    /// histogram under its own key.
    pub fn to_json(&self, label: &str) -> String {
        let s = &self.sim;
        let counters = format!(
            "{{\"admitted\":{},\"queue_rejected\":{},\"completed\":{},\"deadline_missed\":{},\
             \"expired_shed\":{},\"overload_shed\":{},\"failed\":{},\"batches\":{},\
             \"class_launches\":{},\"retries\":{},\"hedges\":{},\"hedge_wins\":{},\
             \"cooldown_waits\":{},\"handoffs\":{},\"super_steps\":{},\"shard_shed\":{}}}",
            s.admitted,
            s.queue_rejected,
            s.completed,
            s.deadline_missed,
            s.expired_shed,
            s.overload_shed,
            s.failed,
            s.batches,
            s.class_launches,
            s.retries,
            s.hedges,
            s.hedge_wins,
            s.cooldown_waits,
            s.handoffs,
            s.super_steps,
            s.shard_shed,
        );
        let histograms = format!(
            "{{\"queue_depth\":{},\"batch_size\":{},\"batch_width\":{},\"queued_ms\":{},\
             \"service_ms\":{},\"total_ms\":{}}}",
            s.queue_depth.to_json(),
            s.batch_size.to_json(),
            s.batch_width.to_json(),
            s.queued_ms.to_json(),
            s.service_ms.to_json(),
            s.total_ms.to_json(),
        );
        let per_priority: Vec<String> = PRIORITY_NAMES
            .iter()
            .zip(s.per_priority.iter())
            .map(|(name, m)| format!("\"{name}\":{}", m.to_json()))
            .collect();
        format!(
            "{{\n  \"schema\": \"nextdoor-serve-metrics-v1\",\n  \"label\": \"{}\",\n  \
             \"counters\": {counters},\n  \"histograms\": {histograms},\n  \
             \"per_priority\": {{{}}},\n  \"tuning\": {},\n  \"wall_ms\": {}\n}}\n",
            json_escape(label),
            per_priority.join(","),
            self.tuning.to_json(),
            self.wall_ms.to_json(),
        )
    }

    /// Writes [`ServeMetrics::to_json`] to `path`.
    ///
    /// # Errors
    ///
    /// Any I/O error creating or writing the file.
    pub fn write_json(&self, path: &Path, label: &str) -> io::Result<()> {
        std::fs::write(path, self.to_json(label))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_stats() {
        let mut h = Histogram::new(&SIZE_BOUNDS);
        for v in [1.0, 1.0, 3.0, 40.0] {
            h.observe(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.bucket_counts()[0], 2); // <= 1
        assert_eq!(h.bucket_counts()[2], 1); // <= 4
        assert_eq!(h.bucket_counts()[SIZE_BOUNDS.len()], 1); // overflow
        assert_eq!(h.min(), Some(1.0));
        assert_eq!(h.max(), Some(40.0));
        assert_eq!(h.mean(), Some(45.0 / 4.0));
    }

    #[test]
    fn quantile_is_bucket_upper_bound() {
        let mut h = Histogram::new(&SIZE_BOUNDS);
        for v in 1..=8 {
            h.observe(v as f64);
        }
        assert_eq!(h.quantile(0.5), Some(4.0));
        assert_eq!(h.quantile(1.0), Some(8.0));
        assert_eq!(Histogram::new(&SIZE_BOUNDS).quantile(0.5), None);
    }

    #[test]
    fn quantile_overflow_bucket_reports_max() {
        let mut h = Histogram::new(&SIZE_BOUNDS);
        h.observe(1000.0);
        assert_eq!(h.quantile(0.99), Some(1000.0));
    }

    #[test]
    fn digest_ignores_wall_clock() {
        let mut a = ServeMetrics::new();
        let mut b = ServeMetrics::new();
        a.sim.admitted = 3;
        b.sim.admitted = 3;
        a.observe_wall_ms(1.25);
        b.observe_wall_ms(900.0);
        assert_eq!(a.digest(), b.digest());
        assert_ne!(a.wall_ms, b.wall_ms);
    }

    #[test]
    fn slo_attainment_counts_all_finished() {
        let mut m = PriorityMetrics::new();
        assert_eq!(m.slo_attainment(), None);
        m.completed = 3;
        m.deadline_missed = 1;
        m.expired_shed = 1;
        m.overload_shed = 1;
        assert_eq!(m.slo_attainment(), Some(0.5));
    }

    #[test]
    fn json_report_is_shaped() {
        let mut m = ServeMetrics::new();
        m.sim.admitted = 2;
        m.sim.queued_ms.observe(0.5);
        m.observe_wall_ms(1.0);
        let j = m.to_json("unit \"test\"");
        assert!(j.contains("\"schema\": \"nextdoor-serve-metrics-v1\""));
        assert!(j.contains("unit \\\"test\\\""));
        assert!(j.contains("\"per_priority\""));
        assert!(j.contains("\"tuning\""));
        assert!(j.contains("\"hit_rate\":null"));
        assert!(j.contains("\"wall_ms\""));
        assert!(j.contains("\"slo_attainment\":null"));
        assert!(j.trim_start().starts_with('{') && j.trim_end().ends_with('}'));
    }
}
