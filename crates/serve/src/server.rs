//! The asynchronous face of the serving layer: a scheduler thread that
//! owns the [`MicroBatcher`] and answers concurrent clients.
//!
//! [`SampleServer::start`] moves a batcher onto a dedicated host thread.
//! Clients ([`ServeClient`]) submit requests from any thread and get a
//! [`Ticket`] back immediately; the scheduler **burst-collects** whatever
//! requests arrived while the device was busy (up to
//! [`ServeConfig::max_batch`](crate::ServeConfig::max_batch)), admits them
//! through the batcher's bounded queue, serves them as fused launches and
//! mails each result to its ticket. Under concurrent load this is what
//! coalesces independent requests into shared launches; a lone request is
//! simply a batch of one.
//!
//! The scheduler applies no timers: the simulator's clock is virtual, so
//! waiting wall-clock time for more requests would add latency without
//! adding determinism. Batches form from queue pressure alone, exactly as
//! the batcher's width-class/deadline-aware formation rule dictates (see
//! the [batcher module docs](crate::batcher)).

use std::sync::mpsc::{channel, Receiver, Sender};
use std::thread::JoinHandle;

use crate::batcher::{MicroBatcher, Request, RequestId, Response};
use crate::error::ServeError;

/// What a client eventually receives for one request.
pub type RequestOutcome = Result<Response, ServeError>;

/// Anything the scheduler thread can drive: a bounded admission step plus
/// a drain step that serves everything admitted. Implemented by the
/// single-session [`MicroBatcher`] and the replicated
/// [`FleetBatcher`](crate::replica::FleetBatcher), so the same
/// [`SampleServer`] fronts either a lone device or a fault-tolerant pool.
pub trait BatchEngine: Send + 'static {
    /// Admits a request, or rejects it with a typed admission error.
    ///
    /// # Errors
    ///
    /// [`ServeError::QueueFull`] for backpressure, [`ServeError::Sampling`]
    /// for invalid inputs — both without touching a device.
    fn submit(&mut self, req: Request) -> Result<RequestId, ServeError>;

    /// Serves everything admitted and returns each request's outcome.
    fn drain(&mut self) -> Vec<(RequestId, RequestOutcome)>;

    /// Folds one host wall-clock latency observation (milliseconds per
    /// served burst) into the engine's metrics, if it keeps any. Wall time
    /// is non-deterministic by nature, so implementations must keep it out
    /// of their deterministic digests (see
    /// [`ServeMetrics`](crate::ServeMetrics)). The default is a no-op.
    fn observe_wall_ms(&mut self, _ms: f64) {}
}

impl BatchEngine for MicroBatcher {
    fn submit(&mut self, req: Request) -> Result<RequestId, ServeError> {
        MicroBatcher::submit(self, req)
    }

    fn drain(&mut self) -> Vec<(RequestId, RequestOutcome)> {
        MicroBatcher::drain(self)
    }

    fn observe_wall_ms(&mut self, ms: f64) {
        MicroBatcher::observe_wall_ms(self, ms);
    }
}

enum Msg {
    Query(Request, Sender<RequestOutcome>),
    Shutdown,
}

/// A pending reply for one submitted request. Obtain the outcome with
/// [`Ticket::wait`]; dropping the ticket abandons the request's result
/// without disturbing the server.
pub struct Ticket {
    rx: Receiver<RequestOutcome>,
}

impl Ticket {
    /// Blocks until the request is served (or rejected) and returns the
    /// outcome. If the server's worker thread vanished — it panicked, or
    /// the server was dropped — before answering, the wait ends with
    /// [`ServeError::ServerGone`] instead of hanging forever.
    pub fn wait(self) -> RequestOutcome {
        match self.rx.recv() {
            Ok(outcome) => outcome,
            Err(_) => Err(ServeError::ServerGone),
        }
    }
}

/// A cloneable, `Send` handle for submitting requests to a running
/// [`SampleServer`] from any thread.
#[derive(Clone)]
pub struct ServeClient {
    tx: Sender<Msg>,
}

impl ServeClient {
    /// Submits a request and returns its [`Ticket`] without blocking on
    /// the sampling work itself.
    ///
    /// # Errors
    ///
    /// [`ServeError::Disconnected`] if the server has shut down. Admission
    /// errors ([`ServeError::QueueFull`], invalid inputs) arrive through
    /// the ticket.
    pub fn submit(&self, req: Request) -> Result<Ticket, ServeError> {
        let (tx, rx) = channel();
        self.tx
            .send(Msg::Query(req, tx))
            .map_err(|_| ServeError::Disconnected)?;
        Ok(Ticket { rx })
    }

    /// Submits a request and blocks until its outcome.
    ///
    /// # Errors
    ///
    /// Any [`ServeError`], including admission rejections.
    pub fn query(&self, req: Request) -> RequestOutcome {
        self.submit(req)?.wait()
    }
}

/// A sampling service: one scheduler thread owning a [`BatchEngine`] — a
/// warm session's [`MicroBatcher`] by default, or a replicated
/// [`FleetBatcher`](crate::replica::FleetBatcher). See the
/// [module docs](self).
pub struct SampleServer<E: BatchEngine = MicroBatcher> {
    tx: Sender<Msg>,
    join: Option<JoinHandle<E>>,
}

impl<E: BatchEngine> SampleServer<E> {
    /// Starts the scheduler thread around `engine`.
    pub fn start(engine: E) -> Self {
        let (tx, rx) = channel::<Msg>();
        let join = std::thread::spawn(move || scheduler_loop(engine, &rx));
        SampleServer {
            tx,
            join: Some(join),
        }
    }

    /// A new client handle; clone it freely across threads.
    pub fn client(&self) -> ServeClient {
        ServeClient {
            tx: self.tx.clone(),
        }
    }

    /// Stops the scheduler after it answers everything already submitted,
    /// and recovers the engine (and through it the warm session or pool).
    pub fn shutdown(mut self) -> E {
        let _ = self.tx.send(Msg::Shutdown);
        match self.join.take() {
            // A panic in the scheduler thread would already have poisoned
            // the run; surface it instead of fabricating an engine.
            Some(join) => match join.join() {
                Ok(b) => b,
                Err(p) => std::panic::resume_unwind(p),
            },
            None => unreachable!("shutdown consumes self"),
        }
    }
}

impl<E: BatchEngine> Drop for SampleServer<E> {
    fn drop(&mut self) {
        let _ = self.tx.send(Msg::Shutdown);
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

/// The scheduler body: block for one message, burst-collect the rest of
/// the waiting queue, admit + serve, mail results.
fn scheduler_loop<E: BatchEngine>(mut engine: E, rx: &Receiver<Msg>) -> E {
    let mut waiting: Vec<(Request, Sender<RequestOutcome>)> = Vec::new();
    'serve: loop {
        // Block until at least one request (or shutdown) arrives.
        match rx.recv() {
            Ok(Msg::Query(req, reply)) => waiting.push((req, reply)),
            Ok(Msg::Shutdown) | Err(_) => break 'serve,
        }
        // Burst-collect whatever else is already queued on the channel.
        while let Ok(msg) = rx.try_recv() {
            match msg {
                Msg::Query(req, reply) => waiting.push((req, reply)),
                Msg::Shutdown => {
                    serve_waiting(&mut engine, &mut waiting);
                    break 'serve;
                }
            }
        }
        serve_waiting(&mut engine, &mut waiting);
    }
    engine
}

/// Admits the collected burst and drains the engine, routing each outcome
/// to its submitter.
fn serve_waiting<E: BatchEngine>(
    engine: &mut E,
    waiting: &mut Vec<(Request, Sender<RequestOutcome>)>,
) {
    let wall_t0 = std::time::Instant::now();
    let mut replies = Vec::with_capacity(waiting.len());
    for (req, reply) in waiting.drain(..) {
        match engine.submit(req) {
            Ok(id) => replies.push((id, reply)),
            // Rejected at admission: the outcome is already known.
            Err(e) => {
                let _ = reply.send(Err(e));
            }
        }
    }
    let outcomes = engine.drain();
    engine.observe_wall_ms(wall_t0.elapsed().as_secs_f64() * 1e3);
    for (id, outcome) in outcomes {
        if let Some(pos) = replies.iter().position(|(rid, _)| *rid == id) {
            let (_, reply) = replies.swap_remove(pos);
            let _ = reply.send(outcome);
        }
    }
    // An engine that lost an admitted id (it should not) must still answer
    // the submitter: dropping the reply sender here surfaces as
    // `ServerGone` at the ticket rather than a hang — but be explicit.
    for (_, reply) in replies {
        let _ = reply.send(Err(ServeError::ServerGone));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batcher::ServeConfig;
    use nextdoor_apps::KHop;
    use nextdoor_core::session::SamplerSession;
    use nextdoor_gpu::GpuSpec;
    use nextdoor_graph::gen::{rmat, RmatParams};

    fn server() -> SampleServer {
        let g = rmat(8, 1500, RmatParams::SKEWED, 11);
        let session =
            SamplerSession::new(GpuSpec::small(), g, Box::new(KHop::new(vec![2, 2]))).unwrap();
        SampleServer::start(MicroBatcher::new(session, ServeConfig::default()).unwrap())
    }

    fn req(seed: u64) -> Request {
        Request::new((0..4).map(|i| vec![i as u32]).collect(), seed)
    }

    #[test]
    fn concurrent_clients_get_their_own_samples() {
        let server = server();
        let handles: Vec<_> = (0..4)
            .map(|s| {
                let client = server.client();
                std::thread::spawn(move || client.query(req(s)).unwrap())
            })
            .collect();
        let responses: Vec<Response> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        let mut batcher = server.shutdown();
        for (s, resp) in responses.iter().enumerate() {
            let solo = batcher
                .session_mut()
                .query(&req(s as u64).init, s as u64)
                .unwrap();
            assert_eq!(resp.store.final_samples(), solo.store.final_samples());
        }
        assert!(batcher.session().queries_served() >= 4);
    }

    #[test]
    fn tickets_resolve_in_submission_order_results() {
        let server = server();
        let client = server.client();
        let tickets: Vec<_> = (0..6).map(|s| client.submit(req(s)).unwrap()).collect();
        for t in tickets {
            let resp = t.wait().unwrap();
            assert!(resp.latency.batch_size >= 1);
        }
        drop(server); // Drop also shuts the scheduler down cleanly.
    }

    #[test]
    fn shutdown_disconnects_clients() {
        let server = server();
        let client = server.client();
        let batcher = server.shutdown();
        assert!(matches!(
            client.query(req(0)),
            Err(ServeError::Disconnected)
        ));
        drop(batcher);
    }
}
