//! The asynchronous face of the serving layer: a scheduler thread that
//! owns the [`MicroBatcher`] and answers concurrent clients.
//!
//! [`SampleServer::start`] moves a batcher onto a dedicated host thread.
//! Clients ([`ServeClient`]) submit requests from any thread and get a
//! [`Ticket`] back immediately; the scheduler **burst-collects** whatever
//! requests arrived while the device was busy (up to
//! [`ServeConfig::max_batch`](crate::ServeConfig::max_batch)), admits them
//! through the batcher's bounded queue, serves them as fused launches and
//! mails each result to its ticket. Under concurrent load this is what
//! coalesces independent requests into shared launches; a lone request is
//! simply a batch of one.
//!
//! The scheduler applies no timers: the simulator's clock is virtual, so
//! waiting wall-clock time for more requests would add latency without
//! adding determinism. Batches form from queue pressure alone, exactly as
//! the batcher's FIFO/equal-width rule dictates.

use std::sync::mpsc::{channel, Receiver, Sender};
use std::thread::JoinHandle;

use crate::batcher::{MicroBatcher, Request, Response};
use crate::error::ServeError;

/// What a client eventually receives for one request.
pub type RequestOutcome = Result<Response, ServeError>;

enum Msg {
    Query(Request, Sender<RequestOutcome>),
    Shutdown,
}

/// A pending reply for one submitted request. Obtain the outcome with
/// [`Ticket::wait`]; dropping the ticket abandons the request's result
/// without disturbing the server.
pub struct Ticket {
    rx: Receiver<RequestOutcome>,
}

impl Ticket {
    /// Blocks until the request is served (or rejected) and returns the
    /// outcome. Returns [`ServeError::Disconnected`] if the server shut
    /// down before answering.
    pub fn wait(self) -> RequestOutcome {
        self.rx.recv().unwrap_or(Err(ServeError::Disconnected))
    }
}

/// A cloneable, `Send` handle for submitting requests to a running
/// [`SampleServer`] from any thread.
#[derive(Clone)]
pub struct ServeClient {
    tx: Sender<Msg>,
}

impl ServeClient {
    /// Submits a request and returns its [`Ticket`] without blocking on
    /// the sampling work itself.
    ///
    /// # Errors
    ///
    /// [`ServeError::Disconnected`] if the server has shut down. Admission
    /// errors ([`ServeError::QueueFull`], invalid inputs) arrive through
    /// the ticket.
    pub fn submit(&self, req: Request) -> Result<Ticket, ServeError> {
        let (tx, rx) = channel();
        self.tx
            .send(Msg::Query(req, tx))
            .map_err(|_| ServeError::Disconnected)?;
        Ok(Ticket { rx })
    }

    /// Submits a request and blocks until its outcome.
    ///
    /// # Errors
    ///
    /// Any [`ServeError`], including admission rejections.
    pub fn query(&self, req: Request) -> RequestOutcome {
        self.submit(req)?.wait()
    }
}

/// A sampling service: one scheduler thread owning a warm session and its
/// micro-batcher. See the [module docs](self).
pub struct SampleServer {
    tx: Sender<Msg>,
    join: Option<JoinHandle<MicroBatcher>>,
}

impl SampleServer {
    /// Starts the scheduler thread around `batcher`.
    pub fn start(batcher: MicroBatcher) -> Self {
        let (tx, rx) = channel::<Msg>();
        let join = std::thread::spawn(move || scheduler_loop(batcher, &rx));
        SampleServer {
            tx,
            join: Some(join),
        }
    }

    /// A new client handle; clone it freely across threads.
    pub fn client(&self) -> ServeClient {
        ServeClient {
            tx: self.tx.clone(),
        }
    }

    /// Stops the scheduler after it answers everything already submitted,
    /// and recovers the batcher (and through it the warm session).
    pub fn shutdown(mut self) -> MicroBatcher {
        let _ = self.tx.send(Msg::Shutdown);
        match self.join.take() {
            // A panic in the scheduler thread would already have poisoned
            // the run; surface it instead of fabricating a batcher.
            Some(join) => match join.join() {
                Ok(b) => b,
                Err(p) => std::panic::resume_unwind(p),
            },
            None => unreachable!("shutdown consumes self"),
        }
    }
}

impl Drop for SampleServer {
    fn drop(&mut self) {
        let _ = self.tx.send(Msg::Shutdown);
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

/// The scheduler body: block for one message, burst-collect the rest of
/// the waiting queue, admit + serve, mail results.
fn scheduler_loop(mut batcher: MicroBatcher, rx: &Receiver<Msg>) -> MicroBatcher {
    let mut waiting: Vec<(Request, Sender<RequestOutcome>)> = Vec::new();
    'serve: loop {
        // Block until at least one request (or shutdown) arrives.
        match rx.recv() {
            Ok(Msg::Query(req, reply)) => waiting.push((req, reply)),
            Ok(Msg::Shutdown) | Err(_) => break 'serve,
        }
        // Burst-collect whatever else is already queued on the channel.
        while let Ok(msg) = rx.try_recv() {
            match msg {
                Msg::Query(req, reply) => waiting.push((req, reply)),
                Msg::Shutdown => {
                    serve_waiting(&mut batcher, &mut waiting);
                    break 'serve;
                }
            }
        }
        serve_waiting(&mut batcher, &mut waiting);
    }
    batcher
}

/// Admits the collected burst and drains the batcher, routing each
/// outcome to its submitter.
fn serve_waiting(batcher: &mut MicroBatcher, waiting: &mut Vec<(Request, Sender<RequestOutcome>)>) {
    let mut replies = Vec::with_capacity(waiting.len());
    for (req, reply) in waiting.drain(..) {
        match batcher.submit(req) {
            Ok(id) => replies.push((id, reply)),
            // Rejected at admission: the outcome is already known.
            Err(e) => {
                let _ = reply.send(Err(e));
            }
        }
    }
    for (id, outcome) in batcher.drain() {
        if let Some(pos) = replies.iter().position(|(rid, _)| *rid == id) {
            let (_, reply) = replies.swap_remove(pos);
            let _ = reply.send(outcome);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batcher::ServeConfig;
    use nextdoor_apps::KHop;
    use nextdoor_core::session::SamplerSession;
    use nextdoor_gpu::GpuSpec;
    use nextdoor_graph::gen::{rmat, RmatParams};

    fn server() -> SampleServer {
        let g = rmat(8, 1500, RmatParams::SKEWED, 11);
        let session =
            SamplerSession::new(GpuSpec::small(), g, Box::new(KHop::new(vec![2, 2]))).unwrap();
        SampleServer::start(MicroBatcher::new(session, ServeConfig::default()))
    }

    fn req(seed: u64) -> Request {
        Request::new((0..4).map(|i| vec![i as u32]).collect(), seed)
    }

    #[test]
    fn concurrent_clients_get_their_own_samples() {
        let server = server();
        let handles: Vec<_> = (0..4)
            .map(|s| {
                let client = server.client();
                std::thread::spawn(move || client.query(req(s)).unwrap())
            })
            .collect();
        let responses: Vec<Response> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        let mut batcher = server.shutdown();
        for (s, resp) in responses.iter().enumerate() {
            let solo = batcher
                .session_mut()
                .query(&req(s as u64).init, s as u64)
                .unwrap();
            assert_eq!(resp.store.final_samples(), solo.store.final_samples());
        }
        assert!(batcher.session().queries_served() >= 4);
    }

    #[test]
    fn tickets_resolve_in_submission_order_results() {
        let server = server();
        let client = server.client();
        let tickets: Vec<_> = (0..6).map(|s| client.submit(req(s)).unwrap()).collect();
        for t in tickets {
            let resp = t.wait().unwrap();
            assert!(resp.latency.batch_size >= 1);
        }
        drop(server); // Drop also shuts the scheduler down cleanly.
    }

    #[test]
    fn shutdown_disconnects_clients() {
        let server = server();
        let client = server.client();
        let batcher = server.shutdown();
        assert!(matches!(
            client.query(req(0)),
            Err(ServeError::Disconnected)
        ));
        drop(batcher);
    }
}
