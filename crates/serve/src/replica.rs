//! Fault-tolerant replicated serving: the [`ReplicaPool`] and the
//! [`FleetBatcher`] on top of it.
//!
//! One [`SamplerSession`] is one device — one watchdog kill, one
//! out-of-memory storm or one device loss away from dropping every request
//! in flight. The replicated tier owns **N sessions over the same graph**
//! (independent simulated devices, possibly carrying independent
//! [`FaultPlan`]s) and composes four recovery
//! mechanisms around them:
//!
//! * **Routing**: every micro-batch goes to the least-loaded *healthy*
//!   replica (the same deterministic rule the multi-GPU shard layer uses
//!   for failover, [`least_loaded_alive`]). Replica choice never changes
//!   the samples — engines key all randomness through
//!   [`SampleKeys`](nextdoor_core::engine::SampleKeys), not device state.
//! * **Retry with backoff**: a failed dispatch is retried on the next
//!   healthy replica, up to a budget, with exponential backoff charged to
//!   the *fleet clock* (a deterministic simulated-ms timeline), never to
//!   wall time.
//! * **Circuit breaking**: consecutive failures trip a per-replica
//!   [`CircuitBreaker`]; the replica cools down on the fleet clock, then a
//!   half-open probe either recovers it or re-trips it. Device loss kills
//!   the breaker permanently.
//! * **Hedging**: optionally, a batch whose service time exceeded a
//!   latency budget is re-dispatched to a second healthy replica; the
//!   earlier completion wins. Results are bit-identical either way, so
//!   hedging only ever improves the latency accounting.
//!
//! When healthy capacity drops below demand the [`FleetBatcher`] degrades
//! gracefully instead of queueing without bound: the fused batch cap
//! shrinks proportionally to surviving capacity, and excess pending
//! requests are shed **lowest priority first** with a typed
//! [`ServeError::Overloaded`] rejection. Every decision — retries, hedges,
//! trips, probes, recoveries, sheds, degraded intervals — is surfaced in
//! the per-run [`FleetReport`].
//!
//! Determinism: the pool runs on one scheduler thread; each replica's
//! device is internally deterministic at any host worker-thread count, and
//! every recovery decision keys off the fleet clock (derived from device
//! sim clocks) and the request stream alone. A chaos run therefore
//! produces bit-identical samples *and* a bit-identical `FleetReport` at
//! any `NEXTDOOR_SIM_THREADS`.

use std::collections::VecDeque;

use crate::batcher::{
    deadline_of, form_batch, record_served, shed_expired, validate_deadline, Pending, Request,
    RequestId, RequestLatency, Response, ServeConfig,
};
use crate::error::ServeError;
use crate::health::{BreakerConfig, CircuitBreaker};
use crate::metrics::ServeMetrics;
use crate::server::RequestOutcome;
use crate::trace::{Obs, Span, SpanKind, Tracer};
use nextdoor_core::api::SamplingApp;
use nextdoor_core::multi_gpu::least_loaded_alive;
use nextdoor_core::session::{FusedResult, SamplerSession, SessionQuery};
use nextdoor_core::{validate_run, FaultReport, NextDoorError};
use nextdoor_gpu::{FaultPlan, Gpu, GpuSpec};
use nextdoor_graph::Csr;

/// Recovery knobs of a [`ReplicaPool`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PoolConfig {
    /// Re-dispatch attempts after a failed one (0 = fail on first error).
    pub max_retries: usize,
    /// Simulated-ms backoff before retry `k`: `backoff_base_ms * 2^k`,
    /// charged to the fleet clock.
    pub backoff_base_ms: f64,
    /// Latency budget in simulated ms above which a completed batch is
    /// hedged onto a second healthy replica. `None` disables hedging.
    pub hedge_after_ms: Option<f64>,
    /// Per-replica circuit-breaker knobs.
    pub breaker: BreakerConfig,
}

impl Default for PoolConfig {
    fn default() -> Self {
        PoolConfig {
            max_retries: 3,
            backoff_base_ms: 0.05,
            hedge_after_ms: None,
            breaker: BreakerConfig::default(),
        }
    }
}

/// Per-replica slice of a [`FleetReport`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ReplicaStats {
    /// Fused batches dispatched to this replica (probes and hedges
    /// included).
    pub dispatches: u64,
    /// Dispatches that returned a typed error.
    pub failures: u64,
    /// Hedged re-dispatches served by this replica.
    pub hedges: u64,
    /// Breaker trips (consecutive-failure and failed-probe trips).
    pub trips: u64,
    /// Half-open probe dispatches.
    pub probes: u64,
    /// Probes that succeeded and closed the breaker.
    pub recoveries: u64,
    /// Whether the replica's device was permanently lost.
    pub lost: bool,
    /// Faults this replica's device observed during *successful*
    /// dispatches and recovered from internally (step retries etc.).
    pub faults: FaultReport,
}

/// Everything a chaos run observes of the fleet's recovery behaviour, in
/// one serializable report. Deterministic: a scripted run reproduces this
/// bit-for-bit at any host worker-thread count.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FleetReport {
    /// Per-replica counters, indexed by replica id.
    pub replicas: Vec<ReplicaStats>,
    /// Fused batches the pool dispatched (first attempts only).
    pub batches: u64,
    /// Requests inside those batches.
    pub requests: u64,
    /// Serving-level re-dispatches after a failed attempt.
    pub retries: u64,
    /// Batches hedged onto a second replica.
    pub hedges: u64,
    /// Hedges that completed before the primary would have.
    pub hedge_wins: u64,
    /// Requests shed with [`ServeError::Overloaded`] under degraded
    /// capacity.
    pub shed: u64,
    /// Times the fleet clock was advanced to the earliest breaker reopen
    /// because no replica was routable.
    pub cooldown_waits: u64,
    /// Closed `[start_ms, end_ms)` fleet-clock intervals during which
    /// healthy capacity was below the full pool (an interval still open at
    /// report time is closed at the current fleet clock).
    pub degraded_intervals: Vec<(f64, f64)>,
    /// Walkers handed between shards (sharded pool only; zero for the
    /// replicated tier, whose replicas each hold the whole graph).
    pub handoffs: u64,
    /// Simulated bytes those hand-offs moved (sharded pool only).
    pub handoff_bytes: u64,
    /// Sharded super-steps executed (sharded pool only).
    pub super_steps: u64,
    /// Walkers terminated mid-run by shard loss (sharded pool only).
    pub walkers_lost: u64,
    /// Fleet clock at report time, simulated ms.
    pub fleet_ms: f64,
}

impl FleetReport {
    /// A canonical multi-line rendering of the report, suitable for golden
    /// comparisons (`f64` values print round-trip-exact).
    pub fn digest(&self) -> String {
        format!("{self:#?}\n")
    }
}

struct Replica {
    session: SamplerSession,
    breaker: CircuitBreaker,
    dispatches: u64,
    failures: u64,
    hedges: u64,
    lost: bool,
    faults: FaultReport,
}

/// A successfully dispatched batch, with the pool's fleet-clock
/// bracketing of it.
pub struct PoolResponse {
    /// The fused result (per-query stores, batch stats, fault report).
    pub fused: FusedResult,
    /// Replica whose result is being returned (the hedge replica when the
    /// hedge won).
    pub replica: usize,
    /// The dispatch's sequence number in the pool's trace — the join key
    /// between request-level spans and this batch's dispatch/attempt/launch
    /// spans.
    pub batch: u64,
    /// Fleet clock when the dispatch (first attempt) began.
    pub start_ms: f64,
    /// Fleet clock when the batch completed, retries/backoff/hedging
    /// included.
    pub end_ms: f64,
    /// Re-dispatches this batch needed.
    pub retries: usize,
    /// Whether the batch was hedged onto a second replica.
    pub hedged: bool,
}

impl PoolResponse {
    /// Service span of the batch on the fleet clock.
    pub fn service_ms(&self) -> f64 {
        self.end_ms - self.start_ms
    }
}

/// Whether a dispatch failure may be masked by retrying elsewhere (runtime
/// faults), as opposed to a request error no replica can serve.
fn retryable(e: &NextDoorError) -> bool {
    matches!(
        e,
        NextDoorError::KernelFault { .. }
            | NextDoorError::DeviceLost { .. }
            | NextDoorError::OutOfMemory(_)
    )
}

/// N [`SamplerSession`] replicas of the same graph behind one deterministic
/// router. See the [module docs](self) for the recovery mechanisms.
pub struct ReplicaPool {
    replicas: Vec<Replica>,
    cfg: PoolConfig,
    fleet_ms: f64,
    batches: u64,
    requests: u64,
    retries: u64,
    hedges: u64,
    hedge_wins: u64,
    cooldown_waits: u64,
    /// The fleet's span stream and metrics registry. The [`FleetBatcher`]
    /// records its request-level events here too, so one serving stack has
    /// one totally-ordered trace.
    obs: Obs,
}

impl ReplicaPool {
    /// Builds a pool from caller-configured devices (one per replica; this
    /// is where per-replica [`FaultPlan`]s are
    /// installed) and one sampling app instance per replica, all over the
    /// same `graph`.
    ///
    /// # Errors
    ///
    /// [`NextDoorError::NoGpus`] for an empty pool, and any session
    /// creation error ([`NextDoorError::EmptyGraph`], upload
    /// [`NextDoorError::OutOfMemory`], a device already lost).
    pub fn new(
        gpus: Vec<Gpu>,
        graph: &Csr,
        apps: Vec<Box<dyn SamplingApp + Send>>,
        cfg: PoolConfig,
    ) -> Result<Self, NextDoorError> {
        if gpus.is_empty() {
            return Err(NextDoorError::NoGpus);
        }
        assert_eq!(
            gpus.len(),
            apps.len(),
            "one sampling app instance per replica device"
        );
        let mut replicas = Vec::with_capacity(gpus.len());
        for (gpu, app) in gpus.into_iter().zip(apps) {
            replicas.push(Replica {
                session: SamplerSession::with_gpu(gpu, graph.clone(), app)?,
                breaker: CircuitBreaker::new(cfg.breaker),
                dispatches: 0,
                failures: 0,
                hedges: 0,
                lost: false,
                faults: FaultReport::default(),
            });
        }
        Ok(ReplicaPool {
            replicas,
            cfg,
            fleet_ms: 0.0,
            batches: 0,
            requests: 0,
            retries: 0,
            hedges: 0,
            hedge_wins: 0,
            cooldown_waits: 0,
            obs: Obs::default(),
        })
    }

    /// Convenience constructor: `n` fault-free replicas of identical
    /// `spec`, with `make_app` invoked once per replica.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ReplicaPool::new`].
    pub fn replicate(
        spec: &GpuSpec,
        n: usize,
        graph: &Csr,
        make_app: impl Fn() -> Box<dyn SamplingApp + Send>,
        cfg: PoolConfig,
    ) -> Result<Self, NextDoorError> {
        let gpus = (0..n).map(|_| Gpu::new(spec.clone())).collect();
        let apps = (0..n).map(|_| make_app()).collect();
        Self::new(gpus, graph, apps, cfg)
    }

    /// Replicas in the pool (healthy or not).
    pub fn num_replicas(&self) -> usize {
        self.replicas.len()
    }

    /// Replicas currently routable: breaker closed or half-open-eligible,
    /// device not lost.
    pub fn healthy_count(&self) -> usize {
        self.replicas
            .iter()
            .filter(|r| r.breaker.available(self.fleet_ms))
            .count()
    }

    /// The deterministic fleet clock, in simulated milliseconds: advanced
    /// by dispatched batches' device time, retry backoffs and cool-down
    /// waits — never by wall time.
    pub fn fleet_ms(&self) -> f64 {
        self.fleet_ms
    }

    /// The shared resident graph (replica 0's copy).
    pub fn graph(&self) -> &Csr {
        self.replicas[0].session.graph()
    }

    /// The sampling application served (replica 0's instance).
    pub fn app(&self) -> &dyn SamplingApp {
        self.replicas[0].session.app()
    }

    /// Replica `i`'s session (e.g. to inspect its device counters).
    pub fn session(&self, i: usize) -> &SamplerSession {
        &self.replicas[i].session
    }

    /// Schedules faults on replica `i` relative to its current traffic
    /// (see [`SamplerSession::schedule_faults`]) — the chaos-harness hook
    /// for killing or degrading a specific replica mid-stream.
    pub fn schedule_faults(&mut self, i: usize, plan: FaultPlan) {
        self.replicas[i].session.schedule_faults(plan);
    }

    /// Per-replica breaker state, for tests and monitoring.
    pub fn breaker(&self, i: usize) -> &CircuitBreaker {
        &self.replicas[i].breaker
    }

    /// The fleet's request-lifecycle trace (shared with the
    /// [`FleetBatcher`] above, which records admission/queue/shedding
    /// spans into the same recorder).
    pub fn trace(&self) -> &Tracer {
        &self.obs.trace
    }

    /// The fleet's deterministic metrics registry (see
    /// [`ServeMetrics`]).
    pub fn metrics(&self) -> &ServeMetrics {
        &self.obs.metrics
    }

    /// Folds one wall-clock latency observation into the (digest-exempt)
    /// wall histogram.
    pub fn observe_wall_ms(&mut self, ms: f64) {
        self.obs.metrics.observe_wall_ms(ms);
    }

    /// The pool-level slice of the [`FleetReport`] (the batcher above adds
    /// shedding and degraded intervals).
    pub fn report_core(&self) -> FleetReport {
        FleetReport {
            replicas: self
                .replicas
                .iter()
                .map(|r| ReplicaStats {
                    dispatches: r.dispatches,
                    failures: r.failures,
                    hedges: r.hedges,
                    trips: r.breaker.trips,
                    probes: r.breaker.probes,
                    recoveries: r.breaker.recoveries,
                    lost: r.lost,
                    faults: r.faults.clone(),
                })
                .collect(),
            batches: self.batches,
            requests: self.requests,
            retries: self.retries,
            hedges: self.hedges,
            hedge_wins: self.hedge_wins,
            shed: 0,
            cooldown_waits: self.cooldown_waits,
            degraded_intervals: Vec::new(),
            handoffs: 0,
            handoff_bytes: 0,
            super_steps: 0,
            walkers_lost: 0,
            fleet_ms: self.fleet_ms,
        }
    }

    /// The least-loaded routable replica (load = accumulated device sim
    /// time), excluding `exclude` — the shared failover rule of
    /// [`least_loaded_alive`].
    fn pick(&self, exclude: Option<usize>) -> Option<usize> {
        let alive: Vec<bool> = self
            .replicas
            .iter()
            .enumerate()
            .map(|(i, r)| Some(i) != exclude && r.breaker.available(self.fleet_ms))
            .collect();
        let load: Vec<f64> = self.replicas.iter().map(|r| r.session.sim_ms()).collect();
        least_loaded_alive(&alive, &load)
    }

    /// Earliest fleet-clock instant at which some tripped (but live)
    /// breaker reopens.
    fn earliest_reopen(&self) -> Option<f64> {
        self.replicas
            .iter()
            .filter_map(|r| r.breaker.reopen_at())
            .min_by(f64::total_cmp)
    }

    /// Runs `queries` on replica `dev`, charging its device time to the
    /// fleet clock and updating its breaker and stats. Records one
    /// [`SpanKind::Attempt`] span per call and, on success, one
    /// [`SpanKind::ClassLaunch`] span per width class, mapped from the
    /// replica's device clock onto the fleet clock.
    fn attempt(
        &mut self,
        dev: usize,
        queries: &[SessionQuery],
        batch_seq: u64,
    ) -> Result<FusedResult, NextDoorError> {
        let fleet_t0 = self.fleet_ms;
        let r = &mut self.replicas[dev];
        r.breaker.begin_dispatch(self.fleet_ms);
        r.dispatches += 1;
        let t0 = r.session.sim_ms();
        let launch0 = r.session.gpu().launches_issued();
        let res = r.session.query_fused(queries);
        let launch1 = r.session.gpu().launches_issued();
        let spec = r.session.gpu().spec().clone();
        self.fleet_ms += r.session.sim_ms() - t0;
        self.obs.trace.push(
            Span::new(SpanKind::Attempt, fleet_t0, self.fleet_ms)
                .batch(batch_seq)
                .replica(dev)
                .batch_size(queries.len())
                .launches((launch0, launch1))
                .ok(res.is_ok()),
        );
        match res {
            Ok(fused) => {
                // This attempt ran the device from `t0`; its class launch
                // intervals shift onto the fleet timeline by the attempt's
                // fleet start.
                let dev_offset_ms = fleet_t0 - t0;
                for m in &fused.class_marks {
                    self.obs.trace.push(
                        Span::new(
                            SpanKind::ClassLaunch,
                            spec.cycles_to_ms(m.start_cycles) + dev_offset_ms,
                            spec.cycles_to_ms(m.end_cycles) + dev_offset_ms,
                        )
                        .batch(batch_seq)
                        .replica(dev)
                        .width(m.width)
                        .batch_size(m.queries)
                        .launches((m.launch_start, m.launch_end)),
                    );
                    self.obs.metrics.sim.batch_width.observe(m.width as f64);
                }
                self.obs.metrics.sim.class_launches += fused.class_marks.len() as u64;
                let r = &mut self.replicas[dev];
                r.breaker.record_success();
                r.faults.merge(&fused.report);
                Ok(fused)
            }
            Err(e) => {
                let r = &mut self.replicas[dev];
                r.failures += 1;
                if matches!(e, NextDoorError::DeviceLost { .. }) || r.session.device_lost() {
                    r.breaker.kill();
                    r.lost = true;
                } else {
                    r.breaker.record_failure(self.fleet_ms);
                }
                Err(e)
            }
        }
    }

    /// Dispatches one fused batch to the fleet: routes to the least-loaded
    /// healthy replica, retries with fleet-clock backoff on runtime
    /// failures, waits out breaker cool-downs when nobody is routable, and
    /// optionally hedges slow batches onto a second replica.
    ///
    /// # Errors
    ///
    /// [`ServeError::NoHealthyReplica`] once every replica is permanently
    /// lost; [`ServeError::Sampling`] for request errors (immediately) and
    /// for runtime errors that survived the retry budget.
    pub fn dispatch(&mut self, queries: &[SessionQuery]) -> Result<PoolResponse, ServeError> {
        self.batches += 1;
        self.requests += queries.len() as u64;
        let batch_seq = self.obs.trace.next_batch_id();
        self.obs.metrics.sim.batches += 1;
        self.obs
            .metrics
            .sim
            .batch_size
            .observe(queries.len() as f64);
        let start_ms = self.fleet_ms;
        let mut retries = 0usize;
        loop {
            let Some(dev) = self.pick(None) else {
                // Nobody is routable right now. If some breaker merely
                // cools down, advance the fleet clock to its reopen
                // instant (a deterministic "wait"); otherwise the fleet
                // is gone.
                match self.earliest_reopen() {
                    Some(t) => {
                        let wait_from = self.fleet_ms;
                        self.fleet_ms = self.fleet_ms.max(t);
                        self.cooldown_waits += 1;
                        self.obs.metrics.sim.cooldown_waits += 1;
                        self.obs.trace.push(
                            Span::new(SpanKind::CooldownWait, wait_from, self.fleet_ms)
                                .batch(batch_seq),
                        );
                        continue;
                    }
                    None => {
                        self.obs.metrics.sim.failed += queries.len() as u64;
                        self.obs.trace.push(
                            Span::new(SpanKind::Dispatch, start_ms, self.fleet_ms)
                                .batch(batch_seq)
                                .batch_size(queries.len())
                                .ok(false),
                        );
                        return Err(ServeError::NoHealthyReplica {
                            replicas: self.replicas.len(),
                        });
                    }
                }
            };
            match self.attempt(dev, queries, batch_seq) {
                Ok(fused) => {
                    let end_ms = self.fleet_ms;
                    return Ok(
                        self.maybe_hedge(queries, fused, dev, start_ms, end_ms, retries, batch_seq)
                    );
                }
                Err(e) => {
                    if !retryable(&e) || retries >= self.cfg.max_retries {
                        self.obs.metrics.sim.failed += queries.len() as u64;
                        self.obs.trace.push(
                            Span::new(SpanKind::Dispatch, start_ms, self.fleet_ms)
                                .batch(batch_seq)
                                .batch_size(queries.len())
                                .ok(false),
                        );
                        return Err(ServeError::Sampling(e));
                    }
                    // Exponential backoff on the fleet clock before the
                    // next attempt (which the router may send elsewhere).
                    let backoff_from = self.fleet_ms;
                    self.fleet_ms += self.cfg.backoff_base_ms * (1u64 << retries) as f64;
                    retries += 1;
                    self.retries += 1;
                    self.obs.metrics.sim.retries += 1;
                    self.obs.trace.push(
                        Span::new(SpanKind::Backoff, backoff_from, self.fleet_ms).batch(batch_seq),
                    );
                }
            }
        }
    }

    /// Applies the hedging policy to a completed primary attempt: when its
    /// service time exceeded the budget and another healthy replica
    /// exists, re-dispatch there and keep the earlier completion. The
    /// hedge is modelled as overlapping the primary's tail — it starts at
    /// `primary start + budget` — so the batch completes at the minimum of
    /// the two completion instants; the fleet clock is rewound to it.
    #[allow(clippy::too_many_arguments)]
    fn maybe_hedge(
        &mut self,
        queries: &[SessionQuery],
        primary: FusedResult,
        dev: usize,
        start_ms: f64,
        primary_end_ms: f64,
        retries: usize,
        batch_seq: u64,
    ) -> PoolResponse {
        let primary_dt = primary_end_ms - start_ms;
        let Some(budget) = self.cfg.hedge_after_ms else {
            return self.pool_response(
                primary,
                dev,
                start_ms,
                primary_end_ms,
                retries,
                false,
                batch_seq,
            );
        };
        if primary_dt <= budget {
            return self.pool_response(
                primary,
                dev,
                start_ms,
                primary_end_ms,
                retries,
                false,
                batch_seq,
            );
        }
        let Some(hedge_dev) = self.pick(Some(dev)) else {
            return self.pool_response(
                primary,
                dev,
                start_ms,
                primary_end_ms,
                retries,
                false,
                batch_seq,
            );
        };
        self.hedges += 1;
        self.replicas[hedge_dev].hedges += 1;
        self.obs.metrics.sim.hedges += 1;
        match self.attempt(hedge_dev, queries, batch_seq) {
            Ok(hedged) => {
                let hedge_dt = self.fleet_ms - primary_end_ms;
                let hedge_end_ms = start_ms + budget + hedge_dt;
                let win = hedge_end_ms < primary_end_ms;
                self.obs.trace.push(
                    Span::new(SpanKind::Hedge, start_ms + budget, hedge_end_ms)
                        .batch(batch_seq)
                        .replica(hedge_dev)
                        .ok(win),
                );
                if win {
                    self.hedge_wins += 1;
                    self.obs.metrics.sim.hedge_wins += 1;
                    // Both results are bit-identical (counter-keyed RNG);
                    // keep the winner's and its earlier completion.
                    debug_assert_eq!(
                        hedged.per_query.len(),
                        primary.per_query.len(),
                        "hedge must mirror the primary batch"
                    );
                    self.fleet_ms = hedge_end_ms;
                    return self.pool_response(
                        hedged,
                        hedge_dev,
                        start_ms,
                        hedge_end_ms,
                        retries,
                        true,
                        batch_seq,
                    );
                }
                // The primary would still have finished first: its
                // completion stands, the hedge only burned spare capacity.
                self.fleet_ms = primary_end_ms;
                self.pool_response(
                    primary,
                    dev,
                    start_ms,
                    primary_end_ms,
                    retries,
                    true,
                    batch_seq,
                )
            }
            Err(_) => {
                // A failed hedge never hurts the already-complete primary;
                // the failure is recorded against the hedge replica.
                self.obs.trace.push(
                    Span::new(SpanKind::Hedge, start_ms + budget, self.fleet_ms)
                        .batch(batch_seq)
                        .replica(hedge_dev)
                        .ok(false),
                );
                self.fleet_ms = primary_end_ms;
                self.pool_response(
                    primary,
                    dev,
                    start_ms,
                    primary_end_ms,
                    retries,
                    true,
                    batch_seq,
                )
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn pool_response(
        &mut self,
        fused: FusedResult,
        replica: usize,
        start_ms: f64,
        end_ms: f64,
        retries: usize,
        hedged: bool,
        batch_seq: u64,
    ) -> PoolResponse {
        self.obs.trace.push(
            Span::new(SpanKind::Dispatch, start_ms, end_ms)
                .batch(batch_seq)
                .replica(replica)
                .batch_size(fused.per_query.len())
                .ok(true),
        );
        PoolResponse {
            fused,
            replica,
            start_ms,
            end_ms,
            retries,
            hedged,
            batch: batch_seq,
        }
    }
}

/// The replicated counterpart of
/// [`MicroBatcher`](crate::batcher::MicroBatcher): same bounded admission
/// and width-class/deadline-aware fusion (see the
/// [batcher module docs](crate::batcher)), but batches are dispatched
/// through a [`ReplicaPool`] — and under degraded capacity the batch cap
/// shrinks and excess pending requests are shed lowest-priority-first with
/// [`ServeError::Overloaded`].
pub struct FleetBatcher {
    pool: ReplicaPool,
    cfg: ServeConfig,
    pending: VecDeque<Pending>,
    next_id: u64,
    shed: u64,
    degraded_since: Option<f64>,
    degraded_intervals: Vec<(f64, f64)>,
}

impl FleetBatcher {
    /// Wraps a replica pool in a batcher with the given scheduling knobs.
    ///
    /// # Errors
    ///
    /// [`ServeError::InvalidConfig`] when the knobs fail
    /// [`ServeConfig::validate`].
    pub fn new(pool: ReplicaPool, cfg: ServeConfig) -> Result<Self, ServeError> {
        cfg.validate()?;
        Ok(FleetBatcher {
            pool,
            cfg,
            pending: VecDeque::new(),
            next_id: 0,
            shed: 0,
            degraded_since: None,
            degraded_intervals: Vec::new(),
        })
    }

    /// Admits a request, or rejects it with backpressure — the same
    /// contract as [`MicroBatcher::submit`](crate::MicroBatcher::submit).
    ///
    /// # Errors
    ///
    /// [`ServeError::QueueFull`] past the queue bound,
    /// [`ServeError::Sampling`] for invalid inputs,
    /// [`ServeError::DeadlineExceeded`] / [`ServeError::InvalidConfig`]
    /// for unmeetable or non-finite per-request deadlines.
    pub fn submit(&mut self, req: Request) -> Result<RequestId, ServeError> {
        let now = self.pool.fleet_ms();
        if self.pending.len() >= self.cfg.max_queue {
            let depth = self.pending.len();
            let obs = &mut self.pool.obs;
            obs.metrics.sim.queue_rejected += 1;
            obs.trace.push(
                Span::instant(SpanKind::QueueReject, now)
                    .priority(req.priority)
                    .depth(depth),
            );
            return Err(ServeError::QueueFull {
                capacity: self.cfg.max_queue,
            });
        }
        validate_deadline(&req)?;
        validate_run(self.pool.graph(), self.pool.app(), &req.init)?;
        let id = RequestId(self.next_id);
        self.next_id += 1;
        let priority = req.priority;
        self.pending.push_back(Pending {
            id,
            req,
            admit_ms: now,
        });
        let depth = self.pending.len();
        let obs = &mut self.pool.obs;
        obs.metrics.sim.admitted += 1;
        obs.trace.push(
            Span::instant(SpanKind::Admission, now)
                .request(id)
                .priority(priority)
                .depth(depth),
        );
        Ok(id)
    }

    /// Serves every pending request through the pool and returns the
    /// outcomes in completion order (shed requests appear with
    /// [`ServeError::Overloaded`]; requests whose deadline expired while
    /// queued are shed with [`ServeError::DeadlineExceeded`] before ever
    /// reaching a replica).
    pub fn drain(&mut self) -> Vec<(RequestId, RequestOutcome)> {
        let mut out = Vec::with_capacity(self.pending.len());
        loop {
            self.update_degradation();
            self.shed_excess(&mut out);
            let now = self.pool.fleet_ms();
            shed_expired(
                &self.cfg,
                &mut self.pending,
                now,
                &mut out,
                &mut self.pool.obs,
            );
            if self.pending.is_empty() {
                break;
            }
            let depth = self.pending.len();
            let batch = form_batch(&self.cfg, self.effective_max_batch(), &mut self.pending);
            let obs = &mut self.pool.obs;
            obs.metrics.sim.queue_depth.observe(depth as f64);
            obs.trace.push(
                Span::instant(SpanKind::Formation, now)
                    .depth(depth)
                    .batch_size(batch.len()),
            );
            self.run_batch(batch, &mut out);
        }
        out
    }

    /// Healthy fraction of the fused-batch cap (full when healthy).
    fn effective_max_batch(&self) -> usize {
        let total = self.pool.num_replicas();
        let healthy = self.pool.healthy_count();
        if healthy >= total {
            self.cfg.max_batch
        } else {
            (self.cfg.max_batch * healthy / total).max(1)
        }
    }

    /// Opens/closes the degraded-mode interval as healthy capacity crosses
    /// the full pool size.
    fn update_degradation(&mut self) {
        let degraded = self.pool.healthy_count() < self.pool.num_replicas();
        match (degraded, self.degraded_since) {
            (true, None) => self.degraded_since = Some(self.pool.fleet_ms()),
            (false, Some(start)) => {
                self.degraded_intervals.push((start, self.pool.fleet_ms()));
                self.degraded_since = None;
            }
            _ => {}
        }
    }

    /// Under degraded capacity, sheds pending requests beyond the scaled
    /// queue budget: strictly lowest priority first, latest-admitted first
    /// within a priority. Deterministic, and it never touches a request
    /// that fits the surviving capacity.
    fn shed_excess(&mut self, out: &mut Vec<(RequestId, RequestOutcome)>) {
        let total = self.pool.num_replicas();
        let healthy = self.pool.healthy_count();
        if healthy >= total {
            return;
        }
        let capacity = (self.cfg.max_queue * healthy / total).max(1);
        while self.pending.len() > capacity {
            let victim = self
                .pending
                .iter()
                .enumerate()
                .min_by_key(|(_, p)| (p.req.priority, std::cmp::Reverse(p.id)))
                .map(|(i, _)| i)
                .unwrap_or(0);
            let Some(p) = self.pending.remove(victim) else {
                break;
            };
            self.shed += 1;
            let now = self.pool.fleet_ms();
            let obs = &mut self.pool.obs;
            obs.metrics.sim.overload_shed += 1;
            obs.metrics.priority_mut(p.req.priority).overload_shed += 1;
            obs.trace.push(
                Span::instant(SpanKind::OverloadShed, now)
                    .request(p.id)
                    .priority(p.req.priority)
                    .depth(healthy),
            );
            out.push((
                p.id,
                Err(ServeError::Overloaded {
                    healthy,
                    replicas: total,
                }),
            ));
        }
    }

    fn run_batch(&mut self, batch: Vec<Pending>, out: &mut Vec<(RequestId, RequestOutcome)>) {
        let queries: Vec<SessionQuery> = batch
            .iter()
            .map(|p| SessionQuery {
                init: p.req.init.clone(),
                seed: p.req.seed,
            })
            .collect();
        match self.pool.dispatch(&queries) {
            Ok(pr) => {
                let batch_size = batch.len();
                for (p, store) in batch.into_iter().zip(pr.fused.per_query) {
                    let observed_ms = pr.end_ms - p.admit_ms;
                    let deadline = deadline_of(&self.cfg, &p);
                    let in_time = !matches!(deadline, Some(d) if observed_ms > d);
                    record_served(
                        &mut self.pool.obs,
                        &p,
                        pr.batch,
                        pr.start_ms,
                        pr.end_ms,
                        in_time,
                    );
                    let result = match deadline {
                        Some(d) if observed_ms > d => Err(ServeError::DeadlineExceeded {
                            deadline_ms: d,
                            observed_ms,
                        }),
                        _ => Ok(Response {
                            store,
                            latency: RequestLatency {
                                queued_ms: pr.start_ms - p.admit_ms,
                                service_ms: pr.end_ms - pr.start_ms,
                                total_ms: observed_ms,
                                batch_size,
                            },
                            batch_stats: pr.fused.stats.clone(),
                            report: pr.fused.report.clone(),
                        }),
                    };
                    out.push((p.id, result));
                }
            }
            Err(e) => {
                for p in batch {
                    out.push((p.id, Err(e.clone())));
                }
            }
        }
    }

    /// Requests admitted but not yet served or shed.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// The batcher's scheduling knobs.
    pub fn config(&self) -> &ServeConfig {
        &self.cfg
    }

    /// The underlying pool.
    pub fn pool(&self) -> &ReplicaPool {
        &self.pool
    }

    /// Mutable access to the pool (e.g. to schedule chaos mid-run).
    pub fn pool_mut(&mut self) -> &mut ReplicaPool {
        &mut self.pool
    }

    /// The fleet's request-lifecycle trace (batcher and pool spans share
    /// one recorder, ordered by recording sequence).
    pub fn trace(&self) -> &Tracer {
        self.pool.trace()
    }

    /// The fleet's deterministic metrics registry.
    pub fn metrics(&self) -> &ServeMetrics {
        self.pool.metrics()
    }

    /// Folds one wall-clock latency observation into the (digest-exempt)
    /// wall histogram.
    pub fn observe_wall_ms(&mut self, ms: f64) {
        self.pool.observe_wall_ms(ms);
    }

    /// The full fleet report: the pool's dispatch/recovery counters plus
    /// this batcher's shedding and degraded-mode intervals (an interval
    /// still open is closed at the current fleet clock).
    pub fn report(&self) -> FleetReport {
        let mut rep = self.pool.report_core();
        rep.shed = self.shed;
        rep.degraded_intervals = self.degraded_intervals.clone();
        if let Some(start) = self.degraded_since {
            rep.degraded_intervals.push((start, self.pool.fleet_ms()));
        }
        rep
    }

    /// Tears the batcher down, recovering the pool.
    pub fn into_pool(self) -> ReplicaPool {
        self.pool
    }
}

impl crate::server::BatchEngine for FleetBatcher {
    fn submit(&mut self, req: Request) -> Result<RequestId, ServeError> {
        FleetBatcher::submit(self, req)
    }

    fn drain(&mut self) -> Vec<(RequestId, RequestOutcome)> {
        FleetBatcher::drain(self)
    }

    fn observe_wall_ms(&mut self, ms: f64) {
        FleetBatcher::observe_wall_ms(self, ms);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batcher::Priority;
    use crate::health::BreakerState;
    use nextdoor_apps::KHop;
    use nextdoor_graph::gen::{rmat, RmatParams};

    fn graph() -> Csr {
        rmat(8, 1500, RmatParams::SKEWED, 11)
    }

    fn app() -> Box<dyn SamplingApp + Send> {
        Box::new(KHop::new(vec![2, 2]))
    }

    fn pool_with_plans(plans: Vec<FaultPlan>, cfg: PoolConfig) -> ReplicaPool {
        let g = graph();
        let gpus = plans
            .into_iter()
            .map(|p| {
                let mut gpu = Gpu::new(GpuSpec::small());
                if !p.is_empty() {
                    gpu.inject_faults(p);
                }
                gpu
            })
            .collect::<Vec<_>>();
        let apps = (0..gpus.len()).map(|_| app()).collect();
        ReplicaPool::new(gpus, &g, apps, cfg).unwrap()
    }

    fn req(seed: u64) -> Request {
        Request::new((0..4).map(|i| vec![i as u32]).collect(), seed)
    }

    fn queries(seed: u64) -> Vec<SessionQuery> {
        vec![SessionQuery {
            init: (0..4).map(|i| vec![i as u32]).collect(),
            seed,
        }]
    }

    #[test]
    fn routes_to_least_loaded_replica() {
        let mut pool = pool_with_plans(
            vec![FaultPlan::new(), FaultPlan::new()],
            PoolConfig::default(),
        );
        let a = pool.dispatch(&queries(1)).unwrap();
        let b = pool.dispatch(&queries(2)).unwrap();
        assert_ne!(
            a.replica, b.replica,
            "second batch goes to the idle replica"
        );
        let rep = pool.report_core();
        assert_eq!(rep.batches, 2);
        assert_eq!(rep.requests, 2);
        assert_eq!(rep.retries, 0);
        assert!(rep.fleet_ms > 0.0);
    }

    #[test]
    fn device_loss_fails_over_with_identical_samples() {
        let mut clean = pool_with_plans(vec![FaultPlan::new()], PoolConfig::default());
        let want = clean.dispatch(&queries(7)).unwrap();

        let mut pool = pool_with_plans(
            vec![FaultPlan::new().lose_device_at_launch(0), FaultPlan::new()],
            PoolConfig::default(),
        );
        let got = pool.dispatch(&queries(7)).unwrap();
        assert_eq!(got.replica, 1, "survivor served the batch");
        assert_eq!(got.retries, 1);
        assert_eq!(
            got.fused.per_query[0].final_samples(),
            want.fused.per_query[0].final_samples(),
            "replica choice never changes the samples"
        );
        let rep = pool.report_core();
        assert!(rep.replicas[0].lost);
        assert_eq!(rep.replicas[0].failures, 1);
        assert_eq!(rep.retries, 1);
    }

    #[test]
    fn all_replicas_lost_is_typed() {
        let mut pool = pool_with_plans(
            vec![
                FaultPlan::new().lose_device_at_launch(0),
                FaultPlan::new().lose_device_at_launch(0),
            ],
            PoolConfig::default(),
        );
        assert_eq!(
            pool.dispatch(&queries(1)).err(),
            Some(ServeError::NoHealthyReplica { replicas: 2 })
        );
        assert_eq!(pool.healthy_count(), 0);
    }

    #[test]
    fn transient_storm_trips_breaker_then_recovers_on_fleet_clock() {
        // A dense transient range makes every step attempt fault until the
        // launch counter escapes it, so single-replica dispatches fail with
        // KernelFault, trip the breaker, and probes eventually recover it.
        // (A clean fused query here is ~20 launches; a failed dispatch
        // burns ~40 across its internal step retries, so 200 storm
        // launches force several consecutive dispatch failures.)
        let storm = FaultPlan {
            transient_launches: (0..200).collect(),
            ..FaultPlan::new()
        };
        let cfg = PoolConfig {
            max_retries: 50,
            backoff_base_ms: 0.01,
            hedge_after_ms: None,
            breaker: BreakerConfig {
                trip_after: 2,
                cooldown_ms: 0.5,
            },
        };
        let mut pool = pool_with_plans(vec![storm], cfg);
        let res = pool.dispatch(&queries(3)).unwrap();
        assert!(res.retries > 0, "the storm forced serving-level retries");
        let rep = pool.report_core();
        assert!(rep.replicas[0].trips >= 1, "breaker tripped");
        assert!(rep.replicas[0].probes >= 1, "half-open probes happened");
        assert_eq!(
            rep.replicas[0].recoveries, 1,
            "a probe finally closed the breaker"
        );
        assert!(rep.cooldown_waits >= 1, "the pool waited out a cool-down");
        assert!(matches!(
            pool.breaker(0).state(),
            BreakerState::Closed { .. }
        ));

        // The recovered samples equal a fault-free run's.
        let mut clean = pool_with_plans(vec![FaultPlan::new()], PoolConfig::default());
        let want = clean.dispatch(&queries(3)).unwrap();
        assert_eq!(
            res.fused.per_query[0].final_samples(),
            want.fused.per_query[0].final_samples()
        );
    }

    #[test]
    fn hedging_counts_and_keeps_samples_identical() {
        let cfg = PoolConfig {
            hedge_after_ms: Some(0.0), // hedge every batch
            ..PoolConfig::default()
        };
        let mut pool = pool_with_plans(vec![FaultPlan::new(), FaultPlan::new()], cfg);
        let res = pool.dispatch(&queries(9)).unwrap();
        assert!(res.hedged);
        let rep = pool.report_core();
        assert_eq!(rep.hedges, 1);
        assert_eq!(
            rep.replicas[0].dispatches + rep.replicas[1].dispatches,
            2,
            "primary plus hedge"
        );
        let mut clean = pool_with_plans(vec![FaultPlan::new()], PoolConfig::default());
        let want = clean.dispatch(&queries(9)).unwrap();
        assert_eq!(
            res.fused.per_query[0].final_samples(),
            want.fused.per_query[0].final_samples()
        );
    }

    #[test]
    fn degraded_fleet_shrinks_batches_and_sheds_lowest_priority() {
        let serve_cfg = ServeConfig {
            max_batch: 4,
            max_queue: 8,
            default_deadline_ms: None,
        };
        let pool = pool_with_plans(
            vec![
                FaultPlan::new(),
                FaultPlan::new().lose_device_at_launch(0),
                FaultPlan::new().lose_device_at_launch(0),
            ],
            PoolConfig::default(),
        );
        let mut fb = FleetBatcher::new(pool, serve_cfg).unwrap();
        // Kill two of three replicas first: the opening batch lands on
        // replica 0 (all idle, lowest index wins), the second routes to
        // idle replica 1, dies, fails over through replica 2 (dies too)
        // and completes on replica 0.
        for s in [100, 101] {
            fb.submit(req(s)).unwrap();
            let probe = fb.drain();
            assert!(probe.iter().all(|(_, r)| r.is_ok()));
        }
        assert_eq!(fb.pool().healthy_count(), 1);

        // Fill the queue: 8 requests, one of them Low priority. The two
        // probe submissions took ids 0 and 1, so these are ids 2..=9.
        let mut ids = Vec::new();
        for s in 1..=8 {
            let mut r = req(s);
            if s == 5 {
                r = r.with_priority(Priority::Low);
            }
            ids.push(fb.submit(r).unwrap());
        }
        let low_id = ids[4];
        let served = fb.drain();
        // Capacity scaled to 8 * 1/3 = 2: six requests shed, Low first.
        let shed: Vec<RequestId> = served
            .iter()
            .filter(|(_, r)| matches!(r, Err(ServeError::Overloaded { .. })))
            .map(|(id, _)| *id)
            .collect();
        assert_eq!(shed.len(), 6);
        assert_eq!(
            shed[0], low_id,
            "the Low-priority request is shed before any Normal one"
        );
        let ok: Vec<RequestId> = served
            .iter()
            .filter(|(_, r)| r.is_ok())
            .map(|(id, _)| *id)
            .collect();
        assert_eq!(ok, vec![ids[0], ids[1]], "FIFO survivors");
        for (_, r) in served.iter().filter(|(_, r)| r.is_ok()) {
            assert!(
                r.as_ref().unwrap().latency.batch_size <= 1,
                "batch cap scaled 4 -> 1 with one of three replicas healthy"
            );
        }
        let rep = fb.report();
        assert_eq!(rep.shed, 6);
        assert_eq!(rep.degraded_intervals.len(), 1);
        assert!(rep.degraded_intervals[0].1 > rep.degraded_intervals[0].0);
    }

    #[test]
    fn fleet_batcher_matches_single_session_samples() {
        let pool = pool_with_plans(
            vec![FaultPlan::new(), FaultPlan::new()],
            PoolConfig::default(),
        );
        let mut fb = FleetBatcher::new(pool, ServeConfig::default()).unwrap();
        let ids: Vec<_> = (0..3).map(|s| fb.submit(req(50 + s)).unwrap()).collect();
        let served = fb.drain();
        assert_eq!(served.len(), 3);
        assert_eq!(
            served.iter().map(|(id, _)| *id).collect::<Vec<_>>(),
            ids,
            "FIFO completion order"
        );
        // Bit-identity per request against a standalone session.
        let mut solo = SamplerSession::new(GpuSpec::small(), graph(), app()).unwrap();
        for (i, (_, res)) in served.into_iter().enumerate() {
            let seed = 50 + i as u64;
            let resp = res.unwrap();
            assert!(resp.latency.batch_size >= 1);
            let want = solo.query(&req(seed).init, seed).unwrap();
            assert_eq!(resp.store.final_samples(), want.store.final_samples());
        }
    }
}
