//! Request-lifecycle tracing for the serving tier: one [`Span`] per
//! lifecycle phase, recorded on the **simulated clock**, with dispatch
//! spans linked to the kernel-level records they produced.
//!
//! ## Span model
//!
//! A request's life is admission → queued → batch formation → dispatch
//! (per width class: a fused launch sequence; per attempt on a replicated
//! pool: replica service, retry/backoff, hedge) → completion, or one of
//! the shed exits (queue-full rejection, deadline expiry, degraded-mode
//! overload shed). Each phase is a [`SpanKind`]; instantaneous events are
//! spans with `start_ms == end_ms`. Spans carry the ids needed to join
//! them — request id, batch sequence number, replica index — plus the
//! **half-open device launch-index range** their work produced
//! ([`field@Span::launches`]), which is the link key into the device profiler:
//! [`KernelRecord::launch_idx`](nextdoor_gpu::KernelRecord::launch_idx)
//! addresses the exact kernels behind a dispatch, so one trace drills
//! from an SLO miss down to the sub-warp kernel that caused it.
//!
//! ## Clock semantics and determinism
//!
//! All span timestamps come from the simulated clock of the tier that
//! recorded them: the session clock for a single-device
//! [`MicroBatcher`](crate::MicroBatcher), the fleet clock for a
//! [`ReplicaPool`](crate::ReplicaPool). Both clocks are deterministic
//! functions of the workload, and every span is recorded on the single
//! scheduler thread in scheduling order — so the full span stream, and
//! therefore [`Tracer::digest`], is bit-identical at any host thread
//! count. No wall-clock value ever enters a span.
//!
//! [`write_fleet_trace`] renders the stream as a `chrome://tracing`
//! timeline: batcher/scheduler/queue tracks plus one track per replica on
//! the fleet process, the device profiles as their own processes (reusing
//! [`write_chrome_trace`](nextdoor_gpu::write_chrome_trace)'s layout via
//! [`ChromeTraceWriter`]), and flow arrows from each launch span to the
//! kernel slice it produced.

use std::io;
use std::path::Path;

use crate::batcher::{Priority, RequestId};
use nextdoor_gpu::{kernel_anchor, ChromeTraceWriter, GpuSpec, Profile};

/// The lifecycle phase a [`Span`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// A request entered the queue (instant).
    Admission,
    /// A request bounced at admission with `QueueFull` (instant).
    QueueReject,
    /// A request waited in the queue: admission to its batch's launch.
    Queued,
    /// A batch was formed from the queue (instant).
    Formation,
    /// A batch occupied the serving tier: launch (first attempt) to final
    /// completion, including retries and backoffs on a replicated pool.
    Dispatch,
    /// One width class's fused launch sequence within a dispatch attempt.
    ClassLaunch,
    /// One replica service attempt of a batch (replicated pool only).
    Attempt,
    /// The scheduler backed off before a retry (replicated pool only).
    Backoff,
    /// The scheduler waited out the earliest breaker cool-down.
    CooldownWait,
    /// A hedged duplicate dispatch raced the primary (modeled interval).
    Hedge,
    /// A request was shed by degraded-mode load shedding (instant).
    OverloadShed,
    /// A request's deadline expired in the queue: admission to shed.
    Expired,
    /// A request completed past its deadline (instant, at completion).
    DeadlineMiss,
    /// A request's full life: admission to service completion.
    Completion,
    /// One shard's slice of a sharded super-step (sharded pool only):
    /// `replica` is the shard, `depth` the step index, `batch_size` the
    /// walker pairs routed to it.
    SuperStep,
    /// Walkers handed between shards during a super-step's exchange phase
    /// (instant): `replica` is the source shard, `width` the destination
    /// shard, `batch_size` the walkers moved.
    Handoff,
    /// The session's hot-transit cache was (re)installed into its device
    /// arena after a query (instant). `batch_size` carries the number of
    /// resident transits after the pass.
    CacheInstall,
}

/// One recorded lifecycle phase. Identity fields are `None` when the
/// phase has no such dimension (e.g. a batch-level span has no single
/// request id). See [`SpanKind`] for the phase taxonomy and the
/// [module docs](self) for clock semantics.
#[derive(Debug, Clone, PartialEq)]
pub struct Span {
    /// Position in the tracer's totally-ordered stream.
    pub seq: u64,
    /// The lifecycle phase.
    pub kind: SpanKind,
    /// Simulated ms at which the phase began.
    pub start_ms: f64,
    /// Simulated ms at which the phase ended (== `start_ms` for instants).
    pub end_ms: f64,
    /// The request this phase belongs to, if exactly one.
    pub request: Option<RequestId>,
    /// The dispatch (batch) sequence number this phase belongs to.
    pub batch: Option<u64>,
    /// The replica that served this phase (replicated pool only).
    pub replica: Option<usize>,
    /// Width class (initial vertices per sample), for launch spans.
    pub width: Option<usize>,
    /// Requests fused into the batch, for batch-level spans.
    pub batch_size: Option<usize>,
    /// Queue depth observed when the phase was recorded.
    pub depth: Option<usize>,
    /// The request's priority, for request-level spans.
    pub priority: Option<Priority>,
    /// Half-open device launch-index range `[start, end)` this phase
    /// produced — the span-link key into the device profiler's
    /// [`KernelRecord`](nextdoor_gpu::KernelRecord)s.
    pub launches: Option<(u64, u64)>,
    /// Whether the phase succeeded, where failure is possible (attempts,
    /// dispatches, hedges).
    pub ok: Option<bool>,
}

impl Span {
    pub(crate) fn new(kind: SpanKind, start_ms: f64, end_ms: f64) -> Self {
        Span {
            seq: 0,
            kind,
            start_ms,
            end_ms,
            request: None,
            batch: None,
            replica: None,
            width: None,
            batch_size: None,
            depth: None,
            priority: None,
            launches: None,
            ok: None,
        }
    }

    pub(crate) fn instant(kind: SpanKind, at_ms: f64) -> Self {
        Self::new(kind, at_ms, at_ms)
    }

    pub(crate) fn request(mut self, id: RequestId) -> Self {
        self.request = Some(id);
        self
    }

    pub(crate) fn batch(mut self, b: u64) -> Self {
        self.batch = Some(b);
        self
    }

    pub(crate) fn replica(mut self, r: usize) -> Self {
        self.replica = Some(r);
        self
    }

    pub(crate) fn width(mut self, w: usize) -> Self {
        self.width = Some(w);
        self
    }

    pub(crate) fn batch_size(mut self, n: usize) -> Self {
        self.batch_size = Some(n);
        self
    }

    pub(crate) fn depth(mut self, d: usize) -> Self {
        self.depth = Some(d);
        self
    }

    pub(crate) fn priority(mut self, p: Priority) -> Self {
        self.priority = Some(p);
        self
    }

    pub(crate) fn launches(mut self, range: (u64, u64)) -> Self {
        self.launches = Some(range);
        self
    }

    pub(crate) fn ok(mut self, ok: bool) -> Self {
        self.ok = Some(ok);
        self
    }

    /// The phase's simulated duration in ms (zero for instants).
    pub fn duration_ms(&self) -> f64 {
        self.end_ms - self.start_ms
    }
}

/// The span recorder: an append-only, totally-ordered stream of [`Span`]s
/// plus the batch sequence counter. One tracer serves one batcher or one
/// replica pool; recording happens on the scheduler thread only, which is
/// what makes the stream deterministic (see the [module docs](self)).
#[derive(Debug, Clone, Default)]
pub struct Tracer {
    spans: Vec<Span>,
    next_batch: u64,
}

impl Tracer {
    /// An empty tracer.
    pub fn new() -> Self {
        Tracer::default()
    }

    pub(crate) fn push(&mut self, mut span: Span) {
        span.seq = self.spans.len() as u64;
        self.spans.push(span);
    }

    pub(crate) fn next_batch_id(&mut self) -> u64 {
        let id = self.next_batch;
        self.next_batch += 1;
        id
    }

    /// The recorded stream, in recording (= scheduling) order.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// Number of recorded spans.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// How many spans of `kind` were recorded.
    pub fn count(&self, kind: SpanKind) -> usize {
        self.spans.iter().filter(|s| s.kind == kind).count()
    }

    /// Canonical digest: one debug-formatted line per span (f64 debug
    /// formatting is round-trip exact). Bit-identical at any host thread
    /// count; golden-pinned in `tests/determinism.rs`.
    pub fn digest(&self) -> String {
        let mut out = String::new();
        for s in &self.spans {
            out.push_str(&format!("{s:?}\n"));
        }
        out
    }
}

/// The observation state one serving stack carries: its span stream and
/// its metrics registry. Owned by a [`MicroBatcher`](crate::MicroBatcher)
/// or a [`ReplicaPool`](crate::ReplicaPool) (the
/// [`FleetBatcher`](crate::FleetBatcher) records into its pool's), so all
/// recording happens on the one scheduler thread in scheduling order.
#[derive(Debug, Clone, Default)]
pub(crate) struct Obs {
    pub(crate) trace: Tracer,
    pub(crate) metrics: crate::metrics::ServeMetrics,
}

/// Fleet-process track ids in the exported timeline.
const TID_BATCHER: usize = 0;
const TID_SCHEDULER: usize = 1;
const TID_REQ_BASE: usize = 10;
const REQ_LANES: u64 = 4;
const TID_REPLICA_BASE: usize = 20;

fn is_instant(kind: SpanKind) -> bool {
    matches!(
        kind,
        SpanKind::Admission
            | SpanKind::QueueReject
            | SpanKind::Formation
            | SpanKind::OverloadShed
            | SpanKind::DeadlineMiss
            | SpanKind::Handoff
            | SpanKind::CacheInstall
    )
}

fn span_tid(s: &Span) -> usize {
    match s.kind {
        SpanKind::Admission | SpanKind::QueueReject | SpanKind::Formation => TID_BATCHER,
        SpanKind::Dispatch
        | SpanKind::Backoff
        | SpanKind::CooldownWait
        | SpanKind::Hedge
        | SpanKind::OverloadShed
        | SpanKind::CacheInstall => TID_SCHEDULER,
        SpanKind::Attempt | SpanKind::ClassLaunch | SpanKind::SuperStep | SpanKind::Handoff => {
            match s.replica {
                Some(r) => TID_REPLICA_BASE + r,
                None => TID_SCHEDULER,
            }
        }
        SpanKind::Queued | SpanKind::Expired | SpanKind::DeadlineMiss | SpanKind::Completion => {
            let lane = s.request.map_or(0, |id| id.0 % REQ_LANES);
            TID_REQ_BASE + lane as usize
        }
    }
}

fn span_name(kind: SpanKind) -> &'static str {
    match kind {
        SpanKind::Admission => "admit",
        SpanKind::QueueReject => "queue-reject",
        SpanKind::Queued => "queued",
        SpanKind::Formation => "form",
        SpanKind::Dispatch => "dispatch",
        SpanKind::ClassLaunch => "class-launch",
        SpanKind::Attempt => "attempt",
        SpanKind::Backoff => "backoff",
        SpanKind::CooldownWait => "cooldown-wait",
        SpanKind::Hedge => "hedge",
        SpanKind::OverloadShed => "overload-shed",
        SpanKind::Expired => "expired",
        SpanKind::DeadlineMiss => "deadline-miss",
        SpanKind::Completion => "request",
        SpanKind::SuperStep => "super-step",
        SpanKind::Handoff => "handoff",
        SpanKind::CacheInstall => "cache-install",
    }
}

fn span_args(s: &Span) -> String {
    let mut parts = Vec::new();
    if let Some(id) = s.request {
        parts.push(format!("\"request\":{}", id.0));
    }
    if let Some(b) = s.batch {
        parts.push(format!("\"batch\":{b}"));
    }
    if let Some(r) = s.replica {
        parts.push(format!("\"replica\":{r}"));
    }
    if let Some(w) = s.width {
        parts.push(format!("\"width\":{w}"));
    }
    if let Some(n) = s.batch_size {
        parts.push(format!("\"batch_size\":{n}"));
    }
    if let Some(d) = s.depth {
        parts.push(format!("\"queue_depth\":{d}"));
    }
    if let Some(p) = s.priority {
        parts.push(format!("\"priority\":\"{p:?}\""));
    }
    if let Some((l0, l1)) = s.launches {
        parts.push(format!("\"launch_start\":{l0},\"launch_end\":{l1}"));
    }
    if let Some(ok) = s.ok {
        parts.push(format!("\"ok\":{ok}"));
    }
    format!("{{{}}}", parts.join(","))
}

/// Writes the fleet timeline as a `chrome://tracing` / Perfetto file:
/// process 0 is the serving tier (batcher, scheduler and queue-depth
/// tracks, request lanes, one track per replica), processes 1.. are the
/// device profiles in [`write_chrome_trace`](nextdoor_gpu::write_chrome_trace)'s
/// per-SM layout, and every launch-producing span draws a flow arrow to
/// the first kernel slice of its launch range (located by
/// [`kernel_anchor`]). `devices[r]` must be replica `r`'s label and
/// profile; a single-session batcher passes its one device.
///
/// Fleet timestamps are simulated fleet-clock ms; device timestamps are
/// that device's own simulated clock. The clocks agree for a
/// single-session batcher and diverge on a pool (each replica serves only
/// part of the fleet timeline) — the flow arrows are the join key, not
/// timestamp equality.
///
/// # Errors
///
/// Any I/O error creating or writing the file.
pub fn write_fleet_trace(
    path: &Path,
    spec: &GpuSpec,
    tracer: &Tracer,
    devices: &[(&str, &Profile)],
) -> io::Result<()> {
    let ms_to_us = |ms: f64| ms * 1e3;
    let cycles_to_us = |cycles: f64| cycles / (spec.clock_ghz * 1e3);
    let mut w = ChromeTraceWriter::create(path)?;
    w.process_name(0, "fleet")?;
    w.thread_name(0, TID_BATCHER, "batcher")?;
    w.thread_name(0, TID_SCHEDULER, "scheduler")?;
    for lane in 0..REQ_LANES as usize {
        w.thread_name(0, TID_REQ_BASE + lane, &format!("requests {lane}"))?;
    }
    let replicas = tracer
        .spans()
        .iter()
        .filter_map(|s| s.replica)
        .max()
        .map_or(0, |r| r + 1);
    for r in 0..replicas {
        w.thread_name(0, TID_REPLICA_BASE + r, &format!("replica {r}"))?;
    }
    for s in tracer.spans() {
        let tid = span_tid(s);
        let args = span_args(s);
        if is_instant(s.kind) {
            w.instant(0, tid, ms_to_us(s.start_ms), span_name(s.kind), &args)?;
        } else {
            w.complete(
                0,
                tid,
                ms_to_us(s.start_ms),
                ms_to_us(s.duration_ms()),
                span_name(s.kind),
                &args,
            )?;
        }
        if let Some(d) = s.depth {
            w.counter(0, ms_to_us(s.end_ms), "queue depth", "pending", d as f64)?;
        }
        // Link launch-producing spans to the kernel slice behind them.
        if let (SpanKind::ClassLaunch | SpanKind::Attempt, Some(range)) = (s.kind, s.launches) {
            let dev = s.replica.unwrap_or(0);
            if let Some((_, sm, start_cycles)) =
                devices.get(dev).and_then(|(_, p)| kernel_anchor(p, range))
            {
                w.flow_start(s.seq, 0, tid, ms_to_us(s.start_ms))?;
                w.flow_finish(s.seq, 1 + dev, sm, cycles_to_us(start_cycles))?;
            }
        }
    }
    for (i, (label, profile)) in devices.iter().enumerate() {
        w.device(1 + i, label, spec, profile)?;
    }
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracer_orders_and_counts_spans() {
        let mut t = Tracer::new();
        t.push(Span::instant(SpanKind::Admission, 0.0).request(RequestId(1)));
        let batch = t.next_batch_id();
        t.push(Span::new(SpanKind::Dispatch, 0.0, 1.5).batch(batch));
        t.push(Span::instant(SpanKind::Admission, 2.0).request(RequestId(2)));
        assert_eq!(t.len(), 3);
        assert_eq!(t.count(SpanKind::Admission), 2);
        assert_eq!(t.spans()[1].seq, 1);
        assert_eq!(t.spans()[1].batch, Some(0));
        let d = t.digest();
        assert_eq!(d.lines().count(), 3);
        assert!(d.contains("Dispatch"));
    }

    #[test]
    fn digest_is_bit_exact_debug() {
        let mut t = Tracer::new();
        t.push(Span::new(SpanKind::Queued, 0.1, 0.30000000000000004).request(RequestId(7)));
        assert!(t.digest().contains("0.30000000000000004"));
    }

    #[test]
    fn fleet_trace_file_is_shaped() {
        let mut t = Tracer::new();
        let b = t.next_batch_id();
        t.push(Span::instant(SpanKind::Admission, 0.0).request(RequestId(0)));
        t.push(
            Span::new(SpanKind::Dispatch, 0.0, 2.0)
                .batch(b)
                .batch_size(1)
                .launches((0, 2))
                .ok(true),
        );
        t.push(
            Span::new(SpanKind::ClassLaunch, 0.0, 2.0)
                .batch(b)
                .width(1)
                .launches((0, 2)),
        );
        let dir = std::env::temp_dir();
        let path = dir.join("nextdoor_fleet_trace_test.json");
        let spec = GpuSpec::small();
        let profile = Profile::default();
        write_fleet_trace(&path, &spec, &t, &[("replica 0", &profile)]).unwrap();
        let s = std::fs::read_to_string(&path).unwrap();
        assert!(s.contains("\"traceEvents\""));
        assert!(s.contains("\"batcher\""));
        assert!(s.contains("\"scheduler\""));
        assert!(s.contains("\"dispatch\""));
        assert!(s.contains("\"class-launch\""));
        assert!(s.starts_with('{') && s.trim_end().ends_with('}'));
        std::fs::remove_file(path).ok();
    }
}
