//! The sharded serving tier: partition-aware routing over a
//! [`ShardedSampler`] fleet, with per-shard circuit breakers, shard-loss
//! degradation and shard-labelled observability.
//!
//! Where the replicated tier ([`ReplicaPool`](crate::ReplicaPool)) holds N
//! full copies of the graph and routes whole batches to any healthy
//! replica, the sharded tier holds ONE copy split across N devices and
//! routes each *query* to the shard owning its seed vertices, then runs
//! the walk as deterministic super-steps with cross-shard walker hand-off
//! (see [`nextdoor_core::sharded`] for the engine-level mechanics and the
//! bit-identity argument).
//!
//! **Admission** is partition-aware: a query whose home shard (the owner
//! of its first seed vertex) is permanently lost is shed with
//! [`ServeError::ShardLost`]; one whose home shard's circuit breaker is
//! open is shed with [`ServeError::Overloaded`]. Admitted queries fuse
//! into one batch dispatch across the whole fleet.
//!
//! **Degradation**: a shard's device loss does not fail the fleet — its
//! walkers terminate deterministically at the shard boundary (counted as
//! `walkers_lost`), its breaker goes [`Dead`](crate::BreakerState::Dead),
//! and subsequent queries homed there are shed as `ShardLost` while every
//! other query keeps being served by the survivors.
//!
//! **Observability**: each dispatch records a [`SpanKind::Dispatch`] span
//! plus per-super-step [`SpanKind::SuperStep`] spans (one per shard that
//! held walkers, on that shard's replica track) and instant
//! [`SpanKind::Handoff`] markers for every exchange edge; the metrics
//! registry gains `handoffs`, `super_steps` and `shard_shed` counters; and
//! [`ShardedPool::report`] emits the same [`FleetReport`] the chaos
//! harness golden-pins for the replicated tier, with the shard-specific
//! counters filled in.

use crate::error::ServeError;
use crate::health::{BreakerConfig, CircuitBreaker};
use crate::metrics::ServeMetrics;
use crate::replica::{FleetReport, ReplicaStats};
use crate::trace::{Obs, Span, SpanKind, Tracer};
use nextdoor_core::api::SamplingApp;
use nextdoor_core::session::SessionQuery;
use nextdoor_core::sharded::{ShardedFusedResult, ShardedSampler};
use nextdoor_core::{FaultReport, NextDoorError, SampleStore};
use nextdoor_gpu::{FaultPlan, GpuSpec};
use nextdoor_graph::{Csr, PartitionStats};

/// Tuning knobs of a [`ShardedPool`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardPoolConfig {
    /// Shards (devices) to split the graph across.
    pub num_shards: usize,
    /// Seed of the deterministic placement clustering.
    pub placement_seed: u64,
    /// Per-shard circuit-breaker knobs.
    pub breaker: BreakerConfig,
}

impl Default for ShardPoolConfig {
    fn default() -> Self {
        ShardPoolConfig {
            num_shards: 2,
            placement_seed: 0x5AD0,
            breaker: BreakerConfig::default(),
        }
    }
}

/// One batch dispatch's outcome: per-query results in submission order
/// (shed queries carry their typed error) plus the batch-level sharding
/// telemetry.
#[derive(Debug)]
pub struct ShardDispatch {
    /// Per-query outcome, aligned with the submitted slice.
    pub results: Vec<Result<SampleStore, ServeError>>,
    /// The dispatch's batch sequence number in the trace.
    pub batch: u64,
    /// Fleet clock when the dispatch began.
    pub start_ms: f64,
    /// Fleet clock when the batch completed.
    pub end_ms: f64,
    /// Walkers handed between shards during the batch.
    pub handoffs: u64,
    /// Walkers terminated by shard loss during the batch.
    pub walkers_lost: u64,
}

/// Partition-aware serving over a graph sharded across N devices. See the
/// [module docs](self) for routing, degradation and observability
/// semantics.
pub struct ShardedPool {
    sampler: ShardedSampler,
    breakers: Vec<CircuitBreaker>,
    obs: Obs,
    batches: u64,
    requests: u64,
    shed: u64,
    handoffs: u64,
    handoff_bytes: u64,
    super_steps: u64,
    walkers_lost: u64,
    shard_dispatches: Vec<u64>,
    shard_failures: Vec<u64>,
    shard_faults: Vec<FaultReport>,
}

impl ShardedPool {
    /// Builds a sharded pool: partitions `graph` across
    /// `cfg.num_shards` devices of `spec` and arms one circuit breaker per
    /// shard.
    ///
    /// # Errors
    ///
    /// The construction errors of [`ShardedSampler::new`] (empty graph,
    /// zero shards, degenerate partition, unsupported app, upload OOM).
    pub fn new(
        spec: GpuSpec,
        graph: Csr,
        app: Box<dyn SamplingApp + Send>,
        cfg: ShardPoolConfig,
    ) -> Result<Self, NextDoorError> {
        let sampler = ShardedSampler::new(spec, graph, app, cfg.num_shards, cfg.placement_seed)?;
        let n = sampler.num_shards();
        Ok(ShardedPool {
            sampler,
            breakers: vec![CircuitBreaker::new(cfg.breaker); n],
            obs: Obs::default(),
            batches: 0,
            requests: 0,
            shed: 0,
            handoffs: 0,
            handoff_bytes: 0,
            super_steps: 0,
            walkers_lost: 0,
            shard_dispatches: vec![0; n],
            shard_failures: vec![0; n],
            shard_faults: vec![FaultReport::default(); n],
        })
    }

    /// Shards in the fleet, dead ones included.
    pub fn num_shards(&self) -> usize {
        self.sampler.num_shards()
    }

    /// Shards whose breaker currently admits traffic.
    pub fn healthy_count(&self) -> usize {
        let now = self.fleet_ms();
        self.breakers.iter().filter(|b| b.available(now)).count()
    }

    /// The fleet clock in simulated milliseconds: super-step critical
    /// paths plus exchange costs, accumulated across all dispatches.
    pub fn fleet_ms(&self) -> f64 {
        self.sampler.clock_ms()
    }

    /// The underlying sharded sampler (placement, clocks, shard state).
    pub fn sampler(&self) -> &ShardedSampler {
        &self.sampler
    }

    /// Partition-quality statistics of the placement.
    pub fn partition_stats(&self) -> &PartitionStats {
        self.sampler.partition_stats()
    }

    /// Shard `s`'s circuit breaker.
    pub fn breaker(&self, s: usize) -> &CircuitBreaker {
        &self.breakers[s]
    }

    /// The fleet's span stream (dispatch, super-step and hand-off spans).
    pub fn trace(&self) -> &Tracer {
        &self.obs.trace
    }

    /// The fleet's deterministic metrics registry.
    pub fn metrics(&self) -> &ServeMetrics {
        &self.obs.metrics
    }

    /// Schedules faults on shard `s` relative to its current traffic — the
    /// chaos-harness hook for killing or degrading one shard mid-stream.
    pub fn schedule_faults(&mut self, s: usize, plan: FaultPlan) {
        self.sampler.schedule_faults(s, plan);
    }

    /// Routes and runs one batch of queries.
    ///
    /// Each query is admitted against its home shard (the owner of its
    /// first seed vertex): dead shard → [`ServeError::ShardLost`], open
    /// breaker → [`ServeError::Overloaded`]. Admitted queries run as one
    /// fused sharded batch, bit-identical per query to standalone runs.
    ///
    /// # Errors
    ///
    /// A batch-level engine failure (validation, genuine OOM, retry
    /// exhaustion) fails the whole call; per-query sheds are typed inside
    /// [`ShardDispatch::results`].
    pub fn dispatch(&mut self, queries: &[SessionQuery]) -> Result<ShardDispatch, ServeError> {
        if queries.is_empty() {
            return Err(ServeError::Sampling(NextDoorError::EmptyInit));
        }
        let start_ms = self.fleet_ms();
        let batch = self.obs.trace.next_batch_id();
        let shards = self.num_shards();

        // Partition-aware admission.
        let mut results: Vec<Option<Result<SampleStore, ServeError>>> =
            (0..queries.len()).map(|_| None).collect();
        let mut admitted: Vec<usize> = Vec::with_capacity(queries.len());
        for (qi, q) in queries.iter().enumerate() {
            if q.init.is_empty() || q.init[0].is_empty() {
                results[qi] = Some(Err(ServeError::Sampling(NextDoorError::EmptyInit)));
                continue;
            }
            let home = self.sampler.home_shard(&q.init[0]);
            if self.sampler.shard_lost(home) || self.breakers[home].is_dead() {
                self.breakers[home].kill();
                self.shed += 1;
                self.obs.metrics.sim.shard_shed += 1;
                self.obs.trace.push(
                    Span::instant(SpanKind::OverloadShed, start_ms)
                        .batch(batch)
                        .replica(home),
                );
                results[qi] = Some(Err(ServeError::ShardLost {
                    shard: home,
                    shards,
                }));
                continue;
            }
            if !self.breakers[home].available(start_ms) {
                self.shed += 1;
                self.obs.metrics.sim.overload_shed += 1;
                self.obs.trace.push(
                    Span::instant(SpanKind::OverloadShed, start_ms)
                        .batch(batch)
                        .replica(home),
                );
                results[qi] = Some(Err(ServeError::Overloaded {
                    healthy: self.healthy_count(),
                    replicas: shards,
                }));
                continue;
            }
            admitted.push(qi);
        }

        let mut handoffs = 0u64;
        let mut walkers_lost = 0u64;
        if !admitted.is_empty() {
            for &qi in &admitted {
                let home = self.sampler.home_shard(&queries[qi].init[0]);
                self.breakers[home].begin_dispatch(start_ms);
            }
            let batch_queries: Vec<SessionQuery> =
                admitted.iter().map(|&qi| queries[qi].clone()).collect();
            let before_dead: Vec<bool> = (0..shards).map(|s| self.sampler.shard_lost(s)).collect();
            let fused = self.fused_run(&batch_queries)?;
            handoffs = fused.handoffs;
            walkers_lost = fused.walkers_lost;
            self.record_batch(batch, start_ms, &fused, admitted.len());

            // Per-shard health: a shard that died during the batch goes
            // Dead; one that absorbed faults but survived records a
            // failure; a clean live shard records a success.
            let now = self.fleet_ms();
            for (s, was_dead) in before_dead.iter().enumerate() {
                self.shard_faults[s].merge(&fused.shard_reports[s]);
                if self.sampler.shard_lost(s) {
                    if !was_dead {
                        self.shard_failures[s] += 1;
                    }
                    self.breakers[s].kill();
                } else if !fused.shard_reports[s].is_clean() {
                    self.breakers[s].record_failure(now);
                } else {
                    self.breakers[s].record_success();
                }
            }
            for (slot, store) in admitted.iter().zip(fused.per_query) {
                results[*slot] = Some(Ok(store));
            }
        }

        let end_ms = self.fleet_ms();
        self.batches += 1;
        self.requests += queries.len() as u64;
        // Every slot was filled: shed/rejected at admission or by the fused
        // run over `admitted`.
        debug_assert!(results.iter().all(Option::is_some));
        Ok(ShardDispatch {
            results: results.into_iter().flatten().collect(),
            batch,
            start_ms,
            end_ms,
            handoffs,
            walkers_lost,
        })
    }

    /// Runs the admitted slice as one fused sharded batch and folds the
    /// per-shard fault reports into the pool's accounting.
    fn fused_run(&mut self, queries: &[SessionQuery]) -> Result<ShardedFusedResult, ServeError> {
        let fused = self.sampler.query_fused(queries)?;
        self.handoffs += fused.handoffs;
        self.handoff_bytes += fused.handoff_bytes;
        self.super_steps += fused.super_steps.len() as u64;
        self.walkers_lost += fused.walkers_lost;
        Ok(fused)
    }

    /// Records the dispatch, super-step and hand-off spans plus the metric
    /// observations of one completed batch.
    fn record_batch(
        &mut self,
        batch: u64,
        start_ms: f64,
        fused: &ShardedFusedResult,
        admitted: usize,
    ) {
        let end_ms = self.fleet_ms();
        let m = &mut self.obs.metrics.sim;
        m.batches += 1;
        m.class_launches += fused.launches as u64;
        m.handoffs += fused.handoffs;
        m.super_steps += fused.super_steps.len() as u64;
        m.completed += admitted as u64;
        m.batch_size.observe(admitted as f64);
        m.service_ms.observe(end_ms - start_ms);
        m.total_ms.observe(end_ms - start_ms);
        self.obs.trace.push(
            Span::new(SpanKind::Dispatch, start_ms, end_ms)
                .batch(batch)
                .batch_size(admitted)
                .ok(true),
        );
        // Super-step spans replay on the fleet timeline ending at the
        // clock's current value: the batch's steps (plus exchanges) are
        // laid back-to-back from the end, leaving the initial-frontier
        // upload between start_ms and the first step.
        let steps_span: f64 = fused
            .super_steps
            .iter()
            .map(|mark| mark.step_ms + mark.exchange_ms)
            .sum();
        let mut cursor = end_ms - steps_span;
        for mark in &fused.super_steps {
            for (s, &ms) in mark.shard_ms.iter().enumerate() {
                if mark.shard_pairs[s] == 0 && ms == 0.0 {
                    continue;
                }
                self.shard_dispatches[s] += 1;
                self.obs.trace.push(
                    Span::new(SpanKind::SuperStep, cursor, cursor + ms)
                        .batch(batch)
                        .replica(s)
                        .depth(mark.step)
                        .batch_size(mark.shard_pairs[s]),
                );
            }
            let exchange_at = cursor + mark.step_ms;
            for h in &mark.handoffs {
                self.obs.trace.push(
                    Span::instant(SpanKind::Handoff, exchange_at)
                        .batch(batch)
                        .replica(h.from)
                        .width(h.to)
                        .batch_size(h.walkers as usize),
                );
            }
            cursor += mark.step_ms + mark.exchange_ms;
        }
    }

    /// The fleet report: per-shard stats in [`ReplicaStats`] form plus the
    /// shard-specific counters, in the same shape the replicated tier's
    /// chaos harness golden-pins.
    pub fn report(&self) -> FleetReport {
        let now = self.fleet_ms();
        FleetReport {
            replicas: (0..self.num_shards())
                .map(|s| ReplicaStats {
                    dispatches: self.shard_dispatches[s],
                    failures: self.shard_failures[s],
                    hedges: 0,
                    trips: self.breakers[s].trips,
                    probes: self.breakers[s].probes,
                    recoveries: self.breakers[s].recoveries,
                    lost: self.sampler.shard_lost(s),
                    faults: self.shard_faults[s].clone(),
                })
                .collect(),
            batches: self.batches,
            requests: self.requests,
            retries: 0,
            hedges: 0,
            hedge_wins: 0,
            shed: self.shed,
            cooldown_waits: 0,
            degraded_intervals: Vec::new(),
            handoffs: self.handoffs,
            handoff_bytes: self.handoff_bytes,
            super_steps: self.super_steps,
            walkers_lost: self.walkers_lost,
            fleet_ms: now,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nextdoor_core::api::{NextCtx, Steps};
    use nextdoor_core::run_nextdoor;
    use nextdoor_gpu::Gpu;
    use nextdoor_graph::gen::{rmat, RmatParams};

    struct Walk;
    impl SamplingApp for Walk {
        fn name(&self) -> &'static str {
            "walk"
        }
        fn steps(&self) -> Steps {
            Steps::Fixed(4)
        }
        fn sample_size(&self, _: usize) -> usize {
            1
        }
        fn next(&self, ctx: &mut NextCtx<'_>) -> Option<u32> {
            let d = ctx.num_edges();
            if d == 0 {
                return None;
            }
            let i = ctx.rand_range(d);
            Some(ctx.src_edge(i))
        }
    }

    fn pool(shards: usize) -> (ShardedPool, Csr) {
        let g = rmat(8, 2000, RmatParams::SKEWED, 3);
        let p = ShardedPool::new(
            GpuSpec::small(),
            g.clone(),
            Box::new(Walk),
            ShardPoolConfig {
                num_shards: shards,
                ..ShardPoolConfig::default()
            },
        )
        .unwrap();
        (p, g)
    }

    fn queries(n: usize) -> Vec<SessionQuery> {
        (0..n)
            .map(|i| SessionQuery {
                init: (0..8)
                    .map(|s| vec![(s * 13 + i as u32 * 7) % 256])
                    .collect(),
                seed: 40 + i as u64,
            })
            .collect()
    }

    #[test]
    fn dispatch_results_match_single_device_runs() {
        let (mut p, g) = pool(3);
        let qs = queries(3);
        let d = p.dispatch(&qs).unwrap();
        assert_eq!(d.results.len(), 3);
        for (q, r) in qs.iter().zip(&d.results) {
            let store = r.as_ref().unwrap();
            let mut gpu = Gpu::new(GpuSpec::small());
            let solo = run_nextdoor(&mut gpu, &g, &Walk, &q.init, q.seed).unwrap();
            assert_eq!(store.final_samples(), solo.store.final_samples());
        }
        assert!(d.end_ms > d.start_ms);
        assert!(p.metrics().sim.super_steps > 0);
        assert_eq!(p.metrics().sim.handoffs, d.handoffs);
        assert!(p.trace().count(SpanKind::SuperStep) > 0);
    }

    #[test]
    fn handoff_spans_conserve_walkers() {
        let (mut p, _g) = pool(4);
        let d = p.dispatch(&queries(4)).unwrap();
        let span_walkers: u64 = p
            .trace()
            .spans()
            .iter()
            .filter(|s| s.kind == SpanKind::Handoff)
            .map(|s| s.batch_size.unwrap() as u64)
            .sum();
        assert_eq!(span_walkers, d.handoffs);
        assert_eq!(p.report().handoffs, d.handoffs);
        assert_eq!(
            p.report().handoff_bytes,
            d.handoffs * nextdoor_core::sharded::HANDOFF_BYTES_PER_WALKER
        );
    }

    #[test]
    fn dead_home_shard_sheds_with_shard_lost() {
        let (mut p, _g) = pool(3);
        // Kill shard 1 mid-walk, then find a query homed there.
        p.schedule_faults(1, FaultPlan::new().lose_device_at_launch(2));
        p.dispatch(&queries(2)).unwrap();
        assert!(p.sampler().shard_lost(1));
        let seed_on_dead: u32 = (0..256)
            .find(|&v| p.sampler().owner_of(v) == 1)
            .expect("shard 1 owns some vertex");
        let q = SessionQuery {
            init: vec![vec![seed_on_dead]; 4],
            seed: 99,
        };
        let d = p.dispatch(std::slice::from_ref(&q)).unwrap();
        assert!(matches!(
            d.results[0],
            Err(ServeError::ShardLost {
                shard: 1,
                shards: 3
            })
        ));
        assert_eq!(p.metrics().sim.shard_shed, 1);
        let rep = p.report();
        assert!(rep.replicas[1].lost);
        assert_eq!(rep.shed, 1);
        assert!(rep.walkers_lost > 0);
        // Queries homed on survivors keep flowing.
        let seed_alive: u32 = (0..256)
            .find(|&v| p.sampler().owner_of(v) != 1)
            .expect("survivors own vertices");
        let q2 = SessionQuery {
            init: vec![vec![seed_alive]; 4],
            seed: 100,
        };
        let d2 = p.dispatch(std::slice::from_ref(&q2)).unwrap();
        assert!(d2.results[0].is_ok());
    }

    #[test]
    fn report_shape_matches_fleet_report() {
        let (mut p, _g) = pool(2);
        p.dispatch(&queries(2)).unwrap();
        let rep = p.report();
        assert_eq!(rep.replicas.len(), 2);
        assert_eq!(rep.batches, 1);
        assert_eq!(rep.requests, 2);
        assert!(rep.fleet_ms > 0.0);
        assert!(rep.digest().contains("handoffs"));
        assert!(rep.super_steps > 0);
    }

    #[test]
    fn empty_batch_is_rejected() {
        let (mut p, _g) = pool(2);
        assert!(matches!(
            p.dispatch(&[]),
            Err(ServeError::Sampling(NextDoorError::EmptyInit))
        ));
    }
}
