//! Sampling-as-a-service over the NextDoor engine.
//!
//! Graph-ML training loops ask for samples continuously; paying graph
//! upload and engine setup per call wastes most of the GPU's time (the
//! paper's end-to-end integration keeps sampling state resident across
//! training iterations, §8). This crate serves sampling queries from
//! persistent state, in three layers:
//!
//! 1. [`SamplerSession`](nextdoor_core::session::SamplerSession)
//!    (in `nextdoor-core`) — uploads the graph once and answers many
//!    queries, including *fused* multi-query batches that are bit-identical
//!    to standalone runs.
//! 2. [`MicroBatcher`] — deterministic admission control (bounded queue,
//!    eager input + config validation), width-class batch formation with
//!    earliest-deadline-first scheduling ([`Priority`] breaks ties) up to
//!    a batch cap, per-request deadlines on the simulated clock (expired
//!    requests are shed before touching the device), typed per-request
//!    errors ([`ServeError`]).
//! 3. [`SampleServer`] — a scheduler thread that burst-collects concurrent
//!    client requests into the batcher and mails each result back through
//!    a [`Ticket`]. It is generic over a [`BatchEngine`], so the same
//!    server fronts a lone session or a replicated pool.
//! 4. [`ReplicaPool`] + [`FleetBatcher`] — the fault-tolerant tier: N
//!    session replicas of the same graph behind a deterministic router
//!    with retry/backoff, hedging, per-replica circuit breakers
//!    ([`CircuitBreaker`]), graceful degradation with priority shedding,
//!    and a per-run [`FleetReport`] of every recovery decision. All of it
//!    runs on the simulated fleet clock, so chaos runs are bit-identical
//!    at any host thread count.
//! 5. [`ShardedPool`] — the sharded tier: the graph **partitioned** across
//!    N devices instead of replicated, with partition-aware request
//!    routing, cross-shard walker hand-off in deterministic super-steps,
//!    per-shard circuit breakers, and typed [`ServeError::ShardLost`]
//!    shedding when a request's home shard is permanently gone. Samples
//!    stay bit-identical to single-device runs.
//!
//! ```
//! use nextdoor_core::api::{NextCtx, SamplingApp, Steps};
//! use nextdoor_core::session::SamplerSession;
//! use nextdoor_gpu::GpuSpec;
//! use nextdoor_graph::gen::{rmat, RmatParams};
//! use nextdoor_serve::{MicroBatcher, Request, SampleServer, ServeConfig};
//!
//! struct Walk;
//! impl SamplingApp for Walk {
//!     fn name(&self) -> &'static str { "walk" }
//!     fn steps(&self) -> Steps { Steps::Fixed(3) }
//!     fn sample_size(&self, _step: usize) -> usize { 1 }
//!     fn next(&self, ctx: &mut NextCtx<'_>) -> Option<u32> {
//!         let d = ctx.num_edges();
//!         if d == 0 { return None; }
//!         let i = ctx.rand_range(d);
//!         Some(ctx.src_edge(i))
//!     }
//! }
//!
//! let graph = rmat(8, 1200, RmatParams::SKEWED, 1);
//! let session = SamplerSession::new(GpuSpec::small(), graph, Box::new(Walk))
//!     .expect("graph fits on the device");
//! let batcher = MicroBatcher::new(session, ServeConfig::default())
//!     .expect("default config is valid");
//! let server = SampleServer::start(batcher);
//!
//! // Requests of *different* widths (vertices per sample) are welcome:
//! // the batcher groups them into width classes, one fused launch each.
//! let client = server.client();
//! let tickets: Vec<_> = (0..4)
//!     .map(|seed| {
//!         let width = 1 + (seed as usize % 2);
//!         let init = (0..8).map(|i| vec![i as u32; width]).collect();
//!         client.submit(Request::new(init, seed)).expect("server is up")
//!     })
//!     .collect();
//! for t in tickets {
//!     let resp = t.wait().expect("valid request, no deadline");
//!     assert_eq!(resp.store.num_samples(), 8);
//! }
//! server.shutdown();
//! ```

#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod batcher;
pub mod error;
pub mod health;
pub mod metrics;
pub mod replica;
pub mod server;
pub mod shard;
pub mod trace;

pub use batcher::{
    MicroBatcher, Priority, Request, RequestId, RequestLatency, Response, ServeConfig,
};
pub use error::ServeError;
pub use health::{BreakerConfig, BreakerState, CircuitBreaker};
pub use metrics::{
    Histogram, PriorityMetrics, ServeMetrics, SimMetrics, TuningMetrics, DEPTH_BOUNDS,
    LATENCY_BOUNDS_MS, SIZE_BOUNDS, WIDTH_BOUNDS,
};
pub use replica::{FleetBatcher, FleetReport, PoolConfig, PoolResponse, ReplicaPool, ReplicaStats};
pub use server::{BatchEngine, RequestOutcome, SampleServer, ServeClient, Ticket};
pub use shard::{ShardDispatch, ShardPoolConfig, ShardedPool};
pub use trace::{write_fleet_trace, Span, SpanKind, Tracer};
