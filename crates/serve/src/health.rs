//! Per-replica health: a deterministic circuit breaker.
//!
//! Replicated serving must stop routing traffic to a replica that keeps
//! failing — every request sent to it burns a retry budget and inflates
//! tail latency — but must also *re-probe* it, because many failure modes
//! (a transient-fault storm, a watchdog-heavy workload phase) pass. The
//! classic answer is a circuit breaker: **closed** (healthy, traffic
//! flows) → **open** after a run of consecutive failures (no traffic, a
//! cool-down runs) → **half-open** after the cool-down (a single probe
//! dispatch) → closed again on a probe success, or straight back to open
//! on a probe failure.
//!
//! Everything here is keyed off the serving tier's *fleet clock* — the
//! deterministic simulated-millisecond timeline maintained by
//! [`ReplicaPool`](crate::replica::ReplicaPool) — never off wall time, so
//! a chaos run trips and recovers breakers at bit-identical instants
//! regardless of host thread count or machine speed.

/// Tuning knobs of a per-replica [`CircuitBreaker`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BreakerConfig {
    /// Consecutive dispatch failures that trip the breaker open.
    pub trip_after: u32,
    /// Simulated milliseconds (fleet clock) an open breaker waits before
    /// allowing a half-open probe.
    pub cooldown_ms: f64,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            trip_after: 2,
            cooldown_ms: 1.0,
        }
    }
}

/// Observable state of a [`CircuitBreaker`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BreakerState {
    /// Healthy: dispatches flow, tracking consecutive failures.
    Closed {
        /// Consecutive failures recorded so far (resets on success).
        consecutive_failures: u32,
    },
    /// Tripped: no dispatches until the cool-down elapses on the fleet
    /// clock.
    Open {
        /// Fleet-clock instant at which a half-open probe becomes allowed.
        until_ms: f64,
    },
    /// Cooling down finished: exactly one probe dispatch is in flight; its
    /// outcome closes or re-trips the breaker.
    HalfOpen,
    /// Permanently out: the replica's device was lost. No probe can bring
    /// it back.
    Dead,
}

/// A deterministic circuit breaker for one replica. See the
/// [module docs](self) for the state machine; all transitions are driven
/// by the pool handing in the current fleet-clock time.
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    cfg: BreakerConfig,
    state: BreakerState,
    /// Times the breaker tripped open (including half-open probes that
    /// failed and re-tripped it).
    pub trips: u64,
    /// Half-open probe dispatches allowed through.
    pub probes: u64,
    /// Times a half-open probe succeeded and closed the breaker again.
    pub recoveries: u64,
}

impl CircuitBreaker {
    /// A closed (healthy) breaker with the given knobs.
    pub fn new(cfg: BreakerConfig) -> Self {
        CircuitBreaker {
            cfg,
            state: BreakerState::Closed {
                consecutive_failures: 0,
            },
            trips: 0,
            probes: 0,
            recoveries: 0,
        }
    }

    /// Current state.
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Whether the replica is permanently gone.
    pub fn is_dead(&self) -> bool {
        self.state == BreakerState::Dead
    }

    /// Whether a dispatch may be routed here at fleet time `now_ms`
    /// (closed, half-open, or open with the cool-down elapsed).
    pub fn available(&self, now_ms: f64) -> bool {
        match self.state {
            BreakerState::Closed { .. } | BreakerState::HalfOpen => true,
            BreakerState::Open { until_ms } => now_ms >= until_ms,
            BreakerState::Dead => false,
        }
    }

    /// If the breaker is open, the fleet-clock instant at which it would
    /// allow a probe again; `None` for every other state.
    pub fn reopen_at(&self) -> Option<f64> {
        match self.state {
            BreakerState::Open { until_ms } => Some(until_ms),
            _ => None,
        }
    }

    /// Marks the start of a dispatch at fleet time `now_ms`. An open
    /// breaker whose cool-down has elapsed transitions to half-open and
    /// counts the probe. Callers must have checked
    /// [`CircuitBreaker::available`] first.
    pub fn begin_dispatch(&mut self, now_ms: f64) {
        debug_assert!(self.available(now_ms), "dispatch to unavailable breaker");
        if let BreakerState::Open { until_ms } = self.state {
            if now_ms >= until_ms {
                self.state = BreakerState::HalfOpen;
                self.probes += 1;
            }
        }
    }

    /// Records a successful dispatch: closes a half-open breaker (a
    /// recovery) and resets the consecutive-failure run.
    pub fn record_success(&mut self) {
        match self.state {
            BreakerState::HalfOpen => {
                self.recoveries += 1;
                self.state = BreakerState::Closed {
                    consecutive_failures: 0,
                };
            }
            BreakerState::Closed { .. } => {
                self.state = BreakerState::Closed {
                    consecutive_failures: 0,
                };
            }
            BreakerState::Open { .. } | BreakerState::Dead => {}
        }
    }

    /// Records a failed dispatch at fleet time `now_ms`: a half-open probe
    /// re-trips immediately; a closed breaker trips once the consecutive
    /// run reaches [`BreakerConfig::trip_after`].
    pub fn record_failure(&mut self, now_ms: f64) {
        match self.state {
            BreakerState::HalfOpen => self.trip(now_ms),
            BreakerState::Closed {
                consecutive_failures,
            } => {
                let run = consecutive_failures + 1;
                if run >= self.cfg.trip_after {
                    self.trip(now_ms);
                } else {
                    self.state = BreakerState::Closed {
                        consecutive_failures: run,
                    };
                }
            }
            BreakerState::Open { .. } | BreakerState::Dead => {}
        }
    }

    /// Permanently removes the replica from service (device lost).
    pub fn kill(&mut self) {
        self.state = BreakerState::Dead;
    }

    fn trip(&mut self, now_ms: f64) {
        self.trips += 1;
        self.state = BreakerState::Open {
            until_ms: now_ms + self.cfg.cooldown_ms,
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn breaker() -> CircuitBreaker {
        CircuitBreaker::new(BreakerConfig {
            trip_after: 2,
            cooldown_ms: 10.0,
        })
    }

    #[test]
    fn trips_after_consecutive_failures_and_cools_down() {
        let mut b = breaker();
        assert!(b.available(0.0));
        b.record_failure(0.0);
        assert!(b.available(0.0), "one failure is below the trip threshold");
        b.record_failure(1.0);
        assert_eq!(b.state(), BreakerState::Open { until_ms: 11.0 });
        assert_eq!(b.trips, 1);
        assert!(!b.available(5.0));
        assert_eq!(b.reopen_at(), Some(11.0));
        assert!(b.available(11.0), "cool-down elapsed on the fleet clock");
    }

    #[test]
    fn success_resets_the_failure_run() {
        let mut b = breaker();
        b.record_failure(0.0);
        b.record_success();
        b.record_failure(1.0);
        assert!(b.available(1.0), "run was reset by the success");
    }

    #[test]
    fn half_open_probe_closes_or_retrips() {
        let mut b = breaker();
        b.record_failure(0.0);
        b.record_failure(0.0);
        b.begin_dispatch(10.0);
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert_eq!(b.probes, 1);
        b.record_failure(10.5);
        assert_eq!(b.state(), BreakerState::Open { until_ms: 20.5 });
        assert_eq!(b.trips, 2, "failed probe re-trips");

        b.begin_dispatch(20.5);
        b.record_success();
        assert_eq!(
            b.state(),
            BreakerState::Closed {
                consecutive_failures: 0
            }
        );
        assert_eq!(b.recoveries, 1);
    }

    #[test]
    fn dead_is_forever() {
        let mut b = breaker();
        b.kill();
        assert!(b.is_dead());
        assert!(!b.available(f64::MAX));
        b.record_success();
        assert!(b.is_dead(), "no probe revives a lost device");
        assert_eq!(b.reopen_at(), None);
    }
}
