//! Request micro-batching over a persistent [`SamplerSession`].
//!
//! The batcher is the deterministic core of the serving layer: it admits
//! requests into a bounded queue and, on every drain, forms fused
//! transit-parallel batches via [`SamplerSession::query_fused`], then
//! slices results back per request. Fusion is a pure throughput lever —
//! each request's samples are bit-identical to running it alone, because
//! the engines key every RNG draw by the request's own `(seed, local id)`
//! regardless of where the batcher packs it.
//!
//! **Batch formation** is width-class and deadline aware, not FIFO: the
//! step planner sizes the shared transit array from one vertices-per-sample
//! count, so only requests of equal initial width can share a launch. Each
//! formation picks the globally most *urgent* pending request (earliest
//! absolute deadline on the simulated clock; [`Priority`] then admission
//! order break ties), and batches it with the up-to-
//! [`ServeConfig::max_batch`] most urgent requests of its width class — a
//! lone mismatched-width request no longer head-of-line-blocks everything
//! behind it into singleton launches. Requests whose deadline has already
//! expired while queued are shed *before* batch formation, without
//! consuming device time. All of this is a pure function of the queue
//! contents and the simulated clock, so serving schedules are bit-identical
//! at any host thread count.
//!
//! All admission control and scheduling is synchronous and deterministic
//! here; the thread that makes it a service lives in [`crate::server`].

use std::cmp::Ordering;
use std::collections::VecDeque;

use crate::error::ServeError;
use crate::metrics::ServeMetrics;
use crate::trace::{Obs, Span, SpanKind, Tracer};
use nextdoor_core::session::{SamplerSession, SessionQuery};
use nextdoor_core::tuning::{CacheConfig, TunerConfig};
use nextdoor_core::{validate_run, EngineStats, FaultReport, SampleStore};
use nextdoor_graph::VertexId;

/// Scheduling knobs of the serving layer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeConfig {
    /// Most requests fused into a single launch.
    pub max_batch: usize,
    /// Bound on admitted-but-unserved requests; submissions past it are
    /// rejected with [`ServeError::QueueFull`].
    pub max_queue: usize,
    /// Deadline applied to requests that do not carry their own, in
    /// simulated milliseconds from admission to batch completion. `None`
    /// means no deadline.
    pub default_deadline_ms: Option<f64>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            max_batch: 8,
            max_queue: 64,
            default_deadline_ms: None,
        }
    }
}

impl ServeConfig {
    /// Checks the knobs for sanity: a zero batch cap or queue bound could
    /// never serve anything, and a non-positive (or non-finite) default
    /// deadline would reject every request it applied to.
    ///
    /// [`MicroBatcher::new`] and
    /// [`FleetBatcher::new`](crate::replica::FleetBatcher::new) call this,
    /// so a nonsensical configuration is a typed construction error rather
    /// than silently clamped behaviour.
    ///
    /// # Errors
    ///
    /// [`ServeError::InvalidConfig`] naming the offending knob.
    pub fn validate(&self) -> Result<(), ServeError> {
        if self.max_batch == 0 {
            return Err(ServeError::InvalidConfig {
                reason: "max_batch must be at least 1",
            });
        }
        if self.max_queue == 0 {
            return Err(ServeError::InvalidConfig {
                reason: "max_queue must be at least 1",
            });
        }
        if let Some(d) = self.default_deadline_ms {
            if !d.is_finite() || d <= 0.0 {
                return Err(ServeError::InvalidConfig {
                    reason: "default_deadline_ms must be finite and positive",
                });
            }
        }
        Ok(())
    }
}

/// Scheduling priority of a request. Both batchers use it as the tie-break
/// between equal deadlines when forming batches (`High` is scheduled
/// before `Normal` before `Low`); the replicated tier
/// ([`FleetBatcher`](crate::replica::FleetBatcher)) additionally sheds
/// strictly lowest-priority-first when healthy capacity drops below
/// demand, so `Low` traffic absorbs degradation before `Normal`, and
/// `Normal` before `High`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Priority {
    /// Best-effort traffic: first to be shed under degraded capacity.
    Low,
    /// The default.
    #[default]
    Normal,
    /// Latency-critical traffic: shed only after everything else.
    High,
}

/// One sampling request as submitted by a client.
#[derive(Debug, Clone)]
pub struct Request {
    /// Initial vertices of each requested sample (equal widths required
    /// within the request; requests of different widths are still served,
    /// they just cannot share a fused launch).
    pub init: Vec<Vec<VertexId>>,
    /// RNG seed of the request — the samples are exactly those of a
    /// standalone `run_nextdoor` call with this seed.
    pub seed: u64,
    /// Per-request deadline in simulated milliseconds, overriding
    /// [`ServeConfig::default_deadline_ms`].
    pub deadline_ms: Option<f64>,
    /// Shedding priority under degraded capacity (see [`Priority`]).
    pub priority: Priority,
}

impl Request {
    /// A request with no deadline of its own and [`Priority::Normal`].
    pub fn new(init: Vec<Vec<VertexId>>, seed: u64) -> Self {
        Request {
            init,
            seed,
            deadline_ms: None,
            priority: Priority::Normal,
        }
    }

    /// The same request at a different shedding priority.
    pub fn with_priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }

    /// The same request with a per-request deadline, in simulated
    /// milliseconds from admission to batch completion.
    pub fn with_deadline(mut self, deadline_ms: f64) -> Self {
        self.deadline_ms = Some(deadline_ms);
        self
    }
}

/// Identifies an admitted request across `submit`/`drain` calls.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RequestId(pub u64);

/// Per-request latency, measured on the device's simulated clock (the
/// same counter/profile machinery that times engine runs — see
/// [`SamplerSession::sim_ms`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RequestLatency {
    /// Simulated ms the request waited between admission and its batch
    /// starting.
    pub queued_ms: f64,
    /// Simulated ms of the fused batch that served the request.
    pub service_ms: f64,
    /// Admission-to-completion simulated ms (`queued_ms + service_ms`).
    pub total_ms: f64,
    /// Requests fused into the launch that served this one.
    pub batch_size: usize,
}

/// A served request: its sliced sample store plus how it was served.
#[derive(Debug, Clone)]
pub struct Response {
    /// The request's samples — bit-identical to a standalone run with the
    /// request's `(init, seed)`.
    pub store: SampleStore,
    /// Latency breakdown on the simulated clock.
    pub latency: RequestLatency,
    /// Engine statistics of the fused batch (shared by every request in
    /// it; the profile within is the batch's kernel-launch ring slice).
    pub batch_stats: EngineStats,
    /// Faults the fused batch observed and survived.
    pub report: FaultReport,
}

/// An admitted request waiting to be served, shared by the single-session
/// [`MicroBatcher`] and the replicated
/// [`FleetBatcher`](crate::replica::FleetBatcher).
pub(crate) struct Pending {
    pub(crate) id: RequestId,
    pub(crate) req: Request,
    /// Simulated-clock instant of admission (session clock or fleet clock,
    /// depending on the batcher).
    pub(crate) admit_ms: f64,
}

/// The deadline a pending request is held to, if any (its own, else the
/// configured default), in simulated ms from admission.
pub(crate) fn deadline_of(cfg: &ServeConfig, p: &Pending) -> Option<f64> {
    p.req.deadline_ms.or(cfg.default_deadline_ms)
}

/// Rejects at admission a request whose own deadline could never be met:
/// a non-positive budget is already expired before any queueing or
/// service, and a non-finite one is meaningless.
pub(crate) fn validate_deadline(req: &Request) -> Result<(), ServeError> {
    if let Some(d) = req.deadline_ms {
        if !d.is_finite() {
            return Err(ServeError::InvalidConfig {
                reason: "request deadline_ms must be finite",
            });
        }
        if d <= 0.0 {
            return Err(ServeError::DeadlineExceeded {
                deadline_ms: d,
                observed_ms: 0.0,
            });
        }
    }
    Ok(())
}

/// Scheduling urgency order: earliest absolute deadline on the simulated
/// clock first (no deadline sorts last), [`Priority`] (descending) breaks
/// deadline ties, admission order breaks the rest — so a stream of
/// deadline-less equal-priority requests is served strictly FIFO.
pub(crate) fn urgency(cfg: &ServeConfig, a: &Pending, b: &Pending) -> Ordering {
    let abs = |p: &Pending| deadline_of(cfg, p).map_or(f64::INFINITY, |d| p.admit_ms + d);
    abs(a)
        .total_cmp(&abs(b))
        .then(b.req.priority.cmp(&a.req.priority))
        .then(a.id.cmp(&b.id))
}

/// Sheds every pending request whose deadline has already expired at `now`
/// (queue wait alone reached the budget), without consuming any device
/// time. Remaining requests keep their admission order. Each shed is
/// recorded as an [`SpanKind::Expired`] span and an `expired_shed` count.
pub(crate) fn shed_expired(
    cfg: &ServeConfig,
    pending: &mut VecDeque<Pending>,
    now: f64,
    out: &mut Vec<(RequestId, Result<Response, ServeError>)>,
    obs: &mut Obs,
) {
    let mut i = 0;
    while i < pending.len() {
        let expired = deadline_of(cfg, &pending[i]).is_some_and(|d| now - pending[i].admit_ms >= d);
        if !expired {
            i += 1;
            continue;
        }
        if let Some(p) = pending.remove(i) {
            let d = deadline_of(cfg, &p).unwrap_or(0.0);
            obs.trace.push(
                Span::new(SpanKind::Expired, p.admit_ms, now)
                    .request(p.id)
                    .priority(p.req.priority),
            );
            obs.metrics.sim.expired_shed += 1;
            obs.metrics.priority_mut(p.req.priority).expired_shed += 1;
            out.push((
                p.id,
                Err(ServeError::DeadlineExceeded {
                    deadline_ms: d,
                    observed_ms: now - p.admit_ms,
                }),
            ));
        }
    }
}

/// Records a served request's lifecycle: its queued interval, its
/// completion span (`ok` = attained its deadline), the deadline-miss
/// marker when it finished late, and the latency histograms. Shared by
/// both batchers so the span model is identical across tiers.
pub(crate) fn record_served(
    obs: &mut Obs,
    p: &Pending,
    batch_seq: u64,
    start_ms: f64,
    end_ms: f64,
    in_time: bool,
) {
    obs.trace.push(
        Span::new(SpanKind::Queued, p.admit_ms, start_ms)
            .request(p.id)
            .priority(p.req.priority)
            .batch(batch_seq),
    );
    obs.trace.push(
        Span::new(SpanKind::Completion, p.admit_ms, end_ms)
            .request(p.id)
            .priority(p.req.priority)
            .batch(batch_seq)
            .ok(in_time),
    );
    if !in_time {
        obs.trace.push(
            Span::instant(SpanKind::DeadlineMiss, end_ms)
                .request(p.id)
                .priority(p.req.priority)
                .batch(batch_seq),
        );
    }
    let sim = &mut obs.metrics.sim;
    sim.queued_ms.observe(start_ms - p.admit_ms);
    sim.service_ms.observe(end_ms - start_ms);
    sim.total_ms.observe(end_ms - p.admit_ms);
    if in_time {
        sim.completed += 1;
    } else {
        sim.deadline_missed += 1;
    }
    let pm = obs.metrics.priority_mut(p.req.priority);
    pm.total_ms.observe(end_ms - p.admit_ms);
    if in_time {
        pm.completed += 1;
    } else {
        pm.deadline_missed += 1;
    }
}

/// Records a dispatched batch's launch spans: the dispatch interval with
/// its device launch range, one [`SpanKind::ClassLaunch`] span per width
/// class (device-clock interval mapped onto the recording tier's clock by
/// `dev_offset_ms`), and the batch-shape histograms. Shared by both
/// batchers. `replica` tags the spans on a replicated pool.
#[allow(clippy::too_many_arguments)]
pub(crate) fn record_dispatch(
    obs: &mut Obs,
    batch_seq: u64,
    replica: Option<usize>,
    batch_size: usize,
    start_ms: f64,
    end_ms: f64,
    launch_range: (u64, u64),
    class_marks: &[nextdoor_core::ClassMark],
    cycles_to_ms: impl Fn(f64) -> f64,
    dev_offset_ms: f64,
) {
    let mut span = Span::new(SpanKind::Dispatch, start_ms, end_ms)
        .batch(batch_seq)
        .batch_size(batch_size)
        .launches(launch_range)
        .ok(true);
    if let Some(r) = replica {
        span = span.replica(r);
    }
    obs.trace.push(span);
    for m in class_marks {
        let mut s = Span::new(
            SpanKind::ClassLaunch,
            cycles_to_ms(m.start_cycles) + dev_offset_ms,
            cycles_to_ms(m.end_cycles) + dev_offset_ms,
        )
        .batch(batch_seq)
        .width(m.width)
        .batch_size(m.queries)
        .launches((m.launch_start, m.launch_end));
        if let Some(r) = replica {
            s = s.replica(r);
        }
        obs.trace.push(s);
        obs.metrics.sim.batch_width.observe(m.width as f64);
    }
    obs.metrics.sim.batches += 1;
    obs.metrics.sim.class_launches += class_marks.len() as u64;
    obs.metrics.sim.batch_size.observe(batch_size as f64);
}

/// Forms the next batch: the globally most urgent pending request anchors
/// it, and the batch is the up-to-`cap` most urgent requests of the
/// anchor's width class, in urgency order. Other width classes stay queued
/// for later formations. Must be called with a non-empty queue.
pub(crate) fn form_batch(
    cfg: &ServeConfig,
    cap: usize,
    pending: &mut VecDeque<Pending>,
) -> Vec<Pending> {
    let anchor_width = pending
        .iter()
        .min_by(|a, b| urgency(cfg, a, b))
        .map_or(0, |p| p.req.init[0].len());
    let mut class: Vec<usize> = (0..pending.len())
        .filter(|&i| pending[i].req.init[0].len() == anchor_width)
        .collect();
    class.sort_by(|&a, &b| urgency(cfg, &pending[a], &pending[b]));
    class.truncate(cap.max(1));
    // Remove back-to-front so earlier indices stay valid, then restore
    // urgency order within the batch.
    class.sort_unstable_by(|a, b| b.cmp(a));
    let mut batch: Vec<Pending> = class
        .into_iter()
        .filter_map(|i| pending.remove(i))
        .collect();
    batch.sort_by(|a, b| urgency(cfg, a, b));
    batch
}

/// Admits sampling requests into a bounded queue and serves them in fused
/// batches from a persistent session. See the [module docs](self).
pub struct MicroBatcher {
    session: SamplerSession,
    cfg: ServeConfig,
    pending: VecDeque<Pending>,
    next_id: u64,
    launches: u64,
    obs: Obs,
}

impl MicroBatcher {
    /// Wraps a warm session in a batcher with the given scheduling knobs.
    ///
    /// # Errors
    ///
    /// [`ServeError::InvalidConfig`] when the knobs fail
    /// [`ServeConfig::validate`].
    pub fn new(session: SamplerSession, cfg: ServeConfig) -> Result<Self, ServeError> {
        cfg.validate()?;
        Ok(MicroBatcher {
            session,
            cfg,
            pending: VecDeque::new(),
            next_id: 0,
            launches: 0,
            obs: Obs::default(),
        })
    }

    /// Admits a request, or rejects it with backpressure.
    ///
    /// Admission is where a request can be refused without touching the
    /// device: a full queue returns [`ServeError::QueueFull`], invalid
    /// inputs (empty/ragged initial samples, out-of-range roots) return
    /// [`ServeError::Sampling`], and a request whose deadline budget is
    /// already non-positive (it could never complete in time) returns
    /// [`ServeError::DeadlineExceeded`] immediately — so only runnable
    /// requests ever occupy queue slots.
    ///
    /// # Errors
    ///
    /// [`ServeError::QueueFull`], [`ServeError::Sampling`],
    /// [`ServeError::DeadlineExceeded`] and [`ServeError::InvalidConfig`]
    /// (non-finite deadline), as above.
    pub fn submit(&mut self, req: Request) -> Result<RequestId, ServeError> {
        if self.pending.len() >= self.cfg.max_queue {
            self.obs.metrics.sim.queue_rejected += 1;
            self.obs.trace.push(
                Span::instant(SpanKind::QueueReject, self.session.sim_ms())
                    .priority(req.priority)
                    .depth(self.pending.len()),
            );
            return Err(ServeError::QueueFull {
                capacity: self.cfg.max_queue,
            });
        }
        validate_deadline(&req)?;
        validate_run(self.session.graph(), self.session.app(), &req.init)?;
        let id = RequestId(self.next_id);
        self.next_id += 1;
        let admit_ms = self.session.sim_ms();
        let priority = req.priority;
        self.pending.push_back(Pending { id, req, admit_ms });
        self.obs.metrics.sim.admitted += 1;
        self.obs.trace.push(
            Span::instant(SpanKind::Admission, admit_ms)
                .request(id)
                .priority(priority)
                .depth(self.pending.len()),
        );
        Ok(id)
    }

    /// Serves every pending request and returns the outcomes in completion
    /// order.
    ///
    /// Before each batch formation, requests whose deadline already
    /// expired while queued are shed with [`ServeError::DeadlineExceeded`]
    /// without touching the device. Each batch is then formed by urgency
    /// (see [module docs](self)): the most urgent request's width class,
    /// earliest-deadline-first within it, capped at
    /// [`ServeConfig::max_batch`], run as a single fused launch. A request
    /// that finishes past its deadline gets
    /// [`ServeError::DeadlineExceeded`] while the rest of its batch
    /// completes normally; a batch whose fused run fails at runtime fans
    /// the same typed error out to each of its requests and later batches
    /// are still attempted.
    pub fn drain(&mut self) -> Vec<(RequestId, Result<Response, ServeError>)> {
        let mut out = Vec::with_capacity(self.pending.len());
        loop {
            shed_expired(
                &self.cfg,
                &mut self.pending,
                self.session.sim_ms(),
                &mut out,
                &mut self.obs,
            );
            if self.pending.is_empty() {
                break;
            }
            let depth = self.pending.len();
            let batch = form_batch(&self.cfg, self.cfg.max_batch, &mut self.pending);
            self.obs.metrics.sim.queue_depth.observe(depth as f64);
            self.obs.trace.push(
                Span::instant(SpanKind::Formation, self.session.sim_ms())
                    .depth(depth)
                    .batch_size(batch.len()),
            );
            self.run_batch(batch, &mut out);
            self.harvest_tuning();
        }
        out
    }

    /// Copies the session's tuner/cache counters into the metrics registry
    /// and emits a [`SpanKind::CacheInstall`] span whenever a maintenance
    /// pass changed the resident set. Runs after each served batch, at the
    /// same query boundary where the session itself retunes.
    fn harvest_tuning(&mut self) {
        let t = &mut self.obs.metrics.tuning;
        t.plan_updates = self.session.plan_updates();
        let Some(s) = self.session.cache_stats() else {
            return;
        };
        let installs_changed = s.installs != t.installs || s.evictions != t.evictions;
        t.cache_hits = s.hits;
        t.cache_misses = s.misses;
        t.installs = s.installs;
        t.evictions = s.evictions;
        t.pressure_fallbacks = s.pressure_fallbacks;
        t.sched_reuses = s.sched_reuses;
        t.sched_builds = s.sched_builds;
        if installs_changed {
            self.obs.trace.push(
                Span::instant(SpanKind::CacheInstall, self.session.sim_ms())
                    .batch_size(self.session.cache_resident_len()),
            );
        }
    }

    fn run_batch(
        &mut self,
        batch: Vec<Pending>,
        out: &mut Vec<(RequestId, Result<Response, ServeError>)>,
    ) {
        let queries: Vec<SessionQuery> = batch
            .iter()
            .map(|p| SessionQuery {
                init: p.req.init.clone(),
                seed: p.req.seed,
            })
            .collect();
        let start_ms = self.session.sim_ms();
        let launch0 = self.session.gpu().launches_issued();
        let batch_seq = self.obs.trace.next_batch_id();
        match self.session.query_fused(&queries) {
            Ok(fused) => {
                self.launches += fused.launches as u64;
                let end_ms = self.session.sim_ms();
                let launch1 = self.session.gpu().launches_issued();
                let spec = self.session.gpu().spec().clone();
                // Session clock == dispatch clock here, so class launch
                // intervals map with zero offset.
                record_dispatch(
                    &mut self.obs,
                    batch_seq,
                    None,
                    batch.len(),
                    start_ms,
                    end_ms,
                    (launch0, launch1),
                    &fused.class_marks,
                    |c| spec.cycles_to_ms(c),
                    0.0,
                );
                let batch_size = batch.len();
                for (p, store) in batch.into_iter().zip(fused.per_query) {
                    let observed_ms = end_ms - p.admit_ms;
                    let deadline = deadline_of(&self.cfg, &p);
                    let in_time = !matches!(deadline, Some(d) if observed_ms > d);
                    record_served(&mut self.obs, &p, batch_seq, start_ms, end_ms, in_time);
                    let result = match deadline {
                        Some(d) if observed_ms > d => Err(ServeError::DeadlineExceeded {
                            deadline_ms: d,
                            observed_ms,
                        }),
                        _ => Ok(Response {
                            store,
                            latency: RequestLatency {
                                queued_ms: start_ms - p.admit_ms,
                                service_ms: end_ms - start_ms,
                                total_ms: observed_ms,
                                batch_size,
                            },
                            batch_stats: fused.stats.clone(),
                            report: fused.report.clone(),
                        }),
                    };
                    out.push((p.id, result));
                }
            }
            Err(e) => {
                let end_ms = self.session.sim_ms();
                let launch1 = self.session.gpu().launches_issued();
                self.obs.trace.push(
                    Span::new(SpanKind::Dispatch, start_ms, end_ms)
                        .batch(batch_seq)
                        .batch_size(batch.len())
                        .launches((launch0, launch1))
                        .ok(false),
                );
                self.obs.metrics.sim.batches += 1;
                self.obs.metrics.sim.failed += batch.len() as u64;
                for p in batch {
                    out.push((p.id, Err(ServeError::Sampling(e.clone()))));
                }
            }
        }
    }

    /// Requests admitted but not yet served.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Fused launch sequences dispatched to the device so far — the
    /// batcher's fusion effectiveness: fewer launches for the same served
    /// requests means better amortisation of per-launch fixed costs.
    /// Requests shed before dispatch consume none.
    pub fn launches(&self) -> u64 {
        self.launches
    }

    /// The batcher's scheduling knobs.
    pub fn config(&self) -> &ServeConfig {
        &self.cfg
    }

    /// The recorded request-lifecycle span stream (see [`crate::trace`]).
    pub fn trace(&self) -> &Tracer {
        &self.obs.trace
    }

    /// The batcher's metrics registry (see [`crate::metrics`]).
    pub fn metrics(&self) -> &ServeMetrics {
        &self.obs.metrics
    }

    /// Records a wall-clock end-to-end latency sample into the metrics
    /// registry's (non-digested) wall histogram.
    pub fn observe_wall_ms(&mut self, ms: f64) {
        self.obs.metrics.observe_wall_ms(ms);
    }

    /// Enables profile-guided autotuning and the cross-query hot-transit
    /// cache on the underlying session (see
    /// [`nextdoor_core::tuning`]). The batcher harvests the resulting
    /// counters into [`ServeMetrics::tuning`] after every served batch and
    /// traces cache maintenance as [`SpanKind::CacheInstall`] spans.
    /// Samples are unaffected — tuning moves only launch geometry and
    /// cost, so responses stay bit-identical to an untuned batcher's.
    pub fn enable_tuning(&mut self, tuner: TunerConfig, cache: CacheConfig) {
        self.session.enable_autotune(tuner);
        self.session.enable_hot_cache(cache);
    }

    /// The underlying warm session.
    pub fn session(&self) -> &SamplerSession {
        &self.session
    }

    /// Mutable access to the underlying session (e.g. to inject a fault
    /// plan between drains).
    pub fn session_mut(&mut self) -> &mut SamplerSession {
        &mut self.session
    }

    /// Tears the batcher down, recovering the warm session.
    pub fn into_session(self) -> SamplerSession {
        self.session
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::TuningMetrics;
    use nextdoor_apps::KHop;
    use nextdoor_core::NextDoorError;
    use nextdoor_gpu::GpuSpec;
    use nextdoor_graph::gen::{rmat, RmatParams};

    fn batcher(cfg: ServeConfig) -> MicroBatcher {
        let g = rmat(8, 1500, RmatParams::SKEWED, 11);
        let session =
            SamplerSession::new(GpuSpec::small(), g, Box::new(KHop::new(vec![2, 2]))).unwrap();
        MicroBatcher::new(session, cfg).unwrap()
    }

    fn req(width: usize, seed: u64) -> Request {
        Request::new((0..6).map(|i| vec![i as u32; width]).collect(), seed)
    }

    #[test]
    fn equal_width_requests_fuse_and_match_solo_runs() {
        let mut b = batcher(ServeConfig::default());
        let ids: Vec<_> = (0..3).map(|s| b.submit(req(1, 50 + s)).unwrap()).collect();
        assert_eq!(b.pending_len(), 3);
        let served = b.drain();
        assert_eq!(b.pending_len(), 0);
        assert_eq!(served.len(), 3);
        for ((id, res), want_id) in served.iter().zip(&ids) {
            assert_eq!(id, want_id);
            let resp = res.as_ref().unwrap();
            assert_eq!(resp.latency.batch_size, 3);
            assert!(resp.latency.service_ms > 0.0);
            assert!(resp.report.is_clean());
        }
        // Bit-identity: each response equals the same query served alone.
        for (i, (_, res)) in served.into_iter().enumerate() {
            let solo = b
                .session_mut()
                .query(&req(1, 50 + i as u64).init, 50 + i as u64)
                .unwrap();
            assert_eq!(
                res.unwrap().store.final_samples(),
                solo.store.final_samples()
            );
        }
    }

    #[test]
    fn mixed_widths_fuse_by_class_instead_of_head_of_line_blocking() {
        // Regression for the old FIFO-prefix rule: widths [1,1,2,1] used to
        // split at the width change into batches 1,1 | 2 | 1 — three
        // launches, with the trailing width-1 request degraded to a
        // singleton. Width-class formation serves all width-1 requests in
        // one launch and the width-2 request in another.
        let mut b = batcher(ServeConfig::default());
        let ids = [
            b.submit(req(1, 1)).unwrap(),
            b.submit(req(1, 2)).unwrap(),
            b.submit(req(2, 3)).unwrap(),
            b.submit(req(1, 4)).unwrap(),
        ];
        let served = b.drain();
        assert_eq!(b.launches(), 2, "two width classes, two launches");
        let order: Vec<RequestId> = served.iter().map(|(id, _)| *id).collect();
        assert_eq!(
            order,
            vec![ids[0], ids[1], ids[3], ids[2]],
            "the width-1 class (admission order) completes first, then width-2"
        );
        let sizes: Vec<usize> = served
            .iter()
            .map(|(_, r)| r.as_ref().unwrap().latency.batch_size)
            .collect();
        assert_eq!(sizes, vec![3, 3, 3, 1]);
    }

    #[test]
    fn priority_breaks_scheduling_ties() {
        // With no deadlines anywhere, urgency degenerates to priority then
        // admission order: the High request jumps the queue at formation.
        let mut b = batcher(ServeConfig {
            max_batch: 1,
            ..ServeConfig::default()
        });
        let normal = b.submit(req(1, 1)).unwrap();
        let high = b.submit(req(1, 2).with_priority(Priority::High)).unwrap();
        let served = b.drain();
        let order: Vec<RequestId> = served.iter().map(|(id, _)| *id).collect();
        assert_eq!(order, vec![high, normal]);
        assert!(served.iter().all(|(_, r)| r.is_ok()));
    }

    #[test]
    fn expired_requests_are_shed_without_device_time() {
        // Measure one clean singleton batch on an identical batcher...
        let mut probe = batcher(ServeConfig {
            max_batch: 1,
            ..ServeConfig::default()
        });
        probe.submit(req(1, 1)).unwrap();
        let probe_served = probe.drain();
        let service_ms = probe_served[0].1.as_ref().unwrap().latency.service_ms;
        assert!(service_ms > 0.0);

        // ...then hold two requests to deadlines shorter than that. EDF
        // runs the 0.6x request first (it misses after full service); by
        // the next formation the 0.8x request's wait alone exceeds its
        // budget, so it is shed *before* dispatch: one launch total.
        let mut b = batcher(ServeConfig {
            max_batch: 1,
            ..ServeConfig::default()
        });
        let first = b.submit(req(1, 1).with_deadline(0.6 * service_ms)).unwrap();
        let starved = b.submit(req(1, 2).with_deadline(0.8 * service_ms)).unwrap();
        let served = b.drain();
        assert_eq!(
            b.launches(),
            1,
            "the expired request never reaches the device"
        );
        assert_eq!(served[0].0, first);
        assert!(matches!(
            served[0].1,
            Err(ServeError::DeadlineExceeded { observed_ms, .. }) if observed_ms >= service_ms
        ));
        assert_eq!(served[1].0, starved);
        match &served[1].1 {
            Err(ServeError::DeadlineExceeded {
                deadline_ms,
                observed_ms,
            }) => {
                assert!((deadline_ms - 0.8 * service_ms).abs() < 1e-12);
                assert!(
                    *observed_ms >= *deadline_ms,
                    "shed because queue wait alone exhausted the budget"
                );
            }
            other => panic!("starved request should be shed, got {other:?}"),
        }
    }

    #[test]
    fn invalid_config_and_deadlines_are_typed_construction_errors() {
        let g = rmat(8, 1500, RmatParams::SKEWED, 11);
        let session =
            SamplerSession::new(GpuSpec::small(), g, Box::new(KHop::new(vec![2, 2]))).unwrap();
        let err = |cfg: ServeConfig| cfg.validate().err();
        assert!(matches!(
            err(ServeConfig {
                max_batch: 0,
                ..ServeConfig::default()
            }),
            Some(ServeError::InvalidConfig { reason }) if reason.contains("max_batch")
        ));
        assert!(matches!(
            err(ServeConfig {
                max_queue: 0,
                ..ServeConfig::default()
            }),
            Some(ServeError::InvalidConfig { reason }) if reason.contains("max_queue")
        ));
        for bad in [0.0, -3.0, f64::NAN, f64::INFINITY] {
            assert!(matches!(
                err(ServeConfig {
                    default_deadline_ms: Some(bad),
                    ..ServeConfig::default()
                }),
                Some(ServeError::InvalidConfig { reason }) if reason.contains("default_deadline_ms")
            ));
        }
        // The constructor applies the same validation.
        let mut b = match MicroBatcher::new(
            session,
            ServeConfig {
                max_batch: 0,
                ..ServeConfig::default()
            },
        ) {
            Err(ServeError::InvalidConfig { .. }) => {
                let g = rmat(8, 1500, RmatParams::SKEWED, 11);
                let session =
                    SamplerSession::new(GpuSpec::small(), g, Box::new(KHop::new(vec![2, 2])))
                        .unwrap();
                MicroBatcher::new(session, ServeConfig::default()).unwrap()
            }
            other => panic!("max_batch = 0 must be rejected, got {:?}", other.is_ok()),
        };
        // Admission rejects deadlines that are already unmeetable.
        assert!(matches!(
            b.submit(req(1, 1).with_deadline(0.0)).err(),
            Some(ServeError::DeadlineExceeded {
                deadline_ms,
                observed_ms,
            }) if deadline_ms == 0.0 && observed_ms == 0.0
        ));
        assert!(matches!(
            b.submit(req(1, 1).with_deadline(-5.0)).err(),
            Some(ServeError::DeadlineExceeded { .. })
        ));
        assert!(matches!(
            b.submit(req(1, 1).with_deadline(f64::NAN)).err(),
            Some(ServeError::InvalidConfig { .. })
        ));
        assert_eq!(b.pending_len(), 0, "rejected requests hold no queue slot");
    }

    #[test]
    fn max_batch_caps_fusion() {
        let mut b = batcher(ServeConfig {
            max_batch: 2,
            ..ServeConfig::default()
        });
        for s in 0..5 {
            b.submit(req(1, s)).unwrap();
        }
        let served = b.drain();
        let sizes: Vec<usize> = served
            .iter()
            .map(|(_, r)| r.as_ref().unwrap().latency.batch_size)
            .collect();
        assert_eq!(sizes, vec![2, 2, 2, 2, 1]);
    }

    #[test]
    fn full_queue_rejects_with_backpressure() {
        let mut b = batcher(ServeConfig {
            max_queue: 2,
            ..ServeConfig::default()
        });
        b.submit(req(1, 1)).unwrap();
        b.submit(req(1, 2)).unwrap();
        assert_eq!(
            b.submit(req(1, 3)).err(),
            Some(ServeError::QueueFull { capacity: 2 })
        );
        b.drain();
        b.submit(req(1, 3)).expect("drained queue admits again");
    }

    #[test]
    fn invalid_requests_are_rejected_at_admission() {
        let mut b = batcher(ServeConfig::default());
        let bad = Request::new(vec![vec![u32::MAX]], 0);
        assert!(matches!(
            b.submit(bad),
            Err(ServeError::Sampling(NextDoorError::RootOutOfRange { .. }))
        ));
        assert_eq!(b.pending_len(), 0, "rejected requests hold no queue slot");
    }

    #[test]
    fn missed_deadline_is_typed_while_batchmates_complete() {
        let mut b = batcher(ServeConfig::default());
        let relaxed = b.submit(req(1, 1)).unwrap();
        // A hair above zero: admissible, but any real service time misses.
        let strict = b.submit(req(1, 2).with_deadline(1e-9)).unwrap();
        let served = b.drain();
        assert_eq!(b.launches(), 1, "both requests share one fused launch");
        // EDF puts the deadline-carrying request first in the batch.
        assert_eq!(served[0].0, strict);
        assert!(matches!(
            served[0].1,
            Err(ServeError::DeadlineExceeded { deadline_ms, .. }) if deadline_ms == 1e-9
        ));
        assert_eq!(served[1].0, relaxed);
        assert!(served[1].1.is_ok());
    }

    #[test]
    fn queue_wait_shows_up_in_latency() {
        let mut b = batcher(ServeConfig {
            max_batch: 1,
            ..ServeConfig::default()
        });
        b.submit(req(1, 1)).unwrap();
        b.submit(req(1, 2)).unwrap();
        let served = b.drain();
        let first = served[0].1.as_ref().unwrap().latency;
        let second = served[1].1.as_ref().unwrap().latency;
        assert_eq!(first.queued_ms, 0.0, "first batch starts immediately");
        assert!(
            second.queued_ms > 0.0,
            "second request waited for the first batch"
        );
        assert!((second.total_ms - second.queued_ms - second.service_ms).abs() < 1e-9);
    }

    #[test]
    fn tuned_batcher_matches_untuned_and_reports_counters() {
        let mut tuned = batcher(ServeConfig::default());
        tuned.enable_tuning(
            TunerConfig {
                warmup_queries: 1,
                ..TunerConfig::default()
            },
            CacheConfig {
                min_hits: 1,
                ..CacheConfig::default()
            },
        );
        let mut plain = batcher(ServeConfig::default());
        for round in 0..4u64 {
            for s in 0..3u64 {
                let seed = 100 + round * 3 + s;
                tuned.submit(req(1, seed)).unwrap();
                plain.submit(req(1, seed)).unwrap();
            }
            let a = tuned.drain();
            let b = plain.drain();
            assert_eq!(a.len(), b.len());
            for ((_, ra), (_, rb)) in a.into_iter().zip(b) {
                // The headline invariant: tuning and caching move launch
                // geometry and cost only — never the samples.
                assert_eq!(
                    ra.unwrap().store.final_samples(),
                    rb.unwrap().store.final_samples()
                );
            }
        }
        let t = tuned.metrics().tuning;
        assert!(t.installs > 0, "repeated transits should be promoted");
        assert!(t.cache_hits + t.cache_misses > 0);
        assert!(t.sched_builds > 0);
        assert!(
            tuned.trace().count(SpanKind::CacheInstall) > 0,
            "maintenance passes are traced"
        );
        assert_eq!(
            plain.metrics().tuning,
            TuningMetrics::default(),
            "an untuned batcher reports all-zero tuning counters"
        );
        assert!(tuned.metrics().to_json("t").contains("\"tuning\""));
    }
}
