//! Request micro-batching over a persistent [`SamplerSession`].
//!
//! The batcher is the deterministic core of the serving layer: it admits
//! requests into a bounded FIFO queue and, on every drain, coalesces the
//! longest run of fusable requests (equal initial width, up to
//! [`ServeConfig::max_batch`]) into **one** fused transit-parallel launch
//! via [`SamplerSession::query_fused`], then slices results back per
//! request. Fusion is a pure throughput lever — each request's samples are
//! bit-identical to running it alone.
//!
//! All admission control and scheduling is synchronous and deterministic
//! here; the thread that makes it a service lives in [`crate::server`].

use std::collections::VecDeque;

use crate::error::ServeError;
use nextdoor_core::session::{SamplerSession, SessionQuery};
use nextdoor_core::{validate_run, EngineStats, FaultReport, SampleStore};
use nextdoor_graph::VertexId;

/// Scheduling knobs of the serving layer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeConfig {
    /// Most requests fused into a single launch.
    pub max_batch: usize,
    /// Bound on admitted-but-unserved requests; submissions past it are
    /// rejected with [`ServeError::QueueFull`].
    pub max_queue: usize,
    /// Deadline applied to requests that do not carry their own, in
    /// simulated milliseconds from admission to batch completion. `None`
    /// means no deadline.
    pub default_deadline_ms: Option<f64>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            max_batch: 8,
            max_queue: 64,
            default_deadline_ms: None,
        }
    }
}

/// Scheduling priority of a request. The single-replica [`MicroBatcher`]
/// ignores it (strict FIFO); the replicated tier
/// ([`FleetBatcher`](crate::replica::FleetBatcher)) sheds strictly
/// lowest-priority-first when healthy capacity drops below demand, so
/// `Low` traffic absorbs degradation before `Normal`, and `Normal` before
/// `High`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Priority {
    /// Best-effort traffic: first to be shed under degraded capacity.
    Low,
    /// The default.
    #[default]
    Normal,
    /// Latency-critical traffic: shed only after everything else.
    High,
}

/// One sampling request as submitted by a client.
#[derive(Debug, Clone)]
pub struct Request {
    /// Initial vertices of each requested sample (equal widths required
    /// within the request; requests of different widths are still served,
    /// they just cannot share a fused launch).
    pub init: Vec<Vec<VertexId>>,
    /// RNG seed of the request — the samples are exactly those of a
    /// standalone `run_nextdoor` call with this seed.
    pub seed: u64,
    /// Per-request deadline in simulated milliseconds, overriding
    /// [`ServeConfig::default_deadline_ms`].
    pub deadline_ms: Option<f64>,
    /// Shedding priority under degraded capacity (see [`Priority`]).
    pub priority: Priority,
}

impl Request {
    /// A request with no deadline of its own and [`Priority::Normal`].
    pub fn new(init: Vec<Vec<VertexId>>, seed: u64) -> Self {
        Request {
            init,
            seed,
            deadline_ms: None,
            priority: Priority::Normal,
        }
    }

    /// The same request at a different shedding priority.
    pub fn with_priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }
}

/// Identifies an admitted request across `submit`/`drain` calls.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RequestId(pub u64);

/// Per-request latency, measured on the device's simulated clock (the
/// same counter/profile machinery that times engine runs — see
/// [`SamplerSession::sim_ms`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RequestLatency {
    /// Simulated ms the request waited between admission and its batch
    /// starting.
    pub queued_ms: f64,
    /// Simulated ms of the fused batch that served the request.
    pub service_ms: f64,
    /// Admission-to-completion simulated ms (`queued_ms + service_ms`).
    pub total_ms: f64,
    /// Requests fused into the launch that served this one.
    pub batch_size: usize,
}

/// A served request: its sliced sample store plus how it was served.
#[derive(Debug, Clone)]
pub struct Response {
    /// The request's samples — bit-identical to a standalone run with the
    /// request's `(init, seed)`.
    pub store: SampleStore,
    /// Latency breakdown on the simulated clock.
    pub latency: RequestLatency,
    /// Engine statistics of the fused batch (shared by every request in
    /// it; the profile within is the batch's kernel-launch ring slice).
    pub batch_stats: EngineStats,
    /// Faults the fused batch observed and survived.
    pub report: FaultReport,
}

struct Pending {
    id: RequestId,
    req: Request,
    admit_ms: f64,
}

/// Admits sampling requests into a bounded queue and serves them in fused
/// batches from a persistent session. See the [module docs](self).
pub struct MicroBatcher {
    session: SamplerSession,
    cfg: ServeConfig,
    pending: VecDeque<Pending>,
    next_id: u64,
}

impl MicroBatcher {
    /// Wraps a warm session in a batcher with the given scheduling knobs.
    pub fn new(session: SamplerSession, cfg: ServeConfig) -> Self {
        MicroBatcher {
            session,
            cfg,
            pending: VecDeque::new(),
            next_id: 0,
        }
    }

    /// Admits a request, or rejects it with backpressure.
    ///
    /// Admission is where a request can be refused without touching the
    /// device: a full queue returns [`ServeError::QueueFull`] and invalid
    /// inputs (empty/ragged initial samples, out-of-range roots) return
    /// [`ServeError::Sampling`] immediately, so only runnable requests
    /// ever occupy queue slots.
    ///
    /// # Errors
    ///
    /// [`ServeError::QueueFull`] and [`ServeError::Sampling`], as above.
    pub fn submit(&mut self, req: Request) -> Result<RequestId, ServeError> {
        if self.pending.len() >= self.cfg.max_queue {
            return Err(ServeError::QueueFull {
                capacity: self.cfg.max_queue,
            });
        }
        validate_run(self.session.graph(), self.session.app(), &req.init)?;
        let id = RequestId(self.next_id);
        self.next_id += 1;
        self.pending.push_back(Pending {
            id,
            req,
            admit_ms: self.session.sim_ms(),
        });
        Ok(id)
    }

    /// Serves every pending request and returns the outcomes in completion
    /// order.
    ///
    /// Requests are taken strictly FIFO; each batch is the longest prefix
    /// sharing one initial width, capped at [`ServeConfig::max_batch`],
    /// run as a single fused launch. A request that finishes past its
    /// deadline gets [`ServeError::DeadlineExceeded`] while the rest of
    /// its batch completes normally; a batch whose fused run fails at
    /// runtime fans the same typed error out to each of its requests and
    /// later batches are still attempted.
    pub fn drain(&mut self) -> Vec<(RequestId, Result<Response, ServeError>)> {
        let mut out = Vec::with_capacity(self.pending.len());
        while !self.pending.is_empty() {
            let batch = self.take_batch();
            self.run_batch(batch, &mut out);
        }
        out
    }

    /// Pops the longest FIFO prefix of equal-width requests, up to
    /// `max_batch`.
    fn take_batch(&mut self) -> Vec<Pending> {
        let width = self.pending[0].req.init[0].len();
        let mut batch = Vec::new();
        while batch.len() < self.cfg.max_batch.max(1)
            && self
                .pending
                .front()
                .is_some_and(|p| p.req.init[0].len() == width)
        {
            batch.extend(self.pending.pop_front());
        }
        batch
    }

    fn run_batch(
        &mut self,
        batch: Vec<Pending>,
        out: &mut Vec<(RequestId, Result<Response, ServeError>)>,
    ) {
        let queries: Vec<SessionQuery> = batch
            .iter()
            .map(|p| SessionQuery {
                init: p.req.init.clone(),
                seed: p.req.seed,
            })
            .collect();
        let start_ms = self.session.sim_ms();
        match self.session.query_fused(&queries) {
            Ok(fused) => {
                let end_ms = self.session.sim_ms();
                let batch_size = batch.len();
                for (p, store) in batch.into_iter().zip(fused.per_query) {
                    let observed_ms = end_ms - p.admit_ms;
                    let deadline = p.req.deadline_ms.or(self.cfg.default_deadline_ms);
                    let result = match deadline {
                        Some(d) if observed_ms > d => Err(ServeError::DeadlineExceeded {
                            deadline_ms: d,
                            observed_ms,
                        }),
                        _ => Ok(Response {
                            store,
                            latency: RequestLatency {
                                queued_ms: start_ms - p.admit_ms,
                                service_ms: end_ms - start_ms,
                                total_ms: observed_ms,
                                batch_size,
                            },
                            batch_stats: fused.stats.clone(),
                            report: fused.report.clone(),
                        }),
                    };
                    out.push((p.id, result));
                }
            }
            Err(e) => {
                for p in batch {
                    out.push((p.id, Err(ServeError::Sampling(e.clone()))));
                }
            }
        }
    }

    /// Requests admitted but not yet served.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// The batcher's scheduling knobs.
    pub fn config(&self) -> &ServeConfig {
        &self.cfg
    }

    /// The underlying warm session.
    pub fn session(&self) -> &SamplerSession {
        &self.session
    }

    /// Mutable access to the underlying session (e.g. to inject a fault
    /// plan between drains).
    pub fn session_mut(&mut self) -> &mut SamplerSession {
        &mut self.session
    }

    /// Tears the batcher down, recovering the warm session.
    pub fn into_session(self) -> SamplerSession {
        self.session
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nextdoor_apps::KHop;
    use nextdoor_core::NextDoorError;
    use nextdoor_gpu::GpuSpec;
    use nextdoor_graph::gen::{rmat, RmatParams};

    fn batcher(cfg: ServeConfig) -> MicroBatcher {
        let g = rmat(8, 1500, RmatParams::SKEWED, 11);
        let session =
            SamplerSession::new(GpuSpec::small(), g, Box::new(KHop::new(vec![2, 2]))).unwrap();
        MicroBatcher::new(session, cfg)
    }

    fn req(width: usize, seed: u64) -> Request {
        Request::new((0..6).map(|i| vec![i as u32; width]).collect(), seed)
    }

    #[test]
    fn equal_width_requests_fuse_and_match_solo_runs() {
        let mut b = batcher(ServeConfig::default());
        let ids: Vec<_> = (0..3).map(|s| b.submit(req(1, 50 + s)).unwrap()).collect();
        assert_eq!(b.pending_len(), 3);
        let served = b.drain();
        assert_eq!(b.pending_len(), 0);
        assert_eq!(served.len(), 3);
        for ((id, res), want_id) in served.iter().zip(&ids) {
            assert_eq!(id, want_id);
            let resp = res.as_ref().unwrap();
            assert_eq!(resp.latency.batch_size, 3);
            assert!(resp.latency.service_ms > 0.0);
            assert!(resp.report.is_clean());
        }
        // Bit-identity: each response equals the same query served alone.
        for (i, (_, res)) in served.into_iter().enumerate() {
            let solo = b
                .session_mut()
                .query(&req(1, 50 + i as u64).init, 50 + i as u64)
                .unwrap();
            assert_eq!(
                res.unwrap().store.final_samples(),
                solo.store.final_samples()
            );
        }
    }

    #[test]
    fn width_change_breaks_the_batch_fifo() {
        let mut b = batcher(ServeConfig::default());
        b.submit(req(1, 1)).unwrap();
        b.submit(req(1, 2)).unwrap();
        b.submit(req(2, 3)).unwrap();
        b.submit(req(1, 4)).unwrap();
        let served = b.drain();
        let sizes: Vec<usize> = served
            .iter()
            .map(|(_, r)| r.as_ref().unwrap().latency.batch_size)
            .collect();
        assert_eq!(sizes, vec![2, 2, 1, 1], "widths 1,1 | 2 | 1 in FIFO order");
    }

    #[test]
    fn max_batch_caps_fusion() {
        let mut b = batcher(ServeConfig {
            max_batch: 2,
            ..ServeConfig::default()
        });
        for s in 0..5 {
            b.submit(req(1, s)).unwrap();
        }
        let served = b.drain();
        let sizes: Vec<usize> = served
            .iter()
            .map(|(_, r)| r.as_ref().unwrap().latency.batch_size)
            .collect();
        assert_eq!(sizes, vec![2, 2, 2, 2, 1]);
    }

    #[test]
    fn full_queue_rejects_with_backpressure() {
        let mut b = batcher(ServeConfig {
            max_queue: 2,
            ..ServeConfig::default()
        });
        b.submit(req(1, 1)).unwrap();
        b.submit(req(1, 2)).unwrap();
        assert_eq!(
            b.submit(req(1, 3)).err(),
            Some(ServeError::QueueFull { capacity: 2 })
        );
        b.drain();
        b.submit(req(1, 3)).expect("drained queue admits again");
    }

    #[test]
    fn invalid_requests_are_rejected_at_admission() {
        let mut b = batcher(ServeConfig::default());
        let bad = Request::new(vec![vec![u32::MAX]], 0);
        assert!(matches!(
            b.submit(bad),
            Err(ServeError::Sampling(NextDoorError::RootOutOfRange { .. }))
        ));
        assert_eq!(b.pending_len(), 0, "rejected requests hold no queue slot");
    }

    #[test]
    fn missed_deadline_is_typed_while_batchmates_complete() {
        let mut b = batcher(ServeConfig::default());
        b.submit(req(1, 1)).unwrap();
        let mut strict = req(1, 2);
        strict.deadline_ms = Some(0.0); // any positive service time misses
        b.submit(strict).unwrap();
        let served = b.drain();
        assert!(served[0].1.is_ok());
        assert!(matches!(
            served[1].1,
            Err(ServeError::DeadlineExceeded { deadline_ms, .. }) if deadline_ms == 0.0
        ));
    }

    #[test]
    fn queue_wait_shows_up_in_latency() {
        let mut b = batcher(ServeConfig {
            max_batch: 1,
            ..ServeConfig::default()
        });
        b.submit(req(1, 1)).unwrap();
        b.submit(req(1, 2)).unwrap();
        let served = b.drain();
        let first = served[0].1.as_ref().unwrap().latency;
        let second = served[1].1.as_ref().unwrap().latency;
        assert_eq!(first.queued_ms, 0.0, "first batch starts immediately");
        assert!(
            second.queued_ms > 0.0,
            "second request waited for the first batch"
        );
        assert!((second.total_ms - second.queued_ms - second.service_ms).abs() < 1e-9);
    }
}
