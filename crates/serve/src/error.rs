//! Typed serving-layer errors.
//!
//! The serving layer never panics on a request: every way a request can
//! fail to produce samples is a [`ServeError`] variant delivered to that
//! request's submitter, while unrelated requests in the same batch keep
//! their results.

use nextdoor_core::NextDoorError;

/// Why a request admitted to (or rejected by) the serving layer did not
/// produce samples.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The serving configuration (or a request's own deadline) is
    /// nonsensical — a zero batch cap or queue bound, a non-positive or
    /// non-finite deadline. Raised at construction
    /// ([`ServeConfig::validate`](crate::batcher::ServeConfig::validate))
    /// or at admission, never silently papered over.
    InvalidConfig {
        /// Which knob was rejected, and why.
        reason: &'static str,
    },
    /// The bounded request queue was full; the request was never admitted
    /// (backpressure — resubmit after the queue drains).
    QueueFull {
        /// Configured queue capacity.
        capacity: usize,
    },
    /// The request completed later (on the simulated clock) than its
    /// deadline allowed; its samples were discarded.
    DeadlineExceeded {
        /// Simulated-millisecond budget the request carried.
        deadline_ms: f64,
        /// Simulated milliseconds from admission to batch completion.
        observed_ms: f64,
    },
    /// The sampling engine rejected the request, or the fused batch it was
    /// part of failed at runtime (the same typed error fans out to every
    /// request of the failed batch).
    Sampling(NextDoorError),
    /// The server thread shut down before answering.
    Disconnected,
    /// The server's worker thread vanished — it panicked, or the server was
    /// dropped — while this request was still unanswered. Unlike
    /// [`ServeError::Disconnected`] (refused at submission), the request
    /// may have been admitted and partially processed; its result is gone.
    ServerGone,
    /// The serving tier shed this request under degraded capacity: healthy
    /// replicas dropped below demand and this request was among the lowest
    /// priority admitted (see
    /// [`Priority`](crate::batcher::Priority)). Resubmit once the fleet
    /// recovers, or resubmit at a higher priority.
    Overloaded {
        /// Replicas currently healthy (routable).
        healthy: usize,
        /// Total replicas in the pool.
        replicas: usize,
    },
    /// Every replica in the pool is permanently gone (device loss); the
    /// fleet can no longer serve anything.
    NoHealthyReplica {
        /// Total replicas in the pool, all of them lost.
        replicas: usize,
    },
    /// The request's seed vertices live on a shard whose device is
    /// permanently gone. Unlike [`ServeError::Overloaded`] (a transient
    /// breaker-driven shed), the shard cannot come back — resubmit with
    /// seeds on a surviving shard, or rebuild the fleet.
    ShardLost {
        /// The dead shard that owns the request's seed vertices.
        shard: usize,
        /// Total shards in the fleet.
        shards: usize,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::InvalidConfig { reason } => {
                write!(f, "invalid serving configuration: {reason}")
            }
            ServeError::QueueFull { capacity } => {
                write!(f, "request queue is full ({capacity} pending)")
            }
            ServeError::DeadlineExceeded {
                deadline_ms,
                observed_ms,
            } => write!(
                f,
                "request completed in {observed_ms:.3} simulated ms, past its \
                 {deadline_ms:.3} ms deadline"
            ),
            ServeError::Sampling(e) => write!(f, "sampling failed: {e}"),
            ServeError::Disconnected => write!(f, "the sampling server shut down"),
            ServeError::ServerGone => write!(
                f,
                "the sampling server's worker thread vanished before answering"
            ),
            ServeError::Overloaded { healthy, replicas } => write!(
                f,
                "request shed under degraded capacity ({healthy}/{replicas} replicas healthy)"
            ),
            ServeError::NoHealthyReplica { replicas } => {
                write!(f, "all {replicas} replicas in the pool are lost")
            }
            ServeError::ShardLost { shard, shards } => write!(
                f,
                "the request's seeds live on lost shard {shard} (of {shards})"
            ),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Sampling(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NextDoorError> for ServeError {
    fn from(e: NextDoorError) -> Self {
        ServeError::Sampling(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        assert!(ServeError::InvalidConfig {
            reason: "max_batch must be at least 1"
        }
        .to_string()
        .contains("max_batch"));
        assert!(ServeError::QueueFull { capacity: 4 }
            .to_string()
            .contains("full"));
        assert!(ServeError::DeadlineExceeded {
            deadline_ms: 1.0,
            observed_ms: 2.0
        }
        .to_string()
        .contains("deadline"));
        let e: ServeError = NextDoorError::EmptyInit.into();
        assert!(std::error::Error::source(&e).is_some());
        assert!(ServeError::Disconnected.to_string().contains("shut down"));
        assert!(ServeError::ServerGone.to_string().contains("vanished"));
        assert!(ServeError::Overloaded {
            healthy: 1,
            replicas: 3
        }
        .to_string()
        .contains("1/3"));
        assert!(ServeError::NoHealthyReplica { replicas: 2 }
            .to_string()
            .contains("all 2"));
        assert!(ServeError::ShardLost {
            shard: 1,
            shards: 4
        }
        .to_string()
        .contains("lost shard 1 (of 4)"));
    }
}
