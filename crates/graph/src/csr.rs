//! Compressed-sparse-row graph representation.

/// Identifier of a vertex.
///
/// `u32` comfortably covers the scaled datasets used in this reproduction
/// (the paper's largest graph, com-Friendster, has 65.6M vertices) while
/// halving the memory traffic relative to `u64` — which matters because the
/// GPU simulator charges memory transactions by bytes touched.
pub type VertexId = u32;

/// A directed graph in compressed-sparse-row form, optionally edge-weighted.
///
/// The adjacency of vertex `v` is the slice
/// `col_indices[row_offsets[v] .. row_offsets[v + 1]]`, always sorted in
/// ascending order so that membership queries can binary-search.
///
/// Weights, when present, are parallel to `col_indices`. The paper evaluates
/// on weighted variants of its graphs with weights drawn uniformly from
/// `[1, 5)`; [`Csr::with_random_weights`] reproduces that.
#[derive(Clone, Debug, PartialEq)]
pub struct Csr {
    row_offsets: Vec<usize>,
    col_indices: Vec<VertexId>,
    weights: Option<Vec<f32>>,
}

impl Csr {
    /// Creates a CSR graph from raw parts.
    ///
    /// # Panics
    ///
    /// Panics if the offsets are not monotonically non-decreasing, do not
    /// start at 0, do not end at `col_indices.len()`, if any column index is
    /// out of range, if any adjacency slice is unsorted, or if `weights` is
    /// present with a length different from `col_indices`.
    pub fn from_parts(
        row_offsets: Vec<usize>,
        col_indices: Vec<VertexId>,
        weights: Option<Vec<f32>>,
    ) -> Self {
        assert!(!row_offsets.is_empty(), "row_offsets must have >= 1 entry");
        assert_eq!(row_offsets[0], 0, "row_offsets must start at 0");
        assert_eq!(
            *row_offsets.last().unwrap(),
            col_indices.len(),
            "row_offsets must end at the number of edges"
        );
        assert!(
            row_offsets.windows(2).all(|w| w[0] <= w[1]),
            "row_offsets must be non-decreasing"
        );
        let n = row_offsets.len() - 1;
        for w in row_offsets.windows(2) {
            let adj = &col_indices[w[0]..w[1]];
            assert!(adj.windows(2).all(|p| p[0] <= p[1]), "adjacency unsorted");
        }
        assert!(
            col_indices.iter().all(|&c| (c as usize) < n),
            "column index out of range"
        );
        if let Some(ws) = &weights {
            assert_eq!(ws.len(), col_indices.len(), "weights length mismatch");
        }
        Self {
            row_offsets,
            col_indices,
            weights,
        }
    }

    /// Creates an empty graph with `n` vertices and no edges.
    pub fn empty(n: usize) -> Self {
        Self {
            row_offsets: vec![0; n + 1],
            col_indices: Vec::new(),
            weights: None,
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.row_offsets.len() - 1
    }

    /// Number of directed edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.col_indices.len()
    }

    /// Average out-degree.
    pub fn avg_degree(&self) -> f64 {
        if self.num_vertices() == 0 {
            0.0
        } else {
            self.num_edges() as f64 / self.num_vertices() as f64
        }
    }

    /// Out-degree of vertex `v`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        self.row_offsets[v as usize + 1] - self.row_offsets[v as usize]
    }

    /// The maximum out-degree over all vertices.
    pub fn max_degree(&self) -> usize {
        (0..self.num_vertices() as VertexId)
            .map(|v| self.degree(v))
            .max()
            .unwrap_or(0)
    }

    /// Sorted out-neighbour slice of vertex `v`.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        &self.col_indices[self.row_offsets[v as usize]..self.row_offsets[v as usize + 1]]
    }

    /// Byte offset range of `v`'s adjacency within the column-index array.
    ///
    /// The GPU simulator uses this to compute which memory segments a warp
    /// touches when it reads an adjacency list.
    #[inline]
    pub fn adjacency_range(&self, v: VertexId) -> (usize, usize) {
        (
            self.row_offsets[v as usize],
            self.row_offsets[v as usize + 1],
        )
    }

    /// The `i`-th out-neighbour of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.degree(v)`.
    #[inline]
    pub fn neighbor(&self, v: VertexId, i: usize) -> VertexId {
        self.neighbors(v)[i]
    }

    /// Whether the directed edge `(u, v)` exists (binary search).
    #[inline]
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        self.neighbors(u).binary_search(&v).is_ok()
    }

    /// Weight of the `i`-th out-edge of `v`, or `1.0` when unweighted.
    #[inline]
    pub fn edge_weight(&self, v: VertexId, i: usize) -> f32 {
        match &self.weights {
            Some(ws) => ws[self.row_offsets[v as usize] + i],
            None => 1.0,
        }
    }

    /// The weight slice parallel to `neighbors(v)`, if the graph is weighted.
    pub fn edge_weights(&self, v: VertexId) -> Option<&[f32]> {
        self.weights
            .as_ref()
            .map(|ws| &ws[self.row_offsets[v as usize]..self.row_offsets[v as usize + 1]])
    }

    /// Maximum weight among `v`'s out-edges, or `1.0` for an unweighted
    /// graph or an isolated vertex.
    ///
    /// Mirrors the `maxEdgeWeight` utility of the paper's `Vertex` class,
    /// used by rejection sampling in node2vec.
    pub fn max_edge_weight(&self, v: VertexId) -> f32 {
        match self.edge_weights(v) {
            Some(ws) if !ws.is_empty() => ws.iter().cloned().fold(f32::MIN, f32::max),
            _ => 1.0,
        }
    }

    /// Inclusive prefix sums of `v`'s edge weights.
    ///
    /// Mirrors the prefix-sum utility of the paper's `Vertex` class, used by
    /// weight-biased sampling (DeepWalk on weighted graphs).
    pub fn weight_prefix_sums(&self, v: VertexId) -> Vec<f32> {
        let d = self.degree(v);
        let mut out = Vec::with_capacity(d);
        let mut acc = 0.0f32;
        for i in 0..d {
            acc += self.edge_weight(v, i);
            out.push(acc);
        }
        out
    }

    /// Whether the graph carries edge weights.
    #[inline]
    pub fn is_weighted(&self) -> bool {
        self.weights.is_some()
    }

    /// Raw row-offset array (length `num_vertices() + 1`).
    #[inline]
    pub fn row_offsets(&self) -> &[usize] {
        &self.row_offsets
    }

    /// Raw column-index array (length `num_edges()`).
    #[inline]
    pub fn col_indices(&self) -> &[VertexId] {
        &self.col_indices
    }

    /// Returns a copy of this graph with weights drawn uniformly from
    /// `[lo, hi)`, keyed deterministically by `seed` and edge position.
    ///
    /// The paper generates weighted versions of its graphs with weights in
    /// `[1, 5)`.
    pub fn with_random_weights(&self, lo: f32, hi: f32, seed: u64) -> Self {
        let ws = (0..self.num_edges())
            .map(|i| {
                let h = splitmix64(seed ^ (i as u64).wrapping_mul(0x9E3779B97F4A7C15));
                lo + (h >> 40) as f32 / (1u64 << 24) as f32 * (hi - lo)
            })
            .collect();
        Self {
            row_offsets: self.row_offsets.clone(),
            col_indices: self.col_indices.clone(),
            weights: Some(ws),
        }
    }

    /// Strips weights, returning an unweighted copy.
    pub fn without_weights(&self) -> Self {
        Self {
            row_offsets: self.row_offsets.clone(),
            col_indices: self.col_indices.clone(),
            weights: None,
        }
    }

    /// Approximate resident size of the graph in bytes (CSR arrays only).
    pub fn size_bytes(&self) -> usize {
        self.row_offsets.len() * std::mem::size_of::<usize>()
            + self.col_indices.len() * std::mem::size_of::<VertexId>()
            + self
                .weights
                .as_ref()
                .map_or(0, |w| w.len() * std::mem::size_of::<f32>())
    }

    /// Returns a copy of this graph in the **same vertex-id space** that
    /// keeps only the adjacency rows for which `keep[v]` is true; every
    /// other row is empty.
    ///
    /// Kept rows are copied verbatim — neighbours, order and weights — so
    /// any read against a kept row (degree, neighbours, weights,
    /// [`Csr::max_edge_weight`]) is bit-identical to the same read against
    /// the full graph. This is the sharded engine's per-device graph: shard
    /// `s` holds the rows of the vertices it owns, column indices still
    /// refer to global vertex ids (a row may point at vertices another
    /// shard owns — that is exactly a walker hand-off), and the id space is
    /// unchanged so no remapping ever touches a sampled value.
    ///
    /// # Panics
    ///
    /// Panics if `keep.len() != self.num_vertices()`.
    pub fn row_masked(&self, keep: &[bool]) -> Csr {
        assert_eq!(
            keep.len(),
            self.num_vertices(),
            "row mask must cover every vertex"
        );
        let mut offsets = Vec::with_capacity(self.row_offsets.len());
        offsets.push(0usize);
        let mut cols = Vec::new();
        let mut ws = self.weights.as_ref().map(|_| Vec::new());
        for (v, &kept) in keep.iter().enumerate() {
            if kept {
                let (lo, hi) = (self.row_offsets[v], self.row_offsets[v + 1]);
                cols.extend_from_slice(&self.col_indices[lo..hi]);
                if let (Some(out), Some(all)) = (ws.as_mut(), self.weights.as_ref()) {
                    out.extend_from_slice(&all[lo..hi]);
                }
            }
            offsets.push(cols.len());
        }
        Csr {
            row_offsets: offsets,
            col_indices: cols,
            weights: ws,
        }
    }

    /// Returns the induced subgraph on `vertices` together with the mapping
    /// from new vertex ids to original ids.
    ///
    /// Vertex `i` of the subgraph corresponds to `vertices[i]`; edges whose
    /// endpoint falls outside `vertices` are dropped. Used by the
    /// out-of-GPU-memory sampling mode (§8.4) and by ClusterGCN.
    pub fn induced_subgraph(&self, vertices: &[VertexId]) -> (Csr, Vec<VertexId>) {
        let mut remap = vec![VertexId::MAX; self.num_vertices()];
        for (new, &old) in vertices.iter().enumerate() {
            remap[old as usize] = new as VertexId;
        }
        let mut offsets = Vec::with_capacity(vertices.len() + 1);
        offsets.push(0usize);
        let mut cols = Vec::new();
        let mut ws = self.weights.as_ref().map(|_| Vec::new());
        for &old in vertices {
            for (i, &nbr) in self.neighbors(old).iter().enumerate() {
                let mapped = remap[nbr as usize];
                if mapped != VertexId::MAX {
                    cols.push(mapped);
                    if let Some(ws) = ws.as_mut() {
                        ws.push(self.edge_weight(old, i));
                    }
                }
            }
            // Re-sort this row: remapping does not preserve order.
            let lo = *offsets.last().unwrap();
            let row = &mut cols[lo..];
            if let Some(wsv) = ws.as_mut() {
                let mut perm: Vec<usize> = (0..row.len()).collect();
                perm.sort_by_key(|&i| row[i]);
                let sorted_cols: Vec<_> = perm.iter().map(|&i| row[i]).collect();
                let sorted_ws: Vec<_> = perm.iter().map(|&i| wsv[lo + i]).collect();
                row.copy_from_slice(&sorted_cols);
                wsv[lo..].copy_from_slice(&sorted_ws);
            } else {
                row.sort_unstable();
            }
            offsets.push(cols.len());
        }
        (Csr::from_parts(offsets, cols, ws), vertices.to_vec())
    }
}

/// SplitMix64 finaliser, used for deterministic weight generation.
#[inline]
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Csr {
        // 0 -> {1, 2}, 1 -> {3}, 2 -> {3}, 3 -> {}
        Csr::from_parts(vec![0, 2, 3, 4, 4], vec![1, 2, 3, 3], None)
    }

    #[test]
    fn basic_accessors() {
        let g = diamond();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(3), 0);
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.neighbor(1, 0), 3);
        assert_eq!(g.max_degree(), 2);
        assert!((g.avg_degree() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn has_edge_uses_sorted_adjacency() {
        let g = diamond();
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(0, 2));
        assert!(!g.has_edge(0, 3));
        assert!(!g.has_edge(3, 0));
    }

    #[test]
    fn unweighted_weight_queries_default_to_one() {
        let g = diamond();
        assert!(!g.is_weighted());
        assert_eq!(g.edge_weight(0, 1), 1.0);
        assert_eq!(g.max_edge_weight(0), 1.0);
        assert_eq!(g.max_edge_weight(3), 1.0);
        assert_eq!(g.weight_prefix_sums(0), vec![1.0, 2.0]);
    }

    #[test]
    fn random_weights_in_range_and_deterministic() {
        let g = diamond().with_random_weights(1.0, 5.0, 42);
        assert!(g.is_weighted());
        for v in 0..4u32 {
            for i in 0..g.degree(v) {
                let w = g.edge_weight(v, i);
                assert!((1.0..5.0).contains(&w), "weight {w} out of range");
            }
        }
        let g2 = diamond().with_random_weights(1.0, 5.0, 42);
        for v in 0..4u32 {
            assert_eq!(g.edge_weights(v), g2.edge_weights(v));
        }
        let g3 = diamond().with_random_weights(1.0, 5.0, 43);
        assert_ne!(
            g.edge_weights(0).unwrap(),
            g3.edge_weights(0).unwrap(),
            "different seeds should give different weights"
        );
    }

    #[test]
    fn max_weight_and_prefix_sums() {
        let g = Csr::from_parts(vec![0, 3], vec![0, 0, 0], Some(vec![2.0, 5.0, 3.0]));
        assert_eq!(g.max_edge_weight(0), 5.0);
        assert_eq!(g.weight_prefix_sums(0), vec![2.0, 7.0, 10.0]);
    }

    #[test]
    fn empty_graph() {
        let g = Csr::empty(3);
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.neighbors(0), &[] as &[VertexId]);
        assert_eq!(g.max_degree(), 0);
    }

    #[test]
    fn induced_subgraph_keeps_internal_edges() {
        let g = diamond();
        let (sub, map) = g.induced_subgraph(&[0, 1, 3]);
        assert_eq!(map, vec![0, 1, 3]);
        assert_eq!(sub.num_vertices(), 3);
        // 0 -> {1} (edge to 2 dropped), 1 -> {2} (old 3), 2 -> {}.
        assert_eq!(sub.neighbors(0), &[1]);
        assert_eq!(sub.neighbors(1), &[2]);
        assert_eq!(sub.neighbors(2), &[] as &[VertexId]);
    }

    #[test]
    fn induced_subgraph_preserves_weights() {
        let g = diamond().with_random_weights(1.0, 5.0, 7);
        let w01 = g.edge_weight(0, 0);
        let (sub, _) = g.induced_subgraph(&[0, 1]);
        assert!(sub.is_weighted());
        assert_eq!(sub.edge_weight(0, 0), w01);
    }

    #[test]
    fn size_bytes_counts_all_arrays() {
        let g = diamond();
        let base = g.size_bytes();
        let gw = g.with_random_weights(1.0, 5.0, 1);
        assert_eq!(gw.size_bytes(), base + 4 * std::mem::size_of::<f32>());
    }

    #[test]
    fn row_masked_keeps_rows_verbatim() {
        let g = diamond().with_random_weights(1.0, 5.0, 9);
        let sub = g.row_masked(&[true, false, true, false]);
        assert_eq!(sub.num_vertices(), 4);
        assert_eq!(sub.neighbors(0), g.neighbors(0));
        assert_eq!(sub.edge_weights(0), g.edge_weights(0));
        assert_eq!(sub.neighbors(1), &[] as &[VertexId]);
        assert_eq!(sub.neighbors(2), g.neighbors(2));
        assert_eq!(sub.max_edge_weight(2), g.max_edge_weight(2));
        assert_eq!(sub.num_edges(), g.degree(0) + g.degree(2));
        let unweighted = diamond().row_masked(&[false, true, false, true]);
        assert!(!unweighted.is_weighted());
        assert_eq!(unweighted.neighbors(1), &[3]);
    }

    #[test]
    #[should_panic(expected = "row mask must cover every vertex")]
    fn row_masked_rejects_short_mask() {
        let _ = diamond().row_masked(&[true, false]);
    }

    #[test]
    #[should_panic(expected = "row_offsets must start at 0")]
    fn from_parts_rejects_bad_start() {
        let _ = Csr::from_parts(vec![1, 2], vec![0, 0], None);
    }

    #[test]
    #[should_panic(expected = "adjacency unsorted")]
    fn from_parts_rejects_unsorted_rows() {
        let _ = Csr::from_parts(vec![0, 2], vec![1, 0], None);
    }

    #[test]
    #[should_panic(expected = "column index out of range")]
    fn from_parts_rejects_out_of_range() {
        let _ = Csr::from_parts(vec![0, 1], vec![5], None);
    }
}
