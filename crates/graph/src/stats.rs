//! Degree statistics, used by tests, load-balancing heuristics and benches.

use crate::csr::{Csr, VertexId};

/// Summary statistics of a graph's out-degree distribution.
#[derive(Debug, Clone, PartialEq)]
pub struct DegreeStats {
    /// Minimum out-degree.
    pub min: usize,
    /// Maximum out-degree.
    pub max: usize,
    /// Mean out-degree.
    pub mean: f64,
    /// Standard deviation of the out-degree.
    pub std_dev: f64,
    /// Median out-degree.
    pub median: usize,
    /// 99th-percentile out-degree.
    pub p99: usize,
}

impl DegreeStats {
    /// Computes the statistics for `g`.
    ///
    /// # Panics
    ///
    /// Panics on a graph with zero vertices.
    pub fn of(g: &Csr) -> DegreeStats {
        let n = g.num_vertices();
        assert!(n > 0, "degree stats of empty graph");
        let mut degs: Vec<usize> = (0..n as VertexId).map(|v| g.degree(v)).collect();
        degs.sort_unstable();
        let mean = degs.iter().sum::<usize>() as f64 / n as f64;
        let var = degs
            .iter()
            .map(|&d| {
                let x = d as f64 - mean;
                x * x
            })
            .sum::<f64>()
            / n as f64;
        DegreeStats {
            min: degs[0],
            max: degs[n - 1],
            mean,
            std_dev: var.sqrt(),
            median: degs[n / 2],
            p99: degs[((n - 1) as f64 * 0.99) as usize],
        }
    }

    /// Coefficient of variation (`std_dev / mean`); a quick skew measure.
    pub fn skew(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            self.std_dev / self.mean
        }
    }
}

/// Histogram of out-degrees in power-of-two buckets: bucket `i` counts
/// vertices with degree in `[2^i, 2^(i+1))`; bucket 0 also counts degree 0.
pub fn degree_histogram(g: &Csr) -> Vec<usize> {
    let mut buckets = Vec::new();
    for v in 0..g.num_vertices() as VertexId {
        let d = g.degree(v);
        let b = if d <= 1 {
            0
        } else {
            (usize::BITS - d.leading_zeros() - 1) as usize
        };
        if b >= buckets.len() {
            buckets.resize(b + 1, 0);
        }
        buckets[b] += 1;
    }
    buckets
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::gen::ring_lattice;

    #[test]
    fn stats_of_regular_graph() {
        let g = ring_lattice(64, 2, 0);
        let s = DegreeStats::of(&g);
        assert_eq!(s.min, 4);
        assert_eq!(s.max, 4);
        assert_eq!(s.median, 4);
        assert_eq!(s.p99, 4);
        assert!((s.mean - 4.0).abs() < 1e-12);
        assert!(s.std_dev < 1e-12);
        assert_eq!(s.skew(), 0.0);
    }

    #[test]
    fn stats_of_star_graph() {
        let mut b = GraphBuilder::new(11).undirected(true);
        for i in 1..11 {
            b.push_edge(0, i);
        }
        let g = b.build().unwrap();
        let s = DegreeStats::of(&g);
        assert_eq!(s.max, 10);
        assert_eq!(s.min, 1);
        assert!(s.skew() > 1.0);
    }

    #[test]
    fn histogram_buckets() {
        // Degrees: 0, 1, 2, 4 -> buckets 0, 0, 1, 2.
        let g = GraphBuilder::new(8)
            .edge(1, 0)
            .edge(2, 0)
            .edge(2, 1)
            .edges((0..4).map(|i| (3, 4 + i)))
            .build()
            .unwrap();
        let h = degree_histogram(&g);
        assert_eq!(h[0], 6); // vertices 0, 1 (deg<=1) and 4..8 (deg 0)
        assert_eq!(h[1], 1); // vertex 2 (deg 2)
        assert_eq!(h[2], 1); // vertex 3 (deg 4)
    }

    #[test]
    #[should_panic(expected = "empty graph")]
    fn stats_reject_empty() {
        let _ = DegreeStats::of(&Csr::empty(0));
    }
}
