//! Deterministic synthetic graph generators.
//!
//! The paper evaluates on SNAP graphs (Table 3). Those datasets cannot be
//! shipped here, so the reproduction generates graphs whose *structural
//! parameters* — vertex count, edge count, degree skew — match the originals
//! (see [`crate::datasets`]). RMAT is the workhorse: with the classic
//! `(a, b, c, d) = (0.57, 0.19, 0.19, 0.05)` parameters it produces the
//! power-law degree distributions typical of social networks, which is the
//! property that drives load imbalance in transit-parallel sampling.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::builder::GraphBuilder;
use crate::csr::{Csr, VertexId};

/// Parameters of the recursive-matrix (RMAT/Kronecker) generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RmatParams {
    /// Probability mass of the top-left quadrant (self-community links).
    pub a: f64,
    /// Probability mass of the top-right quadrant.
    pub b: f64,
    /// Probability mass of the bottom-left quadrant.
    pub c: f64,
}

impl RmatParams {
    /// The classic Graph500-style parameters producing strong degree skew.
    pub const SKEWED: RmatParams = RmatParams {
        a: 0.57,
        b: 0.19,
        c: 0.19,
    };

    /// Milder skew, closer to a citation network such as cit-Patents.
    pub const MILD: RmatParams = RmatParams {
        a: 0.45,
        b: 0.22,
        c: 0.22,
    };

    /// Implicit probability of the bottom-right quadrant.
    pub fn d(&self) -> f64 {
        1.0 - self.a - self.b - self.c
    }
}

/// Generates a directed RMAT graph with `2^scale` vertices and roughly
/// `num_edges` distinct edges (duplicates are collapsed), made undirected.
///
/// # Panics
///
/// Panics if the quadrant probabilities do not sum to at most 1.
pub fn rmat(scale: u32, num_edges: usize, params: RmatParams, seed: u64) -> Csr {
    assert!(params.d() >= 0.0, "RMAT quadrant probabilities exceed 1");
    let n = 1usize << scale;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n).undirected(true);
    for _ in 0..num_edges {
        let (mut lo_s, mut hi_s) = (0usize, n);
        let (mut lo_d, mut hi_d) = (0usize, n);
        while hi_s - lo_s > 1 {
            let r: f64 = rng.gen();
            let (top, left) = if r < params.a {
                (true, true)
            } else if r < params.a + params.b {
                (true, false)
            } else if r < params.a + params.b + params.c {
                (false, true)
            } else {
                (false, false)
            };
            let mid_s = (lo_s + hi_s) / 2;
            let mid_d = (lo_d + hi_d) / 2;
            if top {
                hi_s = mid_s;
            } else {
                lo_s = mid_s;
            }
            if left {
                hi_d = mid_d;
            } else {
                lo_d = mid_d;
            }
        }
        b.push_edge(lo_s as VertexId, lo_d as VertexId);
    }
    b.build().expect("generator endpoints are always in range")
}

/// Generates a directed Erdős–Rényi `G(n, m)` graph, made undirected.
pub fn erdos_renyi(n: usize, num_edges: usize, seed: u64) -> Csr {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n).undirected(true);
    for _ in 0..num_edges {
        let s = rng.gen_range(0..n) as VertexId;
        let d = rng.gen_range(0..n) as VertexId;
        b.push_edge(s, d);
    }
    b.build().expect("generator endpoints are always in range")
}

/// Generates an undirected Barabási–Albert preferential-attachment graph:
/// each new vertex attaches to `m` existing vertices chosen proportionally
/// to degree.
///
/// # Panics
///
/// Panics if `n <= m` or `m == 0`.
pub fn barabasi_albert(n: usize, m: usize, seed: u64) -> Csr {
    assert!(m > 0 && n > m, "need n > m > 0");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n).undirected(true);
    // `targets` holds one entry per edge endpoint, so uniform sampling from
    // it is degree-proportional sampling.
    let mut targets: Vec<VertexId> = (0..m as VertexId).collect();
    for v in m..n {
        let mut chosen = Vec::with_capacity(m);
        while chosen.len() < m {
            let t = targets[rng.gen_range(0..targets.len())];
            if !chosen.contains(&t) {
                chosen.push(t);
            }
        }
        for &t in &chosen {
            b.push_edge(v as VertexId, t);
            targets.push(v as VertexId);
            targets.push(t);
        }
    }
    b.build().expect("generator endpoints are always in range")
}

/// Generates an undirected ring lattice where each vertex connects to its
/// `k` nearest neighbours on each side. Useful as a perfectly regular,
/// zero-skew stress test.
///
/// # Panics
///
/// Panics if `2 * k >= n`.
pub fn ring_lattice(n: usize, k: usize, seed_unused: u64) -> Csr {
    let _ = seed_unused;
    assert!(2 * k < n, "ring lattice requires 2k < n");
    let mut b = GraphBuilder::new(n);
    for v in 0..n {
        for off in 1..=k {
            let u = ((v + off) % n) as VertexId;
            b.push_edge(v as VertexId, u);
            b.push_edge(u, v as VertexId);
        }
    }
    b.build().expect("generator endpoints are always in range")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::DegreeStats;

    #[test]
    fn rmat_is_deterministic_and_sized() {
        let g1 = rmat(10, 5_000, RmatParams::SKEWED, 1);
        let g2 = rmat(10, 5_000, RmatParams::SKEWED, 1);
        assert_eq!(g1, g2);
        assert_eq!(g1.num_vertices(), 1024);
        assert!(g1.num_edges() > 5_000, "undirected dedup keeps most edges");
        assert!(g1.num_edges() <= 10_000);
    }

    #[test]
    fn rmat_seeds_differ() {
        let g1 = rmat(8, 1_000, RmatParams::SKEWED, 1);
        let g2 = rmat(8, 1_000, RmatParams::SKEWED, 2);
        assert_ne!(g1, g2);
    }

    #[test]
    fn rmat_is_skewed() {
        let g = rmat(12, 40_000, RmatParams::SKEWED, 7);
        let stats = DegreeStats::of(&g);
        assert!(
            stats.max as f64 > 10.0 * stats.mean,
            "max degree {} should dwarf mean {}",
            stats.max,
            stats.mean
        );
    }

    #[test]
    fn erdos_renyi_has_low_skew() {
        let g = erdos_renyi(4_096, 40_000, 3);
        let stats = DegreeStats::of(&g);
        assert!(
            (stats.max as f64) < 4.0 * stats.mean,
            "ER max degree {} should stay near mean {}",
            stats.max,
            stats.mean
        );
    }

    #[test]
    fn barabasi_albert_shape() {
        let g = barabasi_albert(500, 3, 9);
        assert_eq!(g.num_vertices(), 500);
        // Every vertex beyond the seed set contributes m undirected edges.
        assert!(g.num_edges() >= 2 * 3 * (500 - 3) - 100);
        let stats = DegreeStats::of(&g);
        assert!(stats.max >= 3 * 3, "hubs should emerge");
    }

    #[test]
    fn ring_lattice_is_regular() {
        let g = ring_lattice(100, 3, 0);
        for v in 0..100u32 {
            assert_eq!(g.degree(v), 6);
        }
    }

    #[test]
    #[should_panic(expected = "2k < n")]
    fn ring_lattice_rejects_too_dense() {
        let _ = ring_lattice(4, 2, 0);
    }

    #[test]
    fn undirected_generators_are_symmetric() {
        for g in [
            rmat(8, 2_000, RmatParams::SKEWED, 5),
            erdos_renyi(256, 2_000, 5),
            barabasi_albert(256, 2, 5),
        ] {
            for v in 0..g.num_vertices() as VertexId {
                for &u in g.neighbors(v) {
                    assert!(g.has_edge(u, v), "missing reverse of ({v}, {u})");
                }
            }
        }
    }
}
