//! Incremental construction of [`Csr`] graphs from edge lists.

use crate::csr::{Csr, VertexId};

/// Errors raised by [`GraphBuilder::build`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// An edge endpoint is `>= num_vertices`.
    VertexOutOfRange {
        /// The offending endpoint.
        vertex: VertexId,
        /// The declared vertex count.
        num_vertices: usize,
    },
    /// A weighted edge was added to a builder that also received unweighted
    /// edges (or vice versa).
    MixedWeightedness,
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::VertexOutOfRange {
                vertex,
                num_vertices,
            } => write!(
                f,
                "edge endpoint {vertex} out of range for graph with {num_vertices} vertices"
            ),
            BuildError::MixedWeightedness => {
                write!(f, "cannot mix weighted and unweighted edges")
            }
        }
    }
}

impl std::error::Error for BuildError {}

/// Builds a [`Csr`] graph from an in-memory edge list.
///
/// Duplicate edges and self-loops are optionally removed; adjacency lists are
/// always sorted. By default the builder produces a directed graph; enable
/// [`GraphBuilder::undirected`] to insert the reverse of every edge.
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    num_vertices: usize,
    edges: Vec<(VertexId, VertexId)>,
    weights: Vec<f32>,
    weighted: Option<bool>,
    undirected: bool,
    dedup: bool,
    drop_self_loops: bool,
}

impl GraphBuilder {
    /// Creates a builder for a graph with `num_vertices` vertices.
    pub fn new(num_vertices: usize) -> Self {
        Self {
            num_vertices,
            edges: Vec::new(),
            weights: Vec::new(),
            weighted: None,
            undirected: false,
            dedup: true,
            drop_self_loops: true,
        }
    }

    /// Adds a directed, unweighted edge.
    pub fn edge(mut self, src: VertexId, dst: VertexId) -> Self {
        self.push_edge(src, dst);
        self
    }

    /// Adds a directed, weighted edge.
    pub fn weighted_edge(mut self, src: VertexId, dst: VertexId, w: f32) -> Self {
        self.push_weighted_edge(src, dst, w);
        self
    }

    /// Adds a directed, unweighted edge (non-consuming form, for loops).
    pub fn push_edge(&mut self, src: VertexId, dst: VertexId) {
        self.weighted.get_or_insert(false);
        self.edges.push((src, dst));
    }

    /// Adds a directed, weighted edge (non-consuming form, for loops).
    pub fn push_weighted_edge(&mut self, src: VertexId, dst: VertexId, w: f32) {
        self.weighted.get_or_insert(true);
        self.edges.push((src, dst));
        self.weights.push(w);
    }

    /// Adds every edge in `iter`.
    pub fn edges<I: IntoIterator<Item = (VertexId, VertexId)>>(mut self, iter: I) -> Self {
        for (s, d) in iter {
            self.push_edge(s, d);
        }
        self
    }

    /// When `true`, the reverse of every edge is inserted too.
    pub fn undirected(mut self, yes: bool) -> Self {
        self.undirected = yes;
        self
    }

    /// When `true` (the default), parallel edges are collapsed.
    pub fn dedup(mut self, yes: bool) -> Self {
        self.dedup = yes;
        self
    }

    /// When `true` (the default), self-loops are dropped.
    pub fn drop_self_loops(mut self, yes: bool) -> Self {
        self.drop_self_loops = yes;
        self
    }

    /// Finalises the builder into a [`Csr`] graph.
    ///
    /// Runs in `O(V + E log E)`.
    pub fn build(self) -> Result<Csr, BuildError> {
        let weighted = self.weighted.unwrap_or(false);
        if weighted && self.weights.len() != self.edges.len() {
            return Err(BuildError::MixedWeightedness);
        }
        let n = self.num_vertices;
        for &(s, d) in &self.edges {
            for v in [s, d] {
                if v as usize >= n {
                    return Err(BuildError::VertexOutOfRange {
                        vertex: v,
                        num_vertices: n,
                    });
                }
            }
        }

        // Materialise (src, dst, w) triples, adding reverses if undirected.
        let mut triples: Vec<(VertexId, VertexId, f32)> =
            Vec::with_capacity(self.edges.len() * if self.undirected { 2 } else { 1 });
        for (i, &(s, d)) in self.edges.iter().enumerate() {
            if self.drop_self_loops && s == d {
                continue;
            }
            let w = if weighted { self.weights[i] } else { 1.0 };
            triples.push((s, d, w));
            if self.undirected {
                triples.push((d, s, w));
            }
        }
        triples.sort_unstable_by_key(|t| (t.0, t.1));
        if self.dedup {
            triples.dedup_by_key(|t| (t.0, t.1));
        }

        let mut offsets = vec![0usize; n + 1];
        for &(s, _, _) in &triples {
            offsets[s as usize + 1] += 1;
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        let cols: Vec<VertexId> = triples.iter().map(|t| t.1).collect();
        let ws = weighted.then(|| triples.iter().map(|t| t.2).collect());
        Ok(Csr::from_parts(offsets, cols, ws))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn directed_build() {
        let g = GraphBuilder::new(3)
            .edge(0, 1)
            .edge(0, 2)
            .edge(2, 1)
            .build()
            .unwrap();
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.neighbors(1), &[] as &[VertexId]);
        assert_eq!(g.neighbors(2), &[1]);
    }

    #[test]
    fn undirected_adds_reverse_edges() {
        let g = GraphBuilder::new(3)
            .edge(0, 1)
            .edge(1, 2)
            .undirected(true)
            .build()
            .unwrap();
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.neighbors(1), &[0, 2]);
        assert_eq!(g.neighbors(2), &[1]);
    }

    #[test]
    fn dedup_collapses_parallel_edges() {
        let g = GraphBuilder::new(2).edge(0, 1).edge(0, 1).build().unwrap();
        assert_eq!(g.num_edges(), 1);
        let g2 = GraphBuilder::new(2)
            .edge(0, 1)
            .edge(0, 1)
            .dedup(false)
            .build()
            .unwrap();
        assert_eq!(g2.num_edges(), 2);
    }

    #[test]
    fn self_loops_dropped_by_default() {
        let g = GraphBuilder::new(2).edge(0, 0).edge(0, 1).build().unwrap();
        assert_eq!(g.neighbors(0), &[1]);
        let g2 = GraphBuilder::new(2)
            .edge(0, 0)
            .drop_self_loops(false)
            .build()
            .unwrap();
        assert_eq!(g2.neighbors(0), &[0]);
    }

    #[test]
    fn out_of_range_endpoint_is_an_error() {
        let err = GraphBuilder::new(2).edge(0, 5).build().unwrap_err();
        assert_eq!(
            err,
            BuildError::VertexOutOfRange {
                vertex: 5,
                num_vertices: 2
            }
        );
        assert!(err.to_string().contains("out of range"));
    }

    #[test]
    fn weighted_edges_survive_sorting() {
        let g = GraphBuilder::new(3)
            .weighted_edge(0, 2, 2.5)
            .weighted_edge(0, 1, 1.5)
            .build()
            .unwrap();
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.edge_weight(0, 0), 1.5);
        assert_eq!(g.edge_weight(0, 1), 2.5);
    }

    #[test]
    fn undirected_weighted_mirrors_weight() {
        let g = GraphBuilder::new(2)
            .weighted_edge(0, 1, 3.0)
            .undirected(true)
            .build()
            .unwrap();
        assert_eq!(g.edge_weight(1, 0), 3.0);
    }

    #[test]
    fn empty_builder_builds_empty_graph() {
        let g = GraphBuilder::new(4).build().unwrap();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 0);
    }
}
