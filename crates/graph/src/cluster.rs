//! Vertex clustering for ClusterGCN-style sampling and shard placement.
//!
//! The paper's ClusterGCN experiment "randomly assigned vertices in
//! clusters"; [`cluster_vertices`] reproduces exactly that with a
//! deterministic hash partition. The sharded serving tier reuses the same
//! partition as its placement rule (shard `s` owns cluster `s`'s
//! vertices), so [`Clustering`] also reports the partition-quality
//! statistics ([`PartitionStats`]) the placement decision is judged by.

use crate::csr::{splitmix64, Csr, VertexId};

/// Why a clustering request was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClusterError {
    /// Zero clusters were requested; a partition needs at least one part.
    NoClusters,
    /// More clusters than vertices: some clusters would necessarily be
    /// empty, which downstream placement cannot use.
    TooManyClusters {
        /// Clusters requested.
        requested: usize,
        /// Vertices available to partition.
        vertices: usize,
    },
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterError::NoClusters => write!(f, "need at least one cluster"),
            ClusterError::TooManyClusters {
                requested,
                vertices,
            } => write!(f, "more clusters ({requested}) than vertices ({vertices})"),
        }
    }
}

impl std::error::Error for ClusterError {}

/// Partition-quality statistics of a [`Clustering`] over a graph.
///
/// The sharded serving tier's placement rule reads these: the edge-cut
/// fraction bounds how often a walker crosses a shard boundary per step
/// (each cut edge is a potential hand-off), and the balance factor bounds
/// how far the heaviest shard's load exceeds the ideal even split.
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionStats {
    /// Directed edges whose endpoints lie in different clusters.
    pub cut_edges: usize,
    /// All directed edges of the graph.
    pub total_edges: usize,
    /// `cut_edges / total_edges` (0 for an edgeless graph).
    pub edge_cut_fraction: f64,
    /// Largest cluster size divided by the ideal `|V| / k` (>= 1; exactly 1
    /// for a perfectly even split).
    pub balance: f64,
}

/// A partition of a graph's vertices into disjoint, non-empty clusters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Clustering {
    assignment: Vec<u32>,
    members: Vec<Vec<VertexId>>,
}

impl Clustering {
    /// Number of clusters.
    pub fn num_clusters(&self) -> usize {
        self.members.len()
    }

    /// Cluster id of vertex `v`.
    pub fn cluster_of(&self, v: VertexId) -> u32 {
        self.assignment[v as usize]
    }

    /// Sorted member list of cluster `c`.
    pub fn members(&self, c: u32) -> &[VertexId] {
        &self.members[c as usize]
    }

    /// All member lists.
    pub fn all_members(&self) -> &[Vec<VertexId>] {
        &self.members
    }

    /// Computes the partition-quality statistics of this clustering over
    /// `g` (which must be the graph it was built from, or one with the
    /// same vertex count).
    ///
    /// # Panics
    ///
    /// Panics if `g` has more vertices than the clustering assigns.
    pub fn partition_stats(&self, g: &Csr) -> PartitionStats {
        let n = g.num_vertices();
        assert!(
            n <= self.assignment.len(),
            "graph has {n} vertices but the clustering assigns only {}",
            self.assignment.len()
        );
        let mut cut_edges = 0usize;
        for v in 0..n as VertexId {
            let cv = self.assignment[v as usize];
            for &u in g.neighbors(v) {
                if self.assignment[u as usize] != cv {
                    cut_edges += 1;
                }
            }
        }
        let total_edges = g.num_edges();
        let edge_cut_fraction = if total_edges == 0 {
            0.0
        } else {
            cut_edges as f64 / total_edges as f64
        };
        let largest = self.members.iter().map(Vec::len).max().unwrap_or(0);
        let ideal = self.assignment.len() as f64 / self.members.len().max(1) as f64;
        let balance = if ideal > 0.0 {
            largest as f64 / ideal
        } else {
            1.0
        };
        PartitionStats {
            cut_edges,
            total_edges,
            edge_cut_fraction,
            balance,
        }
    }
}

/// Randomly (but deterministically, keyed by `seed`) partitions the vertices
/// of `g` into `num_clusters` non-empty clusters.
///
/// # Errors
///
/// [`ClusterError::NoClusters`] when `num_clusters` is zero and
/// [`ClusterError::TooManyClusters`] when it exceeds the vertex count
/// (including the empty-graph case) — both degenerate partitions used to be
/// asserted or produced silently-unbalanced clusters.
pub fn cluster_vertices(
    g: &Csr,
    num_clusters: usize,
    seed: u64,
) -> Result<Clustering, ClusterError> {
    let n = g.num_vertices();
    if num_clusters == 0 {
        return Err(ClusterError::NoClusters);
    }
    if num_clusters > n {
        return Err(ClusterError::TooManyClusters {
            requested: num_clusters,
            vertices: n,
        });
    }
    let mut assignment = vec![0u32; n];
    let mut members = vec![Vec::new(); num_clusters];
    for (v, slot) in assignment.iter_mut().enumerate() {
        let c = (splitmix64(seed ^ (v as u64).wrapping_mul(0xA24BAED4963EE407)) as usize
            % num_clusters) as u32;
        *slot = c;
        members[c as usize].push(v as VertexId);
    }
    // Guarantee non-empty clusters: steal one vertex for each empty cluster
    // from the largest cluster. This keeps downstream code panic-free on
    // tiny graphs.
    for c in 0..num_clusters {
        if members[c].is_empty() {
            let donor = (0..num_clusters)
                .max_by_key(|&d| members[d].len())
                .expect("num_clusters > 0");
            let v = members[donor].pop().expect("donor has >1 member");
            assignment[v as usize] = c as u32;
            members[c].push(v);
        }
    }
    for m in &mut members {
        m.sort_unstable();
    }
    Ok(Clustering {
        assignment,
        members,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::ring_lattice;

    #[test]
    fn partition_is_total_and_disjoint() {
        let g = ring_lattice(200, 2, 0);
        let c = cluster_vertices(&g, 8, 42).unwrap();
        assert_eq!(c.num_clusters(), 8);
        let mut seen = [false; 200];
        for cl in 0..8u32 {
            for &v in c.members(cl) {
                assert!(!seen[v as usize], "vertex {v} in two clusters");
                seen[v as usize] = true;
                assert_eq!(c.cluster_of(v), cl);
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn deterministic_given_seed() {
        let g = ring_lattice(100, 2, 0);
        assert_eq!(
            cluster_vertices(&g, 5, 1).unwrap(),
            cluster_vertices(&g, 5, 1).unwrap()
        );
        assert_ne!(
            cluster_vertices(&g, 5, 1).unwrap(),
            cluster_vertices(&g, 5, 2).unwrap()
        );
    }

    #[test]
    fn clusters_never_empty() {
        let g = ring_lattice(10, 1, 0);
        let c = cluster_vertices(&g, 10, 0).unwrap();
        for cl in 0..10u32 {
            assert!(!c.members(cl).is_empty());
        }
    }

    #[test]
    fn roughly_balanced() {
        let g = ring_lattice(10_000, 2, 0);
        let c = cluster_vertices(&g, 10, 7).unwrap();
        for cl in 0..10u32 {
            let frac = c.members(cl).len() as f64 / 10_000.0;
            assert!(
                (0.05..0.2).contains(&frac),
                "cluster {cl} has fraction {frac}"
            );
        }
        let stats = c.partition_stats(&g);
        assert!(stats.balance >= 1.0 && stats.balance < 2.0);
    }

    #[test]
    fn degenerate_partitions_are_typed_errors() {
        let g = ring_lattice(10, 1, 0);
        assert_eq!(cluster_vertices(&g, 0, 0), Err(ClusterError::NoClusters));
        assert_eq!(
            cluster_vertices(&g, 11, 0),
            Err(ClusterError::TooManyClusters {
                requested: 11,
                vertices: 10
            })
        );
        let e = cluster_vertices(&g, 11, 0).unwrap_err();
        assert!(e.to_string().contains("more clusters (11)"));
        assert!(ClusterError::NoClusters
            .to_string()
            .contains("at least one"));
    }

    #[test]
    fn empty_graph_cannot_be_clustered() {
        let g = Csr::empty(0);
        assert_eq!(
            cluster_vertices(&g, 1, 0),
            Err(ClusterError::TooManyClusters {
                requested: 1,
                vertices: 0
            })
        );
    }

    #[test]
    fn partition_stats_count_cut_edges() {
        // Path 0-1-2-3 (undirected ring lattice k=1 is a ring; build by hand).
        // 0 -> {1}, 1 -> {0, 2}, 2 -> {1, 3}, 3 -> {2}
        let g = Csr::from_parts(vec![0, 1, 3, 5, 6], vec![1, 0, 2, 1, 3, 2], None);
        let c = cluster_vertices(&g, 2, 3).unwrap();
        let stats = c.partition_stats(&g);
        assert_eq!(stats.total_edges, 6);
        // Directed cut edges come in pairs on an undirected graph.
        assert_eq!(stats.cut_edges % 2, 0);
        assert!((0.0..=1.0).contains(&stats.edge_cut_fraction));
        let single = cluster_vertices(&g, 1, 0).unwrap();
        let s1 = single.partition_stats(&g);
        assert_eq!(s1.cut_edges, 0);
        assert_eq!(s1.edge_cut_fraction, 0.0);
        assert_eq!(s1.balance, 1.0);
    }
}
