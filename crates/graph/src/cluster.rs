//! Vertex clustering for ClusterGCN-style sampling.
//!
//! The paper's ClusterGCN experiment "randomly assigned vertices in
//! clusters"; [`cluster_vertices`] reproduces exactly that with a
//! deterministic hash partition.

use crate::csr::{splitmix64, Csr, VertexId};

/// A partition of a graph's vertices into disjoint clusters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Clustering {
    assignment: Vec<u32>,
    members: Vec<Vec<VertexId>>,
}

impl Clustering {
    /// Number of clusters.
    pub fn num_clusters(&self) -> usize {
        self.members.len()
    }

    /// Cluster id of vertex `v`.
    pub fn cluster_of(&self, v: VertexId) -> u32 {
        self.assignment[v as usize]
    }

    /// Sorted member list of cluster `c`.
    pub fn members(&self, c: u32) -> &[VertexId] {
        &self.members[c as usize]
    }

    /// All member lists.
    pub fn all_members(&self) -> &[Vec<VertexId>] {
        &self.members
    }
}

/// Randomly (but deterministically, keyed by `seed`) partitions the vertices
/// of `g` into `num_clusters` clusters.
///
/// # Panics
///
/// Panics if `num_clusters` is zero or exceeds the vertex count.
pub fn cluster_vertices(g: &Csr, num_clusters: usize, seed: u64) -> Clustering {
    let n = g.num_vertices();
    assert!(num_clusters > 0, "need at least one cluster");
    assert!(num_clusters <= n, "more clusters than vertices");
    let mut assignment = vec![0u32; n];
    let mut members = vec![Vec::new(); num_clusters];
    for (v, slot) in assignment.iter_mut().enumerate() {
        let c = (splitmix64(seed ^ (v as u64).wrapping_mul(0xA24BAED4963EE407)) as usize
            % num_clusters) as u32;
        *slot = c;
        members[c as usize].push(v as VertexId);
    }
    // Guarantee non-empty clusters: steal one vertex for each empty cluster
    // from the largest cluster. This keeps downstream code panic-free on
    // tiny graphs.
    for c in 0..num_clusters {
        if members[c].is_empty() {
            let donor = (0..num_clusters)
                .max_by_key(|&d| members[d].len())
                .expect("num_clusters > 0");
            let v = members[donor].pop().expect("donor has >1 member");
            assignment[v as usize] = c as u32;
            members[c].push(v);
        }
    }
    for m in &mut members {
        m.sort_unstable();
    }
    Clustering {
        assignment,
        members,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::ring_lattice;

    #[test]
    fn partition_is_total_and_disjoint() {
        let g = ring_lattice(200, 2, 0);
        let c = cluster_vertices(&g, 8, 42);
        assert_eq!(c.num_clusters(), 8);
        let mut seen = [false; 200];
        for cl in 0..8u32 {
            for &v in c.members(cl) {
                assert!(!seen[v as usize], "vertex {v} in two clusters");
                seen[v as usize] = true;
                assert_eq!(c.cluster_of(v), cl);
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn deterministic_given_seed() {
        let g = ring_lattice(100, 2, 0);
        assert_eq!(cluster_vertices(&g, 5, 1), cluster_vertices(&g, 5, 1));
        assert_ne!(cluster_vertices(&g, 5, 1), cluster_vertices(&g, 5, 2));
    }

    #[test]
    fn clusters_never_empty() {
        let g = ring_lattice(10, 1, 0);
        let c = cluster_vertices(&g, 10, 0);
        for cl in 0..10u32 {
            assert!(!c.members(cl).is_empty());
        }
    }

    #[test]
    fn roughly_balanced() {
        let g = ring_lattice(10_000, 2, 0);
        let c = cluster_vertices(&g, 10, 7);
        for cl in 0..10u32 {
            let frac = c.members(cl).len() as f64 / 10_000.0;
            assert!(
                (0.05..0.2).contains(&frac),
                "cluster {cl} has fraction {frac}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "more clusters than vertices")]
    fn too_many_clusters_rejected() {
        let g = ring_lattice(10, 1, 0);
        let _ = cluster_vertices(&g, 11, 0);
    }
}
