//! Graph substrate for the NextDoor reproduction.
//!
//! This crate provides the compressed-sparse-row (CSR) graph representation
//! that every other crate in the workspace builds on, together with
//! deterministic synthetic graph generators, an edge-list I/O layer, the
//! scaled stand-ins for the paper's Table 3 datasets, degree statistics, and
//! a simple vertex-clustering pass used by ClusterGCN sampling.
//!
//! # Examples
//!
//! ```
//! use nextdoor_graph::{GraphBuilder, Csr};
//!
//! let g: Csr = GraphBuilder::new(4)
//!     .edge(0, 1)
//!     .edge(1, 2)
//!     .edge(2, 3)
//!     .undirected(true)
//!     .build()
//!     .unwrap();
//! assert_eq!(g.num_vertices(), 4);
//! assert_eq!(g.degree(1), 2);
//! assert_eq!(g.neighbors(1), &[0, 2]);
//! ```

pub mod builder;
pub mod cluster;
pub mod csr;
pub mod datasets;
pub mod gen;
pub mod io;
pub mod stats;

pub use builder::{BuildError, GraphBuilder};
pub use cluster::{cluster_vertices, ClusterError, Clustering, PartitionStats};
pub use csr::{Csr, VertexId};
pub use datasets::{Dataset, DatasetSpec};
pub use gen::{barabasi_albert, erdos_renyi, ring_lattice, rmat, RmatParams};
pub use io::{load_edge_list, parse_edge_list, write_edge_list, IoError};
pub use stats::DegreeStats;
