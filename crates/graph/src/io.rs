//! Plain-text edge-list I/O in the SNAP style.
//!
//! The SNAP datasets used by the paper ship as whitespace-separated
//! `src dst [weight]` lines with `#` comments. This module parses and writes
//! that format so that users with the real datasets can load them directly.

use crate::builder::{BuildError, GraphBuilder};
use crate::csr::{Csr, VertexId};

/// Errors raised while reading or parsing an edge list.
#[derive(Debug, Clone, PartialEq)]
pub enum IoError {
    /// The file could not be read at all.
    Read {
        /// The path that failed.
        path: String,
        /// The underlying OS error, rendered.
        message: String,
    },
    /// A line did not have 2 (or 3, when weighted) whitespace-separated fields.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// The offending content.
        content: String,
    },
    /// A field failed to parse as an integer or float.
    BadNumber {
        /// 1-based line number.
        line: usize,
        /// The offending field.
        field: String,
    },
    /// The resulting edge list failed CSR construction.
    Build(BuildError),
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Read { path, message } => {
                write!(f, "reading {path:?} failed: {message}")
            }
            IoError::Malformed { line, content } => {
                write!(f, "line {line}: malformed edge line {content:?}")
            }
            IoError::BadNumber { line, field } => {
                write!(f, "line {line}: cannot parse number {field:?}")
            }
            IoError::Build(e) => write!(f, "building CSR failed: {e}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<BuildError> for IoError {
    fn from(e: BuildError) -> Self {
        IoError::Build(e)
    }
}

/// Parses a SNAP-style edge list into a CSR graph.
///
/// Lines starting with `#` or `%` and blank lines are skipped. Vertex ids
/// are used as-is; the vertex count is `max id + 1` unless a larger
/// `min_vertices` is given. A third column, when present on *every* edge
/// line, is read as the edge weight.
///
/// # Examples
///
/// ```
/// let g = nextdoor_graph::parse_edge_list("# comment\n0 1\n1 2\n", false, 0).unwrap();
/// assert_eq!(g.num_edges(), 2);
/// ```
pub fn parse_edge_list(text: &str, undirected: bool, min_vertices: usize) -> Result<Csr, IoError> {
    let mut edges: Vec<(VertexId, VertexId, Option<f32>)> = Vec::new();
    let mut max_v: usize = 0;
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') || line.starts_with('%') {
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        if fields.len() != 2 && fields.len() != 3 {
            return Err(IoError::Malformed {
                line: line_no,
                content: line.to_string(),
            });
        }
        let parse_id = |s: &str| -> Result<VertexId, IoError> {
            s.parse().map_err(|_| IoError::BadNumber {
                line: line_no,
                field: s.to_string(),
            })
        };
        let s = parse_id(fields[0])?;
        let d = parse_id(fields[1])?;
        let w = if fields.len() == 3 {
            Some(fields[2].parse().map_err(|_| IoError::BadNumber {
                line: line_no,
                field: fields[2].to_string(),
            })?)
        } else {
            None
        };
        max_v = max_v.max(s as usize).max(d as usize);
        edges.push((s, d, w));
    }
    let n = if edges.is_empty() {
        min_vertices
    } else {
        (max_v + 1).max(min_vertices)
    };
    let all_weighted = !edges.is_empty() && edges.iter().all(|e| e.2.is_some());
    let mut b = GraphBuilder::new(n).undirected(undirected);
    for (s, d, w) in edges {
        if all_weighted {
            // `all_weighted` guarantees the weight is present; the fallback
            // keeps this arm panic-free regardless.
            b.push_weighted_edge(s, d, w.unwrap_or(1.0));
        } else {
            b.push_edge(s, d);
        }
    }
    Ok(b.build()?)
}

/// Reads and parses a SNAP-style edge-list file.
///
/// A file that cannot be opened yields [`IoError::Read`]; a malformed line
/// yields the same line-numbered errors as [`parse_edge_list`], so callers
/// can report exactly where a downloaded dataset is broken instead of
/// panicking mid-load.
///
/// # Errors
///
/// Returns [`IoError`] on any read or parse failure.
pub fn load_edge_list(
    path: impl AsRef<std::path::Path>,
    undirected: bool,
    min_vertices: usize,
) -> Result<Csr, IoError> {
    let path = path.as_ref();
    let text = std::fs::read_to_string(path).map_err(|e| IoError::Read {
        path: path.display().to_string(),
        message: e.to_string(),
    })?;
    parse_edge_list(&text, undirected, min_vertices)
}

/// Serialises a graph as a SNAP-style edge list (one `src dst [w]` per line).
pub fn write_edge_list(g: &Csr) -> String {
    let mut out = String::new();
    out.push_str("# nextdoor-graph edge list\n");
    for v in 0..g.num_vertices() as VertexId {
        for (i, &u) in g.neighbors(v).iter().enumerate() {
            if g.is_weighted() {
                out.push_str(&format!("{v} {u} {}\n", g.edge_weight(v, i)));
            } else {
                out.push_str(&format!("{v} {u}\n"));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_comments_and_blanks() {
        let g = parse_edge_list("# hi\n\n% also a comment\n0 1\n2 0\n", false, 0).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.neighbors(0), &[1]);
    }

    #[test]
    fn undirected_parse() {
        let g = parse_edge_list("0 1\n", true, 0).unwrap();
        assert_eq!(g.neighbors(1), &[0]);
    }

    #[test]
    fn min_vertices_pads_isolated_tail() {
        let g = parse_edge_list("0 1\n", false, 10).unwrap();
        assert_eq!(g.num_vertices(), 10);
    }

    #[test]
    fn weighted_parse() {
        let g = parse_edge_list("0 1 2.5\n1 0 1.5\n", false, 0).unwrap();
        assert!(g.is_weighted());
        assert_eq!(g.edge_weight(0, 0), 2.5);
    }

    #[test]
    fn mixed_weight_columns_fall_back_to_unweighted() {
        let g = parse_edge_list("0 1 2.5\n1 0\n", false, 0).unwrap();
        assert!(!g.is_weighted());
    }

    #[test]
    fn malformed_line_reports_position() {
        let err = parse_edge_list("0 1\n0 1 2 3\n", false, 0).unwrap_err();
        match err {
            IoError::Malformed { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn bad_number_reports_field() {
        let err = parse_edge_list("0 x\n", false, 0).unwrap_err();
        match &err {
            IoError::BadNumber { line, field } => {
                assert_eq!(*line, 1);
                assert_eq!(field, "x");
            }
            other => panic!("unexpected error {other:?}"),
        }
        assert!(err.to_string().contains("cannot parse"));
    }

    #[test]
    fn round_trip() {
        let g = parse_edge_list("0 1\n1 2\n2 0\n", false, 0).unwrap();
        let text = write_edge_list(&g);
        let g2 = parse_edge_list(&text, false, 0).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn weighted_round_trip() {
        let g = parse_edge_list("0 1 1.5\n1 0 2.25\n", false, 0).unwrap();
        let g2 = parse_edge_list(&write_edge_list(&g), false, 0).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn load_reads_and_parses_files() {
        let dir = std::env::temp_dir();
        let path = dir.join("nextdoor_io_test_ok.txt");
        std::fs::write(&path, "# snap header\n0 1\n1 2\n").unwrap();
        let g = load_edge_list(&path, false, 0).unwrap();
        assert_eq!(g.num_edges(), 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_a_read_error() {
        let err = load_edge_list("/nonexistent/nextdoor.txt", false, 0).unwrap_err();
        match &err {
            IoError::Read { path, .. } => assert!(path.contains("nextdoor.txt")),
            other => panic!("unexpected error {other:?}"),
        }
        assert!(err.to_string().contains("failed"));
    }

    #[test]
    fn malformed_file_reports_line_number() {
        let dir = std::env::temp_dir();
        let path = dir.join("nextdoor_io_test_bad.txt");
        std::fs::write(&path, "0 1\nnot an edge at all\n").unwrap();
        let err = load_edge_list(&path, false, 0).unwrap_err();
        assert_eq!(
            err,
            IoError::Malformed {
                line: 2,
                content: "not an edge at all".to_string()
            }
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_input_yields_empty_graph() {
        let g = parse_edge_list("# nothing\n", false, 0).unwrap();
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
    }
}
