//! Scaled stand-ins for the paper's evaluation datasets (Table 3).
//!
//! The original evaluation uses SNAP graphs. We reproduce their *structural
//! parameters* — relative vertex counts, edge counts and degree skew — with
//! the RMAT generator, scaled by a user-chosen factor so the whole suite
//! runs on a laptop. The systems-level claims (coalescing, divergence, load
//! balance) depend on exactly these parameters, not on the concrete
//! topology.

use crate::csr::Csr;
use crate::gen::{rmat, RmatParams};
use crate::io::IoError;

/// One of the evaluation datasets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dataset {
    /// Protein-Protein Interactions: 50K vertices, 1.4M edges, avg degree 28.
    Ppi,
    /// com-Orkut: 3M vertices, 117M edges, avg degree 39.
    Orkut,
    /// cit-Patents: 3.77M vertices, 16.5M edges, avg degree 4.37.
    Patents,
    /// soc-LiveJournal1: 4.8M vertices, 68.9M edges, avg degree 14.3.
    LiveJournal,
    /// com-Friendster: 65.6M vertices, 1.8B edges, avg degree 27.4. The
    /// paper's out-of-GPU-memory case (§8.4).
    Friendster,
    /// Reddit (used in the paper's Table 1/Table 5): 233K vertices, 11.6M
    /// edges.
    Reddit,
}

impl Dataset {
    /// The five Table 3 graphs, in the paper's order.
    pub const TABLE3: [Dataset; 5] = [
        Dataset::Ppi,
        Dataset::Orkut,
        Dataset::Patents,
        Dataset::LiveJournal,
        Dataset::Friendster,
    ];

    /// The four graphs the paper uses for most single-GPU figures (FriendS
    /// is reserved for the large-graph experiment).
    pub const MAIN4: [Dataset; 4] = [
        Dataset::Ppi,
        Dataset::Orkut,
        Dataset::Patents,
        Dataset::LiveJournal,
    ];

    /// Structural parameters of the original graph.
    pub fn spec(self) -> DatasetSpec {
        match self {
            Dataset::Ppi => DatasetSpec {
                name: "Protein-Protein Interactions",
                abbrev: "PPI",
                nodes: 50_000,
                edges: 1_400_000,
                params: RmatParams::SKEWED,
            },
            Dataset::Orkut => DatasetSpec {
                name: "com-Orkut",
                abbrev: "Orkut",
                nodes: 3_000_000,
                edges: 117_000_000,
                params: RmatParams::SKEWED,
            },
            Dataset::Patents => DatasetSpec {
                name: "cit-Patents",
                abbrev: "Patents",
                nodes: 3_770_000,
                edges: 16_500_000,
                params: RmatParams::MILD,
            },
            Dataset::LiveJournal => DatasetSpec {
                name: "soc-LiveJournal1",
                abbrev: "LiveJ",
                nodes: 4_800_000,
                edges: 68_900_000,
                params: RmatParams::SKEWED,
            },
            Dataset::Friendster => DatasetSpec {
                name: "com-Friendster",
                abbrev: "FriendS",
                nodes: 65_600_000,
                edges: 1_800_000_000,
                params: RmatParams::SKEWED,
            },
            Dataset::Reddit => DatasetSpec {
                name: "Reddit",
                abbrev: "Reddit",
                nodes: 233_000,
                edges: 11_600_000,
                params: RmatParams::SKEWED,
            },
        }
    }

    /// Short display name as used in the paper's tables.
    pub fn abbrev(self) -> &'static str {
        self.spec().abbrev
    }

    /// Generates the scaled stand-in graph.
    ///
    /// `scale` multiplies both vertex and edge counts; the vertex count is
    /// rounded to the nearest power of two as required by RMAT. Weights (as
    /// in the paper, uniform in `[1, 5)`) can be added with
    /// [`Csr::with_random_weights`].
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not in `(0, 1]`.
    pub fn generate(self, scale: f64, seed: u64) -> Csr {
        assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
        let spec = self.spec();
        let nodes = ((spec.nodes as f64 * scale).max(64.0)) as usize;
        let log2 = (nodes as f64).log2().round().max(6.0) as u32;
        let target_n = 1usize << log2;
        // Keep the average degree of the original by deriving the edge count
        // from the realised vertex count.
        let avg_degree = spec.edges as f64 / spec.nodes as f64;
        // The generator inserts reverse edges, so halve the request; RMAT
        // duplicate collapse is roughly compensated by the 1.15 factor.
        let edges = (target_n as f64 * avg_degree * 0.5 * 1.15) as usize;
        rmat(log2, edges, spec.params, seed ^ (self as u64))
    }

    /// Loads the *real* dataset from a SNAP edge-list file instead of the
    /// generated stand-in.
    ///
    /// All Table 3 graphs ship from SNAP as undirected edge lists, so the
    /// reverse of every edge is inserted. The vertex count is padded to the
    /// original's [`DatasetSpec::nodes`] when the file covers fewer ids.
    ///
    /// # Errors
    ///
    /// An unreadable file yields [`IoError::Read`]; a malformed or
    /// non-numeric line yields the parser's line-numbered errors rather
    /// than a panic, so a truncated download reports exactly where it
    /// broke.
    pub fn load(self, path: impl AsRef<std::path::Path>) -> Result<Csr, IoError> {
        crate::io::load_edge_list(path, true, self.spec().nodes)
    }
}

impl std::fmt::Display for Dataset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.abbrev())
    }
}

/// Structural parameters of an evaluation dataset (paper's Table 3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DatasetSpec {
    /// Full name.
    pub name: &'static str,
    /// Abbreviation used in tables.
    pub abbrev: &'static str,
    /// Vertex count of the original graph.
    pub nodes: usize,
    /// Edge count of the original graph.
    pub edges: usize,
    /// RMAT parameters approximating the original's degree skew.
    pub params: RmatParams,
}

impl DatasetSpec {
    /// Average degree of the original graph.
    pub fn avg_degree(&self) -> f64 {
        self.edges as f64 / self.nodes as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_match_table3() {
        assert_eq!(Dataset::Ppi.spec().nodes, 50_000);
        assert!((Dataset::Orkut.spec().avg_degree() - 39.0).abs() < 0.5);
        assert!((Dataset::Patents.spec().avg_degree() - 4.37).abs() < 0.2);
        assert!((Dataset::LiveJournal.spec().avg_degree() - 14.3).abs() < 0.2);
        assert!((Dataset::Friendster.spec().avg_degree() - 27.4).abs() < 0.5);
    }

    #[test]
    fn generated_graph_approximates_avg_degree() {
        let g = Dataset::Ppi.generate(0.1, 1);
        let target = Dataset::Ppi.spec().avg_degree();
        let got = g.avg_degree();
        assert!(
            got > target * 0.5 && got < target * 1.5,
            "avg degree {got} too far from target {target}"
        );
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Dataset::Patents.generate(0.01, 3);
        let b = Dataset::Patents.generate(0.01, 3);
        assert_eq!(a, b);
    }

    #[test]
    fn scale_changes_size() {
        let small = Dataset::Ppi.generate(0.05, 1);
        let big = Dataset::Ppi.generate(0.2, 1);
        assert!(big.num_vertices() > small.num_vertices());
    }

    #[test]
    fn display_uses_abbrev() {
        assert_eq!(Dataset::LiveJournal.to_string(), "LiveJ");
    }

    #[test]
    #[should_panic(expected = "scale must be in (0, 1]")]
    fn zero_scale_rejected() {
        let _ = Dataset::Ppi.generate(0.0, 1);
    }

    #[test]
    fn load_propagates_line_numbered_errors() {
        let path = std::env::temp_dir().join("nextdoor_dataset_test_bad.txt");
        std::fs::write(&path, "0 1\n1 2\nthis is not an edge\n").unwrap();
        let err = Dataset::Ppi.load(&path).unwrap_err();
        match err {
            IoError::Malformed { line, .. } => assert_eq!(line, 3),
            other => panic!("unexpected error {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_pads_to_spec_vertex_count() {
        let path = std::env::temp_dir().join("nextdoor_dataset_test_ok.txt");
        std::fs::write(&path, "0 1\n1 2\n").unwrap();
        let g = Dataset::Ppi.load(&path).unwrap();
        assert_eq!(g.num_vertices(), Dataset::Ppi.spec().nodes);
        // Undirected: the reverse edges exist.
        assert_eq!(g.neighbors(2), &[1]);
        std::fs::remove_file(&path).ok();
    }
}
