//! Sampling graphs that exceed device memory (paper §8.4).
//!
//! The graph is partitioned into disjoint sub-graphs — contiguous vertex
//! ranges with their full adjacency lists — each small enough to fit the
//! device budget alongside the sample buffers. At every step the engine
//! determines which sub-graphs hold live transit vertices, transfers those
//! sub-graphs over PCIe (charged against simulated time, as the paper does
//! for this experiment only), and runs the normal transit-parallel kernels.
//!
//! The paper's finding reproduces from this cost structure: k-hop and layer
//! sampling are computation-bound (many `next` calls per transferred byte),
//! while cheap random walks are transfer-bound — NextDoor loses to a CPU
//! system on DeepWalk/PPR but wins on compute-heavy node2vec.

use crate::api::{SamplingApp, NULL_VERTEX};
use crate::engine::driver::{exec_step, GpuEngineKind};
use crate::engine::kernels::{charge_step_transits, StepExec, StepOut};
use crate::engine::{finish_step, plan_step, step_budget, unique, EngineStats, RunResult};
use crate::gpu_graph::GpuGraph;
use crate::store::SampleStore;
use nextdoor_gpu::Gpu;
use nextdoor_graph::{Csr, VertexId};

/// A partitioning of a graph into device-sized sub-graphs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GraphPartitions {
    /// Exclusive end vertex of each partition (ascending).
    ends: Vec<VertexId>,
    /// Bytes of each partition's CSR slice.
    bytes: Vec<usize>,
}

impl GraphPartitions {
    /// Number of partitions.
    pub fn len(&self) -> usize {
        self.ends.len()
    }

    /// Whether there are no partitions (empty graph).
    pub fn is_empty(&self) -> bool {
        self.ends.is_empty()
    }

    /// Partition index of vertex `v`.
    pub fn partition_of(&self, v: VertexId) -> usize {
        self.ends.partition_point(|&e| e <= v)
    }

    /// Bytes of partition `p`.
    pub fn bytes_of(&self, p: usize) -> usize {
        self.bytes[p]
    }
}

/// Splits `graph` into contiguous vertex ranges whose CSR slices each fit
/// in `budget_bytes`.
///
/// # Panics
///
/// Panics if any single vertex's adjacency exceeds the budget.
pub fn partition_graph(graph: &Csr, budget_bytes: usize) -> GraphPartitions {
    let mut ends = Vec::new();
    let mut bytes = Vec::new();
    let mut cur_bytes = 0usize;
    let per_vertex = 2 * std::mem::size_of::<u32>(); // offset + degree entries
    for v in 0..graph.num_vertices() as VertexId {
        let vb = per_vertex + graph.degree(v) * std::mem::size_of::<u32>();
        assert!(
            vb <= budget_bytes,
            "vertex {v} alone exceeds the device budget"
        );
        if cur_bytes + vb > budget_bytes {
            ends.push(v);
            bytes.push(cur_bytes);
            cur_bytes = 0;
        }
        cur_bytes += vb;
    }
    if graph.num_vertices() > 0 {
        ends.push(graph.num_vertices() as VertexId);
        bytes.push(cur_bytes);
    }
    GraphPartitions { ends, bytes }
}

/// Statistics specific to an out-of-core run.
#[derive(Debug, Clone, Default)]
pub struct OutOfCoreStats {
    /// Engine statistics (transfer time included in `total_ms`).
    pub engine: EngineStats,
    /// Milliseconds spent transferring sub-graphs.
    pub transfer_ms: f64,
    /// Sub-graph transfers performed.
    pub transfers: usize,
    /// Number of partitions the graph was split into.
    pub partitions: usize,
    /// Samples produced per second of simulated time.
    pub samples_per_sec: f64,
}

/// Runs `app` transit-parallel on a graph that does not fit in device
/// memory, transferring the needed sub-graphs each step.
///
/// `budget_bytes` is the device memory available for graph data. Unlike the
/// in-memory engines, host↔device transfer time is charged — this is the
/// experiment where the paper includes it.
pub fn run_nextdoor_out_of_core(
    gpu: &mut Gpu,
    graph: &Csr,
    app: &dyn SamplingApp,
    init: &[Vec<VertexId>],
    seed: u64,
    budget_bytes: usize,
) -> (RunResult, OutOfCoreStats) {
    assert!(!init.is_empty(), "need at least one initial sample");
    let parts = partition_graph(graph, budget_bytes);
    let gg = GpuGraph::upload(gpu, graph).expect(
        "simulator note: the full graph is staged host-side; residency is modelled via \
         per-step sub-graph transfers",
    );
    gpu.set_charge_transfers(true);
    let mut store = SampleStore::new(init.to_vec());
    let counters0 = *gpu.counters();
    let mut sched_cycles = 0.0;
    let mut transfer_cycles = 0.0;
    let mut transfers = 0usize;
    let mut steps_run = 0;
    let init_flat: Vec<u32> = init.iter().flatten().copied().collect();
    let mut prev_buf = gpu.to_device(&init_flat);
    for step in 0..step_budget(app) {
        let plan = plan_step(app, &store, step, seed);
        if plan.live == 0 {
            break;
        }
        // Which sub-graphs hold this step's transits?
        let mut needed: Vec<bool> = vec![false; parts.len()];
        for &t in &plan.transits {
            if t != NULL_VERTEX {
                needed[parts.partition_of(t)] = true;
            }
        }
        let c0 = gpu.counters().cycles;
        for (p, used) in needed.iter().enumerate() {
            if *used {
                gpu.charge_htod(parts.bytes_of(p));
                transfers += 1;
            }
        }
        transfer_cycles += gpu.counters().cycles - c0;
        let ns = store.num_samples();
        let mut transit_buf = gpu.alloc::<u32>(ns * plan.tps);
        charge_step_transits(gpu, &prev_buf, &mut transit_buf);
        transit_buf.as_mut_slice().copy_from_slice(&plan.transits);
        let mut out = StepOut::new(gpu, ns, plan.slots);
        {
            let ex = StepExec {
                graph,
                gg: &gg,
                app,
                store: &store,
                plan: &plan,
                seed,
            };
            sched_cycles += exec_step(gpu, &ex, GpuEngineKind::NextDoor, &transit_buf, &mut out);
        }
        let StepOut {
            mut values,
            edges,
            step_buf,
        } = out;
        if app.unique(step) {
            unique::dedup_values_gpu(gpu, &mut values, plan.slots, ns);
        }
        let live = values.iter().any(|&v| v != NULL_VERTEX);
        finish_step(app, &mut store, &plan, values, edges);
        steps_run += 1;
        prev_buf = step_buf;
        if !live {
            break;
        }
    }
    gpu.set_charge_transfers(false);
    let counters = gpu.counters().diff(&counters0);
    let spec = gpu.spec();
    let total_ms = spec.cycles_to_ms(counters.cycles);
    let scheduling_ms = spec.cycles_to_ms(sched_cycles);
    let transfer_ms = spec.cycles_to_ms(transfer_cycles);
    let num_samples = store.num_samples();
    let stats = EngineStats {
        total_ms,
        sampling_ms: total_ms - scheduling_ms - transfer_ms,
        scheduling_ms,
        counters,
        steps_run,
    };
    let ooc = OutOfCoreStats {
        engine: stats.clone(),
        transfer_ms,
        transfers,
        partitions: parts.len(),
        samples_per_sec: num_samples as f64 / (total_ms / 1e3).max(1e-12),
    };
    (RunResult { store, stats }, ooc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::{NextCtx, Steps};
    use crate::engine::cpu::run_cpu;
    use nextdoor_gpu::GpuSpec;
    use nextdoor_graph::gen::{rmat, RmatParams};

    struct Walk(usize);
    impl SamplingApp for Walk {
        fn name(&self) -> &'static str {
            "walk"
        }
        fn steps(&self) -> Steps {
            Steps::Fixed(self.0)
        }
        fn sample_size(&self, _: usize) -> usize {
            1
        }
        fn next(&self, ctx: &mut NextCtx<'_>) -> Option<u32> {
            let d = ctx.num_edges();
            if d == 0 {
                return None;
            }
            let i = ctx.rand_range(d);
            Some(ctx.src_edge(i))
        }
    }

    #[test]
    fn partitions_cover_and_locate_vertices() {
        let g = rmat(9, 5000, RmatParams::SKEWED, 1);
        let parts = partition_graph(&g, g.size_bytes() / 4);
        assert!(parts.len() >= 3, "budget forces several partitions");
        for v in 0..g.num_vertices() as u32 {
            let p = parts.partition_of(v);
            assert!(p < parts.len());
        }
        assert_eq!(parts.partition_of(0), 0);
        let total: usize = (0..parts.len()).map(|p| parts.bytes_of(p)).sum();
        assert!(total > 0);
    }

    #[test]
    fn out_of_core_matches_cpu_and_charges_transfers() {
        let g = rmat(9, 4000, RmatParams::SKEWED, 2);
        let init: Vec<Vec<u32>> = (0..64).map(|i| vec![(i * 7 % 512) as u32]).collect();
        let mut gpu = Gpu::new(GpuSpec::small());
        let (res, ooc) =
            run_nextdoor_out_of_core(&mut gpu, &g, &Walk(6), &init, 5, g.size_bytes() / 4);
        let cpu = run_cpu(&g, &Walk(6), &init, 5);
        assert_eq!(res.store.final_samples(), cpu.store.final_samples());
        assert!(ooc.partitions >= 3);
        assert!(ooc.transfers > 0);
        assert!(ooc.transfer_ms > 0.0);
        assert!(ooc.samples_per_sec > 0.0);
    }

    #[test]
    fn smaller_budget_means_more_transfers() {
        let g = rmat(9, 4000, RmatParams::SKEWED, 2);
        let init: Vec<Vec<u32>> = (0..64).map(|i| vec![(i * 3 % 512) as u32]).collect();
        let mut gpu1 = Gpu::new(GpuSpec::small());
        let (_, big) =
            run_nextdoor_out_of_core(&mut gpu1, &g, &Walk(4), &init, 5, g.size_bytes());
        let mut gpu2 = Gpu::new(GpuSpec::small());
        let (_, small) =
            run_nextdoor_out_of_core(&mut gpu2, &g, &Walk(4), &init, 5, g.size_bytes() / 8);
        assert!(small.partitions > big.partitions);
        assert!(small.transfers > big.transfers);
    }
}
