//! Sampling graphs that exceed device memory (paper §8.4).
//!
//! The graph is partitioned into disjoint sub-graphs — contiguous vertex
//! ranges with their full adjacency lists — each small enough to fit the
//! device budget alongside the sample buffers. At every step the engine
//! determines which sub-graphs hold live transit vertices, transfers those
//! sub-graphs over PCIe (charged against simulated time, as the paper does
//! for this experiment only), and runs the normal transit-parallel kernels.
//!
//! The paper's finding reproduces from this cost structure: k-hop and layer
//! sampling are computation-bound (many `next` calls per transferred byte),
//! while cheap random walks are transfer-bound — NextDoor loses to a CPU
//! system on DeepWalk/PPR but wins on compute-heavy node2vec.
//!
//! This engine is also the degraded mode the in-core NextDoor engine falls
//! back to when the graph upload does not fit in device memory (see
//! `engine::driver::run_gpu_engine`); it produces byte-identical
//! samples because both modes share `run_step_loop`.

use crate::api::SamplingApp;
use crate::engine::driver::{run_step_loop, GpuEngineKind};
use crate::engine::{EngineStats, RunResult};
use crate::error::{validate_run, NextDoorError};
use crate::gpu_graph::GpuGraph;
use nextdoor_gpu::Gpu;
use nextdoor_graph::{Csr, VertexId};

/// A partitioning of a graph into device-sized sub-graphs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GraphPartitions {
    /// Exclusive end vertex of each partition (ascending).
    ends: Vec<VertexId>,
    /// Bytes of each partition's CSR slice.
    bytes: Vec<usize>,
}

impl GraphPartitions {
    /// Number of partitions.
    pub fn len(&self) -> usize {
        self.ends.len()
    }

    /// Whether there are no partitions (empty graph).
    pub fn is_empty(&self) -> bool {
        self.ends.is_empty()
    }

    /// Partition index of vertex `v`.
    pub fn partition_of(&self, v: VertexId) -> usize {
        self.ends.partition_point(|&e| e <= v)
    }

    /// Bytes of partition `p`.
    pub fn bytes_of(&self, p: usize) -> usize {
        self.bytes[p]
    }
}

/// Splits `graph` into contiguous vertex ranges whose CSR slices each fit
/// in `budget_bytes`.
///
/// # Errors
///
/// Returns [`NextDoorError::PartitionBudgetTooSmall`] if any single vertex's
/// adjacency alone exceeds the budget.
pub fn partition_graph(graph: &Csr, budget_bytes: usize) -> Result<GraphPartitions, NextDoorError> {
    let mut ends = Vec::new();
    let mut bytes = Vec::new();
    let mut cur_bytes = 0usize;
    let per_vertex = 2 * std::mem::size_of::<u32>(); // offset + degree entries
    for v in 0..graph.num_vertices() as VertexId {
        let vb = per_vertex + graph.degree(v) * std::mem::size_of::<u32>();
        if vb > budget_bytes {
            return Err(NextDoorError::PartitionBudgetTooSmall {
                vertex: v,
                bytes: vb,
                budget: budget_bytes,
            });
        }
        if cur_bytes + vb > budget_bytes {
            ends.push(v);
            bytes.push(cur_bytes);
            cur_bytes = 0;
        }
        cur_bytes += vb;
    }
    if graph.num_vertices() > 0 {
        ends.push(graph.num_vertices() as VertexId);
        bytes.push(cur_bytes);
    }
    Ok(GraphPartitions { ends, bytes })
}

/// Statistics specific to an out-of-core run.
#[derive(Debug, Clone, Default)]
pub struct OutOfCoreStats {
    /// Engine statistics (transfer time included in `total_ms`).
    pub engine: EngineStats,
    /// Milliseconds spent transferring sub-graphs.
    pub transfer_ms: f64,
    /// Sub-graph transfers performed.
    pub transfers: usize,
    /// Number of partitions the graph was split into.
    pub partitions: usize,
    /// Samples produced per second of simulated time.
    pub samples_per_sec: f64,
}

/// The out-of-core engine body, shared by the public entry point and the
/// in-core engine's degraded mode. Assumes inputs are already validated.
pub(crate) fn out_of_core_run(
    gpu: &mut Gpu,
    graph: &Csr,
    app: &dyn SamplingApp,
    init: &[Vec<VertexId>],
    seed: u64,
    budget_bytes: usize,
) -> Result<(RunResult, OutOfCoreStats), NextDoorError> {
    let parts = partition_graph(graph, budget_bytes)?;
    // The full graph lives in host (pinned) memory; residency on the device
    // is modelled by the per-step sub-graph transfer charges below, so the
    // staged buffers are neither capacity-counted nor fault-injected.
    let gg = GpuGraph::upload_staged(gpu, graph);
    gpu.set_charge_transfers(true);
    let counters0 = *gpu.counters();
    let launch0 = gpu.launches_issued();
    let keys = crate::engine::SampleKeys::uniform(seed);
    let loop_res = run_step_loop(
        gpu,
        graph,
        &gg,
        app,
        init,
        &keys,
        GpuEngineKind::NextDoor,
        Some(&parts),
        &crate::tuning::TuningPlan::default(),
        None,
    );
    gpu.set_charge_transfers(false);
    let out = loop_res?;
    let counters = gpu.counters().diff(&counters0);
    let profile = crate::engine::profile::RunProfile::from_device(gpu, launch0, &out.step_marks);
    let spec = gpu.spec();
    let total_ms = spec.cycles_to_ms(counters.cycles);
    let scheduling_ms = spec.cycles_to_ms(out.sched_cycles);
    let transfer_ms = spec.cycles_to_ms(out.transfer_cycles);
    let num_samples = out.store.num_samples();
    let stats = EngineStats {
        total_ms,
        sampling_ms: total_ms - scheduling_ms - transfer_ms,
        scheduling_ms,
        counters,
        steps_run: out.steps_run,
        profile,
    };
    let ooc = OutOfCoreStats {
        engine: stats.clone(),
        transfer_ms,
        transfers: out.transfers,
        partitions: parts.len(),
        samples_per_sec: num_samples as f64 / (total_ms / 1e3).max(1e-12),
    };
    Ok((
        RunResult {
            store: out.store,
            stats,
            report: out.report,
        },
        ooc,
    ))
}

/// Runs `app` transit-parallel on a graph that does not fit in device
/// memory, transferring the needed sub-graphs each step.
///
/// `budget_bytes` is the device memory available for graph data. Unlike the
/// in-memory engines, host↔device transfer time is charged — this is the
/// experiment where the paper includes it.
///
/// # Errors
///
/// Returns [`NextDoorError`] on invalid inputs, a partition budget smaller
/// than a single adjacency list, genuine device-memory exhaustion, device
/// loss, or a step that keeps faulting past its retry budget.
pub fn run_nextdoor_out_of_core(
    gpu: &mut Gpu,
    graph: &Csr,
    app: &dyn SamplingApp,
    init: &[Vec<VertexId>],
    seed: u64,
    budget_bytes: usize,
) -> Result<(RunResult, OutOfCoreStats), NextDoorError> {
    validate_run(graph, app, init)?;
    out_of_core_run(gpu, graph, app, init, seed, budget_bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::{NextCtx, Steps};
    use crate::engine::cpu::run_cpu;
    use nextdoor_gpu::GpuSpec;
    use nextdoor_graph::gen::{rmat, RmatParams};

    struct Walk(usize);
    impl SamplingApp for Walk {
        fn name(&self) -> &'static str {
            "walk"
        }
        fn steps(&self) -> Steps {
            Steps::Fixed(self.0)
        }
        fn sample_size(&self, _: usize) -> usize {
            1
        }
        fn next(&self, ctx: &mut NextCtx<'_>) -> Option<u32> {
            let d = ctx.num_edges();
            if d == 0 {
                return None;
            }
            let i = ctx.rand_range(d);
            Some(ctx.src_edge(i))
        }
    }

    #[test]
    fn partitions_cover_and_locate_vertices() {
        let g = rmat(9, 5000, RmatParams::SKEWED, 1);
        let parts = partition_graph(&g, g.size_bytes() / 4).unwrap();
        assert!(parts.len() >= 3, "budget forces several partitions");
        for v in 0..g.num_vertices() as u32 {
            let p = parts.partition_of(v);
            assert!(p < parts.len());
        }
        assert_eq!(parts.partition_of(0), 0);
        let total: usize = (0..parts.len()).map(|p| parts.bytes_of(p)).sum();
        assert!(total > 0);
    }

    #[test]
    fn tiny_budget_is_a_typed_error() {
        let g = rmat(9, 5000, RmatParams::SKEWED, 1);
        assert!(matches!(
            partition_graph(&g, 4),
            Err(NextDoorError::PartitionBudgetTooSmall { budget: 4, .. })
        ));
    }

    #[test]
    fn out_of_core_matches_cpu_and_charges_transfers() {
        let g = rmat(9, 4000, RmatParams::SKEWED, 2);
        let init: Vec<Vec<u32>> = (0..64).map(|i| vec![(i * 7 % 512) as u32]).collect();
        let mut gpu = Gpu::new(GpuSpec::small());
        let (res, ooc) =
            run_nextdoor_out_of_core(&mut gpu, &g, &Walk(6), &init, 5, g.size_bytes() / 4).unwrap();
        let cpu = run_cpu(&g, &Walk(6), &init, 5).unwrap();
        assert_eq!(res.store.final_samples(), cpu.store.final_samples());
        assert!(res.report.is_clean());
        assert!(ooc.partitions >= 3);
        assert!(ooc.transfers > 0);
        assert!(ooc.transfer_ms > 0.0);
        assert!(ooc.samples_per_sec > 0.0);
    }

    #[test]
    fn smaller_budget_means_more_transfers() {
        let g = rmat(9, 4000, RmatParams::SKEWED, 2);
        let init: Vec<Vec<u32>> = (0..64).map(|i| vec![(i * 3 % 512) as u32]).collect();
        let mut gpu1 = Gpu::new(GpuSpec::small());
        let (_, big) =
            run_nextdoor_out_of_core(&mut gpu1, &g, &Walk(4), &init, 5, g.size_bytes()).unwrap();
        let mut gpu2 = Gpu::new(GpuSpec::small());
        let (_, small) =
            run_nextdoor_out_of_core(&mut gpu2, &g, &Walk(4), &init, 5, g.size_bytes() / 8)
                .unwrap();
        assert!(small.partitions > big.partitions);
        assert!(small.transfers > big.transfers);
    }
}
