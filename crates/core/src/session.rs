//! Persistent sampling sessions: upload once, query many times.
//!
//! The paper's end-to-end win comes from amortising GPU state across
//! sampling invocations — NextDoor keeps the graph resident on the device
//! and answers sampling requests from a training loop rather than paying
//! setup per call (§8, Table 1). The one-shot `run_*` entry points re-upload
//! the graph and rebuild everything per call; a [`SamplerSession`] uploads
//! the graph and the per-app constant state once and then answers many
//! *queries* (caller-supplied seed sets) against the resident graph.
//!
//! Sessions also support **fused** execution: several queries are
//! concatenated into one store and run as a single transit-parallel batch,
//! which is how the micro-batching scheduler of `nextdoor-serve` coalesces
//! concurrent requests. Fused execution is bit-identical to running each
//! query alone because the engines key every RNG draw through a
//! [`SampleKeys`] table mapping each fused sample back to the
//! `(seed, local id)` pair of its standalone run.
//!
//! ```
//! use nextdoor_core::api::{NextCtx, SamplingApp, Steps};
//! use nextdoor_core::session::{SamplerSession, SessionQuery};
//! use nextdoor_core::{initial_samples_random, run_nextdoor};
//! use nextdoor_gpu::{Gpu, GpuSpec};
//! use nextdoor_graph::gen::{rmat, RmatParams};
//!
//! struct Walk;
//! impl SamplingApp for Walk {
//!     fn name(&self) -> &'static str { "walk" }
//!     fn steps(&self) -> Steps { Steps::Fixed(3) }
//!     fn sample_size(&self, _step: usize) -> usize { 1 }
//!     fn next(&self, ctx: &mut NextCtx<'_>) -> Option<u32> {
//!         let d = ctx.num_edges();
//!         if d == 0 { return None; }
//!         let i = ctx.rand_range(d);
//!         Some(ctx.src_edge(i))
//!     }
//! }
//!
//! let graph = rmat(8, 1200, RmatParams::SKEWED, 1);
//! let init = initial_samples_random(&graph, 16, 1, 3).expect("non-empty graph");
//!
//! // Warm session: the graph is uploaded once...
//! let mut session = SamplerSession::new(GpuSpec::small(), graph.clone(), Box::new(Walk))
//!     .expect("graph fits on the device");
//! let warm = session.query(&init, 42).expect("valid query");
//!
//! // ...and produces exactly the samples a cold one-shot run produces.
//! let mut gpu = Gpu::new(GpuSpec::small());
//! let cold = run_nextdoor(&mut gpu, &graph, &Walk, &init, 42).unwrap();
//! assert_eq!(warm.store.final_samples(), cold.store.final_samples());
//!
//! // Fused: two queries in one launch, sliced back per request.
//! let q = |seed| SessionQuery { init: init.clone(), seed };
//! let fused = session.query_fused(&[q(42), q(43)]).expect("compatible queries");
//! assert_eq!(fused.per_query[0].final_samples(), cold.store.final_samples());
//! ```

use crate::api::SamplingApp;
use crate::engine::driver::{finish_run, run_step_loop, GpuEngineKind};
use crate::engine::profile::RunProfile;
use crate::engine::{EngineStats, RunResult, SampleKeys};
use crate::error::{validate_run, FaultReport, NextDoorError};
use crate::gpu_graph::GpuGraph;
use crate::store::SampleStore;
use crate::tuning::{AutoTuner, CacheConfig, CacheStats, HotTransitCache, TunerConfig, TuningPlan};
use nextdoor_gpu::{Gpu, GpuSpec};
use nextdoor_graph::{Csr, VertexId};

/// One sampling request against a session: the initial samples (seed sets)
/// to grow and the RNG seed keying every draw of the query.
#[derive(Debug, Clone)]
pub struct SessionQuery {
    /// Initial vertices of each sample (all samples must have equal width).
    pub init: Vec<Vec<VertexId>>,
    /// Seed of the query's RNG streams. Two queries with the same
    /// `(init, seed)` produce identical samples, fused or not.
    pub seed: u64,
}

/// Where one width class of a fused batch landed on the device: its launch
/// indices and simulated-cycle interval. Surfaced so the serving tier's
/// tracer can record a span per class launch sequence and link it to the
/// kernel records the device profiler retained (kernels are addressed by
/// [`launch_idx`](nextdoor_gpu::KernelRecord::launch_idx)).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClassMark {
    /// Initial vertices per sample shared by the class's queries.
    pub width: usize,
    /// Queries fused into this class.
    pub queries: usize,
    /// First device launch index of the class (inclusive).
    pub launch_start: u64,
    /// One past the class's last device launch index.
    pub launch_end: u64,
    /// Device-clock cycles at which the class's launch sequence began.
    pub start_cycles: f64,
    /// Device-clock cycles at which the class's launch sequence ended.
    pub end_cycles: f64,
}

/// Result of a fused batch: one sliced store per query, in submission
/// order, plus the batch-level statistics and fault report shared by all
/// of them (the batch ran as one dispatch, so its cost cannot be
/// attributed to a single query).
pub struct FusedResult {
    /// Per-query sample stores, bit-identical to each query's standalone
    /// run.
    pub per_query: Vec<SampleStore>,
    /// Fused launch sequences the batch needed: one per *width class*
    /// (distinct initial-vertices-per-sample count among the queries). An
    /// equal-width batch runs as a single sequence.
    pub launches: usize,
    /// Launch-index and cycle bracket of each width class's launch
    /// sequence, in the same first-appearance order the classes ran.
    pub class_marks: Vec<ClassMark>,
    /// Statistics of the fused batch as a whole (all width classes
    /// combined).
    pub stats: EngineStats,
    /// Faults the fused batch observed and survived.
    pub report: FaultReport,
}

/// A persistent sampling session: a device with the graph resident, bound
/// to one sampling application, answering many queries without re-upload.
///
/// Created with [`SamplerSession::new`] (fresh device) or
/// [`SamplerSession::with_gpu`] (caller-configured device, e.g. with an
/// injected [`FaultPlan`](nextdoor_gpu::FaultPlan)). Queries run the
/// NextDoor transit-parallel engine against the uploaded graph; the
/// session's simulated clock ([`SamplerSession::sim_ms`]) accumulates
/// across queries, which is what the serving layer's per-request deadlines
/// are measured against.
pub struct SamplerSession {
    gpu: Gpu,
    graph: Csr,
    gg: GpuGraph,
    app: Box<dyn SamplingApp + Send>,
    queries_served: u64,
    tuner: Option<AutoTuner>,
    plan: TuningPlan,
    plan_updates: u64,
    cache: Option<HotTransitCache>,
}

impl SamplerSession {
    /// Creates a session on a fresh device of `spec`, uploading `graph`.
    ///
    /// # Errors
    ///
    /// Returns [`NextDoorError::EmptyGraph`] for a vertex-less graph and
    /// [`NextDoorError::OutOfMemory`] when the graph does not fit in device
    /// memory (a session keeps the graph resident, so unlike the one-shot
    /// [`run_nextdoor`](crate::run_nextdoor) it does not degrade to the
    /// out-of-core engine).
    pub fn new(
        spec: GpuSpec,
        graph: Csr,
        app: Box<dyn SamplingApp + Send>,
    ) -> Result<Self, NextDoorError> {
        Self::with_gpu(Gpu::new(spec), graph, app)
    }

    /// Creates a session on a caller-configured device (fault plans,
    /// profile capacity and thread counts are all set on the `Gpu` before
    /// it is handed over).
    ///
    /// # Errors
    ///
    /// Same conditions as [`SamplerSession::new`].
    pub fn with_gpu(
        mut gpu: Gpu,
        graph: Csr,
        app: Box<dyn SamplingApp + Send>,
    ) -> Result<Self, NextDoorError> {
        if graph.num_vertices() == 0 {
            return Err(NextDoorError::EmptyGraph);
        }
        if gpu.device_lost() {
            return Err(NextDoorError::DeviceLost { device: 0 });
        }
        let gg = GpuGraph::upload(&mut gpu, &graph)?;
        Ok(SamplerSession {
            gpu,
            graph,
            gg,
            app,
            queries_served: 0,
            tuner: None,
            plan: TuningPlan::default(),
            plan_updates: 0,
            cache: None,
        })
    }

    /// Enables profile-guided autotuning: the session observes each
    /// completed query's [`RunProfile`] and, once `cfg.warmup_queries`
    /// queries have been seen, derives a [`TuningPlan`] that subsequent
    /// queries run under. Plans change only **at query boundaries** and the
    /// knobs only move launch geometry and cost, so the samples of every
    /// query are bit-identical to an untuned session's (see
    /// [`crate::tuning`]).
    pub fn enable_autotune(&mut self, cfg: TunerConfig) {
        self.tuner = Some(AutoTuner::new(cfg));
    }

    /// Enables the cross-query [`HotTransitCache`]: frequently-hit
    /// transits' adjacency slices stay resident on the device between
    /// queries (their kernels skip the preload traffic), and repeated
    /// steps' scheduling indices are memoised. Maintenance runs at query
    /// boundaries; samples are unaffected.
    pub fn enable_hot_cache(&mut self, cfg: CacheConfig) {
        self.cache = Some(HotTransitCache::new(cfg));
    }

    /// Pins an explicit tuning plan (normalised via
    /// [`TuningPlan::normalized`]), e.g. one derived offline from an
    /// exported kernel report. Overwritten by the autotuner's next update
    /// if autotuning is enabled.
    pub fn set_tuning_plan(&mut self, plan: TuningPlan) {
        self.plan = plan.normalized();
    }

    /// The plan the next query will run under.
    pub fn tuning_plan(&self) -> TuningPlan {
        self.plan
    }

    /// How many times the autotuner changed the active plan.
    pub fn plan_updates(&self) -> u64 {
        self.plan_updates
    }

    /// The autotuner's state, if autotuning is enabled.
    pub fn tuner(&self) -> Option<&AutoTuner> {
        self.tuner.as_ref()
    }

    /// The hot-transit cache's counters, if the cache is enabled.
    pub fn cache_stats(&self) -> Option<CacheStats> {
        self.cache.as_ref().map(|c| *c.stats())
    }

    /// How many transits are currently resident in the hot-transit cache's
    /// device arena (0 when the cache is disabled or empty).
    pub fn cache_resident_len(&self) -> usize {
        self.cache.as_ref().map_or(0, |c| c.resident().len())
    }

    /// Query-boundary bookkeeping: feed the tuner, refresh the plan, and
    /// let the cache promote/evict. Runs with no query in flight, so the
    /// next query sees one fixed `(plan, cache)` state throughout.
    fn after_query(&mut self, profile: &RunProfile) {
        if let Some(t) = self.tuner.as_mut() {
            t.observe(profile);
            if t.ready() {
                let new_plan = t.plan(self.gpu.spec()).normalized();
                if new_plan != self.plan {
                    self.plan = new_plan;
                    self.plan_updates += 1;
                }
            }
        }
        if let Some(c) = self.cache.as_mut() {
            c.maintain(&mut self.gpu, &self.graph, &self.gg);
        }
    }

    /// Answers one query against the resident graph.
    ///
    /// Produces exactly the samples a cold one-shot
    /// [`run_nextdoor`](crate::run_nextdoor) call with the same
    /// `(graph, app, init, seed)` produces — the session only removes the
    /// per-call upload, it never changes the samples.
    ///
    /// # Errors
    ///
    /// Same conditions as [`run_nextdoor`](crate::run_nextdoor), minus the
    /// upload paths (the graph is already resident).
    pub fn query(&mut self, init: &[Vec<VertexId>], seed: u64) -> Result<RunResult, NextDoorError> {
        validate_run(&self.graph, self.app.as_ref(), init)?;
        let keys = SampleKeys::uniform(seed);
        let res = self.run_batch(init, &keys)?;
        self.queries_served += 1;
        self.after_query(&res.stats.profile);
        Ok(res)
    }

    /// Runs several queries as **one fused transit-parallel batch** and
    /// slices the results back per query.
    ///
    /// The fused batch produces, for every query, samples bit-identical to
    /// running that query alone via [`SamplerSession::query`] — the engines
    /// key each fused sample's RNG by its query's `(seed, local id)` (see
    /// [`SampleKeys`]). Fusing amortises the per-launch fixed costs
    /// (scheduling index, kernel launch overhead) across queries, which is
    /// the serving layer's throughput lever.
    ///
    /// Queries need **not** share one initial width: the step planner sizes
    /// the shared transit array from a single vertices-per-sample count, so
    /// the batch is partitioned into *width classes* (in order of first
    /// appearance) and each class runs as its own fused launch sequence
    /// ([`FusedResult::launches`] counts them). Per-sample RNG keying makes
    /// every class bit-identical to standalone runs regardless of how the
    /// classes are packed; [`FusedResult::stats`] and the fault report
    /// cover all classes combined.
    ///
    /// # Errors
    ///
    /// Returns [`NextDoorError::EmptyInit`] for an empty batch and any
    /// [`validate_run`] error for an individual query. Runtime errors are
    /// as for [`SamplerSession::query`]; a runtime error in any width
    /// class fails the whole batch.
    pub fn query_fused(&mut self, queries: &[SessionQuery]) -> Result<FusedResult, NextDoorError> {
        if queries.is_empty() {
            return Err(NextDoorError::EmptyInit);
        }
        for q in queries {
            validate_run(&self.graph, self.app.as_ref(), &q.init)?;
        }
        // Width classes in order of first appearance, each holding the
        // submission-order indices of its queries.
        let mut classes: Vec<(usize, Vec<usize>)> = Vec::new();
        for (qi, q) in queries.iter().enumerate() {
            let w = q.init[0].len();
            match classes.iter_mut().find(|(cw, _)| *cw == w) {
                Some((_, members)) => members.push(qi),
                None => classes.push((w, vec![qi])),
            }
        }
        // One counter/launch snapshot brackets *all* classes, so the
        // aggregate stats and profile account for the whole batch exactly
        // (the same arithmetic as `finish_run`, over the combined span).
        let counters0 = *self.gpu.counters();
        let launch0 = self.gpu.launches_issued();
        let launches = classes.len();
        let mut report = FaultReport::default();
        let mut sched_cycles = 0.0f64;
        let mut steps_run = 0usize;
        let mut step_marks: Vec<(usize, u64, u64)> = Vec::new();
        let mut tagged: Vec<(usize, SampleStore)> = Vec::with_capacity(queries.len());
        let mut class_marks = Vec::with_capacity(classes.len());
        for (width, members) in &classes {
            let mut init = Vec::new();
            let mut map = Vec::new();
            let mut ranges = Vec::with_capacity(members.len());
            for &qi in members {
                let q = &queries[qi];
                ranges.push((qi, init.len(), q.init.len()));
                for (local, s) in q.init.iter().enumerate() {
                    init.push(s.clone());
                    map.push((q.seed, local as u64));
                }
            }
            let keys = SampleKeys::fused(map);
            // Bracket the class's launch sequence so the serving tracer can
            // address its kernel records by launch index.
            let class_launch0 = self.gpu.launches_issued();
            let class_cycles0 = self.gpu.counters().cycles;
            let out = run_step_loop(
                &mut self.gpu,
                &self.graph,
                &self.gg,
                self.app.as_ref(),
                &init,
                &keys,
                GpuEngineKind::NextDoor,
                None,
                &self.plan,
                self.cache.as_mut(),
            )?;
            class_marks.push(ClassMark {
                width: *width,
                queries: members.len(),
                launch_start: class_launch0,
                launch_end: self.gpu.launches_issued(),
                start_cycles: class_cycles0,
                end_cycles: self.gpu.counters().cycles,
            });
            sched_cycles += out.sched_cycles;
            steps_run += out.steps_run;
            report.merge(&out.report);
            step_marks.extend(out.step_marks);
            for (qi, start, len) in ranges {
                tagged.push((qi, out.store.slice(start, len)));
            }
        }
        self.queries_served += queries.len() as u64;
        let counters = self.gpu.counters().diff(&counters0);
        let profile = RunProfile::from_device(&self.gpu, launch0, &step_marks);
        let total_ms = self.gpu.spec().cycles_to_ms(counters.cycles);
        let scheduling_ms = self.gpu.spec().cycles_to_ms(sched_cycles);
        self.after_query(&profile);
        tagged.sort_by_key(|(qi, _)| *qi);
        Ok(FusedResult {
            per_query: tagged.into_iter().map(|(_, s)| s).collect(),
            launches,
            class_marks,
            stats: EngineStats {
                total_ms,
                sampling_ms: total_ms - scheduling_ms,
                scheduling_ms,
                counters,
                steps_run,
                profile,
            },
            report,
        })
    }

    /// The shared body of single and fused queries: snapshot the device,
    /// run the fault-tolerant step loop against the resident graph, and
    /// fold counters and profile into a result.
    fn run_batch(
        &mut self,
        init: &[Vec<VertexId>],
        keys: &SampleKeys,
    ) -> Result<RunResult, NextDoorError> {
        let counters0 = *self.gpu.counters();
        let launch0 = self.gpu.launches_issued();
        let out = run_step_loop(
            &mut self.gpu,
            &self.graph,
            &self.gg,
            self.app.as_ref(),
            init,
            keys,
            GpuEngineKind::NextDoor,
            None,
            &self.plan,
            self.cache.as_mut(),
        )?;
        Ok(finish_run(&self.gpu, &counters0, launch0, out))
    }

    /// Simulated milliseconds the session's device has accumulated across
    /// all queries so far. The serving layer measures per-request latency
    /// and deadlines on this clock.
    pub fn sim_ms(&self) -> f64 {
        self.gpu.spec().cycles_to_ms(self.gpu.counters().cycles)
    }

    /// Queries answered so far (each fused query counts individually).
    pub fn queries_served(&self) -> u64 {
        self.queries_served
    }

    /// The resident graph.
    pub fn graph(&self) -> &Csr {
        &self.graph
    }

    /// The application this session serves.
    pub fn app(&self) -> &dyn SamplingApp {
        self.app.as_ref()
    }

    /// Device bytes occupied by the resident graph.
    pub fn graph_bytes(&self) -> usize {
        self.gg.size_bytes()
    }

    /// Schedules additional faults **relative to now**: every allocation
    /// and launch index in `plan` is shifted by the device's current
    /// monotonic counters and merged into the installed plan, so a script
    /// like "lose the device on the 3rd launch from here" lands mid-stream
    /// regardless of how much traffic the session has already served. This
    /// is the chaos-harness entry point for per-replica fault scheduling.
    pub fn schedule_faults(&mut self, plan: nextdoor_gpu::FaultPlan) {
        let shifted = plan.shifted(self.gpu.allocs_issued(), self.gpu.launches_issued());
        self.gpu.extend_faults(shifted);
    }

    /// Whether the session's device has been lost. A lost session can no
    /// longer answer queries ([`SamplerSession::query`] returns
    /// [`NextDoorError::DeviceLost`]); a replica pool routes around it.
    pub fn device_lost(&self) -> bool {
        self.gpu.device_lost()
    }

    /// The session's device (counters, profile ring, launch index).
    pub fn gpu(&self) -> &Gpu {
        &self.gpu
    }

    /// Mutable access to the session's device, e.g. to inject a
    /// [`FaultPlan`](nextdoor_gpu::FaultPlan) or resize the profile ring
    /// between queries.
    pub fn gpu_mut(&mut self) -> &mut Gpu {
        &mut self.gpu
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::{NextCtx, Steps};
    use crate::engine::nextdoor::run_nextdoor;
    use nextdoor_graph::gen::{rmat, RmatParams};

    struct Walk(usize);
    impl SamplingApp for Walk {
        fn name(&self) -> &'static str {
            "walk"
        }
        fn steps(&self) -> Steps {
            Steps::Fixed(self.0)
        }
        fn sample_size(&self, _: usize) -> usize {
            1
        }
        fn next(&self, ctx: &mut NextCtx<'_>) -> Option<u32> {
            let d = ctx.num_edges();
            if d == 0 {
                return None;
            }
            let i = ctx.rand_range(d);
            Some(ctx.src_edge(i))
        }
    }

    fn workload() -> (Csr, Vec<Vec<u32>>) {
        let g = rmat(8, 2000, RmatParams::SKEWED, 3);
        let init: Vec<Vec<u32>> = (0..24).map(|i| vec![i * 5 % 256]).collect();
        (g, init)
    }

    #[test]
    fn warm_queries_match_cold_runs() {
        let (g, init) = workload();
        let mut session =
            SamplerSession::new(GpuSpec::small(), g.clone(), Box::new(Walk(6))).unwrap();
        for seed in [7u64, 8, 9] {
            let warm = session.query(&init, seed).unwrap();
            let mut gpu = Gpu::new(GpuSpec::small());
            let cold = run_nextdoor(&mut gpu, &g, &Walk(6), &init, seed).unwrap();
            assert_eq!(warm.store.final_samples(), cold.store.final_samples());
        }
        assert_eq!(session.queries_served(), 3);
        assert!(session.sim_ms() > 0.0);
        assert!(session.graph_bytes() > 0);
    }

    #[test]
    fn fused_batch_matches_per_query_runs() {
        let (g, init) = workload();
        let mut session =
            SamplerSession::new(GpuSpec::small(), g.clone(), Box::new(Walk(5))).unwrap();
        let queries: Vec<SessionQuery> = (0..3)
            .map(|i| SessionQuery {
                init: init[i * 8..(i + 1) * 8].to_vec(),
                seed: 100 + i as u64,
            })
            .collect();
        let fused = session.query_fused(&queries).unwrap();
        assert_eq!(fused.per_query.len(), 3);
        assert_eq!(fused.launches, 1, "equal widths fuse into one sequence");
        for (q, sliced) in queries.iter().zip(&fused.per_query) {
            let solo = session.query(&q.init, q.seed).unwrap();
            assert_eq!(sliced.final_samples(), solo.store.final_samples());
        }
        assert!(fused.report.is_clean());
    }

    #[test]
    fn mixed_width_fused_batch_matches_per_query_runs() {
        // Queries of different initial widths share one fused dispatch:
        // the session splits them into width classes (one launch sequence
        // each) and every query still reproduces its standalone samples.
        let (g, _) = workload();
        let mut session =
            SamplerSession::new(GpuSpec::small(), g.clone(), Box::new(Walk(4))).unwrap();
        let queries: Vec<SessionQuery> = [1usize, 2, 1, 3, 2]
            .iter()
            .enumerate()
            .map(|(i, &w)| SessionQuery {
                init: (0..6).map(|s| vec![(s * 7 + i as u32) % 200; w]).collect(),
                seed: 500 + i as u64,
            })
            .collect();
        let fused = session.query_fused(&queries).unwrap();
        assert_eq!(fused.per_query.len(), queries.len());
        assert_eq!(fused.launches, 3, "widths {{1,2,3}} form three classes");
        for (q, sliced) in queries.iter().zip(&fused.per_query) {
            let solo = SamplerSession::new(GpuSpec::small(), g.clone(), Box::new(Walk(4)))
                .unwrap()
                .query(&q.init, q.seed)
                .unwrap();
            assert_eq!(sliced.final_samples(), solo.store.final_samples());
            for s in 0..sliced.num_samples() {
                assert_eq!(sliced.edges_of(s), solo.store.edges_of(s));
            }
        }
        assert!(fused.stats.total_ms > 0.0);
        assert!(fused.report.is_clean());
        assert!(matches!(
            session.query_fused(&[]).err(),
            Some(NextDoorError::EmptyInit)
        ));
    }

    #[test]
    fn scheduled_faults_land_relative_to_current_traffic() {
        let (g, init) = workload();
        let mut session = SamplerSession::new(GpuSpec::small(), g, Box::new(Walk(4))).unwrap();
        session.query(&init, 1).unwrap(); // traffic behind us
        assert!(!session.device_lost());
        // "Lose the device at the next launch", scheduled after the fact.
        session.schedule_faults(nextdoor_gpu::FaultPlan::new().lose_device_at_launch(0));
        assert!(matches!(
            session.query(&init, 2),
            Err(NextDoorError::DeviceLost { .. })
        ));
        assert!(session.device_lost());
    }

    #[test]
    fn session_rejects_oversized_graph() {
        let mut spec = GpuSpec::small();
        spec.device_memory = 64;
        let (g, _) = workload();
        assert!(matches!(
            SamplerSession::new(spec, g, Box::new(Walk(1))).err(),
            Some(NextDoorError::OutOfMemory(_))
        ));
    }
}
