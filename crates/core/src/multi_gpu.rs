//! Multi-GPU sampling (paper §6.4, Figure 10) with device-loss failover.
//!
//! Graph sampling is embarrassingly parallel across samples, so NextDoor's
//! multi-GPU mode simply partitions the samples into contiguous shards —
//! one per device — runs load balancing, scheduling and the sampling
//! kernels on each device independently, and collects the outputs. The
//! replicated graph and the per-device sample partition are exactly what
//! the paper describes; the multi-GPU wall time is the slowest device's
//! accumulated time.
//!
//! Shard seeds are keyed by the *shard* index, not the physical device, so
//! when a device is lost its shard can be re-run on any survivor and
//! produce byte-identical samples. Failover re-runs the whole shard: steps
//! completed on the lost device are unrecoverable (its memory is gone), and
//! the counter-based RNG makes the re-run deterministic.

use crate::api::SamplingApp;
use crate::engine::nextdoor::run_nextdoor;
use crate::engine::{EngineStats, RunResult};
use crate::error::{validate_run, FaultReport, NextDoorError};
use nextdoor_gpu::{FaultPlan, Gpu, GpuSpec, Profile};
use nextdoor_graph::{Csr, VertexId};

/// Result of a multi-GPU sampling run.
pub struct MultiGpuResult {
    /// One result per sample shard, in shard order (concatenating the
    /// stores reconstructs the full sample set). Without failover, shard
    /// `i` ran on device `i`.
    pub per_gpu: Vec<RunResult>,
    /// Wall time of the run: the slowest device's accumulated total time.
    pub makespan_ms: f64,
    /// Aggregated fault report: per-shard faults plus device losses and
    /// failovers handled by this layer.
    pub report: FaultReport,
    /// Raw per-device kernel profiles (index = physical device), for
    /// multi-device trace export via
    /// [`write_chrome_trace`](nextdoor_gpu::write_chrome_trace). A lost
    /// device keeps the records it produced before dying.
    pub device_profiles: Vec<Profile>,
}

impl MultiGpuResult {
    /// Per-shard statistics.
    pub fn stats(&self) -> Vec<&EngineStats> {
        self.per_gpu.iter().map(|r| &r.stats).collect()
    }

    /// Total samples across all shards.
    pub fn total_samples(&self) -> usize {
        self.per_gpu.iter().map(|r| r.store.num_samples()).sum()
    }
}

/// Picks the least-loaded live device: among indices where `alive` is
/// `true`, the one with the smallest accumulated `load_ms`, ties broken
/// towards the lowest index. Returns `None` when nothing is alive.
///
/// This is the failover routing rule shared by the multi-GPU shard layer
/// (re-running a lost device's shard on a survivor) and the serving tier's
/// replica pool (routing a micro-batch around unhealthy replicas) — both
/// need the same deterministic "cheapest survivor" choice.
pub fn least_loaded_alive(alive: &[bool], load_ms: &[f64]) -> Option<usize> {
    (0..alive.len())
        .filter(|&d| alive[d])
        .min_by(|&a, &b| load_ms[a].total_cmp(&load_ms[b]).then(a.cmp(&b)))
}

/// Runs `app` across `num_gpus` simulated devices of identical `spec`,
/// partitioning `init` contiguously.
///
/// Each shard receives its own seed stream (`seed ^ shard`), so the union
/// of outputs is a valid sample set but not bit-identical to a single-GPU
/// run — the paper's scheme has the same property, since each GPU draws
/// from its own generator.
///
/// # Errors
///
/// Returns [`NextDoorError`] if `num_gpus` is zero or exceeds the number of
/// initial samples, on invalid initial samples, or when a shard fails for a
/// reason failover cannot mask (including [`NextDoorError::AllDevicesLost`]
/// once no survivor remains).
pub fn run_nextdoor_multi_gpu(
    spec: &GpuSpec,
    num_gpus: usize,
    graph: &Csr,
    app: &dyn SamplingApp,
    init: &[Vec<VertexId>],
    seed: u64,
) -> Result<MultiGpuResult, NextDoorError> {
    run_nextdoor_multi_gpu_with_faults(spec, num_gpus, graph, app, init, seed, &[])
}

/// [`run_nextdoor_multi_gpu`] with a per-device [`FaultPlan`]
/// (`fault_plans[d]` scripts device `d`; missing entries mean no faults).
///
/// This is the fault-injection entry point: scripted device losses exercise
/// the failover path, and per-device allocation or launch faults flow into
/// the aggregated [`FaultReport`].
///
/// # Errors
///
/// Same conditions as [`run_nextdoor_multi_gpu`].
#[allow(clippy::too_many_arguments)]
pub fn run_nextdoor_multi_gpu_with_faults(
    spec: &GpuSpec,
    num_gpus: usize,
    graph: &Csr,
    app: &dyn SamplingApp,
    init: &[Vec<VertexId>],
    seed: u64,
    fault_plans: &[FaultPlan],
) -> Result<MultiGpuResult, NextDoorError> {
    if num_gpus == 0 {
        return Err(NextDoorError::NoGpus);
    }
    if num_gpus > init.len() {
        return Err(NextDoorError::TooManyGpus {
            gpus: num_gpus,
            samples: init.len(),
        });
    }
    validate_run(graph, app, init)?;
    let mut gpus: Vec<Gpu> = (0..num_gpus)
        .map(|d| {
            let mut gpu = Gpu::new(spec.clone());
            if let Some(plan) = fault_plans.get(d) {
                if !plan.is_empty() {
                    gpu.inject_faults(plan.clone());
                }
            }
            gpu
        })
        .collect();
    let mut alive = vec![true; num_gpus];
    let mut device_ms = vec![0.0f64; num_gpus];
    let mut report = FaultReport::default();
    let per = init.len().div_ceil(num_gpus);
    let mut per_gpu = Vec::with_capacity(num_gpus);
    // First wave: shard `i` runs on device `i`, and real hardware runs the
    // devices concurrently — so do we, one host thread per device (each
    // device's launches may additionally use the intra-launch worker pool).
    // With a single host worker thread the wave runs inline in shard order
    // instead. Either way each device executes exactly its own shard during
    // the wave — failover re-runs happen strictly afterwards — so every
    // device profile, counter and sample is bit-identical at any thread
    // count: shard seeds are device-independent and all accounting is
    // folded in shard order below.
    let concurrent = gpus.first().is_some_and(|g| g.host_threads() > 1);
    let mut first_wave: Vec<Option<Result<RunResult, NextDoorError>>> =
        (0..num_gpus).map(|_| None).collect();
    if concurrent {
        std::thread::scope(|s| {
            for (shard, (gpu, slot)) in gpus.iter_mut().zip(first_wave.iter_mut()).enumerate() {
                let lo = shard * per;
                let hi = ((shard + 1) * per).min(init.len());
                if lo >= hi {
                    continue;
                }
                let shard_seed = seed ^ shard as u64;
                s.spawn(move || {
                    *slot = Some(run_nextdoor(gpu, graph, app, &init[lo..hi], shard_seed));
                });
            }
        });
    } else {
        for (shard, (gpu, slot)) in gpus.iter_mut().zip(first_wave.iter_mut()).enumerate() {
            let lo = shard * per;
            let hi = ((shard + 1) * per).min(init.len());
            if lo >= hi {
                continue;
            }
            let shard_seed = seed ^ shard as u64;
            *slot = Some(run_nextdoor(gpu, graph, app, &init[lo..hi], shard_seed));
        }
    }
    // Reduction wave, strictly in shard order: fold each shard's result
    // into the accounting, running failovers (and, in the sequential path,
    // the shards themselves) inline.
    for shard in 0..num_gpus {
        let lo = shard * per;
        let hi = ((shard + 1) * per).min(init.len());
        if lo >= hi {
            break;
        }
        let shard_seed = seed ^ shard as u64;
        // Prefer the shard's own device; if it is already gone (or dies
        // mid-shard), re-run on the least-loaded survivor. The shard seed
        // is device-independent, so the survivor reproduces exactly the
        // samples the lost device would have produced.
        let pick_survivor = least_loaded_alive;
        let mut dev = if alive[shard] {
            shard
        } else {
            pick_survivor(&alive, &device_ms).ok_or(NextDoorError::AllDevicesLost)?
        };
        // The concurrent first wave already ran this shard on its own
        // device; reuse that result for the first loop iteration.
        let mut pending = if dev == shard {
            first_wave[shard].take()
        } else {
            None
        };
        loop {
            let attempt = match pending.take() {
                Some(r) => r,
                None => run_nextdoor(&mut gpus[dev], graph, app, &init[lo..hi], shard_seed),
            };
            match attempt {
                Ok(res) => {
                    device_ms[dev] += res.stats.total_ms;
                    report.merge(&res.report);
                    per_gpu.push(res);
                    break;
                }
                Err(NextDoorError::DeviceLost { .. }) => {
                    alive[dev] = false;
                    report.devices_lost += 1;
                    let next =
                        pick_survivor(&alive, &device_ms).ok_or(NextDoorError::AllDevicesLost)?;
                    report.failovers += 1;
                    dev = next;
                }
                Err(e) => return Err(e),
            }
        }
    }
    let makespan_ms = device_ms.iter().cloned().fold(0.0f64, f64::max);
    let device_profiles = gpus.iter().map(|g| g.profile().clone()).collect();
    Ok(MultiGpuResult {
        per_gpu,
        makespan_ms,
        report,
        device_profiles,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::{NextCtx, Steps};
    use nextdoor_graph::gen::{rmat, RmatParams};

    struct Walk(usize);
    impl SamplingApp for Walk {
        fn name(&self) -> &'static str {
            "walk"
        }
        fn steps(&self) -> Steps {
            Steps::Fixed(self.0)
        }
        fn sample_size(&self, _: usize) -> usize {
            1
        }
        fn next(&self, ctx: &mut NextCtx<'_>) -> Option<u32> {
            let d = ctx.num_edges();
            if d == 0 {
                return None;
            }
            let i = ctx.rand_range(d);
            Some(ctx.src_edge(i))
        }
    }

    #[test]
    fn partitions_cover_all_samples() {
        let g = rmat(8, 2000, RmatParams::SKEWED, 1);
        let init: Vec<Vec<u32>> = (0..100).map(|i| vec![i as u32 % 256]).collect();
        let spec = GpuSpec::small();
        let res = run_nextdoor_multi_gpu(&spec, 4, &g, &Walk(4), &init, 5).unwrap();
        assert_eq!(res.per_gpu.len(), 4);
        assert_eq!(res.total_samples(), 100);
        assert!(res.makespan_ms > 0.0);
        assert!(res.report.is_clean());
        for r in &res.per_gpu {
            assert!(r.stats.total_ms <= res.makespan_ms + 1e-12);
        }
    }

    #[test]
    fn four_gpus_speed_up_large_workloads() {
        // Figure 10's claim: with enough samples to saturate one device,
        // four devices finish close to 4x faster.
        let g = rmat(10, 20_000, RmatParams::SKEWED, 2);
        let init: Vec<Vec<u32>> = (0..16_384).map(|i| vec![(i % 1024) as u32]).collect();
        // A small device with modest launch overhead keeps the test fast
        // while leaving enough per-step work to amortise fixed costs, as
        // the paper's full-scale workloads do on the V100.
        let mut spec = GpuSpec::small();
        spec.num_sms = 4;
        spec.cost.launch_overhead = 100.0;
        let single = run_nextdoor_multi_gpu(&spec, 1, &g, &Walk(6), &init, 3).unwrap();
        let quad = run_nextdoor_multi_gpu(&spec, 4, &g, &Walk(6), &init, 3).unwrap();
        let speedup = single.makespan_ms / quad.makespan_ms;
        assert!(
            speedup > 2.0,
            "4-GPU speedup {speedup:.2} should be substantial"
        );
    }

    #[test]
    fn too_many_gpus_rejected() {
        let g = rmat(6, 100, RmatParams::SKEWED, 1);
        let res = run_nextdoor_multi_gpu(&GpuSpec::small(), 8, &g, &Walk(1), &[vec![0]], 0);
        assert_eq!(
            res.err().map(|e| e.to_string()).unwrap_or_default(),
            "more GPUs (8) than samples (1) to distribute"
        );
        let res = run_nextdoor_multi_gpu(&GpuSpec::small(), 0, &g, &Walk(1), &[vec![0]], 0);
        assert!(matches!(res, Err(NextDoorError::NoGpus)));
    }

    #[test]
    fn lost_device_fails_over_with_identical_samples() {
        let g = rmat(8, 2000, RmatParams::SKEWED, 1);
        let init: Vec<Vec<u32>> = (0..60).map(|i| vec![i as u32 % 256]).collect();
        let spec = GpuSpec::small();
        let clean = run_nextdoor_multi_gpu(&spec, 3, &g, &Walk(4), &init, 9).unwrap();
        // Device 1 dies early in its shard; the shard must re-run elsewhere.
        let plans = vec![
            FaultPlan::new(),
            FaultPlan::new().lose_device_at_launch(2),
            FaultPlan::new(),
        ];
        let faulty =
            run_nextdoor_multi_gpu_with_faults(&spec, 3, &g, &Walk(4), &init, 9, &plans).unwrap();
        assert_eq!(faulty.report.devices_lost, 1);
        assert_eq!(faulty.report.failovers, 1);
        assert_eq!(faulty.per_gpu.len(), 3);
        for (c, f) in clean.per_gpu.iter().zip(&faulty.per_gpu) {
            assert_eq!(c.store.final_samples(), f.store.final_samples());
        }
    }

    #[test]
    fn losing_every_device_is_a_typed_error() {
        let g = rmat(8, 2000, RmatParams::SKEWED, 1);
        let init: Vec<Vec<u32>> = (0..20).map(|i| vec![i as u32 % 256]).collect();
        let plans = vec![
            FaultPlan::new().lose_device_at_launch(0),
            FaultPlan::new().lose_device_at_launch(0),
        ];
        let res = run_nextdoor_multi_gpu_with_faults(
            &GpuSpec::small(),
            2,
            &g,
            &Walk(3),
            &init,
            1,
            &plans,
        );
        assert!(matches!(res, Err(NextDoorError::AllDevicesLost)));
    }
}
