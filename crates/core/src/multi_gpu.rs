//! Multi-GPU sampling (paper §6.4, Figure 10).
//!
//! Graph sampling is embarrassingly parallel across samples, so NextDoor's
//! multi-GPU mode simply partitions the samples equally among the devices,
//! runs load balancing, scheduling and the sampling kernels on each device
//! independently, and collects the outputs. The replicated graph and the
//! per-device sample partition are exactly what the paper describes; the
//! multi-GPU wall time is the slowest device's time.

use crate::api::SamplingApp;
use crate::engine::nextdoor::run_nextdoor;
use crate::engine::{EngineStats, RunResult};
use nextdoor_gpu::{Gpu, GpuSpec};
use nextdoor_graph::{Csr, VertexId};

/// Result of a multi-GPU sampling run.
pub struct MultiGpuResult {
    /// One result per device, in device order (each holds that device's
    /// sample partition).
    pub per_gpu: Vec<RunResult>,
    /// Wall time of the run: the slowest device's total time.
    pub makespan_ms: f64,
}

impl MultiGpuResult {
    /// Per-device statistics.
    pub fn stats(&self) -> Vec<&EngineStats> {
        self.per_gpu.iter().map(|r| &r.stats).collect()
    }

    /// Total samples across all devices.
    pub fn total_samples(&self) -> usize {
        self.per_gpu.iter().map(|r| r.store.num_samples()).sum()
    }
}

/// Runs `app` across `num_gpus` simulated devices of identical `spec`,
/// partitioning `init` contiguously.
///
/// Each device receives its own seed stream (`seed ^ device`), so the union
/// of outputs is a valid sample set but not bit-identical to a single-GPU
/// run — the paper's scheme has the same property, since each GPU draws
/// from its own generator.
///
/// # Panics
///
/// Panics if `num_gpus` is zero or exceeds the number of initial samples.
pub fn run_nextdoor_multi_gpu(
    spec: &GpuSpec,
    num_gpus: usize,
    graph: &Csr,
    app: &dyn SamplingApp,
    init: &[Vec<VertexId>],
    seed: u64,
) -> MultiGpuResult {
    assert!(num_gpus > 0, "need at least one GPU");
    assert!(
        num_gpus <= init.len(),
        "more GPUs than samples to distribute"
    );
    let per = init.len().div_ceil(num_gpus);
    let mut per_gpu = Vec::with_capacity(num_gpus);
    let mut makespan_ms = 0.0f64;
    for g in 0..num_gpus {
        let lo = g * per;
        let hi = ((g + 1) * per).min(init.len());
        if lo >= hi {
            break;
        }
        let mut gpu = Gpu::new(spec.clone());
        let res = run_nextdoor(&mut gpu, graph, app, &init[lo..hi], seed ^ g as u64);
        makespan_ms = makespan_ms.max(res.stats.total_ms);
        per_gpu.push(res);
    }
    MultiGpuResult {
        per_gpu,
        makespan_ms,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::{NextCtx, Steps};
    use nextdoor_graph::gen::{rmat, RmatParams};

    struct Walk(usize);
    impl SamplingApp for Walk {
        fn name(&self) -> &'static str {
            "walk"
        }
        fn steps(&self) -> Steps {
            Steps::Fixed(self.0)
        }
        fn sample_size(&self, _: usize) -> usize {
            1
        }
        fn next(&self, ctx: &mut NextCtx<'_>) -> Option<u32> {
            let d = ctx.num_edges();
            if d == 0 {
                return None;
            }
            let i = ctx.rand_range(d);
            Some(ctx.src_edge(i))
        }
    }

    #[test]
    fn partitions_cover_all_samples() {
        let g = rmat(8, 2000, RmatParams::SKEWED, 1);
        let init: Vec<Vec<u32>> = (0..100).map(|i| vec![i as u32 % 256]).collect();
        let spec = GpuSpec::small();
        let res = run_nextdoor_multi_gpu(&spec, 4, &g, &Walk(4), &init, 5);
        assert_eq!(res.per_gpu.len(), 4);
        assert_eq!(res.total_samples(), 100);
        assert!(res.makespan_ms > 0.0);
        for r in &res.per_gpu {
            assert!(r.stats.total_ms <= res.makespan_ms + 1e-12);
        }
    }

    #[test]
    fn four_gpus_speed_up_large_workloads() {
        // Figure 10's claim: with enough samples to saturate one device,
        // four devices finish close to 4x faster.
        let g = rmat(10, 20_000, RmatParams::SKEWED, 2);
        let init: Vec<Vec<u32>> = (0..16_384).map(|i| vec![(i % 1024) as u32]).collect();
        // A small device with modest launch overhead keeps the test fast
        // while leaving enough per-step work to amortise fixed costs, as
        // the paper's full-scale workloads do on the V100.
        let mut spec = GpuSpec::small();
        spec.num_sms = 4;
        spec.cost.launch_overhead = 100.0;
        let single = run_nextdoor_multi_gpu(&spec, 1, &g, &Walk(6), &init, 3);
        let quad = run_nextdoor_multi_gpu(&spec, 4, &g, &Walk(6), &init, 3);
        let speedup = single.makespan_ms / quad.makespan_ms;
        assert!(
            speedup > 2.0,
            "4-GPU speedup {speedup:.2} should be substantial"
        );
    }

    #[test]
    #[should_panic(expected = "more GPUs than samples")]
    fn too_many_gpus_rejected() {
        let g = rmat(6, 100, RmatParams::SKEWED, 1);
        let _ = run_nextdoor_multi_gpu(&GpuSpec::small(), 8, &g, &Walk(1), &[vec![0]], 0);
    }
}
