//! Profile-guided autotuning and cross-query hot-transit caching.
//!
//! The paper fixes its load-balancing parameters once for all workloads:
//! transits become sub-warp work below 32 threads, thread-block work below
//! 1024, grid work above (Table 2); the block kernels always launch 1024
//! threads; the sub-warp kernel preloads a fixed multiple of the expected
//! accesses into registers; and the scheduling index always radix-sorts
//! with a key range of `num_vertices`. Those guesses are exactly what the
//! per-kernel profiler measures, so a session that answers repeated queries
//! over one graph can do better: an [`AutoTuner`] consumes the
//! [`RunProfile`]s of a session's first queries and derives a per-workload
//! [`TuningPlan`], which the engine's planner and launch path honor on
//! subsequent queries. A [`HotTransitCache`] additionally keeps the
//! adjacency slices and scheduling indices of frequently-hit transits
//! resident across queries, so the warm path skips the preload traffic and
//! index rebuilds it would otherwise repeat every query.
//!
//! # Determinism
//!
//! Tuning never changes samples. Every sampled value is produced by
//! [`run_next_individual`](crate::engine)'s counter-keyed RNG, addressed by
//! `(seed, sample, step, slot)` — launch geometry, kernel-class assignment,
//! preload depth and cache hits only change *where* and *at what cost* a
//! lane runs, never which draws it makes. The plan itself is derived only
//! at query boundaries from completed profiles, so no mid-query state ever
//! feeds back into the run that produced it. `tests/tuning.rs` proptests
//! bit-identity against arbitrary valid plans and `tests/determinism.rs`
//! golden-pins a tuned session at every host thread count. See `TUNING.md`
//! for the full knob inventory and the signal→knob mapping.
//!
//! ```
//! use nextdoor_core::tuning::{AutoTuner, TunerConfig, TuningPlan};
//! use nextdoor_gpu::GpuSpec;
//!
//! // Before any profile is observed the tuner proposes the paper's
//! // baseline: Table 2 thresholds, 1024-thread blocks, full key range.
//! let tuner = AutoTuner::new(TunerConfig::default());
//! assert!(!tuner.ready());
//! assert_eq!(tuner.plan(&GpuSpec::small()), TuningPlan::default());
//! ```

use crate::engine::profile::{KernelPhase, RunProfile};
use crate::engine::scheduling::{KernelClasses, SchedulingIndex};
use crate::gpu_graph::GpuGraph;
use nextdoor_gpu::{DeviceBuffer, Gpu, GpuSpec, LaunchConfig, WARP_SIZE};
use nextdoor_graph::{Csr, VertexId};
use std::collections::BTreeMap;

/// Every knob the transit-parallel engine exposes, with the paper's fixed
/// choices as defaults. A default plan reproduces the untuned engine
/// *byte-identically* — same launches, same counters, same samples — so
/// enabling tuning with a baseline plan is a no-op.
///
/// All knobs are **cost levers**: they move work between kernel classes,
/// resize launches or change preload depth, but the sampled values are a
/// function of the RNG keying alone (see the [module docs](self)). A plan
/// from an untrusted source should be passed through
/// [`TuningPlan::normalized`], which clamps every field into its valid
/// range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TuningPlan {
    /// A transit needing at most this many threads (`count × m`) is
    /// sub-warp work served by register caching and shuffles. At most
    /// [`WARP_SIZE`]; the paper fixes it at 32 (Table 2).
    pub sub_warp_threshold: usize,
    /// A transit needing at most this many threads is thread-block work;
    /// above it the transit is split across the grid. Must not exceed
    /// [`TuningPlan::block_dim`] — the block kernel covers exactly one
    /// block of lanes per transit. The paper fixes it at 1024.
    pub max_block_threads: usize,
    /// Threads per block of the thread-block and grid kernels. The paper
    /// fixes it at 1024; smaller blocks spread a few huge transits over
    /// more SMs at the price of refilling the shared-memory cache per
    /// block.
    pub block_dim: usize,
    /// The sub-warp kernel preloads `preload_factor × threads` neighbours
    /// (rounded up to a sector, bounded by the register budget) into
    /// registers. The paper's heuristic is 4 — a few probes per slot.
    pub preload_factor: usize,
    /// Bound the scheduling index's radix-sort key range by the **maximum
    /// live transit id** of the step instead of `num_vertices - 1`. A
    /// tighter bound can only shed whole radix passes (the sort is stable
    /// and its output is identical), so this knob is never worse.
    pub tight_key_range: bool,
}

impl Default for TuningPlan {
    fn default() -> Self {
        TuningPlan {
            sub_warp_threshold: WARP_SIZE,
            max_block_threads: 1024,
            block_dim: 1024,
            preload_factor: 4,
            tight_key_range: false,
        }
    }
}

impl TuningPlan {
    /// Clamps every knob into its valid range and restores the structural
    /// invariant `sub_warp_threshold ≤ WARP_SIZE` and
    /// `max_block_threads ≤ block_dim` (a block-class transit must fit in
    /// one launch block, or lanes would silently go unserved).
    ///
    /// ```
    /// use nextdoor_core::tuning::TuningPlan;
    /// let wild = TuningPlan {
    ///     sub_warp_threshold: 1000,
    ///     max_block_threads: 4096,
    ///     block_dim: 100,
    ///     preload_factor: 1 << 20,
    ///     tight_key_range: true,
    /// };
    /// let p = wild.normalized();
    /// assert!(p.sub_warp_threshold <= 32);
    /// assert!(p.max_block_threads <= p.block_dim);
    /// assert_eq!(p.block_dim % 32, 0);
    /// ```
    #[must_use]
    pub fn normalized(mut self) -> Self {
        self.sub_warp_threshold = self.sub_warp_threshold.clamp(1, WARP_SIZE);
        self.block_dim = (self.block_dim.clamp(WARP_SIZE, 1024) / WARP_SIZE) * WARP_SIZE;
        self.max_block_threads = self
            .max_block_threads
            .clamp(self.sub_warp_threshold, self.block_dim);
        self.preload_factor = self.preload_factor.min(64);
        self
    }

    /// Whether this plan reproduces the untuned engine exactly.
    pub fn is_baseline(&self) -> bool {
        *self == TuningPlan::default()
    }
}

/// The profile signals the tuner accumulates across observed queries:
/// simulated milliseconds per kernel phase plus the SM-utilisation and
/// occupancy of the block/grid sampling kernels. Built from in-process
/// [`RunProfile`]s via [`ProfileSummary::observe`] or from an exported
/// `results/profile_*.json` via [`ProfileSummary::from_kernel_report_json`]
/// (the worked example in `TUNING.md`).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ProfileSummary {
    /// Total kernel milliseconds observed.
    pub total_ms: f64,
    /// Milliseconds spent building scheduling indices (sort, scan,
    /// compact, partition).
    pub scheduling_ms: f64,
    /// Milliseconds in the sub-warp sampling kernel.
    pub subwarp_ms: f64,
    /// Milliseconds in the thread-block sampling kernels.
    pub block_ms: f64,
    /// Milliseconds in the grid sampling kernel.
    pub grid_ms: f64,
    /// ms-weighted SM busy fraction (0..=1) of the block/grid kernels.
    pub bg_sm_utilization: f64,
    /// ms-weighted achieved occupancy (0..=1) of the block/grid kernels.
    pub bg_occupancy: f64,
    /// Profiles folded into this summary.
    pub runs: u64,
}

impl ProfileSummary {
    /// Folds one run's per-kernel breakdown into the summary.
    pub fn observe(&mut self, profile: &RunProfile) {
        let mut bg_ms = 0.0f64;
        let mut bg_util = 0.0f64;
        let mut bg_occ = 0.0f64;
        for k in &profile.kernels {
            self.total_ms += k.ms;
            match k.phase {
                KernelPhase::Scheduling => self.scheduling_ms += k.ms,
                KernelPhase::SubWarp => self.subwarp_ms += k.ms,
                KernelPhase::Block => self.block_ms += k.ms,
                KernelPhase::Grid => self.grid_ms += k.ms,
                _ => {}
            }
            if matches!(k.phase, KernelPhase::Block | KernelPhase::Grid) {
                let util = if k.counters.sm_total_cycles > 0.0 {
                    k.counters.sm_busy_cycles / k.counters.sm_total_cycles
                } else {
                    1.0
                };
                bg_ms += k.ms;
                bg_util += util * k.ms;
                bg_occ += k.avg_occupancy * k.ms;
            }
        }
        if bg_ms > 0.0 {
            // Fold the new ms-weighted averages into the running ones.
            let prev_ms = self.prev_bg_ms(bg_ms);
            self.bg_sm_utilization =
                (self.bg_sm_utilization * prev_ms + bg_util) / (prev_ms + bg_ms);
            self.bg_occupancy = (self.bg_occupancy * prev_ms + bg_occ) / (prev_ms + bg_ms);
        }
        self.runs += 1;
    }

    /// Block+grid milliseconds accumulated *before* the current
    /// observation (the running averages' weight).
    fn prev_bg_ms(&self, new_bg_ms: f64) -> f64 {
        (self.block_ms + self.grid_ms - new_bg_ms).max(0.0)
    }

    /// Fraction of observed time spent building scheduling indices.
    pub fn scheduling_share(&self) -> f64 {
        if self.total_ms > 0.0 {
            self.scheduling_ms / self.total_ms
        } else {
            0.0
        }
    }

    /// Fraction of observed time in the block/grid sampling kernels.
    pub fn block_grid_share(&self) -> f64 {
        if self.total_ms > 0.0 {
            (self.block_ms + self.grid_ms) / self.total_ms
        } else {
            0.0
        }
    }

    /// Parses a `results/profile_<label>.json` file written by
    /// [`nextdoor_gpu::write_kernel_report`] into a summary, using the same
    /// kernel-name → phase mapping as the in-process profiler. The parser
    /// accepts exactly the report writer's output shape (an object with a
    /// `"kernels"` array); it is not a general JSON parser.
    ///
    /// # Errors
    ///
    /// Returns a description of the first structural problem found — no
    /// `"kernels"` array, or a kernel entry without `name`/`ms`.
    pub fn from_kernel_report_json(json: &str) -> Result<ProfileSummary, String> {
        let kernels_at = json
            .find("\"kernels\"")
            .ok_or_else(|| "no \"kernels\" array in report".to_string())?;
        let rest = &json[kernels_at..];
        let open = rest
            .find('[')
            .ok_or_else(|| "\"kernels\" is not an array".to_string())?;
        let close = rest
            .find(']')
            .ok_or_else(|| "unterminated \"kernels\" array".to_string())?;
        let body = &rest[open + 1..close];
        let mut s = ProfileSummary::default();
        let mut bg_ms = 0.0f64;
        let mut bg_util = 0.0f64;
        let mut bg_occ = 0.0f64;
        for entry in body.split("{\"name\"").skip(1) {
            let name = json_str_field(&format!("{{\"name\"{entry}"), "name")
                .ok_or_else(|| "kernel entry without a name".to_string())?;
            let ms = json_num_field(entry, "ms")
                .ok_or_else(|| format!("kernel {name:?} has no \"ms\" field"))?;
            s.total_ms += ms;
            let phase = crate::engine::profile::classify_kernel(&name);
            match phase {
                KernelPhase::Scheduling => s.scheduling_ms += ms,
                KernelPhase::SubWarp => s.subwarp_ms += ms,
                KernelPhase::Block => s.block_ms += ms,
                KernelPhase::Grid => s.grid_ms += ms,
                _ => {}
            }
            if matches!(phase, KernelPhase::Block | KernelPhase::Grid) {
                // `multiprocessor_activity` is a percentage in the report.
                let util = json_num_field(entry, "multiprocessor_activity")
                    .map_or(1.0, |p| (p / 100.0).clamp(0.0, 1.0));
                let occ = json_num_field(entry, "avg_occupancy").unwrap_or(1.0);
                bg_ms += ms;
                bg_util += util * ms;
                bg_occ += occ * ms;
            }
        }
        if bg_ms > 0.0 {
            s.bg_sm_utilization = bg_util / bg_ms;
            s.bg_occupancy = bg_occ / bg_ms;
        }
        s.runs = 1;
        Ok(s)
    }
}

/// Extracts `"field":"value"` from a JSON fragment.
fn json_str_field(fragment: &str, field: &str) -> Option<String> {
    let key = format!("\"{field}\":\"");
    let at = fragment.find(&key)? + key.len();
    let end = fragment[at..].find('"')?;
    Some(fragment[at..at + end].to_string())
}

/// Extracts `"field":<number>` from a JSON fragment.
fn json_num_field(fragment: &str, field: &str) -> Option<f64> {
    let key = format!("\"{field}\":");
    let at = fragment.find(&key)? + key.len();
    let tail = &fragment[at..];
    let end = tail
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E'))
        .unwrap_or(tail.len());
    tail[..end].parse().ok()
}

/// When and how aggressively the [`AutoTuner`] acts on its observations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TunerConfig {
    /// Queries to observe before the derived plan leaves the baseline
    /// ([`AutoTuner::ready`]).
    pub warmup_queries: u64,
    /// Minimum scheduling share of total time before the tight key-range
    /// knob engages (it is never worse, but below this share it cannot
    /// matter either).
    pub min_scheduling_share: f64,
    /// SM busy fraction of the block/grid kernels below which the tuner
    /// considers them imbalanced (a few huge transits hogging few SMs).
    pub low_sm_utilization: f64,
    /// Block/grid share of total time below which the tuner leaves the
    /// block geometry alone regardless of utilisation.
    pub min_block_grid_share: f64,
}

impl Default for TunerConfig {
    fn default() -> Self {
        TunerConfig {
            warmup_queries: 2,
            min_scheduling_share: 0.02,
            low_sm_utilization: 0.5,
            min_block_grid_share: 0.25,
        }
    }
}

/// Derives a [`TuningPlan`] from observed [`RunProfile`]s.
///
/// The tuner is deliberately conservative: it only moves a knob off the
/// baseline when the profile shows the knob's cost is material *and* the
/// move is predicted (or guaranteed) not to regress — the `tune_bench`
/// gate holds autotuned throughput to ≥ default across the whole
/// benchmark suite. The signal→knob mapping is documented in `TUNING.md`.
#[derive(Debug, Clone, Default)]
pub struct AutoTuner {
    cfg: TunerConfig,
    summary: ProfileSummary,
    observed: u64,
}

impl AutoTuner {
    /// A tuner with the given thresholds and nothing observed yet.
    pub fn new(cfg: TunerConfig) -> Self {
        AutoTuner {
            cfg,
            summary: ProfileSummary::default(),
            observed: 0,
        }
    }

    /// Folds one completed query's profile into the evidence. Call only at
    /// query boundaries — [`AutoTuner::plan`] never sees a partial run.
    pub fn observe(&mut self, profile: &RunProfile) {
        self.summary.observe(profile);
        self.observed += 1;
    }

    /// Folds an externally-parsed summary (e.g. from
    /// [`ProfileSummary::from_kernel_report_json`]) into the evidence.
    pub fn observe_summary(&mut self, summary: &ProfileSummary) {
        let mut s = *summary;
        // Merge by simple accumulation; the averages re-weight by ms.
        let bg_ms = s.block_ms + s.grid_ms;
        let prev_bg = self.summary.block_ms + self.summary.grid_ms;
        if prev_bg + bg_ms > 0.0 {
            s.bg_sm_utilization = (self.summary.bg_sm_utilization * prev_bg
                + s.bg_sm_utilization * bg_ms)
                / (prev_bg + bg_ms);
            s.bg_occupancy =
                (self.summary.bg_occupancy * prev_bg + s.bg_occupancy * bg_ms) / (prev_bg + bg_ms);
        }
        self.summary = ProfileSummary {
            total_ms: self.summary.total_ms + s.total_ms,
            scheduling_ms: self.summary.scheduling_ms + s.scheduling_ms,
            subwarp_ms: self.summary.subwarp_ms + s.subwarp_ms,
            block_ms: self.summary.block_ms + s.block_ms,
            grid_ms: self.summary.grid_ms + s.grid_ms,
            bg_sm_utilization: s.bg_sm_utilization,
            bg_occupancy: s.bg_occupancy,
            runs: self.summary.runs + s.runs,
        };
        self.observed += s.runs;
    }

    /// Queries observed so far.
    pub fn observed(&self) -> u64 {
        self.observed
    }

    /// Whether enough queries were observed for the plan to leave the
    /// baseline.
    pub fn ready(&self) -> bool {
        self.observed >= self.cfg.warmup_queries
    }

    /// The accumulated evidence.
    pub fn summary(&self) -> &ProfileSummary {
        &self.summary
    }

    /// Derives the plan the evidence supports. Before
    /// [`AutoTuner::ready`], this is the baseline plan.
    pub fn plan(&self, spec: &GpuSpec) -> TuningPlan {
        let mut plan = TuningPlan::default();
        if !self.ready() {
            return plan;
        }
        let s = &self.summary;
        // Tight key range: sheds whole radix passes with identical output,
        // so engage whenever scheduling time is visible at all.
        if s.scheduling_share() >= self.cfg.min_scheduling_share {
            plan.tight_key_range = true;
        }
        // Block geometry: when the block/grid kernels are a material share
        // of the run but leave most SMs idle, a few huge transits are each
        // pinned to one block — halving the block splits them across twice
        // as many SMs. Only do it when the spec says the smaller block
        // does not lose occupancy.
        if s.block_grid_share() >= self.cfg.min_block_grid_share
            && s.bg_sm_utilization < self.cfg.low_sm_utilization
            && spec.occupancy(512, 0) >= spec.occupancy(1024, 0)
        {
            plan.block_dim = 512;
            plan.max_block_threads = 512;
        }
        plan.normalized()
    }
}

/// Sizing and promotion policy of the [`HotTransitCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Device words (`u32` column entries) the adjacency arena may hold.
    pub max_words: usize,
    /// Minimum observed touches before a transit is promoted.
    pub min_hits: u64,
    /// Maximum resident transits, regardless of their sizes.
    pub max_entries: usize,
    /// Total live pairs the scheduling-index memo may retain across all
    /// of its entries; once the budget is spent, further steps are
    /// rebuilt every query (first-stored entries are kept — in serving
    /// traffic those are the recurring ones).
    pub memo_max_pairs: usize,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            max_words: 1 << 16,
            min_hits: 3,
            max_entries: 512,
            memo_max_pairs: 1 << 16,
        }
    }
}

/// Deterministic counters of the cache's behaviour. `hits`/`misses` count
/// transit segments served per step; everything else counts maintenance
/// events at query boundaries.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Transit segments whose adjacency was arena-resident when a sampling
    /// kernel ran (the kernel skipped its preload loads).
    pub hits: u64,
    /// Transit segments served without residency.
    pub misses: u64,
    /// Transits promoted into the arena.
    pub installs: u64,
    /// Transits demoted out of the arena.
    pub evictions: u64,
    /// Maintenance passes that found no device memory for the arena and
    /// fell back to the uncached path (samples are unaffected).
    pub pressure_fallbacks: u64,
    /// Steps whose scheduling index was reused from the memo (the sort /
    /// scan / compact / partition launches were skipped entirely).
    pub sched_reuses: u64,
    /// Steps whose scheduling index was built on the device.
    pub sched_builds: u64,
}

impl CacheStats {
    /// `hits / (hits + misses)`, or 0 before any segment was served.
    pub fn hit_rate(&self) -> f64 {
        let n = self.hits + self.misses;
        if n == 0 {
            0.0
        } else {
            self.hits as f64 / n as f64
        }
    }
}

/// One memoised scheduling index: valid only for an identical live-pair
/// set under identical class thresholds. Keyed by content hash, so a
/// request stream that replays earlier queries (every epoch of a training
/// loop resubmits the same mini-batches) reuses its indices no matter how
/// the repeats interleave.
#[derive(Debug, Clone)]
struct SchedMemo {
    pairs: Vec<(VertexId, u32)>,
    m: usize,
    sub_warp: usize,
    max_block: usize,
    index: SchedulingIndex,
    classes: KernelClasses,
}

/// FNV-1a over the memo identity; collisions are disambiguated by the
/// exact-match check in [`HotTransitCache::lookup_sched`].
fn memo_key(pairs: &[(VertexId, u32)], m: usize, sub_warp: usize, max_block: usize) -> u64 {
    const PRIME: u64 = 0x100000001b3;
    let mut h: u64 = 0xcbf29ce484222325;
    for v in [
        m as u64,
        sub_warp as u64,
        max_block as u64,
        pairs.len() as u64,
    ] {
        h = (h ^ v).wrapping_mul(PRIME);
    }
    for &(t, s) in pairs {
        h = (h ^ ((u64::from(t) << 32) | u64::from(s))).wrapping_mul(PRIME);
    }
    h
}

/// Cross-query residency for frequently-hit transits.
///
/// The engine's §6 caches (registers, shared memory) live and die with one
/// kernel launch; a session answering repeated traffic re-loads the same
/// hub adjacencies every query. This cache keeps the hottest transits'
/// adjacency slices in a device arena across queries — kernels that find
/// their transit resident skip the global preload loads — and memoises
/// per-step scheduling indices so a query whose live pairs repeat an
/// earlier query's (every epoch of a training loop replays its root set)
/// skips the sort/scan/compact/partition launches outright.
///
/// Promotion and eviction happen **only at query boundaries**, from
/// deterministically-accumulated frequency counts, so cache state is a
/// pure function of the query history — bit-identical at any host thread
/// count. When the arena allocation fails under memory pressure the cache
/// falls back to the uncached path and counts a
/// [`pressure_fallback`](CacheStats::pressure_fallbacks); samples are
/// never affected.
#[derive(Debug, Default)]
pub struct HotTransitCache {
    cfg: CacheConfig,
    resident: Vec<VertexId>,
    resident_words: usize,
    arena: Option<DeviceBuffer<u32>>,
    freq: BTreeMap<VertexId, u64>,
    memo: BTreeMap<u64, SchedMemo>,
    memo_pairs: usize,
    stats: CacheStats,
}

impl HotTransitCache {
    /// An empty cache with the given policy.
    pub fn new(cfg: CacheConfig) -> Self {
        HotTransitCache {
            cfg,
            ..HotTransitCache::default()
        }
    }

    /// The cache's behaviour counters so far.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// The policy this cache runs under.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Transits currently arena-resident, ascending.
    pub fn resident(&self) -> &[VertexId] {
        &self.resident
    }

    /// Device words the arena currently holds.
    pub fn resident_words(&self) -> usize {
        self.resident_words
    }

    /// Records one step's transit→samples map: bumps each transit's
    /// frequency by its pair count and counts residency hits/misses.
    pub(crate) fn note_index(&mut self, index: &SchedulingIndex) {
        for seg in &index.segments {
            *self.freq.entry(seg.transit).or_insert(0) += seg.count as u64;
            if self.resident.binary_search(&seg.transit).is_ok() {
                self.stats.hits += 1;
            } else {
                self.stats.misses += 1;
            }
        }
    }

    /// Returns the memoised scheduling index for this live-pair set and
    /// these class thresholds, if one is retained.
    pub(crate) fn lookup_sched(
        &mut self,
        pairs: &[(VertexId, u32)],
        m: usize,
        sub_warp: usize,
        max_block: usize,
    ) -> Option<(SchedulingIndex, KernelClasses)> {
        let e = self.memo.get(&memo_key(pairs, m, sub_warp, max_block))?;
        if e.m == m && e.sub_warp == sub_warp && e.max_block == max_block && e.pairs == pairs {
            self.stats.sched_reuses += 1;
            Some((e.index.clone(), e.classes.clone()))
        } else {
            None
        }
    }

    /// Memoises a freshly-built scheduling index, if the pair budget
    /// allows.
    pub(crate) fn store_sched(
        &mut self,
        pairs: &[(VertexId, u32)],
        m: usize,
        sub_warp: usize,
        max_block: usize,
        index: &SchedulingIndex,
        classes: &KernelClasses,
    ) {
        self.stats.sched_builds += 1;
        let key = memo_key(pairs, m, sub_warp, max_block);
        let replaced = self.memo.get(&key).map_or(0, |e| e.pairs.len());
        if self.memo_pairs - replaced + pairs.len() > self.cfg.memo_max_pairs {
            return;
        }
        self.memo_pairs = self.memo_pairs - replaced + pairs.len();
        self.memo.insert(
            key,
            SchedMemo {
                pairs: pairs.to_vec(),
                m,
                sub_warp,
                max_block,
                index: index.clone(),
                classes: classes.clone(),
            },
        );
    }

    /// Query-boundary maintenance: promotes the hottest transits into the
    /// arena, evicts the rest, charges the install transfer as a kernel,
    /// and ages the frequency counts. Runs on the session thread with no
    /// query in flight, so the next query sees a fixed cache state.
    pub(crate) fn maintain(&mut self, gpu: &mut Gpu, graph: &Csr, gg: &GpuGraph) {
        // Hottest first; ties broken by vertex id so the order is total.
        let mut cands: Vec<(u64, VertexId)> = self
            .freq
            .iter()
            .filter(|&(&t, &c)| c >= self.cfg.min_hits && graph.degree(t) > 0)
            .map(|(&t, &c)| (c, t))
            .collect();
        cands.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        let mut new_set: Vec<VertexId> = Vec::new();
        let mut words = 0usize;
        for (_, t) in cands {
            let deg = graph.degree(t);
            if new_set.len() >= self.cfg.max_entries {
                break;
            }
            if words + deg > self.cfg.max_words {
                continue;
            }
            words += deg;
            new_set.push(t);
        }
        new_set.sort_unstable();
        if new_set != self.resident {
            self.reinstall(gpu, graph, gg, new_set, words);
        }
        // Age the frequencies so the cache tracks shifting traffic.
        self.freq.retain(|_, c| {
            *c /= 2;
            *c > 0
        });
    }

    /// Rebuilds the arena around `new_set`, charging one coalesced install
    /// pass for the transits that were not already resident.
    fn reinstall(
        &mut self,
        gpu: &mut Gpu,
        graph: &Csr,
        gg: &GpuGraph,
        new_set: Vec<VertexId>,
        words: usize,
    ) {
        let added: Vec<VertexId> = new_set
            .iter()
            .copied()
            .filter(|t| self.resident.binary_search(t).is_err())
            .collect();
        let evicted = self
            .resident
            .iter()
            .filter(|t| new_set.binary_search(t).is_err())
            .count() as u64;
        // Free the old arena before sizing the new one.
        self.arena = None;
        let arena = match gpu.try_alloc::<u32>(words.max(1)) {
            Ok(buf) => buf,
            Err(_) => {
                // Injected allocation faults must not leak into the next
                // query's step loop (it would discard a clean step).
                let _ = gpu.take_faults();
                self.stats.pressure_fallbacks += 1;
                self.resident.clear();
                self.resident_words = 0;
                return;
            }
        };
        // Arena offsets of every resident transit, in ascending-id order.
        let mut offsets = BTreeMap::new();
        let mut off = 0usize;
        for &t in &new_set {
            offsets.insert(t, off);
            off += graph.degree(t);
        }
        // One coalesced pass copies the *new* transits' slices in.
        let mut src = Vec::new();
        let mut dst = Vec::new();
        for &t in &added {
            let (start, _) = graph.adjacency_range(t);
            let base = offsets[&t];
            for i in 0..graph.degree(t) {
                src.push(start + i);
                dst.push(base + i);
            }
        }
        if !src.is_empty() {
            let n = src.len();
            gpu.launch("cache_install", LaunchConfig::grid1d(n, 256), |blk| {
                blk.for_each_warp(|w| {
                    let gid = w.global_thread_ids();
                    let m = w.mask_where(|l| gid[l] < n);
                    if m == 0 {
                        return;
                    }
                    let sidx = gid.map(|g| src[g.min(n - 1)]);
                    let v = w.ld_global(&gg.cols, &sidx, m);
                    let didx = gid.map(|g| dst[g.min(n - 1)]);
                    w.st_global(&arena, &didx, v, m);
                });
            });
        }
        self.stats.installs += added.len() as u64;
        self.stats.evictions += evicted;
        self.resident = new_set;
        self.resident_words = words;
        self.arena = Some(arena);
    }
}

/// The slice of tuning state a kernel launch needs: the geometry knobs and
/// the resident-transit set. A borrow into the session's plan and cache,
/// rebuilt per step.
#[derive(Debug, Clone, Copy)]
pub(crate) struct KernelTuning<'a> {
    pub preload_factor: usize,
    pub block_dim: usize,
    pub resident: &'a [VertexId],
}

impl KernelTuning<'static> {
    /// The untuned engine's geometry: what every non-session entry point
    /// uses.
    pub(crate) fn baseline() -> Self {
        KernelTuning {
            preload_factor: 4,
            block_dim: 1024,
            resident: &[],
        }
    }
}

impl<'a> KernelTuning<'a> {
    /// Builds the per-launch view of a plan and optional cache.
    pub(crate) fn from_plan(plan: &TuningPlan, resident: &'a [VertexId]) -> Self {
        KernelTuning {
            preload_factor: plan.preload_factor,
            block_dim: plan.block_dim,
            resident,
        }
    }

    /// Whether `transit`'s adjacency is arena-resident (preloads can be
    /// skipped).
    #[inline]
    pub(crate) fn is_resident(&self, transit: VertexId) -> bool {
        self.resident.binary_search(&transit).is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_baseline() {
        let p = TuningPlan::default();
        assert!(p.is_baseline());
        assert_eq!(p, p.normalized());
    }

    #[test]
    fn normalized_restores_invariants() {
        let p = TuningPlan {
            sub_warp_threshold: 0,
            max_block_threads: 9999,
            block_dim: 33,
            preload_factor: usize::MAX,
            tight_key_range: false,
        }
        .normalized();
        assert_eq!(p.sub_warp_threshold, 1);
        assert_eq!(p.block_dim, 32);
        assert_eq!(p.max_block_threads, 32);
        assert_eq!(p.preload_factor, 64);
    }

    #[test]
    fn tuner_stays_baseline_until_warm() {
        let spec = GpuSpec::small();
        let mut t = AutoTuner::new(TunerConfig::default());
        assert!(t.plan(&spec).is_baseline());
        let s = ProfileSummary {
            total_ms: 10.0,
            scheduling_ms: 5.0,
            runs: 1,
            ..ProfileSummary::default()
        };
        t.observe_summary(&s);
        assert!(!t.ready());
        assert!(t.plan(&spec).is_baseline());
        t.observe_summary(&s);
        assert!(t.ready());
        let p = t.plan(&spec);
        assert!(p.tight_key_range, "half the time is scheduling");
        assert_eq!(p.block_dim, 1024, "no block/grid evidence");
    }

    #[test]
    fn tuner_halves_blocks_on_low_sm_utilization() {
        let spec = GpuSpec::small();
        let mut t = AutoTuner::new(TunerConfig {
            warmup_queries: 1,
            ..TunerConfig::default()
        });
        let s = ProfileSummary {
            total_ms: 10.0,
            grid_ms: 8.0,
            bg_sm_utilization: 0.2,
            bg_occupancy: 0.9,
            runs: 1,
            ..ProfileSummary::default()
        };
        t.observe_summary(&s);
        let p = t.plan(&spec);
        assert_eq!(p.block_dim, 512);
        assert_eq!(p.max_block_threads, 512);
    }

    #[test]
    fn kernel_report_parser_reads_the_writer_shape() {
        let json = r#"{
  "device": {"num_sms": 8, "clock_ghz": 1.38},
  "kernels": [
    {"name":"radix_histogram","launches":6,"cycles":1000.000,"ms":0.100000,"avg_occupancy":1.0000,"max_shared_mem_bytes":0,"counters":{"gld_requests":1,"multiprocessor_activity":80.00}},
    {"name":"nextdoor_grid","launches":2,"cycles":9000.000,"ms":0.900000,"avg_occupancy":0.5000,"max_shared_mem_bytes":4096,"counters":{"gld_requests":9,"multiprocessor_activity":25.00}}
  ],
  "transfers": {"count":0,"htod_bytes":0,"dtoh_bytes":0,"cycles":0.000}
}"#;
        let s = ProfileSummary::from_kernel_report_json(json).expect("parses");
        assert!((s.total_ms - 1.0).abs() < 1e-9);
        assert!((s.scheduling_ms - 0.1).abs() < 1e-9);
        assert!((s.grid_ms - 0.9).abs() < 1e-9);
        assert!((s.bg_sm_utilization - 0.25).abs() < 1e-9);
        assert!((s.bg_occupancy - 0.5).abs() < 1e-9);
        assert!(ProfileSummary::from_kernel_report_json("{}").is_err());
    }

    #[test]
    fn maintain_promotes_and_evicts_deterministically() {
        use nextdoor_graph::gen::{rmat, RmatParams};
        let g = rmat(6, 400, RmatParams::SKEWED, 3);
        let mut gpu = Gpu::new(GpuSpec::small());
        let gg = GpuGraph::upload(&mut gpu, &g).expect("graph fits");
        let mut cache = HotTransitCache::new(CacheConfig {
            min_hits: 1,
            max_entries: 2,
            ..CacheConfig::default()
        });
        let connected: Vec<VertexId> = (0..g.num_vertices() as VertexId)
            .filter(|&v| g.degree(v) > 0)
            .take(3)
            .collect();
        assert_eq!(connected.len(), 3, "rmat graph has connected vertices");
        cache.freq.insert(connected[0], 5);
        cache.freq.insert(connected[1], 3);
        cache.freq.insert(connected[2], 1);
        cache.maintain(&mut gpu, &g, &gg);
        let mut want = [connected[0], connected[1]];
        want.sort_unstable();
        assert_eq!(cache.resident(), &want[..], "two hottest, ascending");
        assert_eq!(cache.stats().installs, 2);
        // A new hub overtakes: maintenance must evict to make room.
        cache.freq.insert(connected[2], 50);
        cache.freq.insert(connected[0], 40);
        cache.maintain(&mut gpu, &g, &gg);
        let mut want = [connected[2], connected[0]];
        want.sort_unstable();
        assert_eq!(cache.resident(), &want[..]);
        assert!(cache.stats().evictions >= 1);
    }

    #[test]
    fn maintenance_falls_back_under_memory_pressure() {
        use nextdoor_graph::gen::{rmat, RmatParams};
        let g = rmat(6, 400, RmatParams::SKEWED, 3);
        let mut gpu = Gpu::new(GpuSpec::small());
        let gg = GpuGraph::upload(&mut gpu, &g).expect("graph fits");
        let mut cache = HotTransitCache::new(CacheConfig {
            min_hits: 1,
            ..CacheConfig::default()
        });
        for v in 0..g.num_vertices() as VertexId {
            cache.freq.insert(v, 10);
        }
        // Exhaust device memory in shrinking chunks so the arena's own
        // allocation cannot succeed.
        let mut hold = Vec::new();
        for sz in [1usize << 18, 1 << 12, 1 << 6, 1] {
            while let Ok(b) = gpu.try_alloc::<u32>(sz) {
                hold.push(b);
            }
        }
        let _ = gpu.take_faults();
        cache.maintain(&mut gpu, &g, &gg);
        assert!(
            cache.stats().pressure_fallbacks >= 1,
            "fallback is typed and counted"
        );
        assert!(
            cache.resident().is_empty(),
            "no partial residency after a failed install"
        );
        assert!(
            gpu.take_faults().is_empty(),
            "the failed install does not leak fault records into the next query"
        );
        // With memory back, the next maintenance pass succeeds.
        drop(hold);
        cache.maintain(&mut gpu, &g, &gg);
        assert!(!cache.resident().is_empty());
    }

    #[test]
    fn sched_memo_is_content_keyed_and_budgeted() {
        let mut cache = HotTransitCache::new(CacheConfig {
            memo_max_pairs: 4,
            ..CacheConfig::default()
        });
        let index = SchedulingIndex::default();
        let classes = KernelClasses::default();
        let a = vec![(1u32, 0u32), (2, 1)];
        let b = vec![(3u32, 0u32), (4, 1)];
        cache.store_sched(&a, 2, 32, 1024, &index, &classes);
        cache.store_sched(&b, 2, 32, 1024, &index, &classes);
        assert!(cache.lookup_sched(&a, 2, 32, 1024).is_some());
        assert!(cache.lookup_sched(&b, 2, 32, 1024).is_some());
        assert!(
            cache.lookup_sched(&a, 2, 16, 1024).is_none(),
            "thresholds are part of the identity"
        );
        // Budget spent: a third distinct entry is not retained.
        let c = vec![(5u32, 0u32)];
        cache.store_sched(&c, 1, 32, 1024, &index, &classes);
        assert!(cache.lookup_sched(&c, 1, 32, 1024).is_none());
        assert_eq!(cache.stats().sched_builds, 3);
        assert_eq!(cache.stats().sched_reuses, 2);
    }

    #[test]
    fn cache_stats_hit_rate() {
        let s = CacheStats {
            hits: 3,
            misses: 1,
            ..CacheStats::default()
        };
        assert!((s.hit_rate() - 0.75).abs() < 1e-12);
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
    }
}
