//! Typed errors and per-run fault accounting for the sampling runtime.
//!
//! Every public `run_*` entry point returns `Result<_, NextDoorError>`:
//! user-input problems (empty or ragged initial samples, out-of-range roots,
//! zero-step applications) are caught by [`validate_run`] before any device
//! work, and runtime conditions (device-memory exhaustion, kernel faults,
//! device loss) surface as typed errors instead of panics. Panics remain
//! only for internal invariants.
//!
//! A [`FaultReport`] travels with every successful run and records what the
//! runtime survived: injected or real faults observed, step retries,
//! degradation to the out-of-core engine, and multi-GPU failovers.

use crate::api::{SamplingApp, Steps};
use nextdoor_gpu::{FaultEvent, FaultKind, OutOfMemory};
use nextdoor_graph::{Csr, VertexId};

/// Why a sampling run could not produce results.
#[derive(Debug, Clone, PartialEq)]
pub enum NextDoorError {
    /// The initial sample set was empty.
    EmptyInit,
    /// The graph has no vertices to sample from.
    EmptyGraph,
    /// Initial samples must all hold the same number of vertices.
    UnequalInitSizes {
        /// Size of sample 0.
        expected: usize,
        /// Size of the offending sample.
        got: usize,
        /// Index of the offending sample.
        sample: usize,
    },
    /// An initial root vertex does not exist in the graph.
    RootOutOfRange {
        /// Index of the offending sample.
        sample: usize,
        /// The offending vertex.
        vertex: VertexId,
        /// Vertices in the graph.
        num_vertices: usize,
    },
    /// The application declares `Steps::Fixed(0)`, so no step could run.
    ZeroSteps,
    /// A multi-GPU run was requested with zero devices.
    NoGpus,
    /// More devices than samples: some devices would receive no work.
    TooManyGpus {
        /// Devices requested.
        gpus: usize,
        /// Initial samples available.
        samples: usize,
    },
    /// Device memory was exhausted and no degradation path applied.
    OutOfMemory(OutOfMemory),
    /// A single vertex's adjacency exceeds the out-of-core partition budget.
    PartitionBudgetTooSmall {
        /// The offending vertex.
        vertex: VertexId,
        /// Bytes its CSR slice needs.
        bytes: usize,
        /// The configured budget.
        budget: usize,
    },
    /// A step kept faulting after exhausting its retry budget.
    KernelFault {
        /// The step that could not complete.
        step: usize,
        /// Retries attempted before giving up.
        retries: usize,
    },
    /// The device was lost mid-run.
    DeviceLost {
        /// Device index (0 for single-GPU runs).
        device: usize,
    },
    /// The sharded engine cannot run this configuration and no degradation
    /// path applies (collective apps, per-step uniqueness, degenerate
    /// partitions).
    ShardUnsupported {
        /// Human-readable reason the configuration cannot be sharded.
        reason: String,
    },
    /// Every device of a multi-GPU run was lost before the work finished.
    AllDevicesLost,
}

impl std::fmt::Display for NextDoorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NextDoorError::EmptyInit => write!(f, "need at least one initial sample"),
            NextDoorError::EmptyGraph => write!(f, "the graph has no vertices"),
            NextDoorError::UnequalInitSizes {
                expected,
                got,
                sample,
            } => write!(
                f,
                "initial samples must have equal sizes: sample {sample} has {got} vertices, \
                 expected {expected}"
            ),
            NextDoorError::RootOutOfRange {
                sample,
                vertex,
                num_vertices,
            } => write!(
                f,
                "initial sample {sample} names vertex {vertex}, but the graph has only \
                 {num_vertices} vertices"
            ),
            NextDoorError::ZeroSteps => write!(f, "application declares zero steps"),
            NextDoorError::NoGpus => write!(f, "need at least one GPU"),
            NextDoorError::TooManyGpus { gpus, samples } => {
                write!(
                    f,
                    "more GPUs ({gpus}) than samples ({samples}) to distribute"
                )
            }
            NextDoorError::OutOfMemory(oom) => write!(f, "{oom}"),
            NextDoorError::PartitionBudgetTooSmall {
                vertex,
                bytes,
                budget,
            } => write!(
                f,
                "vertex {vertex} alone needs {bytes} bytes, exceeding the {budget}-byte \
                 partition budget"
            ),
            NextDoorError::KernelFault { step, retries } => {
                write!(f, "step {step} still faulting after {retries} retries")
            }
            NextDoorError::DeviceLost { device } => write!(f, "device {device} was lost"),
            NextDoorError::ShardUnsupported { reason } => {
                write!(f, "sharded execution unsupported: {reason}")
            }
            NextDoorError::AllDevicesLost => write!(f, "all devices were lost"),
        }
    }
}

impl std::error::Error for NextDoorError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NextDoorError::OutOfMemory(oom) => Some(oom),
            _ => None,
        }
    }
}

impl From<OutOfMemory> for NextDoorError {
    fn from(oom: OutOfMemory) -> Self {
        NextDoorError::OutOfMemory(oom)
    }
}

/// What a run survived: every fault observed plus the recovery actions the
/// runtime took. All zeros/false for an undisturbed run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultReport {
    /// Allocation faults observed (injected OOM events, including
    /// correctable ones on infallible paths).
    pub alloc_faults: usize,
    /// Transient memory faults observed during kernel launches.
    pub transient_faults: usize,
    /// Launches killed by the kernel watchdog.
    pub watchdog_faults: usize,
    /// Steps that were discarded and re-executed.
    pub step_retries: usize,
    /// Whether the run degraded from the in-core engine to the out-of-core
    /// engine after an upload OOM.
    pub degraded_to_out_of_core: bool,
    /// Devices lost during the run.
    pub devices_lost: usize,
    /// Sample shards re-run on a surviving device after a loss.
    pub failovers: usize,
}

impl FaultReport {
    /// Whether nothing at all went wrong.
    pub fn is_clean(&self) -> bool {
        *self == FaultReport::default()
    }

    /// Folds another report into this one (multi-GPU aggregation).
    pub fn merge(&mut self, other: &FaultReport) {
        self.alloc_faults += other.alloc_faults;
        self.transient_faults += other.transient_faults;
        self.watchdog_faults += other.watchdog_faults;
        self.step_retries += other.step_retries;
        self.degraded_to_out_of_core |= other.degraded_to_out_of_core;
        self.devices_lost += other.devices_lost;
        self.failovers += other.failovers;
    }

    /// Counts drained device fault events into the report.
    pub(crate) fn absorb(&mut self, events: &[FaultEvent]) {
        for e in events {
            match e.kind {
                FaultKind::AllocOom => self.alloc_faults += 1,
                FaultKind::TransientMemory => self.transient_faults += 1,
                FaultKind::WatchdogTimeout => self.watchdog_faults += 1,
                FaultKind::DeviceLost => self.devices_lost += 1,
            }
        }
    }
}

impl std::fmt::Display for FaultReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_clean() {
            return write!(f, "no faults");
        }
        write!(
            f,
            "{} alloc / {} transient / {} watchdog faults, {} retries, degraded: {}, \
             {} devices lost, {} failovers",
            self.alloc_faults,
            self.transient_faults,
            self.watchdog_faults,
            self.step_retries,
            self.degraded_to_out_of_core,
            self.devices_lost,
            self.failovers
        )
    }
}

/// Validates user inputs shared by every engine. Runs before any device
/// work so that no `run_*` entry point can panic on user input.
pub fn validate_run(
    graph: &Csr,
    app: &dyn SamplingApp,
    init: &[Vec<VertexId>],
) -> Result<(), NextDoorError> {
    if init.is_empty() {
        return Err(NextDoorError::EmptyInit);
    }
    let expected = init[0].len();
    let n = graph.num_vertices();
    for (sample, s) in init.iter().enumerate() {
        if s.len() != expected {
            return Err(NextDoorError::UnequalInitSizes {
                expected,
                got: s.len(),
                sample,
            });
        }
        for &v in s {
            if v as usize >= n {
                return Err(NextDoorError::RootOutOfRange {
                    sample,
                    vertex: v,
                    num_vertices: n,
                });
            }
        }
    }
    if app.steps() == Steps::Fixed(0) {
        return Err(NextDoorError::ZeroSteps);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::{NextCtx, NULL_VERTEX};
    use nextdoor_graph::gen::ring_lattice;

    struct App(Steps);
    impl SamplingApp for App {
        fn name(&self) -> &'static str {
            "t"
        }
        fn steps(&self) -> Steps {
            self.0
        }
        fn sample_size(&self, _: usize) -> usize {
            1
        }
        fn next(&self, _: &mut NextCtx<'_>) -> Option<VertexId> {
            None
        }
    }

    #[test]
    fn validate_catches_bad_inputs() {
        let g = ring_lattice(8, 1, 0);
        let app = App(Steps::Fixed(2));
        assert_eq!(validate_run(&g, &app, &[]), Err(NextDoorError::EmptyInit));
        assert!(matches!(
            validate_run(&g, &app, &[vec![0], vec![1, 2]]),
            Err(NextDoorError::UnequalInitSizes {
                expected: 1,
                got: 2,
                sample: 1
            })
        ));
        assert!(matches!(
            validate_run(&g, &app, &[vec![0], vec![8]]),
            Err(NextDoorError::RootOutOfRange {
                sample: 1,
                vertex: 8,
                ..
            })
        ));
        assert!(matches!(
            validate_run(&g, &app, &[vec![NULL_VERTEX]]),
            Err(NextDoorError::RootOutOfRange { .. })
        ));
        assert_eq!(
            validate_run(&g, &App(Steps::Fixed(0)), &[vec![0]]),
            Err(NextDoorError::ZeroSteps)
        );
        assert_eq!(validate_run(&g, &app, &[vec![0], vec![7]]), Ok(()));
        assert_eq!(validate_run(&g, &App(Steps::Infinite), &[vec![0]]), Ok(()));
    }

    #[test]
    fn report_merge_and_display() {
        let mut a = FaultReport {
            alloc_faults: 1,
            step_retries: 2,
            ..Default::default()
        };
        assert!(!a.is_clean());
        assert!(FaultReport::default().is_clean());
        let b = FaultReport {
            transient_faults: 3,
            degraded_to_out_of_core: true,
            failovers: 1,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.alloc_faults, 1);
        assert_eq!(a.transient_faults, 3);
        assert_eq!(a.step_retries, 2);
        assert!(a.degraded_to_out_of_core);
        assert_eq!(a.failovers, 1);
        assert!(a.to_string().contains("degraded: true"));
        assert_eq!(FaultReport::default().to_string(), "no faults");
    }

    #[test]
    fn errors_display_and_convert() {
        let e: NextDoorError = OutOfMemory {
            requested: 10,
            available: 5,
        }
        .into();
        assert!(e.to_string().contains("out of memory"));
        assert!(std::error::Error::source(&e).is_some());
        assert!(NextDoorError::KernelFault {
            step: 3,
            retries: 3
        }
        .to_string()
        .contains("step 3"));
        assert!(NextDoorError::AllDevicesLost
            .to_string()
            .contains("all devices"));
        assert!(NextDoorError::ShardUnsupported {
            reason: "collective app".into()
        }
        .to_string()
        .contains("sharded execution unsupported: collective app"));
    }
}
