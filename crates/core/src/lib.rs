//! NextDoor: transit-parallel graph sampling on (simulated) GPUs.
//!
//! This crate implements the core contribution of *"Accelerating Graph
//! Sampling for Graph Machine Learning using GPUs"* (EuroSys 2021):
//!
//! * the high-level **graph sampling abstraction** (§3) and programming API
//!   (§4) — [`api::SamplingApp`], [`api::NextCtx`];
//! * the **transit-parallel engine** with per-step scheduling index,
//!   three load-balanced kernel classes and adjacency caching (§6) —
//!   [`engine::nextdoor::run_nextdoor`];
//! * the **SP** and vanilla **TP** comparison engines (§5) and a sequential
//!   CPU oracle — [`engine::sp`], [`engine::tp`], [`engine::cpu`];
//! * **collective transit sampling** (§6.2), **unique neighbours** (§6.3),
//!   **multi-GPU sampling** (§6.4) — [`multi_gpu`] — and the
//!   **out-of-GPU-memory mode** for large graphs (§8.4) — [`large_graph`].
//!
//! All engines produce bit-identical samples for the same inputs; they
//! differ (and are measured) only in how they schedule work on the GPU.
//!
//! Every `run_*` entry point returns `Result<_, `[`NextDoorError`]`>` and
//! never panics on user input: inputs are validated up front, device-memory
//! exhaustion degrades the NextDoor engine to the out-of-core engine,
//! transiently-faulted steps are retried (the counter-based RNG makes
//! re-runs bit-identical), and multi-GPU runs fail a lost device's shard
//! over to a survivor. The [`FaultReport`] on every result records what the
//! run survived; faults can be scripted deterministically with
//! [`nextdoor_gpu::FaultPlan`].
//!
//! # Examples
//!
//! ```
//! use nextdoor_core::api::{NextCtx, SamplingApp, Steps};
//! use nextdoor_core::engine::{initial_samples_random, nextdoor::run_nextdoor};
//! use nextdoor_graph::gen::{rmat, RmatParams};
//! use nextdoor_gpu::{Gpu, GpuSpec};
//!
//! struct UniformWalk;
//! impl SamplingApp for UniformWalk {
//!     fn name(&self) -> &'static str { "uniform-walk" }
//!     fn steps(&self) -> Steps { Steps::Fixed(4) }
//!     fn sample_size(&self, _step: usize) -> usize { 1 }
//!     fn next(&self, ctx: &mut NextCtx<'_>) -> Option<u32> {
//!         let d = ctx.num_edges();
//!         if d == 0 { return None; }
//!         let i = ctx.rand_range(d);
//!         Some(ctx.src_edge(i))
//!     }
//! }
//!
//! let graph = rmat(8, 1000, RmatParams::SKEWED, 1);
//! let init = initial_samples_random(&graph, 32, 1, 7).expect("graph is non-empty");
//! let mut gpu = Gpu::new(GpuSpec::small());
//! let result = run_nextdoor(&mut gpu, &graph, &UniformWalk, &init, 42)
//!     .expect("inputs are valid and the graph fits");
//! assert_eq!(result.store.num_samples(), 32);
//! assert!(result.report.is_clean());
//! ```

#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod api;
pub mod engine;
pub mod error;
pub mod gpu_graph;
pub mod large_graph;
pub mod multi_gpu;
pub mod session;
pub mod sharded;
pub mod store;
pub mod tuning;

pub use api::{NextCtx, SampleView, SamplingApp, SamplingType, Steps, NULL_VERTEX};
pub use engine::cpu::{run_cpu, run_cpu_keyed};
pub use engine::nextdoor::run_nextdoor;
pub use engine::profile::{classify_kernel, KernelBreakdown, KernelPhase, RunProfile, StepProfile};
pub use engine::sp::run_sample_parallel;
pub use engine::tp::run_vanilla_tp;
pub use engine::{initial_samples_random, EngineStats, RunResult, SampleKeys};
pub use error::{validate_run, FaultReport, NextDoorError};
pub use gpu_graph::GpuGraph;
pub use session::{ClassMark, FusedResult, SamplerSession, SessionQuery};
pub use sharded::{ShardHandoff, ShardedFusedResult, ShardedRunOut, ShardedSampler, SuperStepMark};
pub use store::SampleStore;
pub use tuning::{
    AutoTuner, CacheConfig, CacheStats, HotTransitCache, ProfileSummary, TunerConfig, TuningPlan,
};

/// Compile-checks the code blocks in `TUNING.md` (the autotuning guide) as
/// doctests, so the documented examples cannot rot.
#[cfg(doctest)]
mod tuning_doc_tests {
    #![doc = include_str!("../../../TUNING.md")]
}
