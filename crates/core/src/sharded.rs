//! Sharded execution: one sampling query spread over several simulated
//! devices with cross-shard walker hand-off.
//!
//! The paper's multi-GPU mode (§6.4) splits the *samples* across devices;
//! a sharded deployment instead splits the *graph*: each device holds one
//! partition (shard) of the adjacency structure and every walker executes
//! its next step on whichever device owns its current transit vertex. The
//! partition comes from the same deterministic clustering pass ClusterGCN
//! sampling uses ([`cluster_vertices`]), so shard `s` owns exactly the rows
//! of cluster `s` and the clustering's [`PartitionStats`] bound how often
//! walkers cross shards.
//!
//! Execution proceeds in **super-steps** on a shared fleet clock: at each
//! step the engine plans the global transit array, routes every live
//! `(transit, pair)` onto the transit's owner shard, runs the NextDoor
//! transit-parallel kernels per shard against that shard's row-masked
//! sub-graph, and merges the outputs back into one global store before the
//! next step is planned. Walkers whose next transit lives on another shard
//! are *handed off* during the exchange phase between super-steps, in
//! canonical shard order; the simulated clock advances by the slowest
//! shard's step time plus the exchange cost.
//!
//! **Determinism.** Every RNG draw is keyed by the walker's global
//! `(seed, sample, step, slot)` identity via [`SampleKeys`] — never by the
//! shard it happens to execute on — and a shard's kernels see exactly the
//! global step plan restricted to the pairs it owns. A sharded run is
//! therefore bit-identical to the single-device run of the same query, for
//! any shard count, placement seed or host thread count. Shard faults are
//! retried bit-identically like single-device step faults; a *lost* shard
//! is not an error: its walkers' slots stay `NULL_VERTEX`, which
//! deterministically terminates them at the next plan, and the run reports
//! them as [`ShardedRunOut::walkers_lost`].
//!
//! Sharding supports individual-transit applications that neither require
//! per-step unique neighbours nor read adjacency of vertices other than
//! the current transit. Collective apps need the combined neighbourhood of
//! transits that may span shards, and `unique` needs cross-shard
//! deduplication — both are rejected at construction with
//! [`NextDoorError::ShardUnsupported`]. (Node2Vec-style apps that probe
//! `has_edge` on the *previous* transit's row are accepted but only
//! bit-identical when both transits share a shard; route such apps to the
//! single-device session instead.)
//!
//! ```
//! use nextdoor_core::api::{NextCtx, SamplingApp, Steps};
//! use nextdoor_core::sharded::ShardedSampler;
//! use nextdoor_core::run_nextdoor;
//! use nextdoor_gpu::{Gpu, GpuSpec};
//! use nextdoor_graph::gen::{rmat, RmatParams};
//!
//! struct Walk;
//! impl SamplingApp for Walk {
//!     fn name(&self) -> &'static str { "walk" }
//!     fn steps(&self) -> Steps { Steps::Fixed(3) }
//!     fn sample_size(&self, _step: usize) -> usize { 1 }
//!     fn next(&self, ctx: &mut NextCtx<'_>) -> Option<u32> {
//!         let d = ctx.num_edges();
//!         if d == 0 { return None; }
//!         let i = ctx.rand_range(d);
//!         Some(ctx.src_edge(i))
//!     }
//! }
//!
//! let graph = rmat(8, 1200, RmatParams::SKEWED, 1);
//! let init: Vec<Vec<u32>> = (0..12).map(|i| vec![i * 17 % 256]).collect();
//! let mut sharded = ShardedSampler::new(GpuSpec::small(), graph.clone(),
//!     Box::new(Walk), 3, 0xC0FFEE).expect("valid sharded config");
//! let out = sharded.query(&init, 42).expect("valid query");
//!
//! // Bit-identical to the single-device run of the same query.
//! let mut gpu = Gpu::new(GpuSpec::small());
//! let solo = run_nextdoor(&mut gpu, &graph, &Walk, &init, 42).unwrap();
//! assert_eq!(out.store.final_samples(), solo.store.final_samples());
//! ```

use crate::api::{SamplingApp, SamplingType, NULL_VERTEX};
use crate::engine::driver::{absorb_alloc_fault, live_pairs, MAX_STEP_RETRIES};
use crate::engine::kernels::{
    block_class_work, charge_step_transits, grid_class_work, run_subwarp_kernel,
    run_transit_block_kernel, StepExec, StepOut,
};
use crate::engine::scheduling::{build_scheduling_index, partition_kernel_classes};
use crate::engine::{finish_step, plan_step, step_budget, SampleKeys};
use crate::error::{validate_run, FaultReport, NextDoorError};
use crate::gpu_graph::GpuGraph;
use crate::store::SampleStore;
use nextdoor_gpu::{DeviceBuffer, Gpu, GpuSpec};
use nextdoor_graph::{cluster_vertices, Clustering, Csr, PartitionStats, VertexId};

/// Simulated bytes a hand-off transfers per walker: the walker's global
/// identity (sample id, transit index) plus its current transit vertex and
/// RNG key material — 16 bytes, matching KnightKing-style walker messages.
pub const HANDOFF_BYTES_PER_WALKER: u64 = 16;

/// Simulated inter-shard link bandwidth in bytes per millisecond
/// (~12 GB/s, a PCIe-3 x16-class interconnect).
pub const LINK_BYTES_PER_MS: f64 = 12.0e6;

/// Fixed super-step barrier cost in milliseconds when more than one shard
/// participates (all shards synchronise before the exchange phase).
pub const SUPER_STEP_BARRIER_MS: f64 = 0.002;

/// Walkers handed from one shard to another during one super-step's
/// exchange phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardHandoff {
    /// Shard that owned the walker's previous transit.
    pub from: usize,
    /// Shard that owns the walker's next transit.
    pub to: usize,
    /// Walkers moved along this edge of the shard graph.
    pub walkers: u64,
}

/// What one super-step did on each shard, for the serving tier's tracer
/// and the scaling benchmarks.
#[derive(Debug, Clone, PartialEq)]
pub struct SuperStepMark {
    /// Step index of the global plan.
    pub step: usize,
    /// Live `(transit, pair)` pairs routed to each shard (dead shards keep
    /// their routed count; those walkers are the step's losses).
    pub shard_pairs: Vec<usize>,
    /// Simulated milliseconds each shard spent on its slice of the step.
    pub shard_ms: Vec<f64>,
    /// The super-step's critical path: the slowest shard's time.
    pub step_ms: f64,
    /// Exchange-phase cost: hand-off transfer time plus the barrier.
    pub exchange_ms: f64,
    /// Hand-offs charged during the exchange, in canonical
    /// `(from, to)` order.
    pub handoffs: Vec<ShardHandoff>,
}

/// Result of one sharded query (or one width class of a fused batch).
#[derive(Debug)]
pub struct ShardedRunOut {
    /// The sampled store, bit-identical to the single-device run.
    pub store: SampleStore,
    /// Steps actually executed.
    pub steps_run: usize,
    /// Faults the whole fleet observed, merged across shards.
    pub report: FaultReport,
    /// Per-shard fault reports for this query.
    pub shard_reports: Vec<FaultReport>,
    /// Simulated end-to-end time on the fleet clock: per step, the slowest
    /// shard plus the exchange phase.
    pub elapsed_ms: f64,
    /// Walkers handed between shards over the whole query.
    pub handoffs: u64,
    /// Simulated bytes those hand-offs moved.
    pub handoff_bytes: u64,
    /// Walkers terminated because their owner shard was lost.
    pub walkers_lost: u64,
    /// Per-super-step breakdown in execution order.
    pub super_steps: Vec<SuperStepMark>,
    /// Per-shard `(first, one-past-last)` device launch indices of the
    /// query, for linking trace spans to kernel records.
    pub shard_launches: Vec<(u64, u64)>,
}

/// Result of a fused sharded batch: per-query stores (bit-identical to
/// standalone runs) plus the batch-level sharding telemetry aggregated
/// over all width classes.
#[derive(Debug)]
pub struct ShardedFusedResult {
    /// Per-query sample stores, in submission order.
    pub per_query: Vec<SampleStore>,
    /// Width classes the batch split into (one fused launch sequence each).
    pub launches: usize,
    /// Fleet-clock milliseconds of the whole batch.
    pub elapsed_ms: f64,
    /// Faults observed across all classes and shards.
    pub report: FaultReport,
    /// Per-shard fault reports, merged across the batch's width classes.
    pub shard_reports: Vec<FaultReport>,
    /// Walkers handed between shards across the whole batch.
    pub handoffs: u64,
    /// Simulated bytes those hand-offs moved.
    pub handoff_bytes: u64,
    /// Walkers terminated by shard loss across the whole batch.
    pub walkers_lost: u64,
    /// Super-step breakdowns of every class, concatenated in class order.
    pub super_steps: Vec<SuperStepMark>,
    /// Per-shard launch bracket covering the whole batch.
    pub shard_launches: Vec<(u64, u64)>,
}

/// One simulated device holding one graph partition.
struct Shard {
    gpu: Gpu,
    csr: Csr,
    gg: GpuGraph,
    dead: bool,
}

/// How a shard-local fallible operation resolved.
enum ShardOp<T> {
    /// The operation succeeded.
    Got(T),
    /// An injected fault was absorbed; retry the operation.
    Retry,
    /// The shard's device was lost; the shard is out of the fleet.
    Died,
}

/// A graph-sharded sampler: the graph partitioned over `num_shards`
/// simulated devices, answering queries by routing walkers to the shard
/// owning their current transit and handing them off between shards in
/// deterministic super-steps.
///
/// Construction partitions the vertices with [`cluster_vertices`] keyed by
/// `placement_seed`, row-masks the CSR per shard and uploads each
/// sub-graph to its device. The partition's quality statistics
/// ([`ShardedSampler::partition_stats`]) bound the hand-off rate.
pub struct ShardedSampler {
    spec: GpuSpec,
    graph: Csr,
    app: Box<dyn SamplingApp + Send>,
    clustering: Clustering,
    stats: PartitionStats,
    shards: Vec<Shard>,
    clock_ms: f64,
    queries_served: u64,
}

impl ShardedSampler {
    /// Creates a sharded sampler: partitions `graph` into `num_shards`
    /// clusters keyed by `placement_seed` and uploads each shard's
    /// row-masked sub-graph to a fresh device of `spec`.
    ///
    /// # Errors
    ///
    /// [`NextDoorError::EmptyGraph`] for a vertex-less graph,
    /// [`NextDoorError::NoGpus`] for zero shards,
    /// [`NextDoorError::ShardUnsupported`] when the partition is degenerate
    /// (more shards than vertices) or the app needs collective
    /// neighbourhoods or per-step uniqueness, and
    /// [`NextDoorError::OutOfMemory`] when a shard's sub-graph does not fit
    /// on its device.
    pub fn new(
        spec: GpuSpec,
        graph: Csr,
        app: Box<dyn SamplingApp + Send>,
        num_shards: usize,
        placement_seed: u64,
    ) -> Result<Self, NextDoorError> {
        if graph.num_vertices() == 0 {
            return Err(NextDoorError::EmptyGraph);
        }
        if num_shards == 0 {
            return Err(NextDoorError::NoGpus);
        }
        if app.sampling_type() != SamplingType::Individual {
            return Err(NextDoorError::ShardUnsupported {
                reason: format!(
                    "{} samples collectively; a combined neighbourhood can span shards",
                    app.name()
                ),
            });
        }
        if (0..step_budget(app.as_ref())).any(|s| app.unique(s)) {
            return Err(NextDoorError::ShardUnsupported {
                reason: format!(
                    "{} requires per-step unique neighbours, which needs cross-shard \
                     deduplication",
                    app.name()
                ),
            });
        }
        let clustering = cluster_vertices(&graph, num_shards, placement_seed).map_err(|e| {
            NextDoorError::ShardUnsupported {
                reason: e.to_string(),
            }
        })?;
        let stats = clustering.partition_stats(&graph);
        let n = graph.num_vertices();
        let mut shards = Vec::with_capacity(num_shards);
        for s in 0..num_shards {
            let keep: Vec<bool> = (0..n)
                .map(|v| clustering.cluster_of(v as VertexId) == s as u32)
                .collect();
            let csr = graph.row_masked(&keep);
            let mut gpu = Gpu::new(spec.clone());
            let gg = GpuGraph::upload(&mut gpu, &csr)?;
            shards.push(Shard {
                gpu,
                csr,
                gg,
                dead: false,
            });
        }
        Ok(ShardedSampler {
            spec,
            graph,
            app,
            clustering,
            stats,
            shards,
            clock_ms: 0.0,
            queries_served: 0,
        })
    }

    /// Number of shards (devices) in the fleet, dead ones included.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Whether shard `s` has lost its device. A lost shard's walkers
    /// terminate at the boundary; queries whose seeds it owns should be
    /// shed by the serving layer.
    pub fn shard_lost(&self, s: usize) -> bool {
        self.shards[s].dead || self.shards[s].gpu.device_lost()
    }

    /// Shards still alive.
    pub fn shards_alive(&self) -> usize {
        (0..self.num_shards())
            .filter(|&s| !self.shard_lost(s))
            .count()
    }

    /// The shard owning vertex `v`'s adjacency row.
    pub fn owner_of(&self, v: VertexId) -> usize {
        self.clustering.cluster_of(v) as usize
    }

    /// The home shard of a query seed set: the owner of its first seed
    /// vertex, which is where the query's step-0 routing concentrates.
    pub fn home_shard(&self, seeds: &[VertexId]) -> usize {
        self.owner_of(seeds[0])
    }

    /// The placement clustering (shard `s` owns cluster `s`).
    pub fn clustering(&self) -> &Clustering {
        &self.clustering
    }

    /// Partition-quality statistics of the placement: the edge-cut
    /// fraction bounds the per-step hand-off probability.
    pub fn partition_stats(&self) -> &PartitionStats {
        &self.stats
    }

    /// The full (unsharded) graph.
    pub fn graph(&self) -> &Csr {
        &self.graph
    }

    /// The application this fleet serves.
    pub fn app(&self) -> &dyn SamplingApp {
        self.app.as_ref()
    }

    /// The fleet clock: super-step critical paths plus exchange costs,
    /// accumulated across all queries served so far.
    pub fn clock_ms(&self) -> f64 {
        self.clock_ms
    }

    /// Queries answered so far (each fused query counts individually).
    pub fn queries_served(&self) -> u64 {
        self.queries_served
    }

    /// Shard `s`'s simulated device, for profile export.
    pub fn shard_gpu(&self, s: usize) -> &Gpu {
        &self.shards[s].gpu
    }

    /// Device bytes the shard's sub-graph occupies.
    pub fn shard_graph_bytes(&self, s: usize) -> usize {
        self.shards[s].gg.size_bytes()
    }

    /// Schedules faults on shard `s` **relative to now**, shifting the
    /// plan's allocation and launch indices by the shard device's current
    /// monotonic counters (the chaos-harness entry point, mirroring
    /// [`SamplerSession::schedule_faults`](crate::session::SamplerSession::schedule_faults)).
    pub fn schedule_faults(&mut self, s: usize, plan: nextdoor_gpu::FaultPlan) {
        let gpu = &mut self.shards[s].gpu;
        let shifted = plan.shifted(gpu.allocs_issued(), gpu.launches_issued());
        gpu.extend_faults(shifted);
    }

    /// Answers one query across the fleet.
    ///
    /// Produces samples bit-identical to the single-device
    /// [`run_nextdoor`](crate::run_nextdoor) of the same
    /// `(graph, app, init, seed)` as long as no shard is lost; with losses,
    /// the affected walkers terminate deterministically at the shard
    /// boundary and are counted in [`ShardedRunOut::walkers_lost`].
    ///
    /// # Errors
    ///
    /// Input validation as [`validate_run`]; genuine device-memory
    /// exhaustion and steps exceeding the retry budget propagate as for
    /// the single-device engines. Shard *loss* is not an error.
    pub fn query(
        &mut self,
        init: &[Vec<VertexId>],
        seed: u64,
    ) -> Result<ShardedRunOut, NextDoorError> {
        validate_run(&self.graph, self.app.as_ref(), init)?;
        let keys = SampleKeys::uniform(seed);
        let out = self.run_batch(init, &keys)?;
        self.queries_served += 1;
        Ok(out)
    }

    /// Runs several queries as one fused batch (split into width classes
    /// exactly like
    /// [`SamplerSession::query_fused`](crate::session::SamplerSession::query_fused))
    /// and slices the stores back per query. Per-sample RNG keying makes
    /// every query's store bit-identical to its standalone run.
    ///
    /// # Errors
    ///
    /// [`NextDoorError::EmptyInit`] for an empty batch, any
    /// [`validate_run`] error for an individual query, and the runtime
    /// errors of [`ShardedSampler::query`].
    pub fn query_fused(
        &mut self,
        queries: &[crate::session::SessionQuery],
    ) -> Result<ShardedFusedResult, NextDoorError> {
        if queries.is_empty() {
            return Err(NextDoorError::EmptyInit);
        }
        for q in queries {
            validate_run(&self.graph, self.app.as_ref(), &q.init)?;
        }
        let mut classes: Vec<(usize, Vec<usize>)> = Vec::new();
        for (qi, q) in queries.iter().enumerate() {
            let w = q.init[0].len();
            match classes.iter_mut().find(|(cw, _)| *cw == w) {
                Some((_, members)) => members.push(qi),
                None => classes.push((w, vec![qi])),
            }
        }
        let launch0: Vec<u64> = self
            .shards
            .iter()
            .map(|s| s.gpu.launches_issued())
            .collect();
        let launches = classes.len();
        let mut report = FaultReport::default();
        let mut shard_reports = vec![FaultReport::default(); self.shards.len()];
        let mut elapsed_ms = 0.0;
        let mut handoffs = 0u64;
        let mut handoff_bytes = 0u64;
        let mut walkers_lost = 0u64;
        let mut super_steps = Vec::new();
        let mut tagged: Vec<(usize, SampleStore)> = Vec::with_capacity(queries.len());
        for (_width, members) in &classes {
            let mut init = Vec::new();
            let mut map = Vec::new();
            let mut ranges = Vec::with_capacity(members.len());
            for &qi in members {
                let q = &queries[qi];
                ranges.push((qi, init.len(), q.init.len()));
                for (local, s) in q.init.iter().enumerate() {
                    init.push(s.clone());
                    map.push((q.seed, local as u64));
                }
            }
            let keys = SampleKeys::fused(map);
            let out = self.run_batch(&init, &keys)?;
            report.merge(&out.report);
            for (sr, r) in shard_reports.iter_mut().zip(&out.shard_reports) {
                sr.merge(r);
            }
            elapsed_ms += out.elapsed_ms;
            handoffs += out.handoffs;
            handoff_bytes += out.handoff_bytes;
            walkers_lost += out.walkers_lost;
            super_steps.extend(out.super_steps);
            for (qi, start, len) in ranges {
                tagged.push((qi, out.store.slice(start, len)));
            }
        }
        self.queries_served += queries.len() as u64;
        tagged.sort_by_key(|(qi, _)| *qi);
        let shard_launches: Vec<(u64, u64)> = self
            .shards
            .iter()
            .zip(&launch0)
            .map(|(s, &l0)| (l0, s.gpu.launches_issued()))
            .collect();
        Ok(ShardedFusedResult {
            per_query: tagged.into_iter().map(|(_, s)| s).collect(),
            launches,
            elapsed_ms,
            report,
            shard_reports,
            handoffs,
            handoff_bytes,
            walkers_lost,
            super_steps,
            shard_launches,
        })
    }

    /// The super-step loop shared by single and fused queries.
    fn run_batch(
        &mut self,
        init: &[Vec<VertexId>],
        keys: &SampleKeys,
    ) -> Result<ShardedRunOut, NextDoorError> {
        let app = self.app.as_ref();
        let num_shards = self.shards.len();
        let mut shard_reports = vec![FaultReport::default(); num_shards];
        let mut store = SampleStore::new(init.to_vec());
        let ns = store.num_samples();
        let launch0: Vec<u64> = self
            .shards
            .iter()
            .map(|s| s.gpu.launches_issued())
            .collect();
        let init_flat: Vec<u32> = init.iter().flatten().copied().collect();

        // Seed broadcast: every shard stages the initial frontier (walkers
        // start on their seed's owner, but the charge model uploads the
        // frontier once per device, like the single-device engine does).
        let mut prev_bufs: Vec<Option<DeviceBuffer<u32>>> = Vec::with_capacity(num_shards);
        let mut elapsed_ms = 0.0f64;
        let mut init_ms = 0.0f64;
        for (s, shard) in self.shards.iter_mut().enumerate() {
            if shard.dead || shard.gpu.device_lost() {
                shard.dead = true;
                prev_bufs.push(None);
                continue;
            }
            let c0 = shard.gpu.counters().cycles;
            let mut retries = 0usize;
            let buf = loop {
                let res = shard.gpu.try_to_device(&init_flat);
                match classify(&mut shard.gpu, &mut shard_reports[s], res)? {
                    ShardOp::Got(b) => break Some(b),
                    ShardOp::Died => {
                        shard.dead = true;
                        break None;
                    }
                    ShardOp::Retry => {
                        if retries >= MAX_STEP_RETRIES {
                            return Err(NextDoorError::KernelFault { step: 0, retries });
                        }
                        retries += 1;
                        shard_reports[s].step_retries += 1;
                    }
                }
            };
            init_ms = init_ms.max(self.spec.cycles_to_ms(shard.gpu.counters().cycles - c0));
            prev_bufs.push(buf);
        }
        elapsed_ms += init_ms;

        let mut steps_run = 0usize;
        let mut total_handoffs = 0u64;
        let mut total_handoff_bytes = 0u64;
        let mut walkers_lost = 0u64;
        let mut super_steps: Vec<SuperStepMark> = Vec::new();
        // Previous executed step's transit array, for hand-off lineage.
        let mut prev_transits: Option<(Vec<VertexId>, usize)> = None;

        for step in 0..step_budget(app) {
            let plan = plan_step(app, &store, step, keys);
            if plan.live == 0 {
                break;
            }
            let pairs = live_pairs(&plan, ns);

            // Route every live pair to the shard owning its transit's row,
            // preserving the canonical (sample-major) order within a shard.
            let mut shard_pairs: Vec<Vec<(VertexId, u32)>> = vec![Vec::new(); num_shards];
            for &p in &pairs {
                shard_pairs[self.clustering.cluster_of(p.0) as usize].push(p);
            }

            // Exchange accounting: a walker is handed off when the shard
            // owning its transit differs from the one owning its parent's
            // transit at the previous step (step 0 walkers start at their
            // owner, so the first step never hands off).
            let mut matrix: Vec<Vec<u64>> = vec![vec![0; num_shards]; num_shards];
            if let Some((ref pt, ptps)) = prev_transits {
                for &(tv, pair_id) in &pairs {
                    let (sample, tidx) = (pair_id as usize / plan.tps, pair_id as usize % plan.tps);
                    let parent_tidx = if plan.tps == ptps {
                        tidx
                    } else {
                        tidx * ptps / plan.tps
                    };
                    let parent = pt[sample * ptps + parent_tidx];
                    if parent == NULL_VERTEX {
                        continue;
                    }
                    let from = self.clustering.cluster_of(parent) as usize;
                    let to = self.clustering.cluster_of(tv) as usize;
                    if from != to {
                        matrix[from][to] += 1;
                    }
                }
            }
            let mut step_handoffs: Vec<ShardHandoff> = Vec::new();
            let mut step_handoff_walkers = 0u64;
            for (from, row) in matrix.iter().enumerate() {
                for (to, &w) in row.iter().enumerate() {
                    if w > 0 {
                        step_handoffs.push(ShardHandoff {
                            from,
                            to,
                            walkers: w,
                        });
                        step_handoff_walkers += w;
                    }
                }
            }

            // Per-shard execution in canonical shard order: each live shard
            // runs the NextDoor kernels over its owned pairs against its
            // row-masked sub-graph, then its outputs merge back into the
            // global step arrays at their global sample-slot indices.
            let mut merged_values = vec![NULL_VERTEX; ns * plan.slots];
            let mut merged_edges: Vec<Vec<(VertexId, VertexId)>> = vec![Vec::new(); ns];
            let mut shard_ms = vec![0.0f64; num_shards];
            for s in 0..num_shards {
                let owned = &shard_pairs[s];
                if self.shards[s].dead {
                    walkers_lost += owned.len() as u64;
                    continue;
                }
                let c0 = self.shards[s].gpu.counters().cycles;
                let outcome = run_shard_step(
                    &mut self.shards[s],
                    &mut shard_reports[s],
                    app,
                    &store,
                    &plan,
                    keys,
                    owned,
                    prev_bufs[s].as_ref(),
                    ns,
                )?;
                shard_ms[s] = self
                    .spec
                    .cycles_to_ms(self.shards[s].gpu.counters().cycles - c0);
                match outcome {
                    Some(out) => {
                        for &(_, pair_id) in owned {
                            let (sample, tidx) =
                                (pair_id as usize / plan.tps, pair_id as usize % plan.tps);
                            for j in 0..plan.m {
                                let idx = sample * plan.slots + tidx * plan.m + j;
                                merged_values[idx] = out.values[idx];
                            }
                        }
                        // Supported apps never record application edges
                        // (that is a collective-app feature), but merging
                        // in canonical shard order keeps the invariant
                        // explicit.
                        for (sample, es) in out.edges.into_iter().enumerate() {
                            merged_edges[sample].extend(es);
                        }
                        prev_bufs[s] = Some(out.step_buf);
                    }
                    None => {
                        // The shard died mid-step: its attempt's outputs
                        // are discarded, its walkers end at the boundary.
                        self.shards[s].dead = true;
                        prev_bufs[s] = None;
                        walkers_lost += owned.len() as u64;
                    }
                }
            }

            let step_ms = shard_ms.iter().cloned().fold(0.0f64, f64::max);
            let step_bytes = step_handoff_walkers * HANDOFF_BYTES_PER_WALKER;
            let barrier = if num_shards > 1 {
                SUPER_STEP_BARRIER_MS
            } else {
                0.0
            };
            let exchange_ms = step_bytes as f64 / LINK_BYTES_PER_MS + barrier;
            elapsed_ms += step_ms + exchange_ms;
            total_handoffs += step_handoff_walkers;
            total_handoff_bytes += step_bytes;
            super_steps.push(SuperStepMark {
                step,
                shard_pairs: shard_pairs.iter().map(Vec::len).collect(),
                shard_ms,
                step_ms,
                exchange_ms,
                handoffs: step_handoffs,
            });

            let live_this_step = merged_values.iter().any(|&v| v != NULL_VERTEX);
            finish_step(app, &mut store, &plan, merged_values, merged_edges);
            steps_run += 1;
            prev_transits = Some((plan.transits, plan.tps));
            if !live_this_step {
                break;
            }
        }

        self.clock_ms += elapsed_ms;
        let mut report = FaultReport::default();
        for r in &shard_reports {
            report.merge(r);
        }
        let shard_launches: Vec<(u64, u64)> = self
            .shards
            .iter()
            .zip(&launch0)
            .map(|(s, &l0)| (l0, s.gpu.launches_issued()))
            .collect();
        Ok(ShardedRunOut {
            store,
            steps_run,
            report,
            shard_reports,
            elapsed_ms,
            handoffs: total_handoffs,
            handoff_bytes: total_handoff_bytes,
            walkers_lost,
            super_steps,
            shard_launches,
        })
    }
}

/// Classifies a shard-local fallible device operation. Unlike the
/// single-device loop, device loss is not an error here: the shard leaves
/// the fleet and the run continues degraded.
fn classify<T>(
    gpu: &mut Gpu,
    report: &mut FaultReport,
    res: Result<T, nextdoor_gpu::OutOfMemory>,
) -> Result<ShardOp<T>, NextDoorError> {
    match absorb_alloc_fault(gpu, report, res) {
        Ok(Some(v)) => Ok(ShardOp::Got(v)),
        Ok(None) => Ok(ShardOp::Retry),
        Err(NextDoorError::DeviceLost { .. }) => Ok(ShardOp::Died),
        Err(e) => Err(e),
    }
}

/// Runs one shard's slice of a super-step with the driver's retry
/// discipline. Returns `Ok(None)` when the shard's device was lost (the
/// caller marks it dead); transient faults re-execute the slice
/// bit-identically, and exhausting the retry budget fails the run.
#[allow(clippy::too_many_arguments)]
fn run_shard_step(
    shard: &mut Shard,
    report: &mut FaultReport,
    app: &dyn SamplingApp,
    store: &SampleStore,
    plan: &crate::engine::StepPlan,
    keys: &SampleKeys,
    owned: &[(VertexId, u32)],
    prev_buf: Option<&DeviceBuffer<u32>>,
    ns: usize,
) -> Result<Option<StepOut>, NextDoorError> {
    if shard.gpu.device_lost() {
        return Ok(None);
    }
    let gpu = &mut shard.gpu;
    let transits: Vec<VertexId> = owned.iter().map(|&(t, _)| t).collect();
    let mut retries = 0usize;
    loop {
        // Transit staging: one slot per owned pair. The transit values are
        // authoritative from the global plan; the kernel charge reads the
        // shard's previous frontier buffer (per-pair granularity, tps = 1).
        let res = gpu.try_alloc::<u32>(transits.len());
        let transit_buf = match classify(gpu, report, res)? {
            ShardOp::Got(b) => b,
            ShardOp::Died => return Ok(None),
            ShardOp::Retry => {
                if retries >= MAX_STEP_RETRIES {
                    return Err(NextDoorError::KernelFault {
                        step: plan.step,
                        retries,
                    });
                }
                retries += 1;
                report.step_retries += 1;
                continue;
            }
        };
        if let Some(prev) = prev_buf {
            charge_step_transits(gpu, prev, &transit_buf, &transits, 1);
        }
        // Every live shard allocates its frontier buffer each super-step
        // (even with no owned pairs) so the next step's charge has a
        // correctly-sized previous frontier.
        let res = StepOut::try_new(gpu, ns, plan.slots);
        let mut out = match classify(gpu, report, res)? {
            ShardOp::Got(o) => o,
            ShardOp::Died => return Ok(None),
            ShardOp::Retry => {
                if retries >= MAX_STEP_RETRIES {
                    return Err(NextDoorError::KernelFault {
                        step: plan.step,
                        retries,
                    });
                }
                retries += 1;
                report.step_retries += 1;
                continue;
            }
        };
        if !owned.is_empty() {
            let ex = StepExec {
                graph: &shard.csr,
                gg: &shard.gg,
                app,
                store,
                plan,
                keys,
            };
            // The shard's scheduling index is the global one restricted to
            // the transits it owns: routing is by transit, so a transit's
            // whole segment lands on one shard and the kernel-class split
            // is preserved.
            let res =
                build_scheduling_index(gpu, owned, ex.graph.num_vertices()).and_then(|index| {
                    partition_kernel_classes(gpu, &index, plan.m, 1024)
                        .map(|classes| (index, classes))
                });
            let (index, classes) = match classify(gpu, report, res)? {
                ShardOp::Got(ic) => ic,
                ShardOp::Died => return Ok(None),
                ShardOp::Retry => {
                    if retries >= MAX_STEP_RETRIES {
                        return Err(NextDoorError::KernelFault {
                            step: plan.step,
                            retries,
                        });
                    }
                    retries += 1;
                    report.step_retries += 1;
                    continue;
                }
            };
            let tune = crate::tuning::KernelTuning::baseline();
            run_subwarp_kernel(gpu, &ex, &index, &classes.sub_warp, &tune, &mut out);
            let bw = block_class_work(&index, &classes.block);
            run_transit_block_kernel(gpu, "nextdoor_block", &ex, &index, &bw, &tune, &mut out);
            let gw = grid_class_work(&index, &classes.grid, plan.m, 1024);
            run_transit_block_kernel(gpu, "nextdoor_grid", &ex, &index, &gw, &tune, &mut out);
        }
        let events = gpu.take_faults();
        if events.is_empty() {
            return Ok(Some(out));
        }
        // A faulted attempt's outputs cannot be trusted; discard and
        // re-execute. Counter-keyed RNG makes the re-run bit-identical.
        report.absorb(&events);
        if gpu.device_lost() {
            return Ok(None);
        }
        if retries >= MAX_STEP_RETRIES {
            return Err(NextDoorError::KernelFault {
                step: plan.step,
                retries,
            });
        }
        retries += 1;
        report.step_retries += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::{NextCtx, Steps};
    use crate::engine::nextdoor::run_nextdoor;
    use crate::session::SessionQuery;
    use nextdoor_graph::gen::{rmat, RmatParams};

    struct Walk(usize);
    impl SamplingApp for Walk {
        fn name(&self) -> &'static str {
            "walk"
        }
        fn steps(&self) -> Steps {
            Steps::Fixed(self.0)
        }
        fn sample_size(&self, _: usize) -> usize {
            1
        }
        fn next(&self, ctx: &mut NextCtx<'_>) -> Option<u32> {
            let d = ctx.num_edges();
            if d == 0 {
                return None;
            }
            let i = ctx.rand_range(d);
            Some(ctx.src_edge(i))
        }
    }

    struct Fanout;
    impl SamplingApp for Fanout {
        fn name(&self) -> &'static str {
            "fanout"
        }
        fn steps(&self) -> Steps {
            Steps::Fixed(2)
        }
        fn sample_size(&self, step: usize) -> usize {
            [3, 2][step]
        }
        fn next(&self, ctx: &mut NextCtx<'_>) -> Option<u32> {
            let d = ctx.num_edges();
            if d == 0 {
                return None;
            }
            let i = ctx.rand_range(d);
            Some(ctx.src_edge(i))
        }
    }

    fn workload() -> (Csr, Vec<Vec<u32>>) {
        let g = rmat(8, 2000, RmatParams::SKEWED, 3);
        let init: Vec<Vec<u32>> = (0..24).map(|i| vec![i * 5 % 256]).collect();
        (g, init)
    }

    #[test]
    fn sharded_walk_matches_single_device() {
        let (g, init) = workload();
        for shards in [1usize, 2, 3, 4] {
            let mut sharded =
                ShardedSampler::new(GpuSpec::small(), g.clone(), Box::new(Walk(6)), shards, 7)
                    .unwrap();
            let out = sharded.query(&init, 42).unwrap();
            let mut gpu = Gpu::new(GpuSpec::small());
            let solo = run_nextdoor(&mut gpu, &g, &Walk(6), &init, 42).unwrap();
            assert_eq!(
                out.store.final_samples(),
                solo.store.final_samples(),
                "{shards} shards diverged from single-device"
            );
            assert_eq!(out.walkers_lost, 0);
            assert!(out.report.is_clean());
            if shards == 1 {
                assert_eq!(out.handoffs, 0, "one shard cannot hand off");
            }
        }
    }

    #[test]
    fn sharded_fanout_matches_single_device() {
        let (g, init) = workload();
        let mut sharded =
            ShardedSampler::new(GpuSpec::small(), g.clone(), Box::new(Fanout), 3, 11).unwrap();
        let out = sharded.query(&init, 9).unwrap();
        let mut gpu = Gpu::new(GpuSpec::small());
        let solo = run_nextdoor(&mut gpu, &g, &Fanout, &init, 9).unwrap();
        assert_eq!(out.store.final_samples(), solo.store.final_samples());
        for (a, b) in out
            .store
            .final_samples()
            .iter()
            .zip(solo.store.final_samples().iter())
        {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn handoffs_are_conserved_in_marks() {
        let (g, init) = workload();
        let mut sharded =
            ShardedSampler::new(GpuSpec::small(), g.clone(), Box::new(Walk(6)), 4, 7).unwrap();
        let out = sharded.query(&init, 42).unwrap();
        let from_marks: u64 = out
            .super_steps
            .iter()
            .flat_map(|m| m.handoffs.iter().map(|h| h.walkers))
            .sum();
        assert_eq!(from_marks, out.handoffs);
        assert_eq!(out.handoff_bytes, out.handoffs * HANDOFF_BYTES_PER_WALKER);
        assert!(out.handoffs > 0, "4 hash-partitioned shards must hand off");
        assert!(out.elapsed_ms > 0.0);
        assert_eq!(sharded.clock_ms(), out.elapsed_ms);
    }

    #[test]
    fn fused_batch_slices_match_standalone() {
        let (g, init) = workload();
        let mut sharded =
            ShardedSampler::new(GpuSpec::small(), g.clone(), Box::new(Walk(5)), 3, 7).unwrap();
        let queries: Vec<SessionQuery> = (0..3)
            .map(|i| SessionQuery {
                init: init[i * 8..(i + 1) * 8].to_vec(),
                seed: 100 + i as u64,
            })
            .collect();
        let fused = sharded.query_fused(&queries).unwrap();
        assert_eq!(fused.per_query.len(), 3);
        assert_eq!(fused.launches, 1);
        for (q, sliced) in queries.iter().zip(&fused.per_query) {
            let solo = sharded.query(&q.init, q.seed).unwrap();
            assert_eq!(sliced.final_samples(), solo.store.final_samples());
        }
        assert_eq!(sharded.queries_served(), 6);
    }

    #[test]
    fn lost_shard_terminates_its_walkers_deterministically() {
        let (g, init) = workload();
        let mut sharded =
            ShardedSampler::new(GpuSpec::small(), g.clone(), Box::new(Walk(6)), 3, 7).unwrap();
        sharded.schedule_faults(1, nextdoor_gpu::FaultPlan::new().lose_device_at_launch(2));
        let a = sharded.query(&init, 42).unwrap();
        assert!(sharded.shard_lost(1));
        assert_eq!(sharded.shards_alive(), 2);
        assert!(a.walkers_lost > 0, "shard 1 owned walkers mid-run");
        assert_eq!(a.report.devices_lost, 1);
        // The degraded result is itself deterministic: replaying the same
        // fault script on a fresh fleet reproduces it bit-for-bit.
        let mut replay =
            ShardedSampler::new(GpuSpec::small(), g.clone(), Box::new(Walk(6)), 3, 7).unwrap();
        replay.schedule_faults(1, nextdoor_gpu::FaultPlan::new().lose_device_at_launch(2));
        let b = replay.query(&init, 42).unwrap();
        assert_eq!(a.store.final_samples(), b.store.final_samples());
        assert_eq!(a.walkers_lost, b.walkers_lost);
        // Surviving shards keep answering; lost walkers stay terminated.
        let c = sharded.query(&init, 43).unwrap();
        assert!(c.steps_run > 0);
    }

    #[test]
    fn transient_shard_faults_retry_bit_identically() {
        let (g, init) = workload();
        let mut sharded =
            ShardedSampler::new(GpuSpec::small(), g.clone(), Box::new(Walk(6)), 2, 7).unwrap();
        sharded.schedule_faults(0, nextdoor_gpu::FaultPlan::new().transient_at_launch(3));
        let out = sharded.query(&init, 42).unwrap();
        assert!(out.report.transient_faults > 0);
        assert!(out.report.step_retries > 0);
        let mut gpu = Gpu::new(GpuSpec::small());
        let solo = run_nextdoor(&mut gpu, &g, &Walk(6), &init, 42).unwrap();
        assert_eq!(out.store.final_samples(), solo.store.final_samples());
    }

    #[test]
    fn construction_rejects_degenerate_configs() {
        let (g, _) = workload();
        assert!(matches!(
            ShardedSampler::new(GpuSpec::small(), Csr::empty(0), Box::new(Walk(2)), 2, 0).err(),
            Some(NextDoorError::EmptyGraph)
        ));
        assert!(matches!(
            ShardedSampler::new(GpuSpec::small(), g.clone(), Box::new(Walk(2)), 0, 0).err(),
            Some(NextDoorError::NoGpus)
        ));
        let too_many = g.num_vertices() + 1;
        assert!(matches!(
            ShardedSampler::new(GpuSpec::small(), g, Box::new(Walk(2)), too_many, 0).err(),
            Some(NextDoorError::ShardUnsupported { .. })
        ));
    }

    #[test]
    fn routing_metadata_is_exposed() {
        let (g, init) = workload();
        let sharded =
            ShardedSampler::new(GpuSpec::small(), g.clone(), Box::new(Walk(3)), 3, 7).unwrap();
        assert_eq!(sharded.num_shards(), 3);
        let home = sharded.home_shard(&init[0]);
        assert_eq!(home, sharded.owner_of(init[0][0]));
        assert!(home < 3);
        assert!(sharded.partition_stats().edge_cut_fraction > 0.0);
        assert_eq!(sharded.clustering().num_clusters(), 3);
        assert!(sharded.shard_graph_bytes(0) > 0);
        assert_eq!(sharded.graph().num_vertices(), g.num_vertices());
        assert_eq!(sharded.app().name(), "walk");
    }
}
