//! Graph residency on the simulated device.

use nextdoor_gpu::{DeviceBuffer, Gpu, OutOfMemory};
use nextdoor_graph::{Csr, VertexId};

/// A CSR graph uploaded to simulated device memory.
///
/// Holds the device-resident arrays whose virtual addresses the engines use
/// to account for memory traffic, plus the per-vertex utility tables the
/// paper's `Vertex` class exposes (degree, max edge weight).
pub struct GpuGraph {
    /// Row offsets (`num_vertices + 1` entries).
    pub row_offsets: DeviceBuffer<u32>,
    /// Column indices (`num_edges` entries).
    pub cols: DeviceBuffer<u32>,
    /// Edge weights, when the graph is weighted.
    pub weights: Option<DeviceBuffer<f32>>,
    /// Per-vertex out-degree.
    pub degrees: DeviceBuffer<u32>,
    /// Per-vertex maximum edge weight (rejection sampling's `maxEdgeWeight`).
    pub max_weights: DeviceBuffer<f32>,
}

impl GpuGraph {
    /// Uploads `g`, charging the host-to-device transfer when the GPU has
    /// transfer charging enabled.
    pub fn upload(gpu: &mut Gpu, g: &Csr) -> Result<Self, OutOfMemory> {
        let offsets: Vec<u32> = g.row_offsets().iter().map(|&o| o as u32).collect();
        let degrees: Vec<u32> = (0..g.num_vertices() as VertexId)
            .map(|v| g.degree(v) as u32)
            .collect();
        let max_weights: Vec<f32> = (0..g.num_vertices() as VertexId)
            .map(|v| g.max_edge_weight(v))
            .collect();
        Ok(GpuGraph {
            row_offsets: gpu.try_to_device(&offsets)?,
            cols: gpu.try_to_device(g.col_indices())?,
            weights: match g.is_weighted() {
                true => {
                    let mut all = Vec::with_capacity(g.num_edges());
                    for v in 0..g.num_vertices() as VertexId {
                        if let Some(ws) = g.edge_weights(v) {
                            all.extend_from_slice(ws);
                        }
                    }
                    Some(gpu.try_to_device(&all)?)
                }
                false => None,
            },
            degrees: gpu.try_to_device(&degrees)?,
            max_weights: gpu.try_to_device(&max_weights)?,
        })
    }

    /// Stages `g` in host (pinned) memory instead of device memory: the
    /// buffers stay kernel-addressable for traffic accounting but are
    /// neither counted against device capacity nor subject to fault
    /// injection. The out-of-core engine uses this and models residency
    /// through explicit per-step sub-graph transfer charges.
    pub fn upload_staged(gpu: &mut Gpu, g: &Csr) -> Self {
        let offsets: Vec<u32> = g.row_offsets().iter().map(|&o| o as u32).collect();
        let degrees: Vec<u32> = (0..g.num_vertices() as VertexId)
            .map(|v| g.degree(v) as u32)
            .collect();
        let max_weights: Vec<f32> = (0..g.num_vertices() as VertexId)
            .map(|v| g.max_edge_weight(v))
            .collect();
        GpuGraph {
            row_offsets: gpu.host_stage(&offsets),
            cols: gpu.host_stage(g.col_indices()),
            weights: match g.is_weighted() {
                true => {
                    let mut all = Vec::with_capacity(g.num_edges());
                    for v in 0..g.num_vertices() as VertexId {
                        if let Some(ws) = g.edge_weights(v) {
                            all.extend_from_slice(ws);
                        }
                    }
                    Some(gpu.host_stage(&all))
                }
                false => None,
            },
            degrees: gpu.host_stage(&degrees),
            max_weights: gpu.host_stage(&max_weights),
        }
    }

    /// Virtual base address of the column-index array.
    pub fn cols_base(&self) -> u64 {
        self.cols.addr_of(0)
    }

    /// Device bytes occupied by the graph.
    pub fn size_bytes(&self) -> usize {
        self.row_offsets.size_bytes()
            + self.cols.size_bytes()
            + self.weights.as_ref().map_or(0, DeviceBuffer::size_bytes)
            + self.degrees.size_bytes()
            + self.max_weights.size_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nextdoor_gpu::GpuSpec;
    use nextdoor_graph::GraphBuilder;

    #[test]
    fn upload_round_trips_structure() {
        let g = GraphBuilder::new(3)
            .edge(0, 1)
            .edge(0, 2)
            .edge(2, 1)
            .build()
            .unwrap();
        let mut gpu = Gpu::new(GpuSpec::small());
        let gg = GpuGraph::upload(&mut gpu, &g).unwrap();
        assert_eq!(gg.row_offsets.as_slice(), &[0, 2, 2, 3]);
        assert_eq!(gg.cols.as_slice(), &[1, 2, 1]);
        assert_eq!(gg.degrees.as_slice(), &[2, 0, 1]);
        assert!(gg.weights.is_none());
        assert!(gg.size_bytes() > 0);
        assert!(gg.cols_base() > 0);
    }

    #[test]
    fn weighted_upload_carries_weights() {
        let g = GraphBuilder::new(2)
            .weighted_edge(0, 1, 2.5)
            .build()
            .unwrap();
        let mut gpu = Gpu::new(GpuSpec::small());
        let gg = GpuGraph::upload(&mut gpu, &g).unwrap();
        assert_eq!(gg.weights.as_ref().unwrap().as_slice(), &[2.5]);
        assert_eq!(gg.max_weights.as_slice(), &[2.5, 1.0]);
    }

    #[test]
    fn upload_respects_device_capacity() {
        let mut spec = GpuSpec::small();
        spec.device_memory = 64; // absurdly small
        let mut gpu = Gpu::new(spec);
        let g = GraphBuilder::new(100)
            .edges((0..99).map(|i| (i, i + 1)))
            .build()
            .unwrap();
        assert!(GpuGraph::upload(&mut gpu, &g).is_err());
    }

    #[test]
    fn staged_upload_bypasses_device_capacity() {
        let mut spec = GpuSpec::small();
        spec.device_memory = 64; // far too small for a real upload
        let mut gpu = Gpu::new(spec);
        let g = GraphBuilder::new(100)
            .edges((0..99).map(|i| (i, i + 1)))
            .build()
            .unwrap();
        let gg = GpuGraph::upload_staged(&mut gpu, &g);
        assert_eq!(gpu.mem_used(), 0, "staged buffers are host memory");
        assert_eq!(gg.row_offsets.as_slice().len(), 101);
        assert_eq!(gg.cols.as_slice().len(), 99);
    }
}
