//! The graph-sampling abstraction (paper §3) and its programming API
//! (paper §4, Figure 3).
//!
//! A sampling application is described by a handful of user-defined
//! functions on the [`SamplingApp`] trait: `next` (how to sample one new
//! vertex), `step_transit` (which vertices act as transits), `sample_size`
//! (how many `next` invocations per transit or per sample at each step),
//! `steps`, `unique`, and `sampling_type`. The same application object runs
//! unmodified on every engine — NextDoor transit-parallel, sample-parallel,
//! vanilla transit-parallel, and the sequential CPU reference — which is
//! what makes the cross-engine equivalence tests possible.

use nextdoor_gpu::lane::{LaneOp, LaneTrace};
use nextdoor_gpu::rng;
use nextdoor_graph::{Csr, VertexId};

/// Sentinel for "no vertex" — the paper's `NULL` return from `next`.
pub const NULL_VERTEX: VertexId = VertexId::MAX;

/// Granularity at which new vertices are sampled (paper §3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SamplingType {
    /// `next` runs per transit, seeing that transit's neighbourhood.
    Individual,
    /// `next` runs per sample, seeing the combined neighbourhood of all the
    /// sample's transit vertices.
    Collective,
}

/// Number of computational steps of an application.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Steps {
    /// Run exactly this many steps.
    Fixed(usize),
    /// The paper's `INF`: run until no sample has live transit vertices.
    Infinite,
}

/// Read-only view of a sample's history, available to `next` and
/// `step_transit`.
pub trait SampleView {
    /// The vertex added at position `pos` of the `back`-th previous step
    /// (`back = 1` is the immediately preceding step). `back` reaching past
    /// the first step returns the initial vertices; past those,
    /// [`NULL_VERTEX`].
    fn prev_vertex(&self, back: usize, pos: usize) -> VertexId;

    /// Number of vertices added at the `back`-th previous step.
    fn prev_len(&self, back: usize) -> usize;

    /// Total vertices currently in the sample (initial + all steps, NULLs
    /// excluded).
    fn len(&self) -> usize;

    /// Whether the sample is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The sample's current root set (multi-dimensional random walks).
    fn roots(&self) -> &[VertexId];
}

/// Where a transit's adjacency list is being served from, which determines
/// what each [`NextCtx::src_edge`] access costs (paper's Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeCost {
    /// Cached in shared memory (thread-block and grid kernels).
    Shared,
    /// Held in registers, read via warp shuffles (sub-warp kernel).
    Registers,
    /// Read directly from global memory (sample-parallel engines, or cache
    /// overflow).
    Global,
}

/// A deterministic per-invocation RNG stream.
///
/// Keyed by `(seed, sample, step, slot)` so that draws are identical across
/// engines regardless of thread assignment.
#[derive(Debug, Clone)]
pub struct RngStream {
    seed: u64,
    key: u64,
    counter: u64,
}

impl RngStream {
    /// Creates the stream for a logical sampling slot.
    pub fn new(seed: u64, sample: usize, step: usize, slot: usize) -> Self {
        RngStream {
            seed,
            key: rng::sample_key(sample as u64, step as u64, slot as u64),
            counter: 0,
        }
    }

    /// One uniform 32-bit draw.
    pub fn next_u32(&mut self) -> u32 {
        let v = rng::rand_u32(self.seed, self.key, self.counter);
        self.counter += 1;
        v
    }

    /// One uniform draw in `[0, 1)`.
    pub fn next_f32(&mut self) -> f32 {
        let v = rng::rand_f32(self.seed, self.key, self.counter);
        self.counter += 1;
        v
    }

    /// One uniform draw in `[0, n)` (0 when `n == 0`).
    pub fn next_range(&mut self, n: u32) -> u32 {
        let v = rng::rand_range(self.seed, self.key, self.counter, n);
        self.counter += 1;
        v
    }
}

/// The neighbourhood `next` samples from: either one transit's edges or a
/// sample's combined neighbourhood (paper's `srcEdges`).
pub(crate) enum EdgeSource<'a> {
    /// Individual transit sampling: the transit's adjacency slice.
    Transit {
        /// The transit vertex.
        transit: VertexId,
    },
    /// Collective transit sampling: an explicit combined neighbourhood.
    Combined {
        /// Flattened combined neighbourhood of the sample.
        vertices: &'a [VertexId],
        /// Virtual device base address of the combined buffer (for cost
        /// accounting), if running on a GPU engine.
        base_addr: u64,
    },
}

/// Execution context handed to [`SamplingApp::next`].
///
/// All graph and sample accesses go through this context so that, on the
/// GPU engines, every access is recorded in the lane's trace and charged
/// with the cost class the engine chose (shared memory, registers, or
/// global memory).
pub struct NextCtx<'a> {
    /// Current step.
    pub step: usize,
    /// Sample being grown.
    pub sample_id: usize,
    /// Which of the step's `next` invocations this is (0-based within the
    /// sample, globally across its transits).
    pub slot: usize,
    pub(crate) graph: &'a Csr,
    pub(crate) source: EdgeSource<'a>,
    pub(crate) transits: &'a [VertexId],
    pub(crate) view: &'a dyn SampleView,
    pub(crate) rng: RngStream,
    pub(crate) cost: EdgeCost,
    /// Number of leading neighbours served from the cache; accesses past
    /// this index cost a global load even under `Shared`/`Registers`.
    pub(crate) cached_len: usize,
    pub(crate) trace: Option<&'a mut LaneTrace>,
    pub(crate) graph_cols_base: u64,
    pub(crate) new_edges: Vec<(VertexId, VertexId)>,
}

impl<'a> NextCtx<'a> {
    #[inline]
    fn record(&mut self, op: LaneOp) {
        if let Some(t) = self.trace.as_mut() {
            t.push(op);
        }
    }

    fn record_edge_access(&mut self, idx: usize, addr: u64) {
        let op = if idx < self.cached_len {
            match self.cost {
                EdgeCost::Shared => LaneOp::SharedLoad,
                EdgeCost::Registers => LaneOp::Shfl,
                EdgeCost::Global => LaneOp::GlobalLoad { addr, bytes: 4 },
            }
        } else {
            LaneOp::GlobalLoad { addr, bytes: 4 }
        };
        self.record(op);
    }

    /// Number of edges in the source edge set (`srcEdges.size()`).
    ///
    /// Under transit-parallel execution the engine already holds the
    /// transit's degree in a register; under sample-parallel execution each
    /// lane must load the row offsets from global memory.
    pub fn num_edges(&mut self) -> usize {
        match &self.source {
            EdgeSource::Transit { transit } => {
                let t = *transit;
                match self.cost {
                    EdgeCost::Global => self.record(LaneOp::GlobalLoad {
                        addr: 16 * t as u64 + 1, // degree table page
                        bytes: 4,
                    }),
                    _ => self.record(LaneOp::Compute(1)),
                }
                self.graph.degree(t)
            }
            EdgeSource::Combined { vertices, .. } => {
                let len = vertices.len();
                self.record(LaneOp::Compute(1));
                len
            }
        }
    }

    /// The `i`-th edge of the source edge set (`srcEdges[i]`).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn src_edge(&mut self, i: usize) -> VertexId {
        match &self.source {
            EdgeSource::Transit { transit } => {
                let t = *transit;
                let (start, end) = self.graph.adjacency_range(t);
                assert!(i < end - start, "edge index out of bounds");
                let addr = self.graph_cols_base + ((start + i) as u64) * 4;
                self.record_edge_access(i, addr);
                self.graph.neighbor(t, i)
            }
            EdgeSource::Combined {
                vertices,
                base_addr,
            } => {
                let v = vertices[i];
                let addr = *base_addr + (i as u64) * 4;
                // Combined neighbourhoods live in global memory (§6.2).
                self.record(LaneOp::GlobalLoad { addr, bytes: 4 });
                v
            }
        }
    }

    /// Weight of the `i`-th source edge (1.0 on unweighted graphs).
    pub fn edge_weight(&mut self, i: usize) -> f32 {
        match &self.source {
            EdgeSource::Transit { transit } => {
                let t = *transit;
                let (start, _) = self.graph.adjacency_range(t);
                let addr = self.graph_cols_base + ((start + i) as u64) * 4;
                self.record_edge_access(i, addr);
                self.graph.edge_weight(t, i)
            }
            EdgeSource::Combined { .. } => 1.0,
        }
    }

    /// The transit vertices forming the source edge set (paper's
    /// `transits`; a single vertex for individual transit sampling).
    pub fn transits(&self) -> &[VertexId] {
        self.transits
    }

    /// Maximum edge weight of `v` (the `Vertex::maxEdgeWeight` utility).
    ///
    /// Served from a precomputed per-vertex table: a global load under
    /// sample-parallel execution, but staged alongside the cached adjacency
    /// under transit-parallel execution (the engine loads it with the
    /// transit's metadata).
    pub fn max_edge_weight(&mut self, v: VertexId) -> f32 {
        match self.cost {
            EdgeCost::Global => self.record(LaneOp::GlobalLoad {
                addr: 8 * v as u64, // per-vertex table, distinct virtual page
                bytes: 4,
            }),
            EdgeCost::Shared => self.record(LaneOp::SharedLoad),
            EdgeCost::Registers => self.record(LaneOp::Shfl),
        }
        self.graph.max_edge_weight(v)
    }

    /// Whether the directed edge `(u, w)` exists: a binary search over `u`'s
    /// adjacency, charging one global load per probe (this is node2vec's
    /// divergence source).
    pub fn has_edge(&mut self, u: VertexId, w: VertexId) -> bool {
        if u == NULL_VERTEX {
            return false;
        }
        let (start, end) = self.graph.adjacency_range(u);
        let (mut lo, mut hi) = (start, end);
        let mut found = false;
        while lo < hi {
            let mid = (lo + hi) / 2;
            let addr = self.graph_cols_base + (mid as u64) * 4;
            self.record(LaneOp::GlobalLoad { addr, bytes: 4 });
            self.record(LaneOp::Compute(1));
            let v = self.graph.col_indices()[mid];
            match v.cmp(&w) {
                std::cmp::Ordering::Equal => {
                    found = true;
                    break;
                }
                std::cmp::Ordering::Less => lo = mid + 1,
                std::cmp::Ordering::Greater => hi = mid,
            }
        }
        found
    }

    /// Degree of an arbitrary vertex (one global load of the offsets).
    pub fn degree_of(&mut self, v: VertexId) -> usize {
        self.record(LaneOp::GlobalLoad {
            addr: 16 * v as u64 + 1, // degree table page
            bytes: 4,
        });
        self.graph.degree(v)
    }

    /// Number of vertices in the graph.
    pub fn num_vertices(&mut self) -> usize {
        self.record(LaneOp::Compute(1));
        self.graph.num_vertices()
    }

    /// The sample's history (`s.prevVertex` etc.). Reads through the view
    /// are charged as global loads of the sample buffers.
    pub fn prev_vertex(&mut self, back: usize, pos: usize) -> VertexId {
        self.record(LaneOp::GlobalLoad {
            addr: 0x4000_0000 + (self.sample_id as u64) * 64 + pos as u64 * 4,
            bytes: 4,
        });
        self.view.prev_vertex(back, pos)
    }

    /// Current size of the sample (initial vertices plus all sampled
    /// vertices so far).
    pub fn sample_len(&mut self) -> usize {
        self.record(LaneOp::Compute(1));
        self.view.len()
    }

    /// The sample's root set (multi-dimensional random walks).
    pub fn roots(&mut self) -> &[VertexId] {
        self.record(LaneOp::GlobalLoad {
            addr: 0x5000_0000 + (self.sample_id as u64) * 64,
            bytes: 4,
        });
        self.view.roots()
    }

    /// Records an application edge into the sample (importance and cluster
    /// sampling build per-sample adjacency matrices).
    pub fn add_edge(&mut self, u: VertexId, v: VertexId) {
        self.record(LaneOp::GlobalStore {
            addr: 0x6000_0000 + (self.sample_id as u64) * 1024 + self.new_edges.len() as u64 * 8,
            bytes: 8,
        });
        self.new_edges.push((u, v));
    }

    /// One uniform draw in `[0, 1)`.
    pub fn rand_f32(&mut self) -> f32 {
        self.record(LaneOp::Rand);
        self.rng.next_f32()
    }

    /// One uniform draw in `[0, n)` (0 when `n == 0`).
    pub fn rand_range(&mut self, n: usize) -> usize {
        self.record(LaneOp::Rand);
        self.rng.next_range(n as u32) as usize
    }

    /// One uniform 32-bit draw.
    pub fn rand_u32(&mut self) -> u32 {
        self.record(LaneOp::Rand);
        self.rng.next_u32()
    }

    /// Charges `n` ALU instructions of application arithmetic.
    pub fn charge_compute(&mut self, n: u16) {
        self.record(LaneOp::Compute(n));
    }

    pub(crate) fn take_new_edges(&mut self) -> Vec<(VertexId, VertexId)> {
        std::mem::take(&mut self.new_edges)
    }
}

/// A graph sampling application (paper's Figure 3).
///
/// An implementation describes *what* to sample — how many steps, how many
/// vertices per transit, and how one new vertex is chosen ([`Self::next`]).
/// *How* it runs is entirely the engines' business: the CPU oracle, the
/// SP/TP baselines, the transit-parallel GPU engine, and the serving layer
/// ([`crate::session::SamplerSession`]) all run the same application
/// unchanged and produce bit-identical samples.
///
/// # Example: k-hop neighbourhood sampling
///
/// Layer-by-layer neighbourhood expansion (GraphSAGE-style): every vertex
/// reached at step `i` draws `fanouts[i]` of its neighbours.
///
/// ```
/// use nextdoor_core::api::{NextCtx, SamplingApp, Steps};
/// use nextdoor_core::{initial_samples_random, run_cpu};
/// use nextdoor_graph::gen::{rmat, RmatParams};
///
/// struct KHop { fanouts: Vec<usize> }
/// impl SamplingApp for KHop {
///     fn name(&self) -> &'static str { "khop" }
///     fn steps(&self) -> Steps { Steps::Fixed(self.fanouts.len()) }
///     fn sample_size(&self, step: usize) -> usize { self.fanouts[step] }
///     fn next(&self, ctx: &mut NextCtx<'_>) -> Option<u32> {
///         let d = ctx.num_edges();
///         if d == 0 { return None; } // dead end: the paper's NULL
///         let i = ctx.rand_range(d);
///         Some(ctx.src_edge(i))
///     }
/// }
///
/// let graph = rmat(8, 1000, RmatParams::SKEWED, 1);
/// let init = initial_samples_random(&graph, 16, 1, 3).expect("non-empty graph");
/// let app = KHop { fanouts: vec![2, 2] };
/// let res = run_cpu(&graph, &app, &init, 42).expect("valid inputs");
/// // Each sample grows to at most 1 + 2 + 2*2 vertices (dead ends shrink it).
/// assert!(res.store.final_samples().iter().all(|s| s.len() <= 7));
/// ```
///
/// # Example: DeepWalk random walks
///
/// A fixed-length uniform random walk: one transit per sample, each step
/// moves it to a uniformly drawn neighbour. The same application run on the
/// CPU oracle and on the simulated GPU yields bit-identical walks — the
/// determinism invariant every engine upholds.
///
/// ```
/// use nextdoor_core::api::{NextCtx, SamplingApp, Steps};
/// use nextdoor_core::{initial_samples_random, run_cpu, run_nextdoor};
/// use nextdoor_gpu::{Gpu, GpuSpec};
/// use nextdoor_graph::gen::{rmat, RmatParams};
///
/// struct DeepWalk { len: usize }
/// impl SamplingApp for DeepWalk {
///     fn name(&self) -> &'static str { "deepwalk" }
///     fn steps(&self) -> Steps { Steps::Fixed(self.len) }
///     fn sample_size(&self, _step: usize) -> usize { 1 }
///     fn next(&self, ctx: &mut NextCtx<'_>) -> Option<u32> {
///         let d = ctx.num_edges();
///         if d == 0 { return None; } // stuck walker stops walking
///         let i = ctx.rand_range(d);
///         Some(ctx.src_edge(i))
///     }
/// }
///
/// let graph = rmat(8, 1000, RmatParams::SKEWED, 1);
/// let init = initial_samples_random(&graph, 32, 1, 7).expect("non-empty graph");
/// let app = DeepWalk { len: 5 };
/// let cpu = run_cpu(&graph, &app, &init, 7).expect("valid inputs");
/// let mut gpu = Gpu::new(GpuSpec::small());
/// let gpu_res = run_nextdoor(&mut gpu, &graph, &app, &init, 7)
///     .expect("inputs are valid and the graph fits");
/// assert_eq!(cpu.store.final_samples(), gpu_res.store.final_samples());
/// ```
pub trait SamplingApp: Sync {
    /// Human-readable name used in logs and benchmark tables.
    fn name(&self) -> &'static str;

    /// Number of computational steps (`steps()`).
    fn steps(&self) -> Steps;

    /// How many times `next` runs per transit (individual) or per sample
    /// (collective) at `step` (`sampleSize(step)`, the paper's `m_i`).
    fn sample_size(&self, step: usize) -> usize;

    /// Individual or collective transit sampling (`samplingType()`).
    fn sampling_type(&self) -> SamplingType {
        SamplingType::Individual
    }

    /// Whether the vertices sampled at `step` must be unique within each
    /// sample (`unique(step)`).
    fn unique(&self, _step: usize) -> bool {
        false
    }

    /// Samples one vertex (`next`), or `None` for the paper's `NULL`.
    fn next(&self, ctx: &mut NextCtx<'_>) -> Option<VertexId>;

    /// The number of transit vertices of each sample at step 0 (defaults to
    /// the number of initial vertices per sample).
    fn initial_transits(&self, initial_len: usize) -> usize {
        initial_len
    }

    /// The number of transit vertices of each sample at `step`.
    ///
    /// Default: the vertices added in the previous step all become
    /// transits — `Π mᵢ` for individual transit sampling and `mᵢ₋₁` for
    /// collective transit sampling, as §4.1 of the paper defines.
    /// Applications like multi-dimensional random walks override this to a
    /// constant.
    fn num_transits(&self, step: usize, initial_len: usize) -> usize {
        if step == 0 {
            self.initial_transits(initial_len)
        } else {
            match self.sampling_type() {
                SamplingType::Individual => {
                    self.num_transits(step - 1, initial_len) * self.sample_size(step - 1)
                }
                SamplingType::Collective => self.sample_size(step - 1),
            }
        }
    }

    /// Returns the `transit_idx`-th transit vertex of sample `s` at `step`
    /// (`stepTransits`).
    ///
    /// Default: the vertex added at position `transit_idx` of the previous
    /// step (or the initial vertices at step 0).
    fn step_transit(
        &self,
        step: usize,
        view: &dyn SampleView,
        transit_idx: usize,
        _rng: &mut RngStream,
    ) -> VertexId {
        let _ = step;
        view.prev_vertex(1, transit_idx)
    }

    /// Post-step hook for applications that mutate per-sample state (the
    /// multi-dimensional random walk replaces the chosen root with the new
    /// vertex). Called once per `(sample, transit)` after the step.
    fn update_roots(
        &self,
        _roots: &mut Vec<VertexId>,
        _step: usize,
        _transit: VertexId,
        _new_vertex: VertexId,
    ) {
    }

    /// Safety cap on steps for [`Steps::Infinite`] applications.
    fn max_steps_cap(&self) -> usize {
        512
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nextdoor_graph::GraphBuilder;

    struct DummyView {
        prev: Vec<VertexId>,
        roots: Vec<VertexId>,
    }

    impl SampleView for DummyView {
        fn prev_vertex(&self, _back: usize, pos: usize) -> VertexId {
            self.prev.get(pos).copied().unwrap_or(NULL_VERTEX)
        }
        fn prev_len(&self, _back: usize) -> usize {
            self.prev.len()
        }
        fn len(&self) -> usize {
            self.prev.len()
        }
        fn roots(&self) -> &[VertexId] {
            &self.roots
        }
    }

    fn ctx_for<'a>(
        g: &'a Csr,
        view: &'a DummyView,
        transit: &'a [VertexId],
        trace: Option<&'a mut LaneTrace>,
    ) -> NextCtx<'a> {
        NextCtx {
            step: 0,
            sample_id: 0,
            slot: 0,
            graph: g,
            source: EdgeSource::Transit {
                transit: transit[0],
            },
            transits: transit,
            view,
            rng: RngStream::new(1, 0, 0, 0),
            cost: EdgeCost::Shared,
            cached_len: usize::MAX,
            trace,
            graph_cols_base: 0x1000,
            new_edges: Vec::new(),
        }
    }

    fn small_graph() -> Csr {
        GraphBuilder::new(4)
            .edge(0, 1)
            .edge(0, 2)
            .edge(0, 3)
            .edge(1, 2)
            .build()
            .unwrap()
    }

    #[test]
    fn ctx_edge_access_and_trace() {
        let g = small_graph();
        let view = DummyView {
            prev: vec![0],
            roots: vec![],
        };
        let mut trace = LaneTrace::new();
        let transits = [0u32];
        let mut ctx = ctx_for(&g, &view, &transits, Some(&mut trace));
        assert_eq!(ctx.num_edges(), 3);
        assert_eq!(ctx.src_edge(0), 1);
        assert_eq!(ctx.src_edge(2), 3);
        assert!(ctx.has_edge(0, 2));
        assert!(!ctx.has_edge(1, 3));
        drop(ctx);
        assert!(trace.len() >= 5, "accesses recorded: {}", trace.len());
        assert!(trace.ops().iter().any(|o| matches!(o, LaneOp::SharedLoad)));
    }

    #[test]
    fn ctx_cache_overflow_costs_global() {
        let g = small_graph();
        let view = DummyView {
            prev: vec![0],
            roots: vec![],
        };
        let mut trace = LaneTrace::new();
        let transits = [0u32];
        let mut ctx = ctx_for(&g, &view, &transits, Some(&mut trace));
        ctx.cached_len = 1;
        let _ = ctx.src_edge(0); // cached -> shared
        let _ = ctx.src_edge(2); // beyond cache -> global
        drop(ctx);
        let ops = trace.ops();
        assert!(matches!(ops[0], LaneOp::SharedLoad));
        assert!(matches!(ops[1], LaneOp::GlobalLoad { .. }));
    }

    #[test]
    fn rng_stream_deterministic_and_slot_keyed() {
        let mut a = RngStream::new(7, 3, 2, 1);
        let mut b = RngStream::new(7, 3, 2, 1);
        assert_eq!(a.next_u32(), b.next_u32());
        assert_eq!(a.next_f32(), b.next_f32());
        let mut c = RngStream::new(7, 3, 2, 2);
        let mut a2 = RngStream::new(7, 3, 2, 1);
        assert_ne!(a2.next_u32(), c.next_u32());
    }

    #[test]
    fn default_num_transits_is_product_of_sizes() {
        struct App;
        impl SamplingApp for App {
            fn name(&self) -> &'static str {
                "t"
            }
            fn steps(&self) -> Steps {
                Steps::Fixed(2)
            }
            fn sample_size(&self, step: usize) -> usize {
                if step == 0 {
                    25
                } else {
                    10
                }
            }
            fn next(&self, _: &mut NextCtx<'_>) -> Option<VertexId> {
                None
            }
        }
        let app = App;
        assert_eq!(app.num_transits(0, 1), 1);
        assert_eq!(app.num_transits(1, 1), 25);
        assert_eq!(app.num_transits(2, 1), 250);
    }

    #[test]
    fn null_vertex_is_max() {
        assert_eq!(NULL_VERTEX, u32::MAX);
    }

    #[test]
    fn add_edge_accumulates() {
        let g = small_graph();
        let view = DummyView {
            prev: vec![0],
            roots: vec![],
        };
        let transits = [0u32];
        let mut ctx = ctx_for(&g, &view, &transits, None);
        ctx.add_edge(0, 1);
        ctx.add_edge(0, 2);
        assert_eq!(ctx.take_new_edges(), vec![(0, 1), (0, 2)]);
        assert!(ctx.take_new_edges().is_empty());
    }
}
