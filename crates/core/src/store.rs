//! Sample storage and the paper's two output formats (§4.1).

use crate::api::{SampleView, NULL_VERTEX};
use nextdoor_graph::VertexId;

/// The vertices of every sample, organised per step.
///
/// NextDoor supports two output formats: (1) an array of samples, each
/// holding every vertex sampled at any step (random walks, layer sampling),
/// and (2) per-step arrays (k-hop neighbourhood sampling). Both are
/// available here via [`SampleStore::final_samples`] and
/// [`SampleStore::step_values`].
#[derive(Debug, Clone)]
pub struct SampleStore {
    init: Vec<Vec<VertexId>>,
    steps: Vec<StepData>,
    roots: Vec<Vec<VertexId>>,
    edges: Vec<Vec<(VertexId, VertexId)>>,
    lens: Vec<usize>,
}

/// One step's outputs: a dense `num_samples × slots` array with
/// [`NULL_VERTEX`] holes.
#[derive(Debug, Clone, PartialEq)]
pub struct StepData {
    /// Output slots per sample at this step.
    pub slots: usize,
    /// Flattened values, `sample * slots + slot`.
    pub values: Vec<VertexId>,
}

impl SampleStore {
    /// Creates a store from the initial samples. Each sample's root set
    /// starts as a copy of its initial vertices.
    pub fn new(init: Vec<Vec<VertexId>>) -> Self {
        let lens = init.iter().map(Vec::len).collect();
        let roots = init.clone();
        let n = init.len();
        SampleStore {
            init,
            steps: Vec::new(),
            roots,
            edges: vec![Vec::new(); n],
            lens,
        }
    }

    /// Number of samples.
    pub fn num_samples(&self) -> usize {
        self.init.len()
    }

    /// Number of recorded steps.
    pub fn num_steps(&self) -> usize {
        self.steps.len()
    }

    /// The initial vertices of sample `s`.
    pub fn initial(&self, s: usize) -> &[VertexId] {
        &self.init[s]
    }

    /// Records a completed step.
    ///
    /// # Panics
    ///
    /// Panics unless `values.len() == num_samples * slots`.
    pub fn record_step(&mut self, slots: usize, values: Vec<VertexId>) {
        assert_eq!(
            values.len(),
            self.num_samples() * slots,
            "step value array has wrong shape"
        );
        for (s, len) in self.lens.iter_mut().enumerate() {
            *len += values[s * slots..(s + 1) * slots]
                .iter()
                .filter(|&&v| v != NULL_VERTEX)
                .count();
        }
        self.steps.push(StepData { slots, values });
    }

    /// The dense output of `step` (format 2 of the paper).
    pub fn step_values(&self, step: usize) -> &StepData {
        &self.steps[step]
    }

    /// Whether any vertex was sampled at the most recent step.
    pub fn last_step_live(&self) -> bool {
        self.steps
            .last()
            .is_some_and(|st| st.values.iter().any(|&v| v != NULL_VERTEX))
    }

    /// Format 1 of the paper: every sample as the list of all its sampled
    /// vertices (initial vertices first, NULLs dropped).
    pub fn final_samples(&self) -> Vec<Vec<VertexId>> {
        (0..self.num_samples())
            .map(|s| {
                let mut out = self.init[s].clone();
                for st in &self.steps {
                    out.extend(
                        st.values[s * st.slots..(s + 1) * st.slots]
                            .iter()
                            .filter(|&&v| v != NULL_VERTEX),
                    );
                }
                out
            })
            .collect()
    }

    /// Current size of sample `s` (initial + sampled, NULLs excluded).
    pub fn len_of(&self, s: usize) -> usize {
        self.lens[s]
    }

    /// The evolving root set of sample `s` (multi-dimensional walks).
    pub fn roots_of(&self, s: usize) -> &[VertexId] {
        &self.roots[s]
    }

    /// Mutable root set of sample `s`.
    pub fn roots_of_mut(&mut self, s: usize) -> &mut Vec<VertexId> {
        &mut self.roots[s]
    }

    /// Appends application edges recorded for sample `s` (importance and
    /// cluster sampling).
    pub fn add_edges(&mut self, s: usize, edges: impl IntoIterator<Item = (VertexId, VertexId)>) {
        self.edges[s].extend(edges);
    }

    /// The application edges of sample `s`.
    pub fn edges_of(&self, s: usize) -> &[(VertexId, VertexId)] {
        &self.edges[s]
    }

    /// The sub-store holding samples `start..start + len`, with every step,
    /// root set and application edge sliced to that range.
    ///
    /// This is how a fused session batch is handed back per request: the
    /// batch runs on one concatenated store, and each request receives the
    /// slice covering its own samples (see
    /// [`SamplerSession::query_fused`](crate::session::SamplerSession::query_fused)).
    ///
    /// # Panics
    ///
    /// Panics if `start + len` exceeds [`SampleStore::num_samples`].
    pub fn slice(&self, start: usize, len: usize) -> SampleStore {
        assert!(
            start + len <= self.num_samples(),
            "slice {start}..{} out of range for {} samples",
            start + len,
            self.num_samples()
        );
        SampleStore {
            init: self.init[start..start + len].to_vec(),
            steps: self
                .steps
                .iter()
                .map(|st| StepData {
                    slots: st.slots,
                    values: st.values[start * st.slots..(start + len) * st.slots].to_vec(),
                })
                .collect(),
            roots: self.roots[start..start + len].to_vec(),
            edges: self.edges[start..start + len].to_vec(),
            lens: self.lens[start..start + len].to_vec(),
        }
    }

    /// A [`SampleView`] of sample `s` as of the start of step
    /// `current_step` (i.e. seeing steps `0..current_step`).
    pub fn view(&self, s: usize, current_step: usize) -> StoreView<'_> {
        debug_assert!(current_step <= self.steps.len());
        StoreView {
            store: self,
            sample: s,
            current_step,
        }
    }
}

/// A read-only view of one sample's history.
#[derive(Clone, Copy)]
pub struct StoreView<'a> {
    store: &'a SampleStore,
    sample: usize,
    current_step: usize,
}

impl SampleView for StoreView<'_> {
    fn prev_vertex(&self, back: usize, pos: usize) -> VertexId {
        if back == 0 || back > self.current_step + 1 {
            return NULL_VERTEX;
        }
        if back == self.current_step + 1 {
            // Past the first step: the initial vertices.
            return self.store.init[self.sample]
                .get(pos)
                .copied()
                .unwrap_or(NULL_VERTEX);
        }
        let st = &self.store.steps[self.current_step - back];
        st.values
            .get(self.sample * st.slots + pos)
            .copied()
            .unwrap_or(NULL_VERTEX)
    }

    fn prev_len(&self, back: usize) -> usize {
        if back == 0 || back > self.current_step + 1 {
            return 0;
        }
        if back == self.current_step + 1 {
            return self.store.init[self.sample].len();
        }
        self.store.steps[self.current_step - back].slots
    }

    fn len(&self) -> usize {
        // Length as of the start of the current step.
        let mut n = self.store.init[self.sample].len();
        for st in &self.store.steps[..self.current_step] {
            n += st.values[self.sample * st.slots..(self.sample + 1) * st.slots]
                .iter()
                .filter(|&&v| v != NULL_VERTEX)
                .count();
        }
        n
    }

    fn roots(&self) -> &[VertexId] {
        &self.store.roots[self.sample]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store2() -> SampleStore {
        let mut st = SampleStore::new(vec![vec![5], vec![9]]);
        // Step 0: 2 slots per sample.
        st.record_step(2, vec![1, 2, 3, NULL_VERTEX]);
        // Step 1: 4 slots per sample.
        st.record_step(4, vec![10, 11, 12, 13, 20, NULL_VERTEX, 22, 23]);
        st
    }

    #[test]
    fn final_samples_concatenate_steps() {
        let st = store2();
        let fs = st.final_samples();
        assert_eq!(fs[0], vec![5, 1, 2, 10, 11, 12, 13]);
        assert_eq!(fs[1], vec![9, 3, 20, 22, 23]);
    }

    #[test]
    fn lens_track_non_null() {
        let st = store2();
        assert_eq!(st.len_of(0), 7);
        assert_eq!(st.len_of(1), 5);
    }

    #[test]
    fn view_prev_vertex_walks_backwards() {
        let st = store2();
        let v = st.view(0, 2); // after both steps
        assert_eq!(v.prev_vertex(1, 0), 10);
        assert_eq!(v.prev_vertex(1, 3), 13);
        assert_eq!(v.prev_vertex(2, 1), 2);
        assert_eq!(v.prev_vertex(3, 0), 5, "reaches initial vertices");
        assert_eq!(v.prev_vertex(4, 0), NULL_VERTEX, "beyond history");
        assert_eq!(v.prev_vertex(0, 0), NULL_VERTEX, "back=0 is invalid");
    }

    #[test]
    fn view_mid_history() {
        let st = store2();
        let v = st.view(1, 1); // as of start of step 1
        assert_eq!(v.prev_vertex(1, 0), 3);
        assert_eq!(v.prev_vertex(2, 0), 9);
        assert_eq!(v.len(), 2, "initial + one live value from step 0");
        assert_eq!(v.prev_len(1), 2);
        assert_eq!(v.prev_len(2), 1);
    }

    #[test]
    fn step_values_format() {
        let st = store2();
        assert_eq!(st.step_values(0).slots, 2);
        assert_eq!(st.step_values(0).values, vec![1, 2, 3, NULL_VERTEX]);
    }

    #[test]
    fn last_step_live_detects_all_null() {
        let mut st = SampleStore::new(vec![vec![0]]);
        assert!(!st.last_step_live(), "no steps yet");
        st.record_step(1, vec![7]);
        assert!(st.last_step_live());
        st.record_step(1, vec![NULL_VERTEX]);
        assert!(!st.last_step_live());
    }

    #[test]
    fn roots_update() {
        let mut st = SampleStore::new(vec![vec![1, 2, 3]]);
        assert_eq!(st.roots_of(0), &[1, 2, 3]);
        st.roots_of_mut(0)[1] = 42;
        assert_eq!(st.roots_of(0), &[1, 42, 3]);
    }

    #[test]
    fn edges_accumulate() {
        let mut st = SampleStore::new(vec![vec![0], vec![1]]);
        st.add_edges(1, vec![(1, 2), (1, 3)]);
        assert_eq!(st.edges_of(1), &[(1, 2), (1, 3)]);
        assert!(st.edges_of(0).is_empty());
    }

    #[test]
    fn slice_carries_every_per_sample_field() {
        let mut st = store2();
        st.add_edges(1, vec![(9, 3)]);
        st.roots_of_mut(1)[0] = 77;
        let sub = st.slice(1, 1);
        assert_eq!(sub.num_samples(), 1);
        assert_eq!(sub.final_samples(), vec![vec![9, 3, 20, 22, 23]]);
        assert_eq!(sub.len_of(0), st.len_of(1));
        assert_eq!(sub.edges_of(0), st.edges_of(1));
        assert_eq!(sub.roots_of(0), st.roots_of(1));
        assert_eq!(sub.step_values(0).slots, 2);
        assert_eq!(sub.step_values(1).values, &st.step_values(1).values[4..8]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn slice_rejects_out_of_range() {
        let st = store2();
        let _ = st.slice(1, 2);
    }

    #[test]
    #[should_panic(expected = "wrong shape")]
    fn record_step_validates_shape() {
        let mut st = SampleStore::new(vec![vec![0]]);
        st.record_step(2, vec![1]);
    }
}
