//! Collective transit sampling (paper §6.2).
//!
//! A collective step has two phases: building each sample's *combined
//! neighbourhood* (the concatenated adjacency lists of its transits), then
//! sampling new vertices from it. The build phase is the bottleneck, so
//! NextDoor runs it transit-parallel — each transit's adjacency is loaded
//! into shared memory once and fanned out to all its samples — while the
//! sample-parallel baseline re-reads the adjacency from global memory for
//! every sample. Vertex selection then runs sample-parallel in both systems
//! (the paper's choice, since equal combined neighbourhoods are rare).

use crate::api::{EdgeSource, NextCtx, RngStream, NULL_VERTEX};
use crate::engine::kernels::{StepExec, StepOut};
use crate::engine::scheduling::SchedulingIndex;
use nextdoor_gpu::algorithms::exclusive_scan;
use nextdoor_gpu::lane::LaneTrace;
use nextdoor_gpu::warp::mask_first_n;
use nextdoor_gpu::{BlockShards, DeviceBuffer, Gpu, LaunchConfig, SyncSlice, WARP_SIZE};
use nextdoor_graph::VertexId;

/// The combined neighbourhoods of all samples for one step.
pub(crate) struct CombinedNeighborhoods {
    /// Flattened vertices, sample-major.
    pub vertices: Vec<VertexId>,
    /// Per-sample `(start, len)` into `vertices`.
    pub ranges: Vec<(usize, usize)>,
    /// Live transits of each sample (NULLs removed), in transit-index order.
    pub sample_transits: Vec<Vec<VertexId>>,
    /// Device buffer holding the combined neighbourhoods.
    pub device: DeviceBuffer<u32>,
}

/// Computes the functional combined neighbourhoods and allocates the device
/// buffer, charging the degree scan that sizes the per-sample regions.
pub(crate) fn prepare_combined(gpu: &mut Gpu, ex: &StepExec<'_>) -> CombinedNeighborhoods {
    let ns = ex.store.num_samples();
    let tps = ex.plan.tps;
    let mut vertices = Vec::new();
    let mut ranges = Vec::with_capacity(ns);
    let mut sample_transits = Vec::with_capacity(ns);
    let mut pair_degrees = Vec::with_capacity(ns * tps);
    for s in 0..ns {
        let start = vertices.len();
        let mut live = Vec::new();
        for t in 0..tps {
            let tv = ex.plan.transits[s * tps + t];
            if tv == NULL_VERTEX {
                pair_degrees.push(0u32);
                continue;
            }
            live.push(tv);
            pair_degrees.push(ex.graph.degree(tv) as u32);
            vertices.extend_from_slice(ex.graph.neighbors(tv));
        }
        ranges.push((start, vertices.len() - start));
        sample_transits.push(live);
    }
    // The offsets of each transit's slice inside the combined buffers are
    // produced by a device-wide scan of the per-pair degrees.
    let deg_dev = gpu.to_device(&pair_degrees);
    let (_offsets, _total) = exclusive_scan(gpu, &deg_dev);
    let mut device = gpu.alloc::<u32>(vertices.len().max(1));
    device.as_mut_slice()[..vertices.len()].copy_from_slice(&vertices);
    CombinedNeighborhoods {
        vertices,
        ranges,
        sample_transits,
        device,
    }
}

/// Transit-parallel combined-neighbourhood build (NextDoor): one block per
/// transit; the adjacency is staged through shared memory once and written
/// out coalesced to every associated sample's region.
pub(crate) fn build_combined_transit_parallel(
    gpu: &mut Gpu,
    ex: &StepExec<'_>,
    index: &SchedulingIndex,
    combined: &mut CombinedNeighborhoods,
) {
    if index.segments.is_empty() {
        return;
    }
    let segs = &index.segments;
    let ranges = &combined.ranges;
    let sample_transits = &combined.sample_transits;
    let dev = &mut combined.device;
    gpu.launch(
        "nd_combined_build",
        LaunchConfig {
            grid_dim: segs.len(),
            block_dim: 1024,
        },
        |blk| {
            let seg = segs[blk.block_idx];
            let deg = ex.graph.degree(seg.transit);
            if deg == 0 {
                return;
            }
            let (row_start, _) = ex.graph.adjacency_range(seg.transit);
            let cache_n = deg.min(blk.shared_words_free());
            let cache = blk.shared_alloc(cache_n.max(1));
            let num_warps = blk.num_warps();
            if let Some(arr) = cache {
                // Stage the adjacency into shared memory, coalesced.
                let chunks = cache_n.div_ceil(WARP_SIZE);
                blk.for_each_warp(|w| {
                    let mut c = w.warp_in_block;
                    while c < chunks {
                        let base = c * WARP_SIZE;
                        let len = WARP_SIZE.min(cache_n - base);
                        let msk = mask_first_n(len);
                        let gidx: [usize; WARP_SIZE] =
                            std::array::from_fn(|l| row_start + (base + l).min(cache_n - 1));
                        let v = w.ld_global(&ex.gg.cols, &gidx, msk);
                        let sidx: [usize; WARP_SIZE] =
                            std::array::from_fn(|l| (base + l).min(cache_n - 1));
                        w.st_shared(&arr, &sidx, v, msk);
                        c += num_warps;
                    }
                });
                blk.syncthreads();
                // Fan out to each sample: one warp per pair, round-robin.
                blk.for_each_warp(|w| {
                    let mut p = w.warp_in_block;
                    while p < seg.count {
                        let pair_id = index.sorted_pair_ids[seg.start + p];
                        let (sample, _tidx) = ex.decode_pair(pair_id);
                        let (dst_base, _) = ranges[sample];
                        let dst_off = combined_offset_of(ex, &sample_transits[sample], seg.transit);
                        for c in 0..deg.div_ceil(WARP_SIZE) {
                            let base = c * WARP_SIZE;
                            let len = WARP_SIZE.min(deg - base);
                            let msk = mask_first_n(len);
                            let sidx: [usize; WARP_SIZE] =
                                std::array::from_fn(|l| (base + l).min(cache_n.max(1) - 1));
                            let v = w.ld_shared(&arr, &sidx, msk);
                            let didx: [usize; WARP_SIZE] = std::array::from_fn(|l| {
                                dst_base + dst_off + (base + l).min(deg - 1)
                            });
                            w.st_global(dev, &didx, v, msk);
                        }
                        p += num_warps;
                    }
                });
            }
        },
    );
}

/// Sample-parallel combined-neighbourhood build (the SP baseline): one warp
/// per `(sample, transit)` pair, reading the adjacency from global memory
/// every time.
pub(crate) fn build_combined_sample_parallel(
    gpu: &mut Gpu,
    ex: &StepExec<'_>,
    combined: &mut CombinedNeighborhoods,
) {
    let ns = ex.store.num_samples();
    let tps = ex.plan.tps;
    let num_pairs = ns * tps;
    if num_pairs == 0 {
        return;
    }
    let ranges = &combined.ranges;
    let sample_transits = &combined.sample_transits;
    let dev = &mut combined.device;
    gpu.launch(
        "sp_combined_build",
        LaunchConfig::grid1d(num_pairs * WARP_SIZE, 256),
        |blk| {
            blk.for_each_warp(|w| {
                let pair = w.global_warp_id();
                if pair >= num_pairs {
                    return;
                }
                let (sample, tidx) = (pair / tps, pair % tps);
                let transit = ex.plan.transits[sample * tps + tidx];
                if transit == NULL_VERTEX {
                    return;
                }
                let deg = ex.graph.degree(transit);
                if deg == 0 {
                    return;
                }
                let (row_start, _) = ex.graph.adjacency_range(transit);
                let (dst_base, _) = ranges[sample];
                let dst_off = combined_offset_of(ex, &sample_transits[sample], transit);
                for c in 0..deg.div_ceil(WARP_SIZE) {
                    let base = c * WARP_SIZE;
                    let len = WARP_SIZE.min(deg - base);
                    let msk = mask_first_n(len);
                    let gidx: [usize; WARP_SIZE] =
                        std::array::from_fn(|l| row_start + (base + l).min(deg - 1));
                    let v = w.ld_global(&ex.gg.cols, &gidx, msk);
                    let didx: [usize; WARP_SIZE] =
                        std::array::from_fn(|l| dst_base + dst_off + (base + l).min(deg - 1));
                    w.st_global(dev, &didx, v, msk);
                }
            });
        },
    );
}

/// Offset of `transit`'s slice inside a sample's combined region.
fn combined_offset_of(ex: &StepExec<'_>, transits: &[VertexId], transit: VertexId) -> usize {
    let mut off = 0usize;
    for &t in transits {
        if t == transit {
            return off;
        }
        off += ex.graph.degree(t);
    }
    off
}

/// The vertex-selection phase: `m` consecutive lanes per sample run `next`
/// over the sample's combined neighbourhood (sample-parallel in both
/// NextDoor and SP, per §6.2).
pub(crate) fn run_collective_next_kernel(
    gpu: &mut Gpu,
    ex: &StepExec<'_>,
    combined: &CombinedNeighborhoods,
    out: &mut StepOut,
) {
    let ns = ex.store.num_samples();
    let m = ex.plan.m;
    let total = ns * m;
    if total == 0 {
        return;
    }
    let cfg = LaunchConfig::grid1d(total, 256);
    let values = SyncSlice::new(&mut out.values);
    let edge_shards = BlockShards::new(cfg.grid_dim);
    let step_buf = &out.step_buf;
    gpu.launch("collective_next", cfg, |blk| {
        blk.for_each_warp(|w| {
            let gid = w.global_thread_ids();
            let valid = w
                .mask_where(|l| gid[l] < total && !combined.sample_transits[gid[l] / m].is_empty());
            if valid == 0 {
                return;
            }
            let mut traces: [LaneTrace; WARP_SIZE] = std::array::from_fn(|_| LaneTrace::new());
            let mut vals = [NULL_VERTEX; WARP_SIZE];
            let mut idxs = [0usize; WARP_SIZE];
            for l in 0..WARP_SIZE {
                if valid & (1 << l) == 0 {
                    continue;
                }
                let sample = gid[l] / m;
                let j = gid[l] % m;
                let (start, len) = combined.ranges[sample];
                let view = ex.store.view(sample, ex.plan.step);
                let (seed, local) = ex.keys.key(sample);
                let mut ctx = NextCtx {
                    step: ex.plan.step,
                    sample_id: local as usize,
                    slot: j,
                    graph: ex.graph,
                    source: EdgeSource::Combined {
                        vertices: &combined.vertices[start..start + len],
                        base_addr: combined.device.addr_of(start),
                    },
                    transits: &combined.sample_transits[sample],
                    view: &view,
                    rng: RngStream::new(seed, local as usize, ex.plan.step, j),
                    cost: crate::api::EdgeCost::Global,
                    cached_len: 0,
                    trace: Some(&mut traces[l]),
                    graph_cols_base: ex.gg.cols_base(),
                    new_edges: Vec::new(),
                };
                let v = ex.app.next(&mut ctx).unwrap_or(NULL_VERTEX);
                let es = ctx.take_new_edges();
                drop(ctx);
                vals[l] = v;
                idxs[l] = sample * ex.plan.slots + j;
                // SAFETY: each `(sample, j)` slot belongs to exactly one
                // lane of the launch, and each shard is only touched by the
                // thread executing its block.
                unsafe {
                    values.write(idxs[l], v);
                    if !es.is_empty() {
                        edge_shards.push(w.block_idx, (sample, es));
                    }
                }
            }
            w.replay(&traces, valid);
            w.st_global(step_buf, &idxs, vals, valid);
        });
    });
    for (sample, es) in edge_shards.into_ordered() {
        out.edges[sample].extend(es);
    }
}
