//! The shared step loop of the three GPU engines.
//!
//! The engines differ only in how each step's `next` invocations are
//! scheduled onto the GPU; everything else — transit planning, collective
//! neighbourhood semantics, uniqueness, termination — is common and lives
//! here, so that the engines are directly comparable (and provably produce
//! identical samples). The out-of-GPU-memory mode (§8.4) reuses
//! [`exec_step`] with its own outer loop.

use crate::api::{SamplingApp, SamplingType, NULL_VERTEX};
use crate::engine::collective::{
    build_combined_sample_parallel, build_combined_transit_parallel, prepare_combined,
    run_collective_next_kernel,
};
use crate::engine::kernels::{
    block_class_work, charge_step_transits, grid_class_work, run_sample_parallel_kernel,
    run_subwarp_kernel, run_transit_block_kernel, BlockWork, StepExec, StepOut,
};
use crate::engine::scheduling::{build_scheduling_index, partition_kernel_classes};
use crate::engine::{finish_step, plan_step, step_budget, unique, EngineStats, RunResult, StepPlan};
use crate::gpu_graph::GpuGraph;
use crate::store::SampleStore;
use nextdoor_gpu::{DeviceBuffer, Gpu};
use nextdoor_graph::{Csr, VertexId};

/// Which parallelisation strategy to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum GpuEngineKind {
    /// Transit-parallel with scheduling index and three kernel classes.
    NextDoor,
    /// Fine-grained sample-parallel (the paper's SP baseline).
    SampleParallel,
    /// Vanilla transit-parallel: map inversion but one block per transit
    /// (the paper's TP baseline).
    VanillaTp,
}

/// Collects the live `(transit, pair_id)` pairs of a step.
pub(crate) fn live_pairs(plan: &StepPlan, num_samples: usize) -> Vec<(VertexId, u32)> {
    let mut pairs = Vec::with_capacity(num_samples * plan.tps);
    for s in 0..num_samples {
        for t in 0..plan.tps {
            let tv = plan.transits[s * plan.tps + t];
            if tv != NULL_VERTEX {
                pairs.push((tv, (s * plan.tps + t) as u32));
            }
        }
    }
    pairs
}

/// Executes one step's `next` invocations under `kind`, filling `out`.
/// Returns the cycles spent building the scheduling index.
pub(crate) fn exec_step(
    gpu: &mut Gpu,
    ex: &StepExec<'_>,
    kind: GpuEngineKind,
    transit_buf: &DeviceBuffer<u32>,
    out: &mut StepOut,
) -> f64 {
    let ns = ex.store.num_samples();
    let plan = ex.plan;
    let mut sched_cycles = 0.0;
    match ex.app.sampling_type() {
        SamplingType::Individual => match kind {
            GpuEngineKind::NextDoor => {
                let pairs = live_pairs(plan, ns);
                let c0 = gpu.counters().cycles;
                let index = build_scheduling_index(gpu, &pairs, ex.graph.num_vertices());
                let classes = partition_kernel_classes(gpu, &index, plan.m, 1024);
                sched_cycles += gpu.counters().cycles - c0;
                run_subwarp_kernel(gpu, ex, &index, &classes.sub_warp, out);
                let bw = block_class_work(&index, &classes.block);
                run_transit_block_kernel(gpu, "nextdoor_block", ex, &index, &bw, false, out);
                let gw = grid_class_work(&index, &classes.grid, plan.m, 1024);
                run_transit_block_kernel(gpu, "nextdoor_grid", ex, &index, &gw, false, out);
            }
            GpuEngineKind::SampleParallel => {
                run_sample_parallel_kernel(gpu, ex, transit_buf, out);
            }
            GpuEngineKind::VanillaTp => {
                let pairs = live_pairs(plan, ns);
                let c0 = gpu.counters().cycles;
                let index = build_scheduling_index(gpu, &pairs, ex.graph.num_vertices());
                sched_cycles += gpu.counters().cycles - c0;
                let bw: Vec<BlockWork> = (0..index.segments.len())
                    .map(|si| BlockWork {
                        seg: si,
                        pair_start: 0,
                        pair_count: index.segments[si].count,
                    })
                    .collect();
                run_transit_block_kernel(gpu, "tp_block", ex, &index, &bw, true, out);
            }
        },
        SamplingType::Collective => {
            let mut comb = prepare_combined(gpu, ex);
            match kind {
                GpuEngineKind::NextDoor | GpuEngineKind::VanillaTp => {
                    let pairs = live_pairs(plan, ns);
                    let c0 = gpu.counters().cycles;
                    let index = build_scheduling_index(gpu, &pairs, ex.graph.num_vertices());
                    sched_cycles += gpu.counters().cycles - c0;
                    build_combined_transit_parallel(gpu, ex, &index, &mut comb);
                }
                GpuEngineKind::SampleParallel => {
                    build_combined_sample_parallel(gpu, ex, &mut comb);
                }
            }
            run_collective_next_kernel(gpu, ex, &comb, out);
        }
    }
    sched_cycles
}

/// Runs `app` to completion with the chosen engine on `gpu`.
pub(crate) fn run_gpu_engine(
    gpu: &mut Gpu,
    graph: &Csr,
    app: &dyn SamplingApp,
    init: &[Vec<VertexId>],
    seed: u64,
    kind: GpuEngineKind,
) -> RunResult {
    assert!(!init.is_empty(), "need at least one initial sample");
    let init_len = init[0].len();
    assert!(
        init.iter().all(|s| s.len() == init_len),
        "initial samples must have equal sizes"
    );
    let gg = GpuGraph::upload(gpu, graph).expect("graph must fit in device memory");
    let mut store = SampleStore::new(init.to_vec());
    let counters0 = *gpu.counters();
    let mut sched_cycles = 0.0;
    let mut steps_run = 0;
    let init_flat: Vec<u32> = init.iter().flatten().copied().collect();
    let mut prev_buf = gpu.to_device(&init_flat);
    for step in 0..step_budget(app) {
        let plan = plan_step(app, &store, step, seed);
        if plan.live == 0 {
            break;
        }
        let ns = store.num_samples();
        let mut transit_buf = gpu.alloc::<u32>(ns * plan.tps);
        charge_step_transits(gpu, &prev_buf, &mut transit_buf);
        transit_buf.as_mut_slice().copy_from_slice(&plan.transits);
        let mut out = StepOut::new(gpu, ns, plan.slots);
        {
            let ex = StepExec {
                graph,
                gg: &gg,
                app,
                store: &store,
                plan: &plan,
                seed,
            };
            sched_cycles += exec_step(gpu, &ex, kind, &transit_buf, &mut out);
        }
        let StepOut {
            mut values,
            edges,
            step_buf,
        } = out;
        if app.unique(step) {
            unique::dedup_values_gpu(gpu, &mut values, plan.slots, ns);
        }
        let live_this_step = values.iter().any(|&v| v != NULL_VERTEX);
        finish_step(app, &mut store, &plan, values, edges);
        steps_run += 1;
        prev_buf = step_buf;
        if !live_this_step {
            break;
        }
    }
    let counters = gpu.counters().diff(&counters0);
    let spec = gpu.spec();
    let total_ms = spec.cycles_to_ms(counters.cycles);
    let scheduling_ms = spec.cycles_to_ms(sched_cycles);
    RunResult {
        store,
        stats: EngineStats {
            total_ms,
            sampling_ms: total_ms - scheduling_ms,
            scheduling_ms,
            counters,
            steps_run,
        },
    }
}
