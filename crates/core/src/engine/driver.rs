//! The shared step loop of the three GPU engines.
//!
//! The engines differ only in how each step's `next` invocations are
//! scheduled onto the GPU; everything else — transit planning, collective
//! neighbourhood semantics, uniqueness, termination, fault recovery — is
//! common and lives in [`run_step_loop`], so that the engines are directly
//! comparable (and provably produce identical samples). The out-of-GPU-memory
//! mode (§8.4) reuses the same loop with a residency descriptor that charges
//! per-step sub-graph transfers.
//!
//! # Fault recovery
//!
//! Device faults (injected via [`nextdoor_gpu::FaultPlan`] or real) surface
//! through two channels: fallible allocations return `Err(OutOfMemory)`, and
//! kernel launches record [`nextdoor_gpu::FaultEvent`]s drained with
//! `take_faults()`. The step loop drains events at step granularity: a step
//! whose execution observed any fault discards its outputs and re-executes —
//! sound because the sampling RNG is counter-based, keyed by
//! `(seed, sample, step, slot)`, so a re-run is bit-identical. A step still
//! faulting after [`MAX_STEP_RETRIES`] retries fails the run with
//! [`NextDoorError::KernelFault`]; device loss is never retried locally and
//! surfaces as [`NextDoorError::DeviceLost`] for the multi-GPU layer to
//! fail over. An upload that does not fit degrades the NextDoor engine to
//! the out-of-core engine instead of failing.

use crate::api::{SamplingApp, SamplingType, NULL_VERTEX};
use crate::engine::collective::{
    build_combined_sample_parallel, build_combined_transit_parallel, prepare_combined,
    run_collective_next_kernel,
};
use crate::engine::kernels::{
    block_class_work, charge_step_transits, grid_class_work, run_sample_parallel_kernel,
    run_subwarp_kernel, run_transit_block_kernel, BlockWork, StepExec, StepOut,
};
use crate::engine::scheduling::{build_scheduling_index_tuned, partition_kernel_classes_tuned};
use crate::engine::{
    finish_step, plan_step, step_budget, unique, EngineStats, RunResult, SampleKeys, StepPlan,
};
use crate::error::{FaultReport, NextDoorError};
use crate::gpu_graph::GpuGraph;
use crate::large_graph::GraphPartitions;
use crate::store::SampleStore;
use crate::tuning::{HotTransitCache, KernelTuning, TuningPlan};
use nextdoor_gpu::{DeviceBuffer, Gpu, OutOfMemory};
use nextdoor_graph::{Csr, VertexId};

/// How many times a faulted step is re-executed before the run fails with
/// [`NextDoorError::KernelFault`].
pub(crate) const MAX_STEP_RETRIES: usize = 3;

/// Which parallelisation strategy to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum GpuEngineKind {
    /// Transit-parallel with scheduling index and three kernel classes.
    NextDoor,
    /// Fine-grained sample-parallel (the paper's SP baseline).
    SampleParallel,
    /// Vanilla transit-parallel: map inversion but one block per transit
    /// (the paper's TP baseline).
    VanillaTp,
}

/// Collects the live `(transit, pair_id)` pairs of a step.
pub(crate) fn live_pairs(plan: &StepPlan, num_samples: usize) -> Vec<(VertexId, u32)> {
    let mut pairs = Vec::with_capacity(num_samples * plan.tps);
    for s in 0..num_samples {
        for t in 0..plan.tps {
            let tv = plan.transits[s * plan.tps + t];
            if tv != NULL_VERTEX {
                pairs.push((tv, (s * plan.tps + t) as u32));
            }
        }
    }
    pairs
}

/// Executes one step's `next` invocations under `kind`, filling `out`.
/// Returns the cycles spent building the scheduling index.
///
/// `tuning` supplies the session's [`TuningPlan`] (the default plan
/// reproduces the untuned engine byte-identically) and `cache` the
/// session's [`HotTransitCache`], if any: the NextDoor engine consults it
/// for memoised scheduling indices and resident adjacency slices, and
/// feeds its transit frequencies. Samples are identical either way — the
/// knobs move cost, never RNG draws.
///
/// # Errors
///
/// Returns [`OutOfMemory`] when a scheduling-stage device allocation fails
/// (genuinely or through a scripted fault); the step loop classifies the
/// failure and retries the step when the fault was injected.
pub(crate) fn exec_step(
    gpu: &mut Gpu,
    ex: &StepExec<'_>,
    kind: GpuEngineKind,
    transit_buf: &DeviceBuffer<u32>,
    tuning: &TuningPlan,
    mut cache: Option<&mut HotTransitCache>,
    out: &mut StepOut,
) -> Result<f64, OutOfMemory> {
    let ns = ex.store.num_samples();
    let plan = ex.plan;
    let mut sched_cycles = 0.0;
    match ex.app.sampling_type() {
        SamplingType::Individual => match kind {
            GpuEngineKind::NextDoor => {
                let pairs = live_pairs(plan, ns);
                let (sub_warp, max_block) = (tuning.sub_warp_threshold, tuning.max_block_threads);
                let c0 = gpu.counters().cycles;
                let memo = cache
                    .as_deref_mut()
                    .and_then(|c| c.lookup_sched(&pairs, plan.m, sub_warp, max_block));
                let (index, classes) = match memo {
                    Some(hit) => hit,
                    None => {
                        let index = build_scheduling_index_tuned(
                            gpu,
                            &pairs,
                            ex.graph.num_vertices(),
                            tuning.tight_key_range,
                        )?;
                        let classes = partition_kernel_classes_tuned(
                            gpu, &index, plan.m, sub_warp, max_block,
                        )?;
                        if let Some(c) = cache.as_deref_mut() {
                            c.store_sched(&pairs, plan.m, sub_warp, max_block, &index, &classes);
                        }
                        (index, classes)
                    }
                };
                if let Some(c) = cache.as_deref_mut() {
                    c.note_index(&index);
                }
                sched_cycles += gpu.counters().cycles - c0;
                let resident = cache.as_deref().map_or(&[][..], |c| c.resident());
                let tune = KernelTuning::from_plan(tuning, resident);
                run_subwarp_kernel(gpu, ex, &index, &classes.sub_warp, &tune, out);
                let bw = block_class_work(&index, &classes.block);
                run_transit_block_kernel(gpu, "nextdoor_block", ex, &index, &bw, &tune, out);
                let gw = grid_class_work(&index, &classes.grid, plan.m, tuning.block_dim);
                run_transit_block_kernel(gpu, "nextdoor_grid", ex, &index, &gw, &tune, out);
            }
            GpuEngineKind::SampleParallel => {
                run_sample_parallel_kernel(gpu, ex, transit_buf, out);
            }
            GpuEngineKind::VanillaTp => {
                let pairs = live_pairs(plan, ns);
                let c0 = gpu.counters().cycles;
                let index = build_scheduling_index_tuned(
                    gpu,
                    &pairs,
                    ex.graph.num_vertices(),
                    tuning.tight_key_range,
                )?;
                sched_cycles += gpu.counters().cycles - c0;
                let bw: Vec<BlockWork> = (0..index.segments.len())
                    .map(|si| BlockWork {
                        seg: si,
                        pair_start: 0,
                        pair_count: index.segments[si].count,
                    })
                    .collect();
                let tune = KernelTuning::baseline();
                run_transit_block_kernel(gpu, "tp_block", ex, &index, &bw, &tune, out);
            }
        },
        SamplingType::Collective => {
            let mut comb = prepare_combined(gpu, ex);
            match kind {
                GpuEngineKind::NextDoor | GpuEngineKind::VanillaTp => {
                    let pairs = live_pairs(plan, ns);
                    let c0 = gpu.counters().cycles;
                    let index = build_scheduling_index_tuned(
                        gpu,
                        &pairs,
                        ex.graph.num_vertices(),
                        tuning.tight_key_range,
                    )?;
                    sched_cycles += gpu.counters().cycles - c0;
                    build_combined_transit_parallel(gpu, ex, &index, &mut comb);
                }
                GpuEngineKind::SampleParallel => {
                    build_combined_sample_parallel(gpu, ex, &mut comb);
                }
            }
            run_collective_next_kernel(gpu, ex, &comb, out);
        }
    }
    Ok(sched_cycles)
}

/// Classifies a fallible device allocation: `Ok(Some(_))` succeeded,
/// `Ok(None)` hit an injected fault (absorbed into `report`; retry the
/// operation), `Err(_)` is genuine memory exhaustion or device loss.
pub(crate) fn absorb_alloc_fault<T>(
    gpu: &mut Gpu,
    report: &mut FaultReport,
    res: Result<T, OutOfMemory>,
) -> Result<Option<T>, NextDoorError> {
    match res {
        Ok(v) => Ok(Some(v)),
        Err(oom) => {
            let events = gpu.take_faults();
            if events.is_empty() {
                // No fault event means the device is genuinely full.
                return Err(oom.into());
            }
            report.absorb(&events);
            if gpu.device_lost() {
                return Err(NextDoorError::DeviceLost { device: 0 });
            }
            Ok(None)
        }
    }
}

/// Everything [`run_step_loop`] produces besides what the caller derives
/// from the GPU counters.
pub(crate) struct StepLoopOut {
    pub store: SampleStore,
    pub sched_cycles: f64,
    pub transfer_cycles: f64,
    pub transfers: usize,
    pub steps_run: usize,
    pub report: FaultReport,
    /// Per executed step: `(step, first_launch, end_launch)` bracketing the
    /// step's kernel launches (retried attempts included) by the device's
    /// monotonic launch index, for the per-step profile breakdown.
    pub step_marks: Vec<(usize, u64, u64)>,
}

/// The engine-independent, fault-tolerant step loop.
///
/// With `residency` set, the graph is assumed host-staged and each step
/// first transfers the sub-graphs holding live transits (out-of-core mode;
/// the caller must have enabled transfer charging). Transfers are charged
/// once per step: a retried attempt reuses the already-resident sub-graphs.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_step_loop(
    gpu: &mut Gpu,
    graph: &Csr,
    gg: &GpuGraph,
    app: &dyn SamplingApp,
    init: &[Vec<VertexId>],
    keys: &SampleKeys,
    kind: GpuEngineKind,
    residency: Option<&GraphPartitions>,
    tuning: &TuningPlan,
    mut cache: Option<&mut HotTransitCache>,
) -> Result<StepLoopOut, NextDoorError> {
    if gpu.device_lost() {
        return Err(NextDoorError::DeviceLost { device: 0 });
    }
    let mut report = FaultReport::default();
    let mut store = SampleStore::new(init.to_vec());
    let mut sched_cycles = 0.0;
    let mut transfer_cycles = 0.0;
    let mut transfers = 0usize;
    let mut steps_run = 0usize;
    let mut step_marks: Vec<(usize, u64, u64)> = Vec::new();
    let init_flat: Vec<u32> = init.iter().flatten().copied().collect();
    let mut prev_buf = {
        let mut retries = 0usize;
        loop {
            let res = gpu.try_to_device(&init_flat);
            match absorb_alloc_fault(gpu, &mut report, res)? {
                Some(b) => break b,
                None => {
                    if retries >= MAX_STEP_RETRIES {
                        return Err(NextDoorError::KernelFault { step: 0, retries });
                    }
                    retries += 1;
                    report.step_retries += 1;
                }
            }
        }
    };
    for step in 0..step_budget(app) {
        let plan = plan_step(app, &store, step, keys);
        if plan.live == 0 {
            break;
        }
        if let Some(parts) = residency {
            // Which sub-graphs hold this step's transits?
            let mut needed: Vec<bool> = vec![false; parts.len()];
            for &t in &plan.transits {
                if t != NULL_VERTEX {
                    needed[parts.partition_of(t)] = true;
                }
            }
            let c0 = gpu.counters().cycles;
            for (p, used) in needed.iter().enumerate() {
                if *used {
                    gpu.charge_htod(parts.bytes_of(p));
                    transfers += 1;
                }
            }
            transfer_cycles += gpu.counters().cycles - c0;
        }
        let ns = store.num_samples();
        let mut retries = 0usize;
        let step_launch0 = gpu.launches_issued();
        let (values, edges, step_buf) = loop {
            // A faulted attempt falls through to the retry bookkeeping at
            // the bottom; allocation faults restart the attempt directly.
            let res = gpu.try_alloc::<u32>(ns * plan.tps);
            let Some(transit_buf) = absorb_alloc_fault(gpu, &mut report, res)? else {
                if retries >= MAX_STEP_RETRIES {
                    return Err(NextDoorError::KernelFault { step, retries });
                }
                retries += 1;
                report.step_retries += 1;
                continue;
            };
            charge_step_transits(gpu, &prev_buf, &transit_buf, &plan.transits, plan.tps);
            let res = StepOut::try_new(gpu, ns, plan.slots);
            let Some(mut out) = absorb_alloc_fault(gpu, &mut report, res)? else {
                if retries >= MAX_STEP_RETRIES {
                    return Err(NextDoorError::KernelFault { step, retries });
                }
                retries += 1;
                report.step_retries += 1;
                continue;
            };
            {
                let ex = StepExec {
                    graph,
                    gg,
                    app,
                    store: &store,
                    plan: &plan,
                    keys,
                };
                let res = exec_step(
                    gpu,
                    &ex,
                    kind,
                    &transit_buf,
                    tuning,
                    cache.as_deref_mut(),
                    &mut out,
                );
                let Some(cycles) = absorb_alloc_fault(gpu, &mut report, res)? else {
                    if retries >= MAX_STEP_RETRIES {
                        return Err(NextDoorError::KernelFault { step, retries });
                    }
                    retries += 1;
                    report.step_retries += 1;
                    continue;
                };
                sched_cycles += cycles;
            }
            let StepOut {
                mut values,
                edges,
                step_buf,
            } = out;
            if app.unique(step) {
                unique::dedup_values_gpu(gpu, &mut values, plan.slots, ns);
            }
            let events = gpu.take_faults();
            if events.is_empty() {
                break (values, edges, step_buf);
            }
            // The attempt observed at least one fault: its outputs cannot
            // be trusted. Discard them and re-execute — the RNG is keyed by
            // (seed, sample, step, slot), so a clean re-run reproduces the
            // exact values a fault-free run would have produced.
            report.absorb(&events);
            if gpu.device_lost() {
                return Err(NextDoorError::DeviceLost { device: 0 });
            }
            if retries >= MAX_STEP_RETRIES {
                return Err(NextDoorError::KernelFault { step, retries });
            }
            retries += 1;
            report.step_retries += 1;
        };
        let live_this_step = values.iter().any(|&v| v != NULL_VERTEX);
        finish_step(app, &mut store, &plan, values, edges);
        steps_run += 1;
        step_marks.push((step, step_launch0, gpu.launches_issued()));
        prev_buf = step_buf;
        if !live_this_step {
            break;
        }
    }
    Ok(StepLoopOut {
        store,
        sched_cycles,
        transfer_cycles,
        transfers,
        steps_run,
        report,
        step_marks,
    })
}

/// Folds a finished step loop into a [`RunResult`]: counter deltas since
/// `counters0`, the per-kernel profile of launches since `launch0`, and the
/// simulated-time breakdown. Shared by the one-shot entry points and the
/// persistent [`SamplerSession`](crate::session::SamplerSession).
pub(crate) fn finish_run(
    gpu: &Gpu,
    counters0: &nextdoor_gpu::Counters,
    launch0: u64,
    out: StepLoopOut,
) -> RunResult {
    let counters = gpu.counters().diff(counters0);
    let profile = crate::engine::profile::RunProfile::from_device(gpu, launch0, &out.step_marks);
    let spec = gpu.spec();
    let total_ms = spec.cycles_to_ms(counters.cycles);
    let scheduling_ms = spec.cycles_to_ms(out.sched_cycles);
    RunResult {
        store: out.store,
        stats: EngineStats {
            total_ms,
            sampling_ms: total_ms - scheduling_ms,
            scheduling_ms,
            counters,
            steps_run: out.steps_run,
            profile,
        },
        report: out.report,
    }
}

/// Runs `app` to completion with the chosen engine on `gpu`.
///
/// Validates inputs up front, recovers from transient faults by retrying
/// steps, and — for the NextDoor engine only — degrades to the out-of-core
/// engine when the graph upload does not fit in device memory. The samples
/// of a degraded run are byte-identical to an in-core run's.
pub(crate) fn run_gpu_engine(
    gpu: &mut Gpu,
    graph: &Csr,
    app: &dyn SamplingApp,
    init: &[Vec<VertexId>],
    seed: u64,
    kind: GpuEngineKind,
) -> Result<RunResult, NextDoorError> {
    crate::error::validate_run(graph, app, init)?;
    if gpu.device_lost() {
        return Err(NextDoorError::DeviceLost { device: 0 });
    }
    let counters0 = *gpu.counters();
    let launch0 = gpu.launches_issued();
    match GpuGraph::upload(gpu, graph) {
        Ok(gg) => {
            let keys = SampleKeys::uniform(seed);
            let out = run_step_loop(
                gpu,
                graph,
                &gg,
                app,
                init,
                &keys,
                kind,
                None,
                &TuningPlan::default(),
                None,
            )?;
            Ok(finish_run(gpu, &counters0, launch0, out))
        }
        Err(oom) => {
            let mut report = FaultReport::default();
            report.absorb(&gpu.take_faults());
            if gpu.device_lost() {
                return Err(NextDoorError::DeviceLost { device: 0 });
            }
            if kind != GpuEngineKind::NextDoor {
                // The SP/TP baselines have no degraded mode.
                return Err(oom.into());
            }
            // Degrade to the out-of-core engine: stage the graph host-side
            // and keep half the device for graph residency, the rest for
            // sample buffers. Samples are unchanged; only time differs.
            report.degraded_to_out_of_core = true;
            let budget = (gpu.mem_capacity() / 2).max(1);
            let (mut res, _ooc) =
                crate::large_graph::out_of_core_run(gpu, graph, app, init, seed, budget)?;
            res.report.merge(&report);
            Ok(res)
        }
    }
}
