//! The sample-parallel baseline engine ("SP", paper §5.1 and §8.2).
//!
//! This is the strongest non-transit-parallel configuration the paper
//! compares against: it keeps NextDoor's fine-grained API-level parallelism
//! (`m` consecutive threads per sample/transit pair, coalesced writes) but
//! has no transit grouping, so adjacency reads are uncoalesced across a
//! warp, nothing can be cached, and divergent `next` executions share warps.

use crate::api::SamplingApp;
use crate::engine::driver::{run_gpu_engine, GpuEngineKind};
use crate::engine::RunResult;
use crate::error::NextDoorError;
use nextdoor_gpu::Gpu;
use nextdoor_graph::{Csr, VertexId};

/// Runs `app` with the optimised sample-parallel strategy.
///
/// # Errors
///
/// Errors under the same conditions as
/// [`crate::engine::nextdoor::run_nextdoor`], except that the baseline has
/// no out-of-core degraded mode: an upload that does not fit surfaces as
/// [`NextDoorError::OutOfMemory`].
pub fn run_sample_parallel(
    gpu: &mut Gpu,
    graph: &Csr,
    app: &dyn SamplingApp,
    init: &[Vec<VertexId>],
    seed: u64,
) -> Result<RunResult, NextDoorError> {
    run_gpu_engine(gpu, graph, app, init, seed, GpuEngineKind::SampleParallel)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::{NextCtx, Steps};
    use crate::engine::cpu::run_cpu;
    use crate::engine::nextdoor::run_nextdoor;
    use nextdoor_gpu::GpuSpec;
    use nextdoor_graph::gen::{rmat, RmatParams};

    struct Walk(usize);
    impl SamplingApp for Walk {
        fn name(&self) -> &'static str {
            "walk"
        }
        fn steps(&self) -> Steps {
            Steps::Fixed(self.0)
        }
        fn sample_size(&self, _: usize) -> usize {
            1
        }
        fn next(&self, ctx: &mut NextCtx<'_>) -> Option<u32> {
            let d = ctx.num_edges();
            if d == 0 {
                return None;
            }
            let i = ctx.rand_range(d);
            Some(ctx.src_edge(i))
        }
    }

    #[test]
    fn matches_cpu_reference() {
        let g = rmat(8, 2000, RmatParams::SKEWED, 3);
        let init: Vec<Vec<u32>> = (0..64).map(|i| vec![i * 3 % 256]).collect();
        let mut gpu = Gpu::new(GpuSpec::small());
        let sp = run_sample_parallel(&mut gpu, &g, &Walk(8), &init, 11).unwrap();
        let cpu = run_cpu(&g, &Walk(8), &init, 11).unwrap();
        assert_eq!(sp.store.final_samples(), cpu.store.final_samples());
        assert_eq!(sp.stats.scheduling_ms, 0.0, "SP builds no scheduling index");
    }

    /// DeepWalk-style weighted walk: rejection sampling probes several
    /// edges per step, the workload Figure 8 actually measures.
    struct WeightedWalk(usize);
    impl SamplingApp for WeightedWalk {
        fn name(&self) -> &'static str {
            "weighted-walk"
        }
        fn steps(&self) -> Steps {
            Steps::Fixed(self.0)
        }
        fn sample_size(&self, _: usize) -> usize {
            1
        }
        fn next(&self, ctx: &mut NextCtx<'_>) -> Option<u32> {
            let d = ctx.num_edges();
            if d == 0 {
                return None;
            }
            let t = ctx.transits()[0];
            let max_w = ctx.max_edge_weight(t);
            for _ in 0..16 {
                let i = ctx.rand_range(d);
                let w = ctx.edge_weight(i);
                if ctx.rand_f32() * max_w <= w {
                    return Some(ctx.src_edge(i));
                }
            }
            let i = ctx.rand_range(d);
            Some(ctx.src_edge(i))
        }
    }

    #[test]
    fn nextdoor_issues_fewer_l2_reads_than_sp() {
        // Figure 8's claim: NextDoor performs a fraction of SP's L2 read
        // transactions thanks to coalescing and caching.
        let g = rmat(10, 10_000, RmatParams::SKEWED, 7).with_random_weights(1.0, 5.0, 3);
        let init: Vec<Vec<u32>> = (0..2048).map(|i| vec![(i % 1024) as u32]).collect();
        let mut gpu_sp = Gpu::new(GpuSpec::small());
        let sp = run_sample_parallel(&mut gpu_sp, &g, &WeightedWalk(10), &init, 4).unwrap();
        let mut gpu_nd = Gpu::new(GpuSpec::small());
        let nd = run_nextdoor(&mut gpu_nd, &g, &WeightedWalk(10), &init, 4).unwrap();
        assert_eq!(sp.store.final_samples(), nd.store.final_samples());
        let sp_reads = sp.stats.counters.l2_read_transactions() as f64;
        let nd_sampling_reads = nd.stats.counters.l2_read_transactions() as f64;
        assert!(
            nd_sampling_reads < sp_reads,
            "NextDoor reads {nd_sampling_reads} should undercut SP reads {sp_reads}"
        );
    }
}
