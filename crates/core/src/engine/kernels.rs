//! The sampling kernels shared by the GPU engines.
//!
//! Three transit-parallel kernels implement Table 2 of the paper (sub-warp,
//! thread-block, grid), and one fine-grained sample-parallel kernel
//! implements the SP baseline of §5.1. The user-defined `next` function runs
//! per lane under trace capture; each warp then replays its 32 traces in
//! lock-step, which is where coalescing, caching and divergence are charged.

use crate::api::{EdgeCost, SamplingApp, SamplingType, NULL_VERTEX};
use crate::engine::scheduling::SchedulingIndex;
use crate::engine::{run_next_individual, SampleKeys, StepPlan};
use crate::gpu_graph::GpuGraph;
use crate::store::SampleStore;
use crate::tuning::KernelTuning;
use nextdoor_gpu::lane::LaneTrace;
use nextdoor_gpu::warp::mask_first_n;
use nextdoor_gpu::{
    BlockShards, DeviceBuffer, Gpu, LaunchConfig, OutOfMemory, SyncSlice, WARP_SIZE,
};
use nextdoor_graph::{Csr, VertexId};

/// Everything a sampling kernel needs to know about the current step.
pub(crate) struct StepExec<'a> {
    pub graph: &'a Csr,
    pub gg: &'a GpuGraph,
    pub app: &'a dyn SamplingApp,
    pub store: &'a SampleStore,
    pub plan: &'a StepPlan,
    pub keys: &'a SampleKeys,
}

impl StepExec<'_> {
    /// Decodes a pair id into `(sample, transit_idx)`.
    #[inline]
    pub fn decode_pair(&self, pair_id: u32) -> (usize, usize) {
        (
            pair_id as usize / self.plan.tps,
            pair_id as usize % self.plan.tps,
        )
    }

    /// Output slot of `(sample, tidx, j)` in the step's value array.
    #[inline]
    pub fn out_index(&self, sample: usize, tidx: usize, j: usize) -> usize {
        match self.app.sampling_type() {
            SamplingType::Individual => sample * self.plan.slots + tidx * self.plan.m + j,
            SamplingType::Collective => sample * self.plan.slots + j,
        }
    }
}

/// Host-side mirror of a step's outputs plus the device buffer the kernels
/// write through.
pub(crate) struct StepOut {
    pub values: Vec<VertexId>,
    pub edges: Vec<Vec<(VertexId, VertexId)>>,
    pub step_buf: DeviceBuffer<u32>,
}

impl StepOut {
    pub fn try_new(gpu: &Gpu, num_samples: usize, slots: usize) -> Result<Self, OutOfMemory> {
        Ok(StepOut {
            values: vec![NULL_VERTEX; num_samples * slots],
            edges: vec![Vec::new(); num_samples],
            step_buf: gpu.try_alloc(num_samples * slots)?,
        })
    }
}

/// Runs the `stepTransits` kernel: one thread per `(sample, transit_idx)`
/// reads the previous step's vertex and writes the transit array.
///
/// `transits` (the step plan's host-computed transit values) is the single
/// authoritative source of the transit array: `step_transit()` may remap
/// vertices host-side, so the device read of `prev_buf` only accounts the
/// memory traffic of the real kernel while the stored values come from the
/// plan. Callers must not overwrite `transit_buf` afterwards.
///
/// The previous-step read of pair `(sample, tidx)` targets that sample's
/// own slice of `prev_buf` — slot `tidx`, clamped to the slots the
/// previous step actually produced. Charging wrapped addresses instead
/// (`gid % prev_len`) would merge reads of *different* samples into the
/// same sectors and over-count coalescing whenever the previous step's
/// per-sample slot count differs from `tps`.
pub(crate) fn charge_step_transits(
    gpu: &mut Gpu,
    prev_buf: &DeviceBuffer<u32>,
    transit_buf: &DeviceBuffer<u32>,
    transits: &[VertexId],
    tps: usize,
) {
    let n = transit_buf.len();
    debug_assert_eq!(n, transits.len(), "transit buffer must match the plan");
    if n == 0 || tps == 0 {
        return;
    }
    debug_assert_eq!(n % tps, 0, "transit array is num_samples * tps");
    let ns = n / tps;
    // Slots the previous step produced per sample (the initial vertex
    // count at step 0). Always >= 1 for a validated run.
    let prev_per_sample = (prev_buf.len() / ns.max(1)).max(1);
    gpu.launch("step_transits", LaunchConfig::grid1d(n, 256), |blk| {
        blk.for_each_warp(|w| {
            let gid = w.global_thread_ids();
            let m = w.mask_where(|l| gid[l] < n);
            if m == 0 {
                return;
            }
            let safe = gid.map(|g| g.min(n - 1));
            let prev_slot = safe.map(|g| {
                let (sample, tidx) = (g / tps, g % tps);
                sample * prev_per_sample + tidx.min(prev_per_sample - 1)
            });
            let _ = w.ld_global(prev_buf, &prev_slot, m);
            let v: [u32; WARP_SIZE] = std::array::from_fn(|l| transits[safe[l]]);
            w.st_global(transit_buf, &safe, v, m);
        });
    });
}

/// Registers each thread dedicates to neighbour caching in the sub-warp
/// kernel (`u32` slots). V100 threads have up to 255 32-bit registers;
/// 32 slots (128 bytes) leaves ample room for the kernel's own state while
/// letting a single-thread sub-warp cache a typical adjacency list (the
/// evaluation graphs average 4-39 neighbours).
const REG_CACHE_PER_THREAD: usize = 32;

/// One unit of work for a lane of a transit-parallel kernel.
#[derive(Debug, Clone, Copy)]
struct LaneWork {
    sample: usize,
    tidx: usize,
    j: usize,
    transit: VertexId,
    /// Physical slot in the device output buffer. Transit-parallel kernels
    /// write in execution (sorted-pair) order, so consecutive lanes hit
    /// consecutive addresses — this is why NextDoor's global stores are
    /// fully coalesced (Table 4). The semantic `(sample, tidx, j)` position
    /// is kept in the host mirror.
    phys: usize,
    /// How many leading neighbours of the transit the engine cached for
    /// this lane (registers or shared memory).
    cached_len: usize,
}

/// Per-block shard payload of `execute_lanes`: the sampled edges one lane
/// appends for one sample. Draining the shards in block order reproduces
/// exactly the append order of a sequential launch.
pub(crate) type EdgeAppend = (usize, Vec<(VertexId, VertexId)>);

/// Runs `next` for the lanes described by `work`, replays the traces on the
/// warp, stores outputs through the step buffer, and mirrors values/edges
/// into the host-side output mirrors. The mirrors are shared-reference
/// writable ([`SyncSlice`] / [`BlockShards`]) because the kernel closure
/// may be executing on several host worker threads at once.
#[allow(clippy::too_many_arguments)]
fn execute_lanes(
    w: &mut nextdoor_gpu::WarpCtx<'_>,
    ex: &StepExec<'_>,
    work: &[Option<LaneWork>; WARP_SIZE],
    cost: EdgeCost,
    out_values: &SyncSlice<'_, VertexId>,
    out_edges: &BlockShards<EdgeAppend>,
    step_buf: &DeviceBuffer<u32>,
) {
    let mut traces: [LaneTrace; WARP_SIZE] = std::array::from_fn(|_| LaneTrace::new());
    let mut vals = [NULL_VERTEX; WARP_SIZE];
    let mut idxs = [0usize; WARP_SIZE];
    let mut mask = 0u32;
    for l in 0..WARP_SIZE {
        let Some(lw) = work[l] else { continue };
        mask |= 1 << l;
        debug_assert_eq!(
            ex.plan.transits[lw.sample * ex.plan.tps + lw.tidx],
            lw.transit,
            "lane work must agree with the step plan"
        );
        let (v, es) = run_next_individual(
            ex.app,
            ex.graph,
            ex.store,
            ex.plan,
            lw.sample,
            lw.tidx,
            lw.j,
            ex.keys,
            cost,
            lw.cached_len,
            ex.gg.cols_base(),
            Some(&mut traces[l]),
        );
        vals[l] = v;
        // The step buffer is sized `num_samples * slots` and every kernel
        // derives `phys` from an in-range pair position, so an out-of-range
        // slot means the work plan itself is corrupt — fail loudly rather
        // than silently merging the store into the last sector.
        debug_assert!(
            lw.phys < step_buf.len(),
            "physical slot {} out of range for step buffer of {} slots",
            lw.phys,
            step_buf.len()
        );
        idxs[l] = lw.phys;
        // SAFETY: each `(sample, tidx, j)` slot belongs to exactly one lane
        // of the launch, and each shard is only touched by the thread
        // executing its block (see `execute_lanes`' doc).
        unsafe {
            out_values.write(ex.out_index(lw.sample, lw.tidx, lw.j), v);
            if !es.is_empty() {
                out_edges.push(w.block_idx, (lw.sample, es));
            }
        }
    }
    if mask == 0 {
        return;
    }
    w.replay(&traces, mask);
    w.st_global(step_buf, &idxs, vals, mask);
}

/// The sub-warp kernel (Table 2, row 3): several transits per warp, each
/// `(transit, sample)` pair on `m` consecutive lanes; adjacency held in
/// registers and read via warp shuffles.
///
/// `tune` supplies the preload factor and the session's resident-transit
/// set; a resident transit's preload loads are skipped (its slice already
/// sits in the session arena) while `cached_len` — and therefore every
/// sampled value — is unchanged.
pub(crate) fn run_subwarp_kernel(
    gpu: &mut Gpu,
    ex: &StepExec<'_>,
    index: &SchedulingIndex,
    class: &[usize],
    tune: &KernelTuning<'_>,
    out: &mut StepOut,
) {
    if class.is_empty() {
        return;
    }
    let m = ex.plan.m;
    // Greedy-pack whole segments into warps of 32 lanes.
    let mut warps: Vec<Vec<usize>> = Vec::new();
    let mut cur: Vec<usize> = Vec::new();
    let mut used = 0usize;
    for &si in class {
        let need = index.segments[si].count * m;
        debug_assert!(need <= WARP_SIZE);
        if used + need > WARP_SIZE {
            warps.push(std::mem::take(&mut cur));
            used = 0;
        }
        cur.push(si);
        used += need;
    }
    if !cur.is_empty() {
        warps.push(cur);
    }
    let total_threads = warps.len() * WARP_SIZE;
    let cfg = LaunchConfig::grid1d(total_threads, 256);
    let values = SyncSlice::new(&mut out.values);
    let edge_shards = BlockShards::new(cfg.grid_dim);
    let step_buf = &out.step_buf;
    gpu.launch("nextdoor_subwarp", cfg, |blk| {
        blk.for_each_warp(|w| {
            let gw = w.global_warp_id();
            if gw >= warps.len() {
                return;
            }
            let mut work: [Option<LaneWork>; WARP_SIZE] = [None; WARP_SIZE];
            let mut lane = 0usize;
            for &si in &warps[gw] {
                let seg = index.segments[si];
                let deg = ex.graph.degree(seg.transit);
                // Register caching: the transit's sub-warps can hold
                // REG_CACHE_PER_THREAD neighbours per thread; they are
                // loaded once with coalesced reads and served to every
                // lane via warp shuffles.
                let threads = seg.count * m;
                // Adaptive cache sizing: preload no more sectors than
                // the expected number of accesses can pay back (a few
                // probes per slot), bounded by the register budget.
                let expected = (tune.preload_factor * threads).next_multiple_of(8).max(8);
                let reg_n = deg.min(expected).min(REG_CACHE_PER_THREAD * threads);
                if reg_n > 0 && !tune.is_resident(seg.transit) {
                    let (start, _) = ex.graph.adjacency_range(seg.transit);
                    let mut c = 0;
                    while c < reg_n {
                        let len = (reg_n - c).min(WARP_SIZE);
                        let idx: [usize; WARP_SIZE] =
                            std::array::from_fn(|l| start + c + l.min(len - 1));
                        let _ = w.ld_global(&ex.gg.cols, &idx, mask_first_n(len));
                        c += len;
                    }
                }
                for p in 0..seg.count {
                    let pair_id = index.sorted_pair_ids[seg.start + p];
                    let (sample, tidx) = ex.decode_pair(pair_id);
                    for j in 0..m {
                        work[lane] = Some(LaneWork {
                            sample,
                            tidx,
                            j,
                            transit: seg.transit,
                            phys: (seg.start + p) * m + j,
                            cached_len: reg_n,
                        });
                        lane += 1;
                    }
                }
            }
            execute_lanes(
                w,
                ex,
                &work,
                EdgeCost::Registers,
                &values,
                &edge_shards,
                step_buf,
            );
        });
    });
    drain_edge_shards(edge_shards, &mut out.edges);
}

/// Merges the per-block edge shards into the per-sample edge lists, in
/// canonical block order.
fn drain_edge_shards(shards: BlockShards<EdgeAppend>, edges: &mut [Vec<(VertexId, VertexId)>]) {
    for (sample, es) in shards.into_ordered() {
        edges[sample].extend(es);
    }
}

/// A unit of block-level work: a chunk of one transit's pairs.
#[derive(Debug, Clone, Copy)]
pub(crate) struct BlockWork {
    /// Segment index into the scheduling index.
    pub seg: usize,
    /// First pair of the chunk, relative to the segment start.
    pub pair_start: usize,
    /// Pairs in the chunk.
    pub pair_count: usize,
}

/// Expands the thread-block class into one [`BlockWork`] per transit.
pub(crate) fn block_class_work(index: &SchedulingIndex, class: &[usize]) -> Vec<BlockWork> {
    class
        .iter()
        .map(|&si| BlockWork {
            seg: si,
            pair_start: 0,
            pair_count: index.segments[si].count,
        })
        .collect()
}

/// Expands the grid class into chunks small enough for one block each.
pub(crate) fn grid_class_work(
    index: &SchedulingIndex,
    class: &[usize],
    m: usize,
    block_threads: usize,
) -> Vec<BlockWork> {
    let pairs_per_block = (block_threads / m).max(1);
    let mut work = Vec::new();
    for &si in class {
        let count = index.segments[si].count;
        let mut start = 0;
        while start < count {
            let chunk = pairs_per_block.min(count - start);
            work.push(BlockWork {
                seg: si,
                pair_start: start,
                pair_count: chunk,
            });
            start += chunk;
        }
    }
    work
}

/// The thread-block and grid kernels (Table 2, rows 1–2): each block serves
/// one transit (or one chunk of a huge transit), caching the adjacency list
/// in shared memory. A block whose chunk exceeds its thread count loops
/// grid-stride style — the vanilla-TP configuration (whole transits, no
/// load balancing) and small tuned block sizes both rely on this.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_transit_block_kernel(
    gpu: &mut Gpu,
    name: &str,
    ex: &StepExec<'_>,
    index: &SchedulingIndex,
    blocks: &[BlockWork],
    tune: &KernelTuning<'_>,
    out: &mut StepOut,
) {
    if blocks.is_empty() {
        return;
    }
    let m = ex.plan.m;
    let block_dim = tune.block_dim;
    let cfg = LaunchConfig {
        grid_dim: blocks.len(),
        block_dim,
    };
    let values = SyncSlice::new(&mut out.values);
    let edge_shards = BlockShards::new(cfg.grid_dim);
    let step_buf = &out.step_buf;
    gpu.launch(name, cfg, |blk| {
        let bw = blocks[blk.block_idx];
        let seg = index.segments[bw.seg];
        let deg = ex.graph.degree(seg.transit);
        let (row_start, _) = ex.graph.adjacency_range(seg.transit);
        // Shared-memory cache of the adjacency list; spill to global
        // when it does not fit (§6.1.2 "Caching"). A session-resident
        // transit skips the whole global→shared fill — its slice is
        // served from the session arena at cache cost — while
        // `cached_len` (and with it every sampled value) is unchanged.
        let cache_n = deg.min(blk.shared_words_free());
        let resident = tune.is_resident(seg.transit);
        let cache = if cache_n > 0 && !resident {
            blk.shared_alloc(cache_n)
        } else {
            None
        };
        let cached_len = if resident {
            cache_n
        } else {
            cache.map_or(0, |_| cache_n)
        };
        if let Some(arr) = cache {
            let chunks = cache_n.div_ceil(WARP_SIZE);
            let num_warps = blk.num_warps();
            blk.for_each_warp(|w| {
                let mut c = w.warp_in_block;
                while c < chunks {
                    let base = c * WARP_SIZE;
                    let len = WARP_SIZE.min(cache_n - base);
                    let msk = mask_first_n(len);
                    let gidx: [usize; WARP_SIZE] =
                        std::array::from_fn(|l| row_start + (base + l).min(cache_n - 1));
                    let v = w.ld_global(&ex.gg.cols, &gidx, msk);
                    let sidx: [usize; WARP_SIZE] =
                        std::array::from_fn(|l| (base + l).min(cache_n - 1));
                    w.st_shared(&arr, &sidx, v, msk);
                    c += num_warps;
                }
            });
            blk.syncthreads();
        }
        let lanes_needed = bw.pair_count * m;
        // Every block loops until its chunk is covered. NextDoor-class
        // chunks fit one block (`count * m <= block_dim`) so this is one
        // iteration; vanilla TP's whole-transit blocks and plans whose
        // `m` exceeds the tuned block size take more.
        let iterations = lanes_needed.div_ceil(block_dim).max(1);
        blk.for_each_warp(|w| {
            for it in 0..iterations {
                let lane_base = it * block_dim + w.warp_in_block * WARP_SIZE;
                if lane_base >= lanes_needed {
                    break;
                }
                let mut work: [Option<LaneWork>; WARP_SIZE] = [None; WARP_SIZE];
                for (l, slot) in work.iter_mut().enumerate() {
                    let off = lane_base + l;
                    if off >= lanes_needed {
                        break;
                    }
                    let local_pair = off / m;
                    let j = off % m;
                    let pair_pos = seg.start + bw.pair_start + local_pair;
                    let pair_id = index.sorted_pair_ids[pair_pos];
                    let (sample, tidx) = ex.decode_pair(pair_id);
                    *slot = Some(LaneWork {
                        sample,
                        tidx,
                        j,
                        transit: seg.transit,
                        phys: pair_pos * m + j,
                        cached_len,
                    });
                }
                execute_lanes(
                    w,
                    ex,
                    &work,
                    EdgeCost::Shared,
                    &values,
                    &edge_shards,
                    step_buf,
                );
            }
        });
    });
    drain_edge_shards(edge_shards, &mut out.edges);
}

/// The fine-grained sample-parallel kernel of §5.1 (the SP baseline):
/// `m` consecutive threads per `(sample, transit)` pair, no transit
/// grouping, no caching — every adjacency access is a global load and
/// lanes of one warp hold different transits.
pub(crate) fn run_sample_parallel_kernel(
    gpu: &mut Gpu,
    ex: &StepExec<'_>,
    transit_buf: &DeviceBuffer<u32>,
    out: &mut StepOut,
) {
    let ns = ex.store.num_samples();
    let tps = ex.plan.tps;
    let m = ex.plan.m;
    let num_pairs = ns * tps;
    let total_threads = num_pairs * m;
    if total_threads == 0 {
        return;
    }
    let cfg = LaunchConfig::grid1d(total_threads, 256);
    let values = SyncSlice::new(&mut out.values);
    let edge_shards = BlockShards::new(cfg.grid_dim);
    let step_buf = &out.step_buf;
    gpu.launch("sp_sample", cfg, |blk| {
        blk.for_each_warp(|w| {
            let gid = w.global_thread_ids();
            let valid = w.mask_where(|l| gid[l] < total_threads);
            if valid == 0 {
                return;
            }
            // Each lane reads its pair's transit from global memory.
            let pair_idx: [usize; WARP_SIZE] =
                std::array::from_fn(|l| (gid[l] / m).min(num_pairs - 1));
            let transits = w.ld_global(transit_buf, &pair_idx, valid);
            let mut work: [Option<LaneWork>; WARP_SIZE] = [None; WARP_SIZE];
            for l in 0..WARP_SIZE {
                if valid & (1 << l) == 0 || transits[l] == NULL_VERTEX {
                    continue;
                }
                let pair = gid[l] / m;
                work[l] = Some(LaneWork {
                    sample: pair / tps,
                    tidx: pair % tps,
                    j: gid[l] % m,
                    transit: transits[l],
                    phys: gid[l],
                    cached_len: 0,
                });
            }
            execute_lanes(
                w,
                ex,
                &work,
                EdgeCost::Global,
                &values,
                &edge_shards,
                step_buf,
            );
        });
    });
    drain_edge_shards(edge_shards, &mut out.edges);
}

#[cfg(test)]
mod tests {
    use super::*;
    use nextdoor_gpu::GpuSpec;

    /// Regression test for the previous-step read addressing: with 4
    /// samples owning 8 previous-step slots each and 2 transits per
    /// sample, each pair `(s, t)` must read its own sample's region
    /// (`s * 8 + t`), touching one 32-byte sector per sample. The old
    /// wrapped addressing (`g % prev_len`) read slots `0..8` — a single
    /// sector entirely inside sample 0 — under-charging the reads and
    /// attributing them to the wrong sample.
    #[test]
    fn step_transit_reads_address_each_samples_previous_slots() {
        let mut gpu = Gpu::new(GpuSpec::small());
        let (ns, tps, prev_per_sample) = (4usize, 2usize, 8usize);
        let prev_buf = gpu.to_device(&vec![1u32; ns * prev_per_sample]);
        let transits: Vec<VertexId> = (0..ns * tps).map(|i| i as u32).collect();
        let transit_buf = gpu.alloc(ns * tps);
        charge_step_transits(&mut gpu, &prev_buf, &transit_buf, &transits, tps);
        let kernel = gpu
            .profile()
            .kernels()
            .last()
            .expect("the launch was profiled");
        assert_eq!(kernel.name, "step_transits");
        // Reads: slots {8s, 8s+1} for s in 0..4 — four sectors (one per
        // sample). The wrapped scheme would coalesce them into one.
        assert_eq!(kernel.counters.gld_transactions, 4);
        // Stores: slots 0..8, one contiguous sector.
        assert_eq!(kernel.counters.gst_transactions, 1);
    }

    /// When the previous step produced exactly `tps` slots per sample
    /// (the steady state of a random walk), the corrected addressing is
    /// the identity mapping: reads are as coalesced as stores.
    #[test]
    fn step_transit_reads_coalesce_in_the_steady_state() {
        let mut gpu = Gpu::new(GpuSpec::small());
        let (ns, tps) = (8usize, 1usize);
        let prev_buf = gpu.to_device(&vec![1u32; ns * tps]);
        let transits: Vec<VertexId> = (0..ns * tps).map(|i| i as u32).collect();
        let transit_buf = gpu.alloc(ns * tps);
        charge_step_transits(&mut gpu, &prev_buf, &transit_buf, &transits, tps);
        let kernel = gpu.profile().kernels().last().expect("profiled");
        assert_eq!(kernel.counters.gld_transactions, 1);
        assert_eq!(kernel.counters.gst_transactions, 1);
    }

    /// Regression test for the silent clamp: an out-of-range physical slot
    /// means the work plan is corrupt, and `execute_lanes` must fail
    /// loudly instead of merging the store into the last in-range sector
    /// (which corrupted store-coalescing attribution).
    #[test]
    #[should_panic(expected = "out of range for step buffer")]
    fn out_of_range_physical_slot_fails_loudly() {
        use crate::api::{NextCtx, Steps};
        use crate::engine::plan_step;
        use crate::gpu_graph::GpuGraph;
        use nextdoor_graph::gen::ring_lattice;

        struct Walk;
        impl SamplingApp for Walk {
            fn name(&self) -> &'static str {
                "walk"
            }
            fn steps(&self) -> Steps {
                Steps::Fixed(1)
            }
            fn sample_size(&self, _: usize) -> usize {
                1
            }
            fn next(&self, ctx: &mut NextCtx<'_>) -> Option<VertexId> {
                let d = ctx.num_edges();
                if d == 0 {
                    return None;
                }
                let i = ctx.rand_range(d);
                Some(ctx.src_edge(i))
            }
        }

        let graph = ring_lattice(16, 2, 0);
        let mut gpu = Gpu::new(GpuSpec::small());
        let gg = GpuGraph::upload(&mut gpu, &graph).unwrap();
        let store = SampleStore::new(vec![vec![0]]);
        let keys = SampleKeys::uniform(0);
        let plan = plan_step(&Walk, &store, 0, &keys);
        let ex = StepExec {
            graph: &graph,
            gg: &gg,
            app: &Walk,
            store: &store,
            plan: &plan,
            keys: &keys,
        };
        let mut values = vec![NULL_VERTEX; plan.slots];
        let values = SyncSlice::new(&mut values);
        let edge_shards = BlockShards::new(1);
        // Correctly sized for the plan (1 slot); the lane below claims
        // physical slot 5.
        let step_buf = gpu.alloc(store.num_samples() * plan.slots);
        let mut work: [Option<LaneWork>; WARP_SIZE] = [None; WARP_SIZE];
        work[0] = Some(LaneWork {
            sample: 0,
            tidx: 0,
            j: 0,
            transit: plan.transits[0],
            phys: 5,
            cached_len: 0,
        });
        gpu.launch("corrupt_plan", LaunchConfig::grid1d(32, 32), |blk| {
            blk.for_each_warp(|w| {
                execute_lanes(
                    w,
                    &ex,
                    &work,
                    EdgeCost::Global,
                    &values,
                    &edge_shards,
                    &step_buf,
                );
            });
        });
    }
}
